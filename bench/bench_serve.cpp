// Closed-loop throughput/latency benchmark for the reconstruction service.
//
// C client threads each submit same-geometry adjoint requests back-to-back
// (closed loop: next request issues when the previous reply lands) through
// the in-process ServeSession — the full admission/batching/plan-pool
// pipeline without socket noise. Reported per client count: requests/s,
// p50/p99 latency, and the scheduler's batching/plan-pool counters. Output
// is a BENCH_<tag>.json whose "serve" block is validated by
// scripts/validate_bench.py against scripts/bench_schema.json.
//
//   bench_serve [--smoke] [--tag ci-serve] [--out BENCH_serve.json]
//               [--threads 2] [--n 64] [--samples 8192]
//               [--engine slice-dice|auto] [--wisdom <path>] [--no-trials]
//               [--workers N]
//
// --engine auto routes requests through the engine's autotuner; each serve
// block then reports the CONCRETE engine the tuner picked plus
// "tuned": true, so a tuned run and a default run are directly comparable.
//
// --workers N switches to the scale-out topology: N real jigsaw_serve
// workers on loopback TCP behind an in-process Router, closed-loop clients
// speaking the JSRV wire protocol end to end. Requests cycle through
// several geometry classes; rendezvous sharding pins each class to one
// worker, so each serve block's "per_worker" array shows one plan build
// per geometry class per worker (serve.plan_builds / serve.tuned_plans).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

namespace {

using namespace jigsaw;

/// One worker's share of a routed run (scale-out mode only).
struct WorkerBench {
  std::string endpoint;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t plan_builds = 0;
  std::uint64_t tuned_plans = 0;
};

struct ServeResult {
  std::string name;
  int clients = 0;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t timeout = 0;
  std::uint64_t rejected = 0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t plan_builds = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_jobs = 0;
  std::string engine;  // concrete engine the plans ran on (tuner-resolved
                       // when the request asked for auto)
  bool tuned = false;  // true when the engine came from the autotuner
  int workers = 0;                      // routed mode: worker tier size
  std::vector<WorkerBench> per_worker;  // routed mode: per-worker shares
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

ServeResult run_closed_loop(int clients, int requests_per_client,
                            std::int64_t n,
                            const std::vector<Coord<2>>& coords,
                            const std::vector<c64>& values,
                            unsigned exec_threads,
                            core::GridderKind engine_kind,
                            const std::string& wisdom_path, bool tune_trials) {
  serve::ServeConfig config;
  config.max_queue = static_cast<std::size_t>(clients) * 2 + 8;
  config.exec_threads = exec_threads;
  config.wisdom_path = wisdom_path;
  config.tune_trials = tune_trials;
  serve::ServeSession session(config);

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& lat = latencies[static_cast<std::size_t>(c)];
      lat.reserve(static_cast<std::size_t>(requests_per_client));
      for (int r = 0; r < requests_per_client; ++r) {
        serve::ReconJob job;
        job.options.kind = engine_kind;
        job.options.width = 4;
        job.n = n;
        job.samples.coords = coords;
        job.samples.values = values;
        job.client_tag = static_cast<std::uint64_t>(c);
        const auto s0 = std::chrono::steady_clock::now();
        const serve::ReconOutcome outcome = session.recon(std::move(job));
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - s0)
                              .count();
        JIGSAW_REQUIRE(outcome.status == serve::Status::kOk,
                       "closed-loop request failed: "
                           << serve::to_string(outcome.status) << " "
                           << outcome.message);
        lat.push_back(ms);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  session.drain();

  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());

  const serve::EngineCounts counts = session.counts();
  ServeResult result;
  result.name = "closed-loop/clients" + std::to_string(clients);
  result.clients = clients;
  result.requests = counts.submitted;
  result.ok = counts.ok;
  result.timeout = counts.timeout;
  result.rejected = counts.rejected;
  result.rps = static_cast<double>(all.size()) / elapsed;
  result.p50_ms = percentile(all, 0.50);
  result.p99_ms = percentile(all, 0.99);
  result.plan_builds = counts.plan_builds;
  result.batches = counts.batches;
  result.batched_jobs = counts.batched_jobs;
  result.tuned = counts.tuned_plans > 0;
  if (result.tuned) {
    // The tuner memoized its decision when the first plan was built; a
    // second decide() is a pure lookup that names the concrete engine.
    core::GridderOptions options;
    options.width = 4;
    const auto key = tune::TuneKey::of(
        2, n, static_cast<std::int64_t>(coords.size()), options,
        /*coils=*/1, /*threads=*/1);
    result.engine =
        core::to_string(session.engine().tuner().decide(key, options).kind);
  } else {
    result.engine = core::to_string(engine_kind);
  }
  return result;
}

ServeResult run_routed_loop(int workers, int clients, int requests_per_client,
                            std::int64_t n, std::int64_t m_base,
                            unsigned exec_threads,
                            core::GridderKind engine_kind,
                            const std::string& wisdom_path,
                            bool tune_trials) {
  // Several geometry classes (distinct N — the trajectory generator rounds
  // M to whole spokes, so distinct-M classes could collide): rendezvous
  // sharding pins each class to one worker, and repeats of a class must hit
  // that worker's plan pool — one plan build per class fleet-wide.
  constexpr int kGeometries = 3;
  std::vector<serve::ReconRequestWire> geometry;
  geometry.reserve(kGeometries);
  for (int g = 0; g < kGeometries; ++g) {
    serve::ReconRequestWire req;
    req.engine = static_cast<std::uint32_t>(engine_kind);
    req.n = static_cast<std::uint32_t>(n + 16 * g);
    req.kernel_width = 4;
    req.client_tag = static_cast<std::uint64_t>(g);
    req.coords =
        trajectory::make_2d(trajectory::TrajectoryType::Radial, m_base);
    req.values = trajectory::kspace_samples(
        trajectory::shepp_logan(), req.coords, static_cast<int>(req.n));
    geometry.push_back(std::move(req));
  }

  std::vector<std::unique_ptr<serve::ReconServer>> fleet;
  std::vector<std::string> specs;
  for (int w = 0; w < workers; ++w) {
    serve::ServeConfig config;
    config.listen = "127.0.0.1:0";
    config.max_queue = static_cast<std::size_t>(clients) * 2 + 8;
    config.exec_threads = exec_threads;
    // Each worker owns its wisdom file — shards never contend on one store.
    config.wisdom_path =
        wisdom_path.empty() ? "" : wisdom_path + ".w" + std::to_string(w);
    config.tune_trials = tune_trials;
    fleet.push_back(std::make_unique<serve::ReconServer>(config));
    fleet.back()->start();
    specs.push_back(serve::to_string(fleet.back()->bound_endpoints().front()));
  }
  serve::RouterConfig rconfig;
  rconfig.listen = "127.0.0.1:0";
  rconfig.workers = specs;
  serve::Router router(rconfig);
  router.start();
  const std::string endpoint =
      serve::to_string(router.bound_endpoints().front());

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::ServeClient client(endpoint);
      auto& lat = latencies[static_cast<std::size_t>(c)];
      lat.reserve(static_cast<std::size_t>(requests_per_client));
      for (int r = 0; r < requests_per_client; ++r) {
        const auto s0 = std::chrono::steady_clock::now();
        const serve::ReconReplyWire reply =
            client.recon(geometry[(c + r) % kGeometries]);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - s0)
                              .count();
        JIGSAW_REQUIRE(reply.status == serve::Status::kOk,
                       "routed closed-loop request failed: "
                           << serve::to_string(reply.status) << " "
                           << reply.message);
        lat.push_back(ms);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  router.stop();

  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());

  ServeResult result;
  result.name = "routed/workers" + std::to_string(workers) + "/clients" +
                std::to_string(clients);
  result.clients = clients;
  result.workers = workers;
  result.rps = static_cast<double>(all.size()) / elapsed;
  result.p50_ms = percentile(all, 0.50);
  result.p99_ms = percentile(all, 0.99);
  result.engine = core::to_string(engine_kind);
  for (int w = 0; w < workers; ++w) {
    const serve::EngineCounts c = fleet[static_cast<std::size_t>(w)]
                                      ->engine()
                                      .counts();
    WorkerBench wb;
    wb.endpoint = specs[static_cast<std::size_t>(w)];
    wb.requests = c.submitted;
    wb.ok = c.ok;
    wb.plan_builds = c.plan_builds;
    wb.tuned_plans = c.tuned_plans;
    result.requests += c.submitted;
    result.ok += c.ok;
    result.timeout += c.timeout;
    result.rejected += c.rejected;
    result.plan_builds += c.plan_builds;
    result.batches += c.batches;
    result.batched_jobs += c.batched_jobs;
    result.tuned = result.tuned || c.tuned_plans > 0;
    result.per_worker.push_back(std::move(wb));
  }
  return result;
}

void write_json(const std::string& path, const std::string& tag, bool smoke,
                unsigned exec_threads,
                const std::vector<ServeResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  JIGSAW_REQUIRE(f != nullptr, "cannot open " << path << " for writing");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"tag\": \"%s\",\n", tag.c_str());
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"obs_enabled\": %s,\n",
               obs::kEnabled ? "true" : "false");
  std::fprintf(f, "  \"coil_threads\": %u,\n", exec_threads);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"benchmarks\": [],\n");
  std::fprintf(f, "  \"serve\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ServeResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"clients\": %d,\n", r.clients);
    std::fprintf(f, "      \"requests\": %llu,\n",
                 static_cast<unsigned long long>(r.requests));
    std::fprintf(f, "      \"ok\": %llu,\n",
                 static_cast<unsigned long long>(r.ok));
    std::fprintf(f, "      \"timeout\": %llu,\n",
                 static_cast<unsigned long long>(r.timeout));
    std::fprintf(f, "      \"rejected\": %llu,\n",
                 static_cast<unsigned long long>(r.rejected));
    std::fprintf(f, "      \"rps\": %.6g,\n", r.rps);
    std::fprintf(f, "      \"p50_ms\": %.6g,\n", r.p50_ms);
    std::fprintf(f, "      \"p99_ms\": %.6g,\n", r.p99_ms);
    std::fprintf(f, "      \"plan_builds\": %llu,\n",
                 static_cast<unsigned long long>(r.plan_builds));
    std::fprintf(f, "      \"batches\": %llu,\n",
                 static_cast<unsigned long long>(r.batches));
    std::fprintf(f, "      \"batched_jobs\": %llu,\n",
                 static_cast<unsigned long long>(r.batched_jobs));
    std::fprintf(f, "      \"engine\": \"%s\",\n", r.engine.c_str());
    std::fprintf(f, "      \"tuned\": %s%s\n", r.tuned ? "true" : "false",
                 r.per_worker.empty() ? "" : ",");
    if (!r.per_worker.empty()) {
      std::fprintf(f, "      \"workers\": %d,\n", r.workers);
      std::fprintf(f, "      \"per_worker\": [\n");
      for (std::size_t w = 0; w < r.per_worker.size(); ++w) {
        const WorkerBench& wb = r.per_worker[w];
        std::fprintf(f, "        {\"endpoint\": \"%s\", \"requests\": %llu, "
                     "\"ok\": %llu, \"plan_builds\": %llu, "
                     "\"tuned_plans\": %llu}%s\n",
                     wb.endpoint.c_str(),
                     static_cast<unsigned long long>(wb.requests),
                     static_cast<unsigned long long>(wb.ok),
                     static_cast<unsigned long long>(wb.plan_builds),
                     static_cast<unsigned long long>(wb.tuned_plans),
                     w + 1 == r.per_worker.size() ? "" : ",");
      }
      std::fprintf(f, "      ]\n");
    }
    std::fprintf(f, "    }%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  const obs::Snapshot snap = obs::snapshot();
  std::fprintf(f, "  \"counters\": {\n");
  std::size_t idx = 0;
  for (const auto& [name, value] : snap.counters) {
    ++idx;
    std::fprintf(f, "    \"%s\": %llu%s\n", name.c_str(),
                 static_cast<unsigned long long>(value),
                 idx == snap.counters.size() ? "" : ",");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"gauges\": {\n");
  idx = 0;
  for (const auto& [name, value] : snap.gauges) {
    ++idx;
    std::fprintf(f, "    \"%s\": %.12g%s\n", name.c_str(), value,
                 idx == snap.gauges.size() ? "" : ",");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"smoke", "tag", "out", "threads", "n", "samples",
                        "engine", "wisdom", "no-trials", "workers"});
    const bool smoke = args.has("smoke");
    const std::string tag = args.get("tag", smoke ? "serve-smoke" : "serve");
    const std::string out_path = args.get("out", "BENCH_" + tag + ".json");
    const auto exec_threads =
        static_cast<unsigned>(args.get_int("threads", 2));
    const std::int64_t n = args.get_int("n", smoke ? 48 : 64);
    const std::int64_t m = args.get_int("samples", smoke ? 4000 : 8192);
    const core::GridderKind engine_kind =
        core::parse_gridder_kind(args.get("engine", "slice-dice"));
    const std::string wisdom_path = args.get("wisdom", "");
    const bool tune_trials = !args.has("no-trials");
    const int requests_per_client = smoke ? 20 : 100;
    const std::vector<int> client_counts =
        smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

    const auto coords =
        trajectory::make_2d(trajectory::TrajectoryType::Radial, m);
    const auto values = trajectory::kspace_samples(trajectory::shepp_logan(),
                                                   coords,
                                                   static_cast<int>(n));

    const int workers = static_cast<int>(args.get_int("workers", 0));

    std::printf("bench_serve: n=%lld m=%zu lanes=%u engine=%s workers=%d %s\n",
                static_cast<long long>(n), coords.size(), exec_threads,
                core::to_string(engine_kind).c_str(), workers,
                smoke ? "(smoke)" : "");
    std::vector<ServeResult> results;
    for (const int clients : client_counts) {
      results.push_back(
          workers > 0
              ? run_routed_loop(workers, clients, requests_per_client, n, m,
                                exec_threads, engine_kind, wisdom_path,
                                tune_trials)
              : run_closed_loop(clients, requests_per_client, n, coords,
                                values, exec_threads, engine_kind,
                                wisdom_path, tune_trials));
      const ServeResult& r = results.back();
      std::printf("  %-22s %6.1f req/s  p50 %6.2f ms  p99 %6.2f ms  "
                  "batches %llu (fused jobs %llu), plans %llu, engine %s%s\n",
                  r.name.c_str(), r.rps, r.p50_ms, r.p99_ms,
                  static_cast<unsigned long long>(r.batches),
                  static_cast<unsigned long long>(r.batched_jobs),
                  static_cast<unsigned long long>(r.plan_builds),
                  r.engine.c_str(), r.tuned ? " (tuned)" : "");
      for (const WorkerBench& wb : r.per_worker) {
        std::printf("    worker %-21s %5llu requests, %llu plan builds, "
                    "%llu tuned\n",
                    wb.endpoint.c_str(),
                    static_cast<unsigned long long>(wb.requests),
                    static_cast<unsigned long long>(wb.plan_builds),
                    static_cast<unsigned long long>(wb.tuned_plans));
      }
    }
    write_json(out_path, tag, smoke, exec_threads, results);
    std::printf("bench_serve: wrote %s\n", out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
