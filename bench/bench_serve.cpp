// Closed-loop throughput/latency benchmark for the reconstruction service.
//
// C client threads each submit same-geometry adjoint requests back-to-back
// (closed loop: next request issues when the previous reply lands) through
// the in-process ServeSession — the full admission/batching/plan-pool
// pipeline without socket noise. Reported per client count: requests/s,
// p50/p99 latency, and the scheduler's batching/plan-pool counters. Output
// is a BENCH_<tag>.json whose "serve" block is validated by
// scripts/validate_bench.py against scripts/bench_schema.json.
//
//   bench_serve [--smoke] [--tag ci-serve] [--out BENCH_serve.json]
//               [--threads 2] [--n 64] [--samples 8192]
//               [--engine slice-dice|auto] [--wisdom <path>] [--no-trials]
//
// --engine auto routes requests through the engine's autotuner; each serve
// block then reports the CONCRETE engine the tuner picked plus
// "tuned": true, so a tuned run and a default run are directly comparable.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"
#include "serve/session.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

namespace {

using namespace jigsaw;

struct ServeResult {
  std::string name;
  int clients = 0;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t timeout = 0;
  std::uint64_t rejected = 0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t plan_builds = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_jobs = 0;
  std::string engine;  // concrete engine the plans ran on (tuner-resolved
                       // when the request asked for auto)
  bool tuned = false;  // true when the engine came from the autotuner
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

ServeResult run_closed_loop(int clients, int requests_per_client,
                            std::int64_t n,
                            const std::vector<Coord<2>>& coords,
                            const std::vector<c64>& values,
                            unsigned exec_threads,
                            core::GridderKind engine_kind,
                            const std::string& wisdom_path, bool tune_trials) {
  serve::ServeConfig config;
  config.max_queue = static_cast<std::size_t>(clients) * 2 + 8;
  config.exec_threads = exec_threads;
  config.wisdom_path = wisdom_path;
  config.tune_trials = tune_trials;
  serve::ServeSession session(config);

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& lat = latencies[static_cast<std::size_t>(c)];
      lat.reserve(static_cast<std::size_t>(requests_per_client));
      for (int r = 0; r < requests_per_client; ++r) {
        serve::ReconJob job;
        job.options.kind = engine_kind;
        job.options.width = 4;
        job.n = n;
        job.samples.coords = coords;
        job.samples.values = values;
        job.client_tag = static_cast<std::uint64_t>(c);
        const auto s0 = std::chrono::steady_clock::now();
        const serve::ReconOutcome outcome = session.recon(std::move(job));
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - s0)
                              .count();
        JIGSAW_REQUIRE(outcome.status == serve::Status::kOk,
                       "closed-loop request failed: "
                           << serve::to_string(outcome.status) << " "
                           << outcome.message);
        lat.push_back(ms);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  session.drain();

  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());

  const serve::EngineCounts counts = session.counts();
  ServeResult result;
  result.name = "closed-loop/clients" + std::to_string(clients);
  result.clients = clients;
  result.requests = counts.submitted;
  result.ok = counts.ok;
  result.timeout = counts.timeout;
  result.rejected = counts.rejected;
  result.rps = static_cast<double>(all.size()) / elapsed;
  result.p50_ms = percentile(all, 0.50);
  result.p99_ms = percentile(all, 0.99);
  result.plan_builds = counts.plan_builds;
  result.batches = counts.batches;
  result.batched_jobs = counts.batched_jobs;
  result.tuned = counts.tuned_plans > 0;
  if (result.tuned) {
    // The tuner memoized its decision when the first plan was built; a
    // second decide() is a pure lookup that names the concrete engine.
    core::GridderOptions options;
    options.width = 4;
    const auto key = tune::TuneKey::of(
        2, n, static_cast<std::int64_t>(coords.size()), options,
        /*coils=*/1, /*threads=*/1);
    result.engine =
        core::to_string(session.engine().tuner().decide(key, options).kind);
  } else {
    result.engine = core::to_string(engine_kind);
  }
  return result;
}

void write_json(const std::string& path, const std::string& tag, bool smoke,
                unsigned exec_threads,
                const std::vector<ServeResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  JIGSAW_REQUIRE(f != nullptr, "cannot open " << path << " for writing");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"tag\": \"%s\",\n", tag.c_str());
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"obs_enabled\": %s,\n",
               obs::kEnabled ? "true" : "false");
  std::fprintf(f, "  \"coil_threads\": %u,\n", exec_threads);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"benchmarks\": [],\n");
  std::fprintf(f, "  \"serve\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ServeResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"clients\": %d,\n", r.clients);
    std::fprintf(f, "      \"requests\": %llu,\n",
                 static_cast<unsigned long long>(r.requests));
    std::fprintf(f, "      \"ok\": %llu,\n",
                 static_cast<unsigned long long>(r.ok));
    std::fprintf(f, "      \"timeout\": %llu,\n",
                 static_cast<unsigned long long>(r.timeout));
    std::fprintf(f, "      \"rejected\": %llu,\n",
                 static_cast<unsigned long long>(r.rejected));
    std::fprintf(f, "      \"rps\": %.6g,\n", r.rps);
    std::fprintf(f, "      \"p50_ms\": %.6g,\n", r.p50_ms);
    std::fprintf(f, "      \"p99_ms\": %.6g,\n", r.p99_ms);
    std::fprintf(f, "      \"plan_builds\": %llu,\n",
                 static_cast<unsigned long long>(r.plan_builds));
    std::fprintf(f, "      \"batches\": %llu,\n",
                 static_cast<unsigned long long>(r.batches));
    std::fprintf(f, "      \"batched_jobs\": %llu,\n",
                 static_cast<unsigned long long>(r.batched_jobs));
    std::fprintf(f, "      \"engine\": \"%s\",\n", r.engine.c_str());
    std::fprintf(f, "      \"tuned\": %s\n", r.tuned ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  const obs::Snapshot snap = obs::snapshot();
  std::fprintf(f, "  \"counters\": {\n");
  std::size_t idx = 0;
  for (const auto& [name, value] : snap.counters) {
    ++idx;
    std::fprintf(f, "    \"%s\": %llu%s\n", name.c_str(),
                 static_cast<unsigned long long>(value),
                 idx == snap.counters.size() ? "" : ",");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"gauges\": {\n");
  idx = 0;
  for (const auto& [name, value] : snap.gauges) {
    ++idx;
    std::fprintf(f, "    \"%s\": %.12g%s\n", name.c_str(), value,
                 idx == snap.gauges.size() ? "" : ",");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"smoke", "tag", "out", "threads", "n", "samples",
                        "engine", "wisdom", "no-trials"});
    const bool smoke = args.has("smoke");
    const std::string tag = args.get("tag", smoke ? "serve-smoke" : "serve");
    const std::string out_path = args.get("out", "BENCH_" + tag + ".json");
    const auto exec_threads =
        static_cast<unsigned>(args.get_int("threads", 2));
    const std::int64_t n = args.get_int("n", smoke ? 48 : 64);
    const std::int64_t m = args.get_int("samples", smoke ? 4000 : 8192);
    const core::GridderKind engine_kind =
        core::parse_gridder_kind(args.get("engine", "slice-dice"));
    const std::string wisdom_path = args.get("wisdom", "");
    const bool tune_trials = !args.has("no-trials");
    const int requests_per_client = smoke ? 20 : 100;
    const std::vector<int> client_counts =
        smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

    const auto coords =
        trajectory::make_2d(trajectory::TrajectoryType::Radial, m);
    const auto values = trajectory::kspace_samples(trajectory::shepp_logan(),
                                                   coords,
                                                   static_cast<int>(n));

    std::printf("bench_serve: n=%lld m=%zu lanes=%u engine=%s %s\n",
                static_cast<long long>(n), coords.size(), exec_threads,
                core::to_string(engine_kind).c_str(),
                smoke ? "(smoke)" : "");
    std::vector<ServeResult> results;
    for (const int clients : client_counts) {
      results.push_back(run_closed_loop(clients, requests_per_client, n,
                                        coords, values, exec_threads,
                                        engine_kind, wisdom_path,
                                        tune_trials));
      const ServeResult& r = results.back();
      std::printf("  %-22s %6.1f req/s  p50 %6.2f ms  p99 %6.2f ms  "
                  "batches %llu (fused jobs %llu), plans %llu, engine %s%s\n",
                  r.name.c_str(), r.rps, r.p50_ms, r.p99_ms,
                  static_cast<unsigned long long>(r.batches),
                  static_cast<unsigned long long>(r.batched_jobs),
                  static_cast<unsigned long long>(r.plan_builds),
                  r.engine.c_str(), r.tuned ? " (tuned)" : "");
    }
    write_json(out_path, tag, smoke, exec_threads, results);
    std::printf("bench_serve: wrote %s\n", out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
