// E11 — google-benchmark microbenchmarks: per-sample gridding throughput of
// each engine, kernel-evaluation vs LUT cost, and FFT throughput.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/gridder.hpp"
#include "core/grid.hpp"
#include "fft/fft.hpp"
#include "kernels/bessel.hpp"
#include "kernels/kernel.hpp"
#include "kernels/lut.hpp"
#include "trajectory/trajectory.hpp"

using namespace jigsaw;

namespace {

core::SampleSet<2> workload(std::int64_t m) {
  core::SampleSet<2> s;
  s.coords = trajectory::make_2d(trajectory::TrajectoryType::Radial, m);
  s.values.assign(s.coords.size(), c64(0.01, 0.02));
  return s;
}

void bench_gridder(benchmark::State& state, core::GridderKind kind,
                   bool exact_weights) {
  const std::int64_t n = 128;  // G = 256
  core::GridderOptions opt;
  opt.kind = kind;
  opt.width = 6;
  opt.tile = 8;
  opt.exact_weights = exact_weights;
  auto g = core::make_gridder<2>(n, opt);
  const auto in = workload(1 << 15);
  core::Grid<2> grid(g->grid_size());
  for (auto _ : state) {
    g->adjoint(in, grid);
    benchmark::DoNotOptimize(grid.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size()));
}

}  // namespace

static void BM_Gridding_Serial(benchmark::State& s) {
  bench_gridder(s, core::GridderKind::Serial, false);
}
static void BM_Gridding_Binning(benchmark::State& s) {
  bench_gridder(s, core::GridderKind::Binning, true);
}
static void BM_Gridding_BinningLut(benchmark::State& s) {
  bench_gridder(s, core::GridderKind::Binning, false);
}
static void BM_Gridding_SliceDice(benchmark::State& s) {
  bench_gridder(s, core::GridderKind::SliceDice, false);
}
static void BM_Gridding_Jigsaw(benchmark::State& s) {
  bench_gridder(s, core::GridderKind::Jigsaw, false);
}
static void BM_Gridding_Sparse(benchmark::State& s) {
  bench_gridder(s, core::GridderKind::Sparse, false);
}
static void BM_Gridding_Float(benchmark::State& s) {
  bench_gridder(s, core::GridderKind::FloatSerial, false);
}
BENCHMARK(BM_Gridding_Serial);
BENCHMARK(BM_Gridding_Binning);
BENCHMARK(BM_Gridding_BinningLut);
BENCHMARK(BM_Gridding_SliceDice);
BENCHMARK(BM_Gridding_Jigsaw);
BENCHMARK(BM_Gridding_Sparse);
BENCHMARK(BM_Gridding_Float);

static void BM_ForwardInterp_SliceDice(benchmark::State& state) {
  const std::int64_t n = 128;
  core::GridderOptions opt;
  opt.width = 6;
  opt.tile = 8;
  auto g = core::make_gridder<2>(n, opt);
  auto in = workload(1 << 15);
  core::Grid<2> grid(g->grid_size());
  g->adjoint(in, grid);
  for (auto _ : state) {
    g->forward(grid, in);
    benchmark::DoNotOptimize(in.values.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_ForwardInterp_SliceDice);

static void BM_KernelEval_KaiserBessel(benchmark::State& state) {
  auto k = kernels::make_kernel(kernels::KernelType::KaiserBessel, 6, 2.0);
  Rng rng(1);
  std::vector<double> pts(1024);
  for (auto& p : pts) p = rng.uniform(-3.0, 3.0);
  for (auto _ : state) {
    double acc = 0;
    for (double p : pts) acc += k->evaluate(p);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_KernelEval_KaiserBessel);

static void BM_KernelLutLookup(benchmark::State& state) {
  auto k = kernels::make_kernel(kernels::KernelType::KaiserBessel, 6, 2.0);
  kernels::KernelLut lut(*k, 32);
  Rng rng(1);
  std::vector<double> pts(1024);
  for (auto& p : pts) p = rng.uniform(-3.0, 3.0);
  for (auto _ : state) {
    double acc = 0;
    for (double p : pts) acc += lut.weight(p);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_KernelLutLookup);

static void BM_BesselI0(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> pts(1024);
  for (auto& p : pts) p = rng.uniform(0.0, 14.0);
  for (auto _ : state) {
    double acc = 0;
    for (double p : pts) acc += kernels::bessel_i0(p);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_BesselI0);

static void BM_Fft2D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FftNd plan({n, n});
  Rng rng(3);
  std::vector<c64> data(n * n);
  for (auto& v : data) v = c64(rng.uniform(-1, 1), rng.uniform(-1, 1));
  for (auto _ : state) {
    plan.execute(data.data(), fft::Direction::Forward);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Fft2D)->Arg(128)->Arg(256)->Arg(512);
