// Shared infrastructure for the figure/table reproduction harnesses.
//
// The five evaluation images: the labels of the paper's Figs. 6-8 did not
// survive PDF text extraction (see DESIGN.md §1), so these are synthetic
// stand-ins spanning Table I's supported range. The per-image *speedup*
// numbers plotted in Figs. 6-7 did decode unambiguously and are recorded
// here as the reference the reproduction is compared against (their
// averages match the paper's prose: gridding 16x/250x/1500x, end-to-end
// 118x/258x).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/gridder.hpp"
#include "core/sample_set.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

namespace jigsaw::bench {

struct ImageConfig {
  std::string name;
  std::int64_t n;  // base image dimension (oversampled grid = 2N)
  std::int64_t m;  // non-uniform sample count
  trajectory::TrajectoryType traj;
  // Paper-reported speedups vs MIRT (decoded from Figs. 6 and 7).
  double fig6_impatient, fig6_snd, fig6_jigsaw;
  double fig7_impatient, fig7_snd, fig7_jigsaw;
};

inline const std::vector<ImageConfig>& image_configs() {
  using trajectory::TrajectoryType;
  static const std::vector<ImageConfig> configs = {
      {"Image1", 64, 8192, TrajectoryType::Radial,        //
       4, 374, 2386, 4, 86, 106},
      {"Image2", 64, 65536, TrajectoryType::Radial,       //
       18, 201, 750, 17, 151, 337},
      {"Image3", 192, 262144, TrajectoryType::Spiral,     //
       39, 248, 943, 38, 222, 668},
      {"Image4", 384, 1048576, TrajectoryType::Radial,    //
       9, 249, 1728, 9, 73, 97},
      {"Image5", 512, 2097152, TrajectoryType::Spiral,    //
       9, 202, 1759, 9, 61, 82},
  };
  return configs;
}

/// Build the non-uniform workload for a config: trajectory coordinates plus
/// analytic phantom k-space values (our substitute for the paper's liver
/// data — exercises identical code paths).
inline core::SampleSet<2> build_workload(const ImageConfig& cfg,
                                         bool phantom_values = true) {
  core::SampleSet<2> s;
  s.coords = trajectory::make_2d(cfg.traj, cfg.m);
  if (phantom_values) {
    s.values = trajectory::kspace_samples(trajectory::shepp_logan(), s.coords,
                                          static_cast<int>(cfg.n));
  } else {
    s.values.assign(s.coords.size(), c64(1.0, 0.0));
  }
  return s;
}

/// Gridder configurations matching the paper's implementations.
inline core::GridderOptions mirt_baseline_options() {
  core::GridderOptions opt;
  opt.kind = core::GridderKind::Serial;
  opt.width = 6;
  opt.table_oversampling = 32;
  opt.tile = 8;
  return opt;
}

inline core::GridderOptions impatient_options() {
  core::GridderOptions opt = mirt_baseline_options();
  opt.kind = core::GridderKind::Binning;
  opt.exact_weights = true;  // Impatient computes weights on-line [10]
  return opt;
}

inline core::GridderOptions slice_dice_options() {
  core::GridderOptions opt = mirt_baseline_options();
  opt.kind = core::GridderKind::SliceDice;
  return opt;
}

/// Geometric mean (the natural average for speedups).
inline double geomean(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += std::log(x);
  return std::exp(acc / static_cast<double>(v.size()));
}

}  // namespace jigsaw::bench
