// Ablation E13 — the sigma/W trade-off of Beatty et al. [1]
// (paper Sec. II-B).
//
// A smaller grid-oversampling factor sigma shrinks the FFT (and the
// gridding memory footprint) but forces a wider interpolation kernel W to
// hold accuracy — pushing the NuFFT even deeper into gridding-bound
// territory. This harness sweeps (sigma, W) pairs at matched accuracy
// targets and reports: NuFFT error vs the exact NuDFT, measured
// gridding/FFT time split, working-grid memory, and the JIGSAW cycle cost
// (which, notably, is *independent* of both sigma and W — the accelerator
// removes this whole trade-off).
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/metrics.hpp"
#include "core/nudft.hpp"
#include "core/nufft.hpp"
#include "energy/asic_model.hpp"
#include "trajectory/trajectory.hpp"

using namespace jigsaw;

int main() {
  std::printf("Ablation E13 — oversampling-factor / kernel-width trade-off "
              "(Beatty et al. [1])\n\n");

  const std::int64_t n = 32;  // small enough for the exact NuDFT oracle
  const auto coords = trajectory::make_2d(trajectory::TrajectoryType::Radial,
                                          20000);
  std::vector<c64> values(coords.size());
  Rng rng(5);
  for (auto& v : values) v = c64(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const auto exact = core::nudft_adjoint<2>({coords, values}, n);

  struct Pt {
    double sigma;
    int width;
  };
  // Beatty's point: sigma < 2 needs wider W for the same accuracy.
  const Pt points[] = {{2.0, 4}, {2.0, 6}, {1.5, 6}, {1.5, 8}, {1.25, 8}};

  ConsoleTable table({"sigma", "W", "beta", "NRMSD vs NuDFT", "grid[ms]",
                      "fft[ms]", "grid mem[MB]", "jigsaw cycles"});
  for (const auto& p : points) {
    core::GridderOptions opt;
    opt.sigma = p.sigma;
    opt.width = p.width;
    opt.tile = 8;
    opt.exact_weights = true;  // isolate the sigma/W accuracy trade-off
    const auto g = static_cast<std::int64_t>(p.sigma * n + 0.5);
    if (g % 8 != 0) continue;

    core::NufftPlan<2> plan(n, coords, opt);
    core::NufftTimings t;
    const auto img = plan.adjoint(values, &t);

    table.add_row(
        {ConsoleTable::fmt(p.sigma, 2), std::to_string(p.width),
         ConsoleTable::fmt(kernels::beatty_beta(p.width, p.sigma), 2),
         ConsoleTable::fmt(core::nrmsd(img, exact) * 100.0, 4) + "%",
         ConsoleTable::fmt(1e3 * t.grid_seconds, 1),
         ConsoleTable::fmt(1e3 * t.fft_seconds, 2),
         ConsoleTable::fmt(static_cast<double>(g * g * 16) / 1048576.0, 2),
         std::to_string(coords.size() + 12)});
  }
  table.print();

  std::printf("\npaper Sec. II-B: reducing sigma shrinks the FFT and the "
              "grid memory but the widened kernel (W up) makes gridding "
              "slower still; JIGSAW's M+12 cycles are identical in every "
              "row — the accelerator dissolves the trade-off.\n");
  return 0;
}
