// bench_suite — unified performance/regression harness.
//
// One binary exercises every gridding engine (adjoint + forward, 2D and
// 3D), the NuFFT with per-phase breakdown, end-to-end iterative recon
// (direct and Toeplitz Gram), and multi-coil CG-SENSE with the serial coil
// loop vs the coil-parallel path. Results are emitted as machine-readable
// BENCH_<tag>.json for scripts/bench_compare.py to diff against a committed
// baseline — the perf trajectory every later optimization PR is measured
// on (see docs/benchmarking.md for the schema and the refresh policy).
//
//   bench_suite [--smoke] [--tag TAG] [--out FILE] [--coil-threads T]
//               [--coils C]
//
// --smoke shrinks every problem so the suite finishes in CI time while
// keeping each timed region long enough to be meaningful on one core.
// Checksums are seeded and deterministic: a checksum drift between two
// runs of the same code is a correctness bug, not noise.
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <functional>
#include <memory>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/batch.hpp"
#include "data/driver.hpp"
#include "data/synthetic.hpp"
#include "core/gridder.hpp"
#include "core/metrics.hpp"
#include "core/nufft.hpp"
#include "core/recon.hpp"
#include "core/sense.hpp"
#include "obs/obs.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"
#include "tune/autotuner.hpp"

using namespace jigsaw;

namespace {

struct Entry {
  std::string name;
  int dim = 0;
  std::int64_t n = 0;
  std::int64_t m = 0;
  double seconds = 0.0;
  std::vector<std::pair<std::string, double>> phases;
  double checksum = 0.0;
  std::vector<std::pair<std::string, double>> extra;
  // Non-empty only on autotuned ("/auto/") entries: the concrete engine the
  // tuner resolved to, in kEngines spelling ("-simd" suffix for vectorized
  // winners). Lets bench_compare.py work-gate the entry against that
  // engine's own baseline counters instead of exempting it wholesale.
  std::string resolved_engine;
  // Registry counter deltas for ONE invocation of the workload (captured
  // outside the timing loop — time_best's rep count varies run to run, so
  // counting inside it would make these nondeterministic).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Run `fn` exactly once and return the global counter deltas it produced.
/// Doubles as the warm-up invocation for the timing loop that follows.
std::vector<std::pair<std::string, std::uint64_t>> counted_run(
    const std::function<void()>& fn) {
  if constexpr (!obs::kEnabled) {
    fn();
    return {};
  }
  const obs::Snapshot before = obs::snapshot();
  fn();
  const obs::Snapshot after = obs::snapshot();
  std::vector<std::pair<std::string, std::uint64_t>> delta;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t prev = it == before.counters.end() ? 0 : it->second;
    if (value > prev) delta.emplace_back(name, value - prev);
  }
  return delta;
}

struct EngineSpec {
  const char* name;
  core::GridderKind kind;
  bool model_faithful;
  bool simd = false;
};

// The vectorized twins ride along unconditionally: on a host without vector
// units the runtime dispatcher resolves them to the staged scalar kernel
// table, so the entries stay comparable (identical work counters) if slower.
const EngineSpec kEngines[] = {
    {"serial", core::GridderKind::Serial, false},
    {"serial-simd", core::GridderKind::Serial, false, true},
    {"output-driven", core::GridderKind::OutputDriven, false},
    {"binning", core::GridderKind::Binning, false},
    {"binning-simd", core::GridderKind::Binning, false, true},
    {"slice-dice", core::GridderKind::SliceDice, false},
    {"slice-dice-simd", core::GridderKind::SliceDice, false, true},
    {"slice-dice-model", core::GridderKind::SliceDice, true},
    {"sparse", core::GridderKind::Sparse, false},
    {"float", core::GridderKind::FloatSerial, false},
    {"jigsaw", core::GridderKind::Jigsaw, false},
};

/// The bench-local name of the engine a tuning decision resolved to —
/// kEngines spelling ("slice-dice", not "slice-and-dice"), "-simd" suffix
/// for vectorized winners. bench_compare.py uses this to work-gate /auto/
/// entries against the matching concrete entry's counters.
std::string bench_engine_name(core::GridderKind kind, bool simd) {
  for (const EngineSpec& spec : kEngines) {
    if (spec.kind == kind && !spec.model_faithful && !spec.simd) {
      return std::string(spec.name) + (simd ? "-simd" : "");
    }
  }
  return core::to_string(kind);
}

template <int D>
core::SampleSet<D> random_samples(std::int64_t m, std::uint64_t seed) {
  Rng rng(seed);
  core::SampleSet<D> s;
  s.coords.resize(static_cast<std::size_t>(m));
  s.values.resize(static_cast<std::size_t>(m));
  for (std::int64_t j = 0; j < m; ++j) {
    for (int d = 0; d < D; ++d) {
      s.coords[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)] =
          rng.uniform(-0.5, 0.5);
    }
    s.values[static_cast<std::size_t>(j)] =
        c64(rng.uniform(-1, 1), rng.uniform(-1, 1));
  }
  return s;
}

std::string size_suffix(std::int64_t n, std::int64_t m) {
  return "/n" + std::to_string(n) + "/m" + std::to_string(m);
}

/// Gridding adjoint + forward for one engine at one problem size.
template <int D>
void bench_gridder(const EngineSpec& spec, std::int64_t n, std::int64_t m,
                   int width, std::vector<Entry>& out) {
  core::GridderOptions opt;
  opt.kind = spec.kind;
  opt.model_faithful_checks = spec.model_faithful;
  opt.simd = spec.simd;
  opt.width = width;
  opt.tile = 8;
  auto g = core::make_gridder<D>(n, opt);
  const auto in = random_samples<D>(m, 42 + static_cast<std::uint64_t>(n));
  core::Grid<D> grid(g->grid_size());

  const std::string base =
      "grid" + std::to_string(D) + "d/";
  {
    Entry e;
    e.name = base + "adjoint/" + spec.name + size_suffix(n, m);
    e.dim = D;
    e.n = n;
    e.m = m;
    e.counters = counted_run([&] { g->adjoint(in, grid); });
    e.seconds = time_best([&] { g->adjoint(in, grid); }, 0.1, 3);
    e.phases = {{"grid", e.seconds - 0.0}};
    e.checksum = core::norm2(
        std::vector<c64>(grid.data(), grid.data() + grid.total()));
    e.extra = {{"boundary_checks",
                static_cast<double>(g->stats().boundary_checks)},
               {"interpolations",
                static_cast<double>(g->stats().interpolations)}};
    out.push_back(std::move(e));
  }
  {
    core::SampleSet<D> fwd;
    fwd.coords = in.coords;
    fwd.values.assign(in.coords.size(), c64{});
    Entry e;
    e.name = base + "forward/" + spec.name + size_suffix(n, m);
    e.dim = D;
    e.n = n;
    e.m = m;
    e.counters = counted_run([&] { g->forward(grid, fwd); });
    e.seconds = time_best([&] { g->forward(grid, fwd); }, 0.1, 3);
    e.checksum = core::norm2(fwd.values);
    out.push_back(std::move(e));
  }
}

/// The tuned configuration: resolve engine=auto with an in-memory tuner
/// (fresh trials each run — this IS the tuner benchmark), then time the
/// winner like any other engine. The resolved engine is machine-dependent,
/// so bench_compare.py exempts "/auto" entries from the work-counter gate;
/// the checksum gate still applies because trial candidates are exact
/// double-precision engines only.
void bench_auto(std::int64_t n, std::int64_t m, int width,
                std::vector<Entry>& out) {
  core::GridderOptions opt;
  opt.kind = core::GridderKind::Auto;
  opt.width = width;
  opt.tile = 8;
  tune::Autotuner tuner(tune::TunerConfig{});  // in-memory, trials enabled
  const auto key = tune::TuneKey::of(2, n, m, opt, /*coils=*/1, /*threads=*/1);
  Timer tune_timer;
  const auto decision = tuner.decide(key, opt);
  const double tune_seconds = tune_timer.seconds();
  const auto resolved = tune::Autotuner::apply(decision, opt);
  const std::string resolved_name =
      bench_engine_name(decision.kind, decision.simd);
  std::printf("auto: %s -> %s (tile %d, %.1f ms of trials)\n",
              key.label().c_str(), resolved_name.c_str(), decision.tile,
              1e3 * tune_seconds);

  auto g = core::make_gridder<2>(n, resolved);
  const auto in = random_samples<2>(m, 42 + static_cast<std::uint64_t>(n));
  core::Grid<2> grid(g->grid_size());
  const auto stats = tuner.stats();
  {
    Entry e;
    e.name = "grid2d/adjoint/auto" + size_suffix(n, m);
    e.dim = 2;
    e.n = n;
    e.m = m;
    e.counters = counted_run([&] { g->adjoint(in, grid); });
    e.seconds = time_best([&] { g->adjoint(in, grid); }, 0.1, 3);
    e.checksum = core::norm2(
        std::vector<c64>(grid.data(), grid.data() + grid.total()));
    e.extra = {{"tune_seconds", tune_seconds},
               {"tune_trials", static_cast<double>(stats.trials)},
               {"resolved_engine_code",
                static_cast<double>(static_cast<int>(decision.kind))},
               {"resolved_simd", decision.simd ? 1.0 : 0.0}};
    e.resolved_engine = resolved_name;
    out.push_back(std::move(e));
  }
  {
    core::SampleSet<2> fwd;
    fwd.coords = in.coords;
    fwd.values.assign(in.coords.size(), c64{});
    Entry e;
    e.name = "grid2d/forward/auto" + size_suffix(n, m);
    e.resolved_engine = resolved_name;
    e.dim = 2;
    e.n = n;
    e.m = m;
    e.counters = counted_run([&] { g->forward(grid, fwd); });
    e.seconds = time_best([&] { g->forward(grid, fwd); }, 0.1, 3);
    e.checksum = core::norm2(fwd.values);
    out.push_back(std::move(e));
  }
}

/// NuFFT adjoint + forward with the per-phase breakdown.
template <int D>
void bench_nufft(std::int64_t n, std::int64_t m, int width,
                 std::vector<Entry>& out) {
  core::GridderOptions opt;
  opt.width = width;
  opt.tile = 8;
  const auto in = random_samples<D>(m, 7);

  core::NufftTimings t;
  std::vector<c64> image;
  std::unique_ptr<core::NufftPlan<D>> plan;
  {
    Entry e;
    e.name = "nufft" + std::to_string(D) + "d/adjoint/slice-dice" +
             size_suffix(n, m);
    e.dim = D;
    e.n = n;
    e.m = m;
    // Plan construction sits inside the counted (not timed) region so the
    // entry's counters include the FFT plan-cache traffic it causes.
    e.counters = counted_run([&] {
      plan = std::make_unique<core::NufftPlan<D>>(n, in.coords, opt);
      image = plan->adjoint(in.values, &t);
    });
    e.seconds = time_best([&] { image = plan->adjoint(in.values, &t); }, 0.1, 3);
    e.phases = {{"grid", t.grid_seconds},
                {"fft", t.fft_seconds},
                {"apod", t.apod_seconds},
                {"presort", t.presort_seconds}};
    e.checksum = core::norm2(image);
    out.push_back(std::move(e));
  }
  {
    std::vector<c64> samples;
    Entry e;
    e.name = "nufft" + std::to_string(D) + "d/forward/slice-dice" +
             size_suffix(n, m);
    e.dim = D;
    e.n = n;
    e.m = m;
    e.counters = counted_run([&] { samples = plan->forward(image, &t); });
    e.seconds = time_best([&] { samples = plan->forward(image, &t); }, 0.1, 3);
    e.phases = {{"grid", t.grid_seconds},
                {"fft", t.fft_seconds},
                {"apod", t.apod_seconds},
                {"presort", t.presort_seconds}};
    e.checksum = core::norm2(samples);
    out.push_back(std::move(e));
  }
}

/// End-to-end iterative recon (radial, phantom data), direct and Toeplitz.
void bench_recon(std::int64_t n, int spokes, int per_spoke, int iters,
                 std::vector<Entry>& out) {
  const auto coords = trajectory::radial_2d(spokes, per_spoke);
  const auto kdata = trajectory::kspace_samples(
      trajectory::shepp_logan(), coords, static_cast<int>(n));
  core::GridderOptions opt;
  opt.width = 6;
  opt.tile = 8;
  core::NufftPlan<2> plan(n, coords, opt);

  for (const bool toeplitz : {false, true}) {
    core::CgResult cg;
    std::vector<c64> image;
    Entry e;
    e.name = std::string("recon2d/") + (toeplitz ? "toeplitz" : "cg") +
             size_suffix(n, static_cast<std::int64_t>(coords.size()));
    e.dim = 2;
    e.n = n;
    e.m = static_cast<std::int64_t>(coords.size());
    const auto run = [&] {
      image = core::iterative_recon<2>(plan, kdata, iters, 1e-12, toeplitz, &cg);
    };
    e.counters = counted_run(run);
    e.seconds = time_best(run, 0.25, 4);
    e.checksum = core::norm2(image);
    e.extra = {{"cg_iterations", static_cast<double>(cg.iterations)}};
    out.push_back(std::move(e));
  }
}

/// Multi-coil CG-SENSE: serial coil loop vs the coil-parallel path. The two
/// must agree to the last bit (recorded as nrmse_vs_serial); the speedup is
/// the headline number of this PR's scaling rung.
void bench_sense(std::int64_t n, int coils, unsigned coil_threads, int spokes,
                 int per_spoke, int iters, std::vector<Entry>& out) {
  const auto coords = trajectory::radial_2d(spokes, per_spoke);
  core::GridderOptions opt;
  opt.width = 6;
  opt.tile = 8;
  core::NufftPlan<2> plan(n, coords, opt);
  const auto maps = core::make_birdcage_maps(n, coils);
  const auto truth =
      trajectory::rasterize(trajectory::shepp_logan(), static_cast<int>(n));
  std::vector<c64> truth_c(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) truth_c[i] = truth[i];
  const auto y = simulate_multicoil(plan, maps, truth_c);

  const std::string suffix = size_suffix(
      n, static_cast<std::int64_t>(coords.size()) * coils);

  std::vector<c64> serial_image;
  double serial_seconds = 0.0;
  {
    Entry e;
    e.name = "sense2d/serial/coils" + std::to_string(coils) + suffix;
    e.dim = 2;
    e.n = n;
    e.m = static_cast<std::int64_t>(coords.size()) * coils;
    const auto run = [&] {
      serial_image = core::cg_sense(plan, maps, y, iters, 1e-12, nullptr, 1);
    };
    e.counters = counted_run(run);
    e.seconds = serial_seconds = time_best(run, 0.25, 4);
    e.checksum = core::norm2(serial_image);
    out.push_back(std::move(e));
  }
  {
    Entry e;
    e.name = "sense2d/coil-parallel-x" + std::to_string(coil_threads) +
             "/coils" + std::to_string(coils) + suffix;
    e.dim = 2;
    e.n = n;
    e.m = static_cast<std::int64_t>(coords.size()) * coils;
    std::vector<c64> parallel_image;
    const auto run = [&] {
      parallel_image =
          core::cg_sense(plan, maps, y, iters, 1e-12, nullptr, coil_threads);
    };
    e.counters = counted_run(run);
    e.seconds = time_best(run, 0.25, 4);
    e.checksum = core::norm2(parallel_image);
    e.extra = {{"speedup_vs_serial", serial_seconds / e.seconds},
               {"nrmse_vs_serial", core::nrmsd(parallel_image, serial_image)}};
    out.push_back(std::move(e));
  }
}

/// Ingest accounting for the top-level "dataset" JSON block. The schema's
/// semantic gate (validate_bench.py) requires chunks == chunks_ok +
/// chunks_rejected and chunks_ok > 0.
struct DatasetSummary {
  std::uint64_t chunks = 0;
  std::uint64_t chunks_ok = 0;
  std::uint64_t chunks_rejected = 0;
  std::uint64_t samples = 0;
  double mean_nrmse = -1.0;
  double seconds = 0.0;
};

/// Dataset ingest + recon: synthesize a multi-coil JKSD acquisition, then
/// time the full driver path over it — streaming chunked read, Pipe-Menon
/// DCF, data-estimated coil maps, weighted adjoint, RSS combine. The
/// counted region captures the data.* / dcf.* counter families the ingest
/// layer emits; the checksum is the (deterministic) mean NRMSE against the
/// generator's analytic source.
DatasetSummary bench_dataset(bool smoke, std::vector<Entry>& out) {
  const std::string path = "bench_dataset_tmp.jksd";
  data::SyntheticOptions gen;
  gen.n = smoke ? 48 : 96;
  gen.coils = smoke ? 4 : 8;
  gen.chunks = smoke ? 2 : 4;
  gen.samples_per_chunk = smoke ? 4000 : 16000;
  generate_synthetic(path, gen);

  data::ReconDatasetOptions opt;
  opt.gridding.width = 6;
  opt.gridding.tile = 8;
  opt.dcf = data::DcfMode::kPipeMenon;

  data::ReconDatasetResult result;
  const auto run = [&] { result = data::recon_dataset(path, opt); };
  Entry e;
  e.name = "dataset2d/recon/slice-dice" +
           size_suffix(gen.n, static_cast<std::int64_t>(gen.chunks) *
                                  gen.samples_per_chunk);
  e.dim = 2;
  e.n = gen.n;
  e.m = static_cast<std::int64_t>(gen.chunks) * gen.samples_per_chunk;
  e.counters = counted_run(run);
  e.seconds = time_best(run, 0.1, 2);
  e.checksum = result.mean_nrmse;
  e.extra = {{"chunks_ok", static_cast<double>(result.chunks.size())},
             {"chunks_rejected",
              static_cast<double>(result.report.rejects.size())},
             {"coils", static_cast<double>(result.info.coils)},
             {"mean_nrmse", result.mean_nrmse}};

  DatasetSummary s;
  s.chunks = result.chunks.size() + result.report.rejects.size();
  s.chunks_ok = result.chunks.size();
  s.chunks_rejected = result.report.rejects.size();
  s.samples = result.report.samples_read;
  s.mean_nrmse = result.mean_nrmse;
  s.seconds = e.seconds;
  out.push_back(std::move(e));
  std::remove(path.c_str());
  return s;
}

void write_json(const std::string& path, const std::string& tag, bool smoke,
                unsigned coil_threads, const std::vector<Entry>& entries,
                const DatasetSummary& dataset) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  JIGSAW_REQUIRE(f != nullptr, "cannot open " << path << " for writing");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"tag\": \"%s\",\n", tag.c_str());
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"obs_enabled\": %s,\n",
               obs::kEnabled ? "true" : "false");
  std::fprintf(f, "  \"coil_threads\": %u,\n", coil_threads);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", e.name.c_str());
    std::fprintf(f, "      \"dim\": %d, \"n\": %lld, \"m\": %lld,\n", e.dim,
                 static_cast<long long>(e.n), static_cast<long long>(e.m));
    std::fprintf(f, "      \"seconds\": %.9g,\n", e.seconds);
    if (!e.resolved_engine.empty()) {
      std::fprintf(f, "      \"resolved_engine\": \"%s\",\n",
                   e.resolved_engine.c_str());
    }
    if (!e.phases.empty()) {
      std::fprintf(f, "      \"phases\": {");
      for (std::size_t p = 0; p < e.phases.size(); ++p) {
        std::fprintf(f, "%s\"%s\": %.9g", p == 0 ? "" : ", ",
                     e.phases[p].first.c_str(), e.phases[p].second);
      }
      std::fprintf(f, "},\n");
    }
    if (!e.extra.empty()) {
      std::fprintf(f, "      \"extra\": {");
      for (std::size_t p = 0; p < e.extra.size(); ++p) {
        std::fprintf(f, "%s\"%s\": %.12g", p == 0 ? "" : ", ",
                     e.extra[p].first.c_str(), e.extra[p].second);
      }
      std::fprintf(f, "},\n");
    }
    if (!e.counters.empty()) {
      std::fprintf(f, "      \"counters\": {\n");
      for (std::size_t p = 0; p < e.counters.size(); ++p) {
        std::fprintf(f, "        \"%s\": %llu%s\n",
                     e.counters[p].first.c_str(),
                     static_cast<unsigned long long>(e.counters[p].second),
                     p + 1 == e.counters.size() ? "" : ",");
      }
      std::fprintf(f, "      },\n");
    }
    std::fprintf(f, "      \"checksum\": %.12g\n", e.checksum);
    std::fprintf(f, "    }%s\n", i + 1 == entries.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"dataset\": {\n"
               "    \"chunks\": %llu,\n"
               "    \"chunks_ok\": %llu,\n"
               "    \"chunks_rejected\": %llu,\n"
               "    \"samples\": %llu,\n"
               "    \"mean_nrmse\": %.9g,\n"
               "    \"seconds\": %.9g\n"
               "  },\n",
               static_cast<unsigned long long>(dataset.chunks),
               static_cast<unsigned long long>(dataset.chunks_ok),
               static_cast<unsigned long long>(dataset.chunks_rejected),
               static_cast<unsigned long long>(dataset.samples),
               dataset.mean_nrmse, dataset.seconds);
  // Whole-run registry state: everything the process counted, including
  // work outside the per-entry counted regions (setup, warm-ups, reps).
  const obs::Snapshot final_snap = obs::snapshot();
  std::fprintf(f, "  \"counters\": {\n");
  std::size_t idx = 0;
  for (const auto& [name, value] : final_snap.counters) {
    ++idx;
    std::fprintf(f, "    \"%s\": %llu%s\n", name.c_str(),
                 static_cast<unsigned long long>(value),
                 idx == final_snap.counters.size() ? "" : ",");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"gauges\": {\n");
  idx = 0;
  for (const auto& [name, value] : final_snap.gauges) {
    ++idx;
    std::fprintf(f, "    \"%s\": %.12g%s\n", name.c_str(), value,
                 idx == final_snap.gauges.size() ? "" : ",");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> flags = {"smoke", "tag", "out",
                                          "coil-threads", "coils",
                                          "trace-json"};
  CliArgs args(argc, argv, flags);  // CliArgs skips argv[0]
  const bool smoke = args.has("smoke");
  const std::string tag = args.get("tag", smoke ? "smoke" : "full");
  const std::string out_path = args.get("out", "BENCH_" + tag + ".json");
  const auto coil_threads =
      static_cast<unsigned>(args.get_int("coil-threads", 8));
  const int coils = static_cast<int>(args.get_int("coils", 8));
  const std::string trace_path = args.get("trace-json", "");
  if (!trace_path.empty()) obs::trace_start();

  std::vector<Entry> entries;

  // Gridding engines. Output-driven is O(M * G^d) by construction (the
  // strawman the paper argues against) and is capped to a small problem so
  // the suite stays runnable; every other engine gets the full size.
  for (const EngineSpec& spec : kEngines) {
    const bool od = spec.kind == core::GridderKind::OutputDriven;
    std::int64_t n2 = smoke ? 64 : 128;
    std::int64_t m2 = smoke ? 32768 : 131072;
    if (od) {
      n2 = 32;
      m2 = 4096;
    }
    bench_gridder<2>(spec, n2, m2, /*width=*/6, entries);

    std::int64_t n3 = smoke ? 8 : 16;
    std::int64_t m3 = smoke ? 8192 : 32768;
    if (od) {
      n3 = 8;
      m3 = 2048;
    }
    bench_gridder<3>(spec, n3, m3, /*width=*/4, entries);
    std::printf("done: gridders/%s\n", spec.name);
  }

  // The tuned configuration (engine=auto) on the main 2D problem.
  bench_auto(smoke ? 64 : 128, smoke ? 32768 : 131072, /*width=*/6, entries);
  std::printf("done: auto\n");

  // NuFFT with phase breakdown (slice-dice engine).
  bench_nufft<2>(smoke ? 64 : 128, smoke ? 32768 : 131072, 6, entries);
  bench_nufft<3>(smoke ? 8 : 16, smoke ? 8192 : 32768, 4, entries);
  std::printf("done: nufft\n");

  // End-to-end iterative recon.
  if (smoke) {
    bench_recon(32, 48, 64, 4, entries);
  } else {
    bench_recon(128, 96, 192, 8, entries);
  }
  std::printf("done: recon\n");

  // Multi-coil CG-SENSE, serial vs coil-parallel.
  if (smoke) {
    bench_sense(64, coils, coil_threads, 32, 64, 3, entries);
  } else {
    bench_sense(128, coils, coil_threads, 64, 128, 6, entries);
  }
  std::printf("done: sense\n");

  // Dataset ingest end to end (JKSD generate -> streaming recon driver).
  const DatasetSummary dataset = bench_dataset(smoke, entries);
  std::printf("done: dataset (%llu/%llu chunks, mean NRMSE %.4f)\n",
              static_cast<unsigned long long>(dataset.chunks_ok),
              static_cast<unsigned long long>(dataset.chunks),
              dataset.mean_nrmse);

  write_json(out_path, tag, smoke, coil_threads, entries, dataset);

  if (!trace_path.empty()) {
    const std::size_t events = obs::trace_stop_write(trace_path);
    std::printf("trace: %zu events -> %s\n", events, trace_path.c_str());
  }

  std::printf("\n%-56s %12s %16s\n", "benchmark", "seconds", "checksum");
  for (const Entry& e : entries) {
    std::printf("%-56s %12.6f %16.8g\n", e.name.c_str(), e.seconds,
                e.checksum);
  }
  std::printf("\n%zu benchmarks -> %s\n", entries.size(), out_path.c_str());
  return 0;
}
