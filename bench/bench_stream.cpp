// Real-time streaming reconstruction benchmark: a sliding-window golden-
// angle frame sequence of the dynamic phantom, pushed through the ROUTED
// serve tier (real jigsaw_serve workers on loopback TCP behind an
// in-process Router) as one streaming session per run.
//
// Two runs over identical frame data: warm-start ON (each frame's CG seeds
// from the previous frame's image) and OFF (every frame solves cold). Both
// solve to the same CG tolerance, so per-frame NRMSE against the phantom's
// exact instant-t ground truth is equal by construction — the warm run must
// then spend measurably fewer total CG iterations (>= 30% fewer, the
// subsystem's acceptance invariant, asserted here). Reported per run:
// frame latency p50/p99, inter-frame jitter (p99 absolute deviation from
// the median completion interval), per-frame status totals, and the
// session's lifetime iteration count from its close reply.
//
//   bench_stream [--smoke] [--tag ci-stream] [--out BENCH_stream.json]
//                [--workers 2] [--frames N] [--n N] [--engine E]
//                [--spokes S] [--window W]
//
// Output is a BENCH_<tag>.json whose "stream" block is validated by
// scripts/validate_bench.py against scripts/bench_schema.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "stream/frame_source.hpp"

namespace {

using namespace jigsaw;

struct StreamResult {
  std::string name;
  bool warm_start = false;
  int workers = 0;
  std::uint64_t frames = 0;
  std::uint64_t ok = 0;
  std::uint64_t timeout = 0;
  std::uint64_t warm_frames = 0;   // replies flagged warm (guard not tripped)
  std::uint64_t guard_trips = 0;
  std::uint64_t plan_reuses = 0;
  std::uint64_t total_iterations = 0;  // from the session's close reply
  double mean_nrmse = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double jitter_ms = 0.0;  // p99 |interval - median interval|
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// NRMSE of a complex reconstruction against the real ground-truth image,
/// after a least-squares complex scalar fit (removes the global scale and
/// phase the adjoint/CG chain is free to introduce).
double fitted_nrmse(const std::vector<c64>& recon,
                    const std::vector<double>& truth) {
  JIGSAW_REQUIRE(recon.size() == truth.size(), "nrmse: size mismatch");
  c64 num{};
  double den = 0.0, tnorm = 0.0;
  for (std::size_t i = 0; i < recon.size(); ++i) {
    num += truth[i] * std::conj(recon[i]);
    den += std::norm(recon[i]);
    tnorm += truth[i] * truth[i];
  }
  const c64 alpha = den > 0.0 ? num / den : c64{};
  double err = 0.0;
  for (std::size_t i = 0; i < recon.size(); ++i) {
    err += std::norm(alpha * recon[i] - truth[i]);
  }
  return tnorm > 0.0 ? std::sqrt(err / tnorm) : 0.0;
}

StreamResult run_stream(const std::string& endpoint, int workers,
                        const stream::FrameSource& source,
                        const stream::DynamicPhantom& phantom,
                        std::uint32_t n, std::uint32_t iters,
                        std::uint32_t engine, bool warm) {
  serve::ServeClient client(endpoint);

  serve::OpenSessionWire open;
  open.engine = engine;
  open.n = n;
  open.iters = iters;
  open.warm_start = warm ? 1u : 0u;
  const serve::SessionReplyWire opened = client.open_session(open);
  JIGSAW_REQUIRE(opened.status == serve::Status::kOk,
                 "open_session failed: " << opened.message);

  StreamResult result;
  result.name = std::string("routed/") + (warm ? "warm" : "cold");
  result.warm_start = warm;
  result.workers = workers;

  std::vector<double> latencies, completions;
  latencies.reserve(static_cast<std::size_t>(source.frames()));
  completions.reserve(static_cast<std::size_t>(source.frames()));
  double nrmse_sum = 0.0;
  const auto run0 = std::chrono::steady_clock::now();
  for (int f = 0; f < source.frames(); ++f) {
    serve::PushFrameWire push;
    push.session_id = opened.session_id;
    push.frame_index = static_cast<std::uint64_t>(f);
    push.coords = source.frame_coords(f);
    const double t = source.frame_time(f);
    push.values = phantom.kspace_at(push.coords, t, static_cast<int>(n));

    const auto s0 = std::chrono::steady_clock::now();
    const serve::FrameReplyWire reply = client.push_frame(push);
    const auto s1 = std::chrono::steady_clock::now();
    latencies.push_back(
        std::chrono::duration<double, std::milli>(s1 - s0).count());
    completions.push_back(
        std::chrono::duration<double, std::milli>(s1 - run0).count());

    ++result.frames;
    if (reply.status == serve::Status::kOk) {
      ++result.ok;
      nrmse_sum += fitted_nrmse(reply.image,
                                phantom.image_at(t, static_cast<int>(n)));
    } else if (reply.status == serve::Status::kTimeout) {
      ++result.timeout;
    } else {
      JIGSAW_REQUIRE(false, "frame " << f << " failed: "
                                     << serve::to_string(reply.status) << " "
                                     << reply.message);
    }
    if (reply.flags & serve::kFrameWarmFlag) {
      if (reply.flags & serve::kFrameGuardFlag) {
        ++result.guard_trips;
      } else {
        ++result.warm_frames;
      }
    }
    if (reply.flags & serve::kFramePlanReusedFlag) ++result.plan_reuses;
  }

  serve::CloseSessionWire close;
  close.session_id = opened.session_id;
  const serve::SessionReplyWire closed = client.close_session(close);
  JIGSAW_REQUIRE(closed.status == serve::Status::kOk,
                 "close_session failed: " << closed.message);
  JIGSAW_REQUIRE(closed.frames == result.ok,
                 "session close reports " << closed.frames << " frames, "
                                          << result.ok << " completed OK");
  result.total_iterations = closed.total_iterations;

  if (result.ok > 0) {
    result.mean_nrmse = nrmse_sum / static_cast<double>(result.ok);
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = percentile(latencies, 0.50);
  result.p99_ms = percentile(latencies, 0.99);

  // Inter-frame jitter: p99 absolute deviation from the median completion
  // interval — the steadiness metric a real-time display cares about.
  if (completions.size() >= 2) {
    std::vector<double> intervals;
    intervals.reserve(completions.size() - 1);
    for (std::size_t i = 1; i < completions.size(); ++i) {
      intervals.push_back(completions[i] - completions[i - 1]);
    }
    std::vector<double> sorted = intervals;
    std::sort(sorted.begin(), sorted.end());
    const double median = percentile(sorted, 0.50);
    std::vector<double> dev;
    dev.reserve(intervals.size());
    for (const double d : intervals) dev.push_back(std::fabs(d - median));
    std::sort(dev.begin(), dev.end());
    result.jitter_ms = percentile(dev, 0.99);
  }
  return result;
}

void write_json(const std::string& path, const std::string& tag, bool smoke,
                const std::vector<StreamResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  JIGSAW_REQUIRE(f != nullptr, "cannot open " << path << " for writing");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"tag\": \"%s\",\n", tag.c_str());
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"obs_enabled\": %s,\n",
               obs::kEnabled ? "true" : "false");
  std::fprintf(f, "  \"coil_threads\": 1,\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"benchmarks\": [],\n");
  std::fprintf(f, "  \"stream\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const StreamResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"warm_start\": %s,\n",
                 r.warm_start ? "true" : "false");
    std::fprintf(f, "      \"workers\": %d,\n", r.workers);
    std::fprintf(f, "      \"frames\": %llu,\n",
                 static_cast<unsigned long long>(r.frames));
    std::fprintf(f, "      \"ok\": %llu,\n",
                 static_cast<unsigned long long>(r.ok));
    std::fprintf(f, "      \"timeout\": %llu,\n",
                 static_cast<unsigned long long>(r.timeout));
    std::fprintf(f, "      \"warm_frames\": %llu,\n",
                 static_cast<unsigned long long>(r.warm_frames));
    std::fprintf(f, "      \"guard_trips\": %llu,\n",
                 static_cast<unsigned long long>(r.guard_trips));
    std::fprintf(f, "      \"plan_reuses\": %llu,\n",
                 static_cast<unsigned long long>(r.plan_reuses));
    std::fprintf(f, "      \"total_iterations\": %llu,\n",
                 static_cast<unsigned long long>(r.total_iterations));
    std::fprintf(f, "      \"mean_nrmse\": %.6g,\n", r.mean_nrmse);
    std::fprintf(f, "      \"p50_ms\": %.6g,\n", r.p50_ms);
    std::fprintf(f, "      \"p99_ms\": %.6g,\n", r.p99_ms);
    std::fprintf(f, "      \"jitter_ms\": %.6g\n", r.jitter_ms);
    std::fprintf(f, "    }%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  const obs::Snapshot snap = obs::snapshot();
  std::fprintf(f, "  \"counters\": {\n");
  std::size_t idx = 0;
  for (const auto& [name, value] : snap.counters) {
    ++idx;
    std::fprintf(f, "    \"%s\": %llu%s\n", name.c_str(),
                 static_cast<unsigned long long>(value),
                 idx == snap.counters.size() ? "" : ",");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"gauges\": {\n");
  idx = 0;
  for (const auto& [name, value] : snap.gauges) {
    ++idx;
    std::fprintf(f, "    \"%s\": %.12g%s\n", name.c_str(), value,
                 idx == snap.gauges.size() ? "" : ",");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"smoke", "tag", "out", "workers", "frames", "n",
                        "iters", "engine", "spokes", "window",
                        "spoke-samples"});
    const bool smoke = args.has("smoke");
    const std::string tag =
        args.get("tag", smoke ? "stream-smoke" : "stream");
    const std::string out_path = args.get("out", "BENCH_" + tag + ".json");
    const int workers = static_cast<int>(args.get_int("workers", 2));
    const int frames =
        static_cast<int>(args.get_int("frames", smoke ? 32 : 48));
    const auto n =
        static_cast<std::uint32_t>(args.get_int("n", smoke ? 48 : 96));
    const auto iters = static_cast<std::uint32_t>(args.get_int("iters", 60));
    const core::GridderSpec spec =
        core::parse_gridder_spec(args.get("engine", "slice-dice"));
    const std::uint32_t engine =
        static_cast<std::uint32_t>(spec.kind) |
        (spec.simd ? serve::kEngineSimdFlag : 0u);

    stream::FrameWindow window;
    window.spokes_per_frame = static_cast<int>(args.get_int("spokes", 13));
    window.window_spokes = static_cast<int>(args.get_int("window", 34));
    window.samples_per_spoke = static_cast<int>(
        args.get_int("spoke-samples", static_cast<std::int64_t>(n)));
    const stream::FrameSource source(window, frames);
    const stream::DynamicPhantom phantom;

    // Worker fleet on loopback TCP behind an in-process router — the same
    // topology bench_serve's --workers mode uses. CG tolerance is the
    // binding convergence criterion (the iteration cap is headroom), so
    // warm and cold runs reach the same per-frame accuracy and the
    // iteration count is the honest cost metric.
    std::vector<std::unique_ptr<serve::ReconServer>> fleet;
    std::vector<std::string> specs;
    for (int w = 0; w < workers; ++w) {
      serve::ServeConfig config;
      config.listen = "127.0.0.1:0";
      config.cg_tolerance = 1e-4;
      config.max_iters = 128;
      fleet.push_back(std::make_unique<serve::ReconServer>(config));
      fleet.back()->start();
      specs.push_back(
          serve::to_string(fleet.back()->bound_endpoints().front()));
    }
    serve::RouterConfig rconfig;
    rconfig.listen = "127.0.0.1:0";
    rconfig.workers = specs;
    serve::Router router(rconfig);
    router.start();
    const std::string endpoint =
        serve::to_string(router.bound_endpoints().front());

    std::printf("bench_stream: n=%u frames=%d window=%d/%d workers=%d %s\n",
                n, frames, window.spokes_per_frame, window.window_spokes,
                workers, smoke ? "(smoke)" : "");

    std::vector<StreamResult> results;
    for (const bool warm : {false, true}) {
      results.push_back(run_stream(endpoint, workers, source, phantom, n,
                                   iters, engine, warm));
      const StreamResult& r = results.back();
      std::printf("  %-12s %3llu/%llu ok  p50 %6.2f ms  p99 %6.2f ms  "
                  "jitter %5.2f ms  %llu CG iters  (%llu warm, %llu guard, "
                  "%llu plan reuses)  nrmse %.4f\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.ok),
                  static_cast<unsigned long long>(r.frames), r.p50_ms,
                  r.p99_ms, r.jitter_ms,
                  static_cast<unsigned long long>(r.total_iterations),
                  static_cast<unsigned long long>(r.warm_frames),
                  static_cast<unsigned long long>(r.guard_trips),
                  static_cast<unsigned long long>(r.plan_reuses),
                  r.mean_nrmse);
    }
    router.stop();
    for (auto& w : fleet) w->stop();

    const StreamResult& cold = results[0];
    const StreamResult& warm = results[1];
    // The subsystem's acceptance invariants: warm-start must cut total CG
    // iterations by >= 30% at equal per-frame accuracy (same tolerance;
    // NRMSE parity within 5%).
    JIGSAW_REQUIRE(warm.warm_frames >= warm.frames - 1 - warm.guard_trips,
                   "only " << warm.warm_frames << " of " << warm.frames
                           << " frames warm-started");
    JIGSAW_REQUIRE(
        warm.total_iterations * 10 <= cold.total_iterations * 7,
        "warm run spent " << warm.total_iterations << " CG iterations vs "
                          << cold.total_iterations
                          << " cold — less than the required 30% savings");
    JIGSAW_REQUIRE(warm.mean_nrmse <= cold.mean_nrmse * 1.05 + 1e-12,
                   "warm NRMSE " << warm.mean_nrmse
                                 << " worse than cold " << cold.mean_nrmse);

    write_json(out_path, tag, smoke, results);
    std::printf("bench_stream: wrote %s (warm saved %.1f%% of CG "
                "iterations)\n",
                out_path.c_str(),
                100.0 * (1.0 - static_cast<double>(warm.total_iterations) /
                                   static_cast<double>(
                                       std::max<std::uint64_t>(
                                           1, cold.total_iterations))));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
