// Reproduction of Table II: JIGSAW synthesis results in 16 nm technology —
// power and area for the 2D and 3D Slice variants, with and without the
// target-grid accumulation SRAM.
//
// The numbers come from energy::AsicModel, a component-level model whose
// four technology constants are calibrated against the paper's synthesis
// rows (see asic_model.hpp); the table below also prints the component
// breakdown the paper describes in prose (SRAM ~95% of area, >56% of
// power).
#include <cstdio>

#include "common/table.hpp"
#include "energy/asic_model.hpp"

using namespace jigsaw;
using energy::AsicConfig;
using energy::estimate_asic;

int main() {
  std::printf("Table II — JIGSAW synthesis results (16 nm, 1.0 GHz)\n\n");

  struct Row {
    const char* name;
    bool three_d;
    bool sram;
    double paper_power, paper_area;
  };
  const Row rows[] = {
      {"2D (8MB SRAM)", false, true, 216.86, 12.20},
      {"2D (no accum SRAM)", false, false, 94.22, 0.42},
      {"3D Slice (8MB SRAM)", true, true, 104.36, 12.42},
      {"3D Slice (no accum SRAM)", true, false, 63.62, 0.64},
  };

  ConsoleTable table({"configuration", "power[mW]", "paper", "area[mm^2]",
                      "paper"});
  for (const auto& r : rows) {
    AsicConfig cfg;
    cfg.grid_n = 1024;
    cfg.tile = 8;
    cfg.window = 6;
    cfg.three_d = r.three_d;
    cfg.nz = 1024;
    cfg.wz = 6;
    cfg.include_accum_sram = r.sram;
    const auto e = estimate_asic(cfg);
    table.add_row({r.name, ConsoleTable::fmt(e.power_mw, 2),
                   ConsoleTable::fmt(r.paper_power, 2),
                   ConsoleTable::fmt(e.area_mm2, 2),
                   ConsoleTable::fmt(r.paper_area, 2)});
  }
  table.print();

  // Prose claims of Sec. VI-B.
  AsicConfig full;
  full.grid_n = 1024;
  full.window = 6;
  const auto e = estimate_asic(full);
  std::printf("\ncomponent breakdown (2D, 8MB SRAM):\n");
  std::printf("  accumulation SRAM: %.2f mm^2 (%.0f%% of area, paper ~95%%),"
              " %.2f mW (%.0f%% of power, paper >56%%)\n",
              e.accum_sram_area_mm2, 100.0 * e.accum_sram_area_mm2 / e.area_mm2,
              e.accum_sram_power_mw, 100.0 * e.accum_sram_power_mw / e.power_mw);
  std::printf("  pipeline logic + weight SRAMs: %.2f mm^2, %.2f mW\n",
              e.logic_area_mm2, e.logic_power_mw);

  std::printf("\ndesign-space sweep (2D, with SRAM):\n");
  ConsoleTable sweep({"grid N", "power[mW]", "area[mm^2]", "SRAM[MB]"});
  for (int n : {128, 256, 512, 1024}) {
    AsicConfig cfg;
    cfg.grid_n = n;
    cfg.window = 6;
    const auto s = estimate_asic(cfg);
    sweep.add_row({std::to_string(n), ConsoleTable::fmt(s.power_mw, 2),
                   ConsoleTable::fmt(s.area_mm2, 2),
                   ConsoleTable::fmt(s.accum_sram_mb, 3)});
  }
  sweep.print();
  return 0;
}
