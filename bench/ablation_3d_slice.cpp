// Ablation E9 — JIGSAW 3D Slice runtime (paper Sec. IV / VI-A).
//
// The 3D variant grids a volume as Nz sequential 2D slices. An unsorted
// stream must be replayed for every slice — (M+15)*Nz cycles — while
// host-side z-binning streams each sample only to the Wz slices its window
// touches, cutting runtime to ~(M+15)*Wz. This harness runs both modes of
// the cycle simulator on a stack-of-stars acquisition and verifies the
// outputs are bit-identical.
#include <cstdio>

#include "common/table.hpp"
#include "core/grid.hpp"
#include "jigsaw/cycle_sim.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

using namespace jigsaw;

int main() {
  std::printf("Ablation E9 — 3D Slice: unsorted replay vs z-binned "
              "streaming\n\n");

  ConsoleTable table({"grid G^3", "M", "Wz", "unsorted cycles",
                      "z-binned cycles", "speedup", "paper model Nz/Wz",
                      "bit-identical"});

  for (std::int64_t n : {8, 16, 32}) {
    const std::int64_t g = 2 * n;
    core::GridderOptions opt;
    opt.width = 4;
    opt.tile = 8;
    opt.table_oversampling = 32;

    // Stack-of-stars: radial in-plane, Nz partitions.
    core::SampleSet<3> in;
    in.coords = trajectory::stack_of_stars_3d(static_cast<int>(n),
                                              static_cast<int>(2 * n),
                                              static_cast<int>(n));
    in.values.assign(in.coords.size(), c64(0.01, 0.0));

    sim::CycleSim unsorted(n, opt, true);
    core::Grid<3> a(unsorted.grid_size());
    unsorted.run_3d(in, a, false);
    const auto cyc_full = unsorted.stats().gridding_cycles;

    sim::CycleSim binned(n, opt, true);
    core::Grid<3> b(binned.grid_size());
    binned.run_3d(in, b, true);
    const auto cyc_cut = binned.stats().gridding_cycles;

    bool identical = true;
    for (std::int64_t i = 0; i < a.total(); ++i) {
      if (!(a[i] == b[i])) {
        identical = false;
        break;
      }
    }

    table.add_row({std::to_string(g) + "^3",
                   std::to_string(in.coords.size()), "4",
                   std::to_string(cyc_full), std::to_string(cyc_cut),
                   ConsoleTable::fmt_times(static_cast<double>(cyc_full) /
                                           static_cast<double>(cyc_cut)),
                   ConsoleTable::fmt_times(static_cast<double>(g) / 4.0),
                   identical ? "yes" : "NO"});
  }
  table.print();
  std::printf("\npaper model: unsorted (M+15)*Nz, z-binned ~(M+15)*Wz; the "
              "measured speedup approaches Nz/Wz as M grows.\n");
  return 0;
}
