// Reproduction of Fig. 9 + Sec. VI-C: image quality of the fixed-point
// JIGSAW datapath.
//
// The paper feeds the same non-uniform samples through (a) the double-
// precision reference and (b) the hardware pipeline, then compares output
// grids: NRMSD 0.047% for a 32-bit float implementation and 0.012% for the
// 32-bit fixed-point JIGSAW datapath — i.e. fixed point with 16-bit weights
// *betters* float32 while halving ALU width and table storage. It also
// shows reconstructions with the table oversampling reduced 32x (L=1024
// doubles vs L=32 fixed) remain visually indistinguishable.
//
// This harness measures exactly those comparisons on the analytic phantom
// (the liver-data substitute) and writes the two reconstruction panels as
// PGM images.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/pgm.hpp"
#include "common/table.hpp"
#include "core/float_gridder.hpp"
#include "core/jigsaw_datapath.hpp"
#include "core/jigsaw_gridder.hpp"
#include "core/metrics.hpp"
#include "core/nufft.hpp"
#include "core/serial_gridder.hpp"
#include "core/window.hpp"

using namespace jigsaw;


namespace {

/// Quantize trajectory coordinates to the accelerator's Q.16 bus format so
/// that precision comparisons are like-for-like (both datapaths see the
/// same inputs, as in the paper's verification flow).
std::vector<Coord<2>> quantize_coords(const std::vector<Coord<2>>& coords,
                                      std::int64_t g) {
  std::vector<Coord<2>> out = coords;
  for (auto& c : out) {
    for (int d = 0; d < 2; ++d) {
      const double u = core::grid_coord(c[static_cast<std::size_t>(d)], g);
      const double uq =
          static_cast<double>(core::datapath::quantize_coord(u)) / 65536.0;
      double tau = uq / static_cast<double>(g) - 0.5;
      if (tau >= 0.5) tau -= 1.0;
      if (tau < -0.5) tau += 1.0;
      c[static_cast<std::size_t>(d)] = tau;
    }
  }
  return out;
}

/// Single-precision gridding — the "32-bit floating-point implementation"
/// of Sec. VI-C (library engine core::FloatGridder).
std::vector<c64> grid_float(const core::SampleSet<2>& in, std::int64_t n,
                            int width, int table) {
  core::GridderOptions opt;
  opt.width = width;
  opt.tile = 8;
  opt.table_oversampling = table;
  core::FloatGridder<2> g(n, opt);
  core::Grid<2> grid(g.grid_size());
  g.adjoint(in, grid);
  return std::vector<c64>(grid.data(), grid.data() + grid.total());
}

std::vector<c64> grid_double(const core::SampleSet<2>& in, std::int64_t n,
                             int width, int table) {
  core::GridderOptions opt;
  opt.width = width;
  opt.tile = 8;
  opt.table_oversampling = table;
  core::SerialGridder<2> g(n, opt);
  core::Grid<2> grid(g.grid_size());
  g.adjoint(in, grid);
  return std::vector<c64>(grid.data(), grid.data() + grid.total());
}

std::vector<c64> grid_jigsaw(const core::SampleSet<2>& in, std::int64_t n,
                             int width, int table) {
  core::GridderOptions opt;
  opt.width = width;
  opt.tile = 8;
  opt.table_oversampling = table;
  core::JigsawGridder<2> g(n, opt);
  core::Grid<2> grid(g.grid_size());
  g.adjoint(in, grid);
  std::printf("  (jigsaw scale 2^%d, %llu saturation events)\n",
              g.scale_log2(),
              static_cast<unsigned long long>(g.stats().saturation_events));
  return std::vector<c64>(grid.data(), grid.data() + grid.total());
}

/// Full adjoint-NuFFT reconstruction (for the visual panels).
std::vector<c64> reconstruct(const core::SampleSet<2>& in, std::int64_t n,
                             core::GridderKind kind, int table) {
  core::GridderOptions opt;
  opt.kind = kind;
  opt.width = 6;
  opt.tile = 8;
  opt.table_oversampling = table;
  core::NufftPlan<2> plan(n, in.coords, opt);
  return plan.adjoint(in.values);
}

}  // namespace

int main() {
  std::printf("Fig. 9 / Sec. VI-C — JIGSAW image quality\n\n");
  const std::int64_t n = 64;
  const int width = 6;

  // Density-compensated radial phantom acquisition.
  auto coords = trajectory::radial_2d(128, 128);
  auto values = trajectory::kspace_samples(trajectory::shepp_logan(), coords,
                                           static_cast<int>(n));
  const auto dcf = trajectory::radial_density_weights(coords);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] *= dcf[i];

  // Like-for-like inputs: both datapaths see Q.16-quantized coordinates.
  const auto qcoords = quantize_coords(coords, 2 * n);
  const core::SampleSet<2> sq{qcoords, values};

  std::printf("grid-level NRMSD vs double-precision reference "
              "(same inputs, same table):\n");
  ConsoleTable table({"implementation", "table L", "NRMSD", "paper"});

  const auto ref1024 = grid_double(sq, n, width, 1024);
  const auto f32 = grid_float(sq, n, width, 1024);
  const double nrmsd_float = core::nrmsd(f32, ref1024);
  table.add_row({"32-bit float, L=1024", "1024",
                 ConsoleTable::fmt(100.0 * nrmsd_float, 4) + "%", "0.047%"});

  const auto ref32 = grid_double(sq, n, width, 32);
  const auto fixed = grid_jigsaw(sq, n, width, 32);
  const double nrmsd_fixed = core::nrmsd(fixed, ref32);
  table.add_row({"32-bit fixed (JIGSAW), L=32", "32",
                 ConsoleTable::fmt(100.0 * nrmsd_fixed, 4) + "%", "0.012%"});
  table.print();

  // Visual panels: (a) doubles with L=1024, (b) 16-bit fixed with L=32 —
  // table oversampling reduced 32x.
  const core::SampleSet<2> s{coords, values};
  const auto panel_a =
      reconstruct(s, n, core::GridderKind::Serial, 1024);
  const auto panel_b = reconstruct(s, n, core::GridderKind::Jigsaw, 32);
  write_pgm("fig9_panel_a_double_L1024.pgm", panel_a, static_cast<int>(n),
            static_cast<int>(n));
  write_pgm("fig9_panel_b_fixed_L32.pgm", panel_b, static_cast<int>(n),
            static_cast<int>(n));
  std::printf("\nreconstruction panels written: fig9_panel_a_double_L1024.pgm"
              ", fig9_panel_b_fixed_L32.pgm\n");
  std::printf("panel NRMSD (L reduced 32x + fixed point): %.3f%% — "
              "visually indistinguishable per the paper\n",
              100.0 * core::nrmsd(panel_b, panel_a));
  std::printf("\nshape checks: float error small (<0.5%%): %s | fixed error "
              "same order or better: %s\n",
              nrmsd_float < 5e-3 ? "yes" : "NO",
              nrmsd_fixed < 5e-3 ? "yes" : "NO");
  return 0;
}
