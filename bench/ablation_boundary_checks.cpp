// Ablation E8 — boundary-check and duplicate-processing accounting
// (paper Secs. II-C and III, Fig. 3).
//
// Quantifies, with exact work counters, the three binning overheads the
// paper identifies (presort pass, duplicate sample processing, per-tile-
// point checks), the M * G^d cost of naive output-driven parallelism, and
// Slice-and-Dice's M * T^d bound — including the N^d/T^d reduction factor
// of Sec. III.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/grid.hpp"

using namespace jigsaw;

int main() {
  std::printf("Ablation E8 — gridding work accounting\n\n");

  // Counter comparison on a mid-size image (naive output-driven is O(M*G^2)
  // and only tractable on the smaller configs).
  const auto& cfg = bench::image_configs()[0];  // Image1: 64^2, M=8192
  const auto workload = bench::build_workload(cfg, false);
  const std::int64_t g = 2 * cfg.n;

  ConsoleTable table({"engine", "boundary checks", "samples processed",
                      "interpolations", "presort[s]", "grid[s]"});

  auto run = [&](core::GridderOptions opt, const std::string& name) {
    auto gr = core::make_gridder<2>(cfg.n, opt);
    core::Grid<2> grid(gr->grid_size());
    gr->adjoint(workload, grid);
    const auto& s = gr->stats();
    table.add_row({name, ConsoleTable::fmt_si(static_cast<double>(s.boundary_checks), 2),
                   ConsoleTable::fmt_si(static_cast<double>(s.samples_processed), 2),
                   ConsoleTable::fmt_si(static_cast<double>(s.interpolations), 2),
                   ConsoleTable::fmt(s.presort_seconds, 4),
                   ConsoleTable::fmt(s.grid_seconds, 4)});
    return s;
  };

  core::GridderOptions serial = bench::mirt_baseline_options();
  run(serial, "serial (input-driven)");

  core::GridderOptions naive = serial;
  naive.kind = core::GridderKind::OutputDriven;
  const auto s_naive = run(naive, "naive output-driven");

  core::GridderOptions binning = bench::impatient_options();
  const auto s_binning = run(binning, "binning (Impatient-like)");

  core::GridderOptions snd = bench::slice_dice_options();
  snd.model_faithful_checks = true;
  const auto s_snd = run(snd, "slice-and-dice (T^2 columns)");

  core::GridderOptions snd_direct = bench::slice_dice_options();
  run(snd_direct, "slice-and-dice (direct walk)");

  table.print();

  const double m = static_cast<double>(workload.size());
  std::printf("\nper-sample boundary checks: naive %.0f (= G^2 = %lld^2), "
              "binning %.1f, slice-and-dice %.0f (= T^2)\n",
              static_cast<double>(s_naive.boundary_checks) / m,
              static_cast<long long>(g),
              static_cast<double>(s_binning.boundary_checks) / m,
              static_cast<double>(s_snd.boundary_checks) / m);
  std::printf("reduction vs naive parallel: %.0fx (paper Sec. III: N^d/T^d "
              "= %.0fx)\n",
              static_cast<double>(s_naive.boundary_checks) /
                  static_cast<double>(s_snd.boundary_checks),
              static_cast<double>(g * g) / 64.0);
  std::printf("binning duplicate factor: %.2fx samples processed "
              "(slice-and-dice: 1.00x, no presort, no duplicates)\n",
              static_cast<double>(s_binning.samples_processed) / m);

  // Duplicate factor across window widths (wider windows straddle more
  // tile boundaries, as in Fig. 3a where corner samples land in 4 bins).
  std::printf("\nbinning duplicate factor vs window width (T=8):\n");
  ConsoleTable dup({"W", "duplicate factor", "presort share of time"});
  for (int w : {2, 4, 6, 8}) {
    core::GridderOptions opt = bench::impatient_options();
    opt.width = w;
    auto gr = core::make_gridder<2>(cfg.n, opt);
    core::Grid<2> grid(gr->grid_size());
    gr->adjoint(workload, grid);
    const auto& s = gr->stats();
    dup.add_row({std::to_string(w),
                 ConsoleTable::fmt(static_cast<double>(s.samples_processed) / m, 2) + "x",
                 ConsoleTable::fmt(100.0 * s.presort_seconds /
                                       (s.presort_seconds + s.grid_seconds),
                                   1) + "%"});
  }
  dup.print();
  return 0;
}
