// Fixed-point soft-error campaign (robustness study, see docs/robustness.md).
//
// The JIGSAW accumulation SRAM is the largest memory in the design, so it is
// the natural victim for single-event upsets. This harness sweeps bit-flip
// rate x bit position on the Jigsaw functional gridder's accumulation path
// and reports the image-domain NRMSE of the reconstruction against a clean
// (flip-free) run of the identical pipeline. Deterministic under the fixed
// seed: two invocations print identical tables.
//
// Expected shape of the result: low-order bits (deep in the Q7.24 fraction)
// are benign even at high rates — gridding averages millions of
// accumulations per image — while flips near the integer boundary and sign
// bit dominate the error budget.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/metrics.hpp"
#include "core/nufft.hpp"

using namespace jigsaw;

namespace {

std::vector<double> magnitude(const std::vector<c64>& image) {
  std::vector<double> mag(image.size());
  for (std::size_t i = 0; i < image.size(); ++i) mag[i] = std::abs(image[i]);
  return mag;
}

}  // namespace

int main() {
  // Image1-class workload: radial phantom, N=64, M=8192.
  const auto& cfg = bench::image_configs()[0];
  const auto samples = bench::build_workload(cfg);

  core::GridderOptions opt = bench::mirt_baseline_options();
  opt.kind = core::GridderKind::Jigsaw;

  const std::uint64_t kSeed = 7;
  const std::vector<double> rates = {1e-5, 1e-4, 1e-3};
  const std::vector<int> bits = {0, 8, 16, 24, 28};

  // Clean reference: the same fixed-point pipeline with the injector off,
  // so the NRMSE isolates the soft errors from quantization noise.
  core::NufftPlan<2> clean_plan(cfg.n, samples.coords, opt);
  const auto clean = magnitude(clean_plan.adjoint(samples.values));

  std::printf("soft-error campaign: %s (N=%lld, M=%lld, radial), "
              "Q7.24 accumulator, seed %llu\n",
              cfg.name.c_str(), static_cast<long long>(cfg.n),
              static_cast<long long>(cfg.m),
              static_cast<unsigned long long>(kSeed));

  ConsoleTable table({"rate \\ bit", "b0", "b8", "b16", "b24", "b28(sign-1)"});
  for (const double rate : rates) {
    std::vector<std::string> row;
    char label[32];
    std::snprintf(label, sizeof(label), "%g", rate);
    row.emplace_back(label);
    for (const int bit : bits) {
      core::GridderOptions flip_opt = opt;
      flip_opt.soft_error.rate = rate;
      flip_opt.soft_error.bit = bit;
      flip_opt.soft_error.seed = kSeed;
      core::NufftPlan<2> plan(cfg.n, samples.coords, flip_opt);
      const auto image = magnitude(plan.adjoint(samples.values));
      const double err = core::nrmsd(image, clean);
      char cell[48];
      std::snprintf(cell, sizeof(cell), "%.2e (%llu)", err,
                    static_cast<unsigned long long>(
                        plan.gridder().stats().soft_error_flips));
      row.emplace_back(cell);
    }
    table.add_row(std::move(row));
  }
  std::printf("cells: NRMSE vs clean fixed-point recon (flips injected)\n");
  table.print();
  return 0;
}
