// Reproduction of Fig. 6: gridding speedups normalized to the MIRT CPU
// baseline for five images, across Impatient-style binning [10],
// Slice-and-Dice, and the JIGSAW ASIC.
//
// What is measured vs modeled on this (GPU-less, single-core) host:
//   * the three CPU algorithm implementations are *measured* (1 thread);
//   * the "MIRT" normalization point is our measured serial C++ time scaled
//     by energy::kMatlabBaselineOverhead (the paper's baseline is Matlab);
//   * GPU-class numbers project the measured same-algorithm CPU time
//     through energy::GpuModelParams (occupancy / L2 hit rate per the
//     paper's Sec. VI.A profile numbers);
//   * JIGSAW time is the paper-validated cycle model (M + 12) ns — our
//     cycle simulator is asserted against it in the test suite.
// Columns "paper" restate the decoded Fig. 6 values for comparison.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/grid.hpp"
#include "energy/asic_model.hpp"
#include "energy/gpu_model.hpp"

using namespace jigsaw;

int main() {
  std::printf("Fig. 6 — gridding speedups vs MIRT baseline\n");
  std::printf("(measured single-thread CPU kernels; GPU/ASIC projected via "
              "documented models — see DESIGN.md)\n\n");

  ConsoleTable table({"image", "N", "M", "serial[s]", "binning[s]",
                      "snd[s]", "impatient-gpu", "paper", "snd-gpu", "paper",
                      "jigsaw", "paper"});
  std::vector<double> sp_imp, sp_snd, sp_jig;

  for (const auto& cfg : bench::image_configs()) {
    const auto workload = bench::build_workload(cfg);

    // MIRT-like serial baseline (input-driven, double, LUT).
    auto serial = core::make_gridder<2>(cfg.n, bench::mirt_baseline_options());
    core::Grid<2> grid(serial->grid_size());
    const double t_serial = time_best([&] { serial->adjoint(workload, grid); });

    // Impatient-like binning (presort + on-line weights).
    auto binning = core::make_gridder<2>(cfg.n, bench::impatient_options());
    const double t_binning =
        time_best([&] { binning->adjoint(workload, grid); });

    // Slice-and-Dice (LUT, no presort).
    auto snd = core::make_gridder<2>(cfg.n, bench::slice_dice_options());
    const double t_snd = time_best([&] { snd->adjoint(workload, grid); });

    // Projections.
    const double t_mirt = t_serial * energy::kMatlabBaselineOverhead;
    const double t_imp_gpu =
        energy::projected_gpu_seconds(energy::impatient_gpu(), t_binning);
    const double t_snd_gpu = energy::projected_gpu_seconds(
        energy::slice_and_dice_gpu(), t_snd);
    energy::AsicConfig asic;
    asic.grid_n = static_cast<int>(2 * cfg.n);
    const double t_jigsaw =
        static_cast<double>(energy::gridding_cycles(asic, cfg.m)) / 1e9;

    const double s_imp = t_mirt / t_imp_gpu;
    const double s_snd = t_mirt / t_snd_gpu;
    const double s_jig = t_mirt / t_jigsaw;
    sp_imp.push_back(s_imp);
    sp_snd.push_back(s_snd);
    sp_jig.push_back(s_jig);

    table.add_row({cfg.name, std::to_string(2 * cfg.n) + "^2",
                   ConsoleTable::fmt_si(static_cast<double>(cfg.m), 0),
                   ConsoleTable::fmt(t_serial, 3),
                   ConsoleTable::fmt(t_binning, 3),
                   ConsoleTable::fmt(t_snd, 3),
                   ConsoleTable::fmt_times(s_imp),
                   ConsoleTable::fmt_times(cfg.fig6_impatient, 0),
                   ConsoleTable::fmt_times(s_snd),
                   ConsoleTable::fmt_times(cfg.fig6_snd, 0),
                   ConsoleTable::fmt_times(s_jig),
                   ConsoleTable::fmt_times(cfg.fig6_jigsaw, 0)});
  }
  table.print();

  std::printf("\naverages (geomean): impatient %.1fx (paper avg ~16x vs "
              "SnD's ~250x), slice-and-dice %.1fx (paper >250x), "
              "jigsaw %.1fx (paper >1500x)\n",
              bench::geomean(sp_imp), bench::geomean(sp_snd),
              bench::geomean(sp_jig));
  std::printf("shape checks: snd > impatient: %s | jigsaw > snd: %s\n",
              bench::geomean(sp_snd) > bench::geomean(sp_imp) ? "yes" : "NO",
              bench::geomean(sp_jig) > bench::geomean(sp_snd) ? "yes" : "NO");
  return 0;
}
