// Reproduction of Fig. 7: end-to-end adjoint-NuFFT speedups (gridding + FFT
// + de-apodization) normalized to the MIRT baseline.
//
// Modeling mirrors fig6_gridding_speedup; additionally the uniform-FFT
// phase of the GPU-class and JIGSAW pipelines is projected with
// energy::kGpuFftSpeedup (cuFFT-class), which is what makes the end-to-end
// ratios compress relative to the gridding-only ratios — with JIGSAW the
// FFT becomes the bottleneck for the first time (paper Sec. VIII).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/nufft.hpp"
#include "energy/asic_model.hpp"
#include "energy/gpu_model.hpp"

using namespace jigsaw;

int main() {
  std::printf("Fig. 7 — end-to-end NuFFT speedups vs MIRT baseline\n\n");

  ConsoleTable table({"image", "grid[s]", "fft[s]", "apod[s]",
                      "impatient-gpu", "paper", "snd-gpu", "paper", "jigsaw",
                      "paper", "jigsaw grid%"});
  std::vector<double> sp_imp, sp_snd, sp_jig;

  for (const auto& cfg : bench::image_configs()) {
    const auto workload = bench::build_workload(cfg);

    // Measured serial end-to-end NuFFT (MIRT-like).
    core::NufftPlan<2> serial_plan(cfg.n, workload.coords,
                                   bench::mirt_baseline_options());
    core::NufftTimings t_serial;
    serial_plan.adjoint(workload.values, &t_serial);

    // Measured binning (Impatient-like) end-to-end.
    core::NufftPlan<2> binning_plan(cfg.n, workload.coords,
                                    bench::impatient_options());
    core::NufftTimings t_binning;
    binning_plan.adjoint(workload.values, &t_binning);

    // Measured slice-and-dice end-to-end.
    core::NufftPlan<2> snd_plan(cfg.n, workload.coords,
                                bench::slice_dice_options());
    core::NufftTimings t_snd;
    snd_plan.adjoint(workload.values, &t_snd);

    // Projections. The non-gridding phases (FFT + apodization) run at
    // cuFFT-class speed on the GPU/host of the accelerated pipelines.
    const double mirt = t_serial.total() * energy::kMatlabBaselineOverhead;
    const double aux_serial = t_serial.fft_seconds + t_serial.apod_seconds;
    const double gpu_aux = aux_serial / energy::kGpuFftSpeedup;

    const double imp_gpu =
        energy::projected_gpu_seconds(
            energy::impatient_gpu(),
            t_binning.grid_seconds + t_binning.presort_seconds) +
        gpu_aux;
    const double snd_gpu = energy::projected_gpu_seconds(
                               energy::slice_and_dice_gpu(),
                               t_snd.grid_seconds) +
                           gpu_aux;
    energy::AsicConfig asic;
    asic.grid_n = static_cast<int>(2 * cfg.n);
    const double jig_grid =
        static_cast<double>(energy::gridding_cycles(asic, cfg.m)) / 1e9;
    const double jig = jig_grid + gpu_aux;

    sp_imp.push_back(mirt / imp_gpu);
    sp_snd.push_back(mirt / snd_gpu);
    sp_jig.push_back(mirt / jig);

    table.add_row({cfg.name, ConsoleTable::fmt(t_serial.grid_seconds, 3),
                   ConsoleTable::fmt(t_serial.fft_seconds, 3),
                   ConsoleTable::fmt(t_serial.apod_seconds, 3),
                   ConsoleTable::fmt_times(mirt / imp_gpu),
                   ConsoleTable::fmt_times(cfg.fig7_impatient, 0),
                   ConsoleTable::fmt_times(mirt / snd_gpu),
                   ConsoleTable::fmt_times(cfg.fig7_snd, 0),
                   ConsoleTable::fmt_times(mirt / jig),
                   ConsoleTable::fmt_times(cfg.fig7_jigsaw, 0),
                   ConsoleTable::fmt(100.0 * jig_grid / jig, 1) + "%"});
  }
  table.print();

  std::printf("\naverages (geomean): impatient %.1fx, slice-and-dice %.1fx "
              "(paper >118x), jigsaw %.1fx (paper >258x)\n",
              bench::geomean(sp_imp), bench::geomean(sp_snd),
              bench::geomean(sp_jig));
  std::printf("paper shape: with JIGSAW, gridding drops to ~25%% of NuFFT "
              "time (FFT becomes the bottleneck).\n");
  return 0;
}
