// Ablation E7 — the memory-system argument of Sec. VI.A.
//
// The paper attributes part of Slice-and-Dice's GPU win to cache behaviour:
// ~98% L2 hit rate vs Impatient's ~80%, because concurrent binning blocks
// evict one another's tiles while the dice layout keeps each column's
// working line resident. We reproduce the experiment by generating the
// grid/sample access streams each strategy's thread blocks would issue,
// interleaving K concurrent blocks round-robin (GPU-style), and replaying
// them through a Titan-Xp-class L2 model (3 MiB, 16-way, 64 B lines).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/binning_gridder.hpp"
#include "core/window.hpp"
#include "memsim/cache.hpp"

using namespace jigsaw;


namespace {

constexpr int kBlocks = 30;          // concurrently resident thread blocks
constexpr std::uint64_t kGridBase = 0;          // grid region base address
constexpr std::uint64_t kSampleBase = 1ull << 32;  // sample arrays

memsim::CacheConfig titan_l2() {
  memsim::CacheConfig c;
  c.size_bytes = 3ull << 20;
  c.line_bytes = 64;
  c.ways = 16;
  return c;
}

struct Access {
  std::uint64_t addr;
  bool write;
};

/// Serial CPU baseline: one stream, row-major window scatter.
double serial_hit_rate(const std::vector<Coord<2>>& coords, std::int64_t g,
                       int w) {
  memsim::Cache cache(titan_l2());
  for (std::size_t j = 0; j < coords.size(); ++j) {
    cache.access(kSampleBase + j * 16, 16, false);
    std::int64_t idx[2][16];
    for (int d = 0; d < 2; ++d) {
      const double u = core::grid_coord(coords[j][static_cast<std::size_t>(d)], g);
      const std::int64_t g0 = core::window_start(u, w);
      for (int o = 0; o < w; ++o) idx[d][o] = pos_mod(g0 + o, g);
    }
    for (int oy = 0; oy < w; ++oy) {
      for (int ox = 0; ox < w; ++ox) {
        cache.access(kGridBase + static_cast<std::uint64_t>(
                                     idx[0][oy] * g + idx[1][ox]) *
                                     16,
                     16, true);
      }
    }
  }
  return cache.stats().hit_rate();
}

/// Slice-and-Dice GPU model: K blocks each own a contiguous slice of the
/// (trajectory-ordered) input and issue dice-layout read-modify-writes.
double slice_dice_hit_rate(const std::vector<Coord<2>>& coords,
                           std::int64_t g, int w, std::int64_t t) {
  memsim::Cache cache(titan_l2());
  const std::int64_t ntiles = g / t;
  const std::int64_t tile_count = ntiles * ntiles;
  const std::size_t chunk = (coords.size() + kBlocks - 1) / kBlocks;

  // Round-robin: each "step" lets every live block process one sample.
  std::vector<std::size_t> cursor(kBlocks);
  for (int b = 0; b < kBlocks; ++b) cursor[b] = b * chunk;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int b = 0; b < kBlocks; ++b) {
      const std::size_t j = cursor[b];
      const std::size_t end =
          std::min(coords.size(), static_cast<std::size_t>(b + 1) * chunk);
      if (j >= end) continue;
      ++cursor[b];
      progress = true;
      cache.access(kSampleBase + j * 16, 16, false);
      // Two-part decomposition -> dice addresses for the W^2 columns.
      std::int64_t col[2][16], tile[2][16];
      for (int d = 0; d < 2; ++d) {
        const double u =
            core::grid_coord(coords[j][static_cast<std::size_t>(d)], g);
        const double us = u + static_cast<double>(w) * 0.5;
        const core::Decomposed dec = core::decompose(us, static_cast<int>(t));
        const auto fl = static_cast<std::int64_t>(dec.relative);
        for (int k = 0; k < w; ++k) {
          std::int64_t c = fl - k, q = dec.tile;
          if (c < 0) {
            c += t;
            q -= 1;
          }
          col[d][k] = c;
          tile[d][k] = pos_mod(q, ntiles);
        }
      }
      for (int ky = 0; ky < w; ++ky) {
        for (int kx = 0; kx < w; ++kx) {
          const std::int64_t lin =
              (col[0][ky] * t + col[1][kx]) * tile_count +
              tile[0][ky] * ntiles + tile[1][kx];
          cache.access(kGridBase + static_cast<std::uint64_t>(lin) * 16, 16,
                       true);
        }
      }
    }
  }
  return cache.stats().hit_rate();
}

/// Impatient-like binning GPU model: K blocks each process tile-bin pairs;
/// the whole bin is streamed once per warp (two 32-thread warps cover the
/// 8x8 tile) and the tile is written back at the end.
double binning_hit_rate(const core::BinningGridder<2>& gridder,
                        const std::vector<std::vector<std::int32_t>>& bins,
                        std::int64_t g, std::int64_t b_tile) {
  memsim::Cache cache(titan_l2());
  const std::int64_t tiles = gridder.tiles_per_dim();
  const std::int64_t ntiles_total = tiles * tiles;

  // Each block walks its strided subset of tiles; blocks interleave
  // bin-read bursts of one sample record per turn.
  struct BlockState {
    std::int64_t tile = -1;  // current tile linear index
    std::size_t pos = 0;     // position within the (twice-read) bin
    int pass = 0;
  };
  std::vector<BlockState> st(kBlocks);
  std::vector<std::int64_t> next_tile(kBlocks);
  for (int b = 0; b < kBlocks; ++b) next_tile[b] = b;

  auto writeback_tile = [&](std::int64_t tl) {
    const std::int64_t ty = tl / tiles, tx = tl % tiles;
    for (std::int64_t y = 0; y < b_tile; ++y) {
      for (std::int64_t x = 0; x < b_tile; ++x) {
        const std::int64_t lin = (ty * b_tile + y) * g + tx * b_tile + x;
        cache.access(kGridBase + static_cast<std::uint64_t>(lin) * 16, 16,
                     true);
      }
    }
  };

  bool live = true;
  while (live) {
    live = false;
    for (int b = 0; b < kBlocks; ++b) {
      auto& s = st[b];
      if (s.tile < 0) {  // fetch next tile
        if (next_tile[b] >= ntiles_total) continue;
        s.tile = next_tile[b];
        next_tile[b] += kBlocks;
        s.pos = 0;
        s.pass = 0;
      }
      live = true;
      const auto& bin = bins[static_cast<std::size_t>(s.tile)];
      if (s.pos < bin.size()) {
        // One bin sample record read (broadcast to the warp).
        cache.access(kSampleBase +
                         static_cast<std::uint64_t>(
                             bin[s.pos]) *
                             16,
                     16, false);
        ++s.pos;
      } else if (s.pass == 0) {
        s.pass = 1;  // second warp re-reads the bin
        s.pos = 0;
        if (bin.empty()) {
          writeback_tile(s.tile);
          s.tile = -1;
        }
      } else {
        writeback_tile(s.tile);
        s.tile = -1;
      }
    }
  }
  return cache.stats().hit_rate();
}

}  // namespace

int main() {
  std::printf("Ablation E7 — L2 hit rates of the gridding strategies "
              "(paper Sec. VI.A: Slice-and-Dice ~98%%, Impatient ~80%%)\n\n");

  ConsoleTable table({"image", "serial (1 stream)", "binning (30 blocks)",
                      "slice-and-dice (30 blocks)"});
  for (const auto& cfg : bench::image_configs()) {
    if (cfg.m > 600000) continue;  // keep the replay time sane
    const auto coords = trajectory::make_2d(cfg.traj, cfg.m);
    const std::int64_t g = 2 * cfg.n;
    const int w = 6;
    const std::int64_t t = 8;

    core::GridderOptions opt = bench::impatient_options();
    core::BinningGridder<2> binning(cfg.n, opt);
    core::SampleSet<2> set;
    set.coords = coords;
    set.values.assign(coords.size(), c64{});
    const auto bins = binning.presort(set);

    const double hr_serial = serial_hit_rate(coords, g, w);
    const double hr_binning = binning_hit_rate(binning, bins, g, t);
    const double hr_snd = slice_dice_hit_rate(coords, g, w, t);

    table.add_row({cfg.name,
                   ConsoleTable::fmt(100.0 * hr_serial, 1) + "%",
                   ConsoleTable::fmt(100.0 * hr_binning, 1) + "%",
                   ConsoleTable::fmt(100.0 * hr_snd, 1) + "%"});
  }
  table.print();
  std::printf("\nclaim check: slice-and-dice sustains a higher L2 hit rate "
              "than concurrent binning blocks on every workload.\n");
  return 0;
}
