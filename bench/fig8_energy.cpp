// Reproduction of Fig. 8: gridding energy per image for the Impatient GPU,
// Slice-and-Dice GPU, and JIGSAW implementations.
//
// GPU energies are board-power x projected kernel time (energy::GpuModel);
// JIGSAW energy is the calibrated Table II power x the (M+12)-cycle
// runtime. The paper's reported averages — Impatient 1.95 J, Slice-and-Dice
// GPU 108.27 mJ, JIGSAW 83.89 uJ — are the reference shape: roughly three
// orders of magnitude between GPU-class and ASIC implementations, and
// ~1300x between the two GPU implementations and JIGSAW specifically.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/grid.hpp"
#include "energy/asic_model.hpp"
#include "energy/gpu_model.hpp"

using namespace jigsaw;

int main() {
  std::printf("Fig. 8 — gridding energy (J)\n\n");

  ConsoleTable table({"image", "impatient-gpu", "snd-gpu", "jigsaw",
                      "imp/jig", "snd/jig"});
  std::vector<double> e_imp, e_snd, e_jig;

  for (const auto& cfg : bench::image_configs()) {
    const auto workload = bench::build_workload(cfg);
    core::Grid<2> grid(2 * cfg.n);

    auto binning = core::make_gridder<2>(cfg.n, bench::impatient_options());
    const double t_binning =
        time_best([&] { binning->adjoint(workload, grid); });
    auto snd = core::make_gridder<2>(cfg.n, bench::slice_dice_options());
    const double t_snd = time_best([&] { snd->adjoint(workload, grid); });

    const double imp_j =
        energy::projected_gpu_energy_j(energy::impatient_gpu(), t_binning);
    const double snd_j = energy::projected_gpu_energy_j(
        energy::slice_and_dice_gpu(), t_snd);

    energy::AsicConfig asic;
    asic.grid_n = static_cast<int>(2 * cfg.n);
    const double jig_j = energy::gridding_energy_j(asic, cfg.m);

    e_imp.push_back(imp_j);
    e_snd.push_back(snd_j);
    e_jig.push_back(jig_j);

    table.add_row({cfg.name, ConsoleTable::fmt_si(imp_j, 2) + "J",
                   ConsoleTable::fmt_si(snd_j, 2) + "J",
                   ConsoleTable::fmt_si(jig_j, 2) + "J",
                   ConsoleTable::fmt_times(imp_j / jig_j, 0),
                   ConsoleTable::fmt_times(snd_j / jig_j, 0)});
  }
  table.print();

  double avg_imp = 0, avg_snd = 0, avg_jig = 0;
  for (std::size_t i = 0; i < e_imp.size(); ++i) {
    avg_imp += e_imp[i] / static_cast<double>(e_imp.size());
    avg_snd += e_snd[i] / static_cast<double>(e_snd.size());
    avg_jig += e_jig[i] / static_cast<double>(e_jig.size());
  }
  std::printf("\naverages: impatient %sJ (paper 1.95 J), snd-gpu %sJ "
              "(paper 108.27 mJ), jigsaw %sJ (paper 83.89 uJ)\n",
              ConsoleTable::fmt_si(avg_imp, 2).c_str(),
              ConsoleTable::fmt_si(avg_snd, 2).c_str(),
              ConsoleTable::fmt_si(avg_jig, 2).c_str());
  std::printf("shape: jigsaw vs snd-gpu %.0fx (paper ~1300x), vs impatient "
              "%.0fx (paper >23000x)\n",
              avg_snd / avg_jig, avg_imp / avg_jig);
  return 0;
}
