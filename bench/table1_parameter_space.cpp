// Reproduction of Table I: JIGSAW's supported runtime parameter space.
//
// Sweeps target grid dimension N, interpolation window width W and table
// oversampling factor L through the cycle simulator, verifying that every
// in-range configuration runs stall-free at M + depth cycles and that
// out-of-range configurations are rejected by the hardware limits
// (weight SRAM capacity, accumulation SRAM capacity, pipeline count).
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/gridder.hpp"
#include "jigsaw/cycle_sim.hpp"

using namespace jigsaw;

namespace {

core::SampleSet<2> random_samples(std::int64_t m, std::uint64_t seed) {
  Rng rng(seed);
  core::SampleSet<2> s;
  s.coords.resize(static_cast<std::size_t>(m));
  s.values.resize(static_cast<std::size_t>(m));
  for (auto& c : s.coords) c = {rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)};
  for (auto& v : s.values) v = c64(0.01 * rng.uniform(-1, 1), 0.0);
  return s;
}

}  // namespace

int main() {
  std::printf("Table I — JIGSAW supported system parameters\n");
  std::printf("  target grid N: 8-1024 | tile T: 8 | window W: 1-8 | "
              "table L: 1-64 | 32-bit pipelines, 16-bit weights\n\n");

  const std::int64_t m = 2000;
  ConsoleTable table({"grid G", "W", "L", "LUT entries", "cycles",
                      "stall-free", "status"});
  int supported = 0, rejected = 0;

  for (std::int64_t g : {8, 16, 64, 256, 1024, 2048}) {
    for (int w : {1, 2, 4, 6, 8, 9}) {
      for (int l : {1, 4, 32, 64, 128}) {
        core::GridderOptions opt;
        opt.sigma = 2.0;
        opt.width = w;
        opt.tile = 8;
        opt.table_oversampling = l;
        const std::int64_t base_n = g / 2;
        std::string status = "ok";
        std::string cycles = "-", stall = "-", entries = "-";
        try {
          sim::CycleSim simulator(base_n, opt, false);
          const auto in = random_samples(m, 7);
          core::Grid<2> out(simulator.grid_size());
          simulator.run_2d(in, out);
          cycles = std::to_string(simulator.stats().gridding_cycles);
          stall = simulator.stats().stall_cycles == 0 ? "yes" : "NO";
          entries = std::to_string(w * l / 2);
          if (simulator.stats().gridding_cycles != m + 12) status = "BAD";
          ++supported;
        } catch (const std::invalid_argument&) {
          status = "rejected";
          ++rejected;
        }
        // Keep the printout to a representative subset.
        if ((g == 8 || g == 1024 || g == 2048) || (w == 9) || (l == 128)) {
          table.add_row({std::to_string(g), std::to_string(w),
                         std::to_string(l), entries, cycles, stall, status});
        }
      }
    }
  }
  table.print();
  std::printf("\n%d configurations supported (all at M+12 cycles, zero "
              "stalls), %d out-of-range configurations rejected\n",
              supported, rejected);
  return 0;
}
