// Ablation E12 — sample-ordering sensitivity.
//
// The paper stresses that JIGSAW's runtime is "irrespective of sampling
// pattern" and that CPU gridding suffers because samples "often arrive in
// effectively random order" (Secs. II, IV). This harness quantifies both
// halves: the serial CPU gridder is timed on the same sample set in
// acquisition order, shuffled order, and Morton (Z-curve) order — a
// locality-restoring presort some CPU implementations use — while the
// JIGSAW cycle model is exercised on each ordering to confirm identical
// M+12-cycle runtimes.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/grid.hpp"
#include "core/window.hpp"
#include "jigsaw/cycle_sim.hpp"

using namespace jigsaw;

namespace {

/// 32-bit Morton (Z-order) key from two 16-bit quantized coordinates.
std::uint64_t morton_key(const Coord<2>& c) {
  auto spread = [](std::uint32_t v) {
    std::uint64_t x = v & 0xffff;
    x = (x | (x << 8)) & 0x00ff00ff;
    x = (x | (x << 4)) & 0x0f0f0f0f;
    x = (x | (x << 2)) & 0x33333333;
    x = (x | (x << 1)) & 0x55555555;
    return x;
  };
  const auto qy = static_cast<std::uint32_t>((c[0] + 0.5) * 65535.0);
  const auto qx = static_cast<std::uint32_t>((c[1] + 0.5) * 65535.0);
  return (spread(qy) << 1) | spread(qx);
}

core::SampleSet<2> reorder(const core::SampleSet<2>& in,
                           const std::vector<std::size_t>& perm) {
  core::SampleSet<2> out;
  out.coords.resize(in.size());
  out.values.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.coords[i] = in.coords[perm[i]];
    out.values[i] = in.values[perm[i]];
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation E12 — sample-ordering sensitivity\n\n");

  const auto& cfg = bench::image_configs()[3];  // Image4: 768^2, 1M samples
  auto workload = bench::build_workload(cfg, false);
  const std::size_t m = workload.size();

  // Orderings.
  std::vector<std::size_t> perm(m);
  std::iota(perm.begin(), perm.end(), 0u);
  const auto acquisition = workload;  // trajectory (spoke) order

  Rng rng(99);
  for (std::size_t i = m - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.below(i + 1)]);
  }
  const auto shuffled = reorder(workload, perm);

  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    return morton_key(workload.coords[a]) < morton_key(workload.coords[b]);
  });
  const auto morton = reorder(workload, perm);

  auto serial = core::make_gridder<2>(cfg.n, bench::mirt_baseline_options());
  core::Grid<2> grid(serial->grid_size());

  struct Case {
    const core::SampleSet<2>* set;
    const char* name;
  };
  const Case cases[] = {{&acquisition, "acquisition (spokes)"},
                        {&shuffled, "shuffled (random)"},
                        {&morton, "morton (Z-curve presort)"}};

  ConsoleTable table({"ordering", "serial cpu[s]", "vs acquisition",
                      "jigsaw cycles"});
  double t_acq = 0.0;
  for (const auto& c : cases) {
    const double t = time_best([&] { serial->adjoint(*c.set, grid); });
    if (t_acq == 0.0) t_acq = t;

    sim::CycleSim sim_run(cfg.n, bench::slice_dice_options(), false);
    core::Grid<2> g2(sim_run.grid_size());
    sim_run.run_2d(*c.set, g2);

    table.add_row({c.name, ConsoleTable::fmt(t, 3),
                   ConsoleTable::fmt_times(t / t_acq, 2),
                   std::to_string(sim_run.stats().gridding_cycles)});
  }
  table.print();

  std::printf("\nclaims: CPU gridding time swings with sample ordering "
              "(locality), while JIGSAW's cycle count is bit-identical for "
              "all three orderings (M + 12 = %lld).\n",
              static_cast<long long>(m) + 12);
  return 0;
}
