// Ablation E10 — where does NuFFT time go? (paper Secs. I-II).
//
// The paper's motivating measurement: on a modern CPU with an optimized
// FFT, gridding accounts for upwards of 99.6% of adjoint-NuFFT time, while
// the FFT itself is under 0.4%. This harness measures the per-phase
// breakdown of our baseline implementations across problem sizes. The
// compiled, LUT-based serial C++ gridder is leaner than the paper's Matlab
// baseline, so its gridding share is a lower bound; the on-line-weight
// binning configuration (which evaluates Kaiser-Bessel during processing,
// like Impatient) shows how quickly interpolation dominates.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/nufft.hpp"

using namespace jigsaw;

int main() {
  std::printf("Ablation E10 — adjoint-NuFFT phase breakdown\n\n");

  ConsoleTable table({"image", "engine", "grid[s]", "presort[s]", "fft[s]",
                      "apod[s]", "gridding share"});

  for (const auto& cfg : bench::image_configs()) {
    const auto workload = bench::build_workload(cfg);

    auto run = [&](const core::GridderOptions& opt, const std::string& name) {
      core::NufftPlan<2> plan(cfg.n, workload.coords, opt);
      core::NufftTimings t;
      plan.adjoint(workload.values, &t);
      const double interp = t.grid_seconds + t.presort_seconds;
      table.add_row({cfg.name, name, ConsoleTable::fmt(t.grid_seconds, 4),
                     ConsoleTable::fmt(t.presort_seconds, 4),
                     ConsoleTable::fmt(t.fft_seconds, 4),
                     ConsoleTable::fmt(t.apod_seconds, 4),
                     ConsoleTable::fmt(100.0 * interp / t.total(), 1) + "%"});
      return interp / t.total();
    };

    run(bench::mirt_baseline_options(), "serial+LUT");
    run(bench::impatient_options(), "binning+online-weights");
  }
  table.print();
  std::printf("\npaper: gridding >= 99.6%% of NuFFT time on the Matlab "
              "baseline; the FFT share shrinks further as M/N^2 grows.\n");
  return 0;
}
