// Ablation E14 — the virtual-tile dimension T, the one hardware design
// choice the paper fixes without a sweep (T = 8, "to match the virtual
// tile size", Sec. IV).
//
// T controls three things at once:
//   * hardware cost: T^2 pipelines and T^2 weight SRAMs;
//   * the boundary-check bound: M * T^d checks in the model-faithful
//     formulation (T=W is minimal but leaves no slack for wider kernels);
//   * dice-layout geometry: larger tiles mean fewer, larger columns.
// This harness sweeps T for the software engine (checks, time, accuracy is
// unchanged by construction) and prints the corresponding ASIC cost from
// the synthesis model — quantifying why T=8 (the smallest power of two
// covering W<=8) is the sweet spot.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/grid.hpp"
#include "core/metrics.hpp"
#include "core/slice_dice_gridder.hpp"
#include "energy/asic_model.hpp"

using namespace jigsaw;

int main() {
  std::printf("Ablation E14 — virtual tile dimension T (paper fixes T=8)\n\n");

  const std::int64_t n = 128;  // G = 256 divides by all tested T
  const std::int64_t m = 200000;
  core::SampleSet<2> in;
  in.coords = trajectory::make_2d(trajectory::TrajectoryType::Radial, m);
  in.values.assign(in.coords.size(), c64(0.01, 0.0));

  // Reference grid for the invariance check.
  core::GridderOptions ref_opt = bench::slice_dice_options();
  core::SliceDiceGridder<2> ref(n, ref_opt);
  core::Grid<2> gref(ref.grid_size());
  ref.adjoint(in, gref);
  const std::vector<c64> ref_v(gref.data(), gref.data() + gref.total());

  ConsoleTable table({"T", "pipelines", "checks/sample (M*T^2)",
                      "cpu time[s]", "identical grid", "asic power[mW]",
                      "asic area[mm^2]"});
  for (int t : {8, 16, 32}) {
    core::GridderOptions opt = bench::slice_dice_options();
    opt.tile = t;
    opt.model_faithful_checks = true;
    core::SliceDiceGridder<2> g(n, opt);
    core::Grid<2> grid(g.grid_size());
    const double secs = time_best([&] { g.adjoint(in, grid); });
    const std::vector<c64> out_v(grid.data(), grid.data() + grid.total());
    const bool same = core::max_abs_diff(out_v, ref_v) <
                      1e-9 * core::norm2(ref_v);

    // ASIC cost: the accumulation SRAM is grid-size-determined, but the
    // pipeline array and weight SRAMs scale with T^2.
    energy::AsicConfig asic;
    asic.grid_n = 1024;
    asic.tile = t;
    asic.window = 6;
    // The synthesis model enforces T<=grid; the pipeline-count scaling is
    // what we are after here.
    const auto e = energy::estimate_asic(asic);

    table.add_row({std::to_string(t), std::to_string(t * t),
                   std::to_string(static_cast<long long>(t) * t),
                   ConsoleTable::fmt(secs, 3), same ? "yes" : "NO",
                   ConsoleTable::fmt(e.power_mw, 1),
                   ConsoleTable::fmt(e.area_mm2, 2)});
  }
  table.print();

  std::printf("\ntakeaway: accuracy is T-invariant (same operator), but "
              "checks and hardware cost grow as T^2 while the only benefit "
              "is supporting kernels up to W = T. T = 8 is the smallest "
              "power of two covering the paper's W <= 8 — hence Table I.\n");
  return 0;
}
