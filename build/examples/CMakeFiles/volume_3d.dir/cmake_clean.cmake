file(REMOVE_RECURSE
  "CMakeFiles/volume_3d.dir/volume_3d.cpp.o"
  "CMakeFiles/volume_3d.dir/volume_3d.cpp.o.d"
  "volume_3d"
  "volume_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
