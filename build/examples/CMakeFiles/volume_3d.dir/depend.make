# Empty dependencies file for volume_3d.
# This may be replaced when dependencies are built.
