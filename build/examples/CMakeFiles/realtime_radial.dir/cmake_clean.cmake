file(REMOVE_RECURSE
  "CMakeFiles/realtime_radial.dir/realtime_radial.cpp.o"
  "CMakeFiles/realtime_radial.dir/realtime_radial.cpp.o.d"
  "realtime_radial"
  "realtime_radial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_radial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
