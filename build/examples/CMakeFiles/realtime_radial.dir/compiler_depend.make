# Empty compiler generated dependencies file for realtime_radial.
# This may be replaced when dependencies are built.
