# Empty compiler generated dependencies file for cg_sense.
# This may be replaced when dependencies are built.
