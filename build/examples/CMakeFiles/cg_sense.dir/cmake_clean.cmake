file(REMOVE_RECURSE
  "CMakeFiles/cg_sense.dir/cg_sense.cpp.o"
  "CMakeFiles/cg_sense.dir/cg_sense.cpp.o.d"
  "cg_sense"
  "cg_sense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_sense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
