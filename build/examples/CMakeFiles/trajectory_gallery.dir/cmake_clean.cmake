file(REMOVE_RECURSE
  "CMakeFiles/trajectory_gallery.dir/trajectory_gallery.cpp.o"
  "CMakeFiles/trajectory_gallery.dir/trajectory_gallery.cpp.o.d"
  "trajectory_gallery"
  "trajectory_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
