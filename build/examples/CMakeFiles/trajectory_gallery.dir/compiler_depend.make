# Empty compiler generated dependencies file for trajectory_gallery.
# This may be replaced when dependencies are built.
