# Empty compiler generated dependencies file for jigsaw_asic_demo.
# This may be replaced when dependencies are built.
