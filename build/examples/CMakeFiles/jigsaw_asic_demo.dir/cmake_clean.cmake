file(REMOVE_RECURSE
  "CMakeFiles/jigsaw_asic_demo.dir/jigsaw_asic_demo.cpp.o"
  "CMakeFiles/jigsaw_asic_demo.dir/jigsaw_asic_demo.cpp.o.d"
  "jigsaw_asic_demo"
  "jigsaw_asic_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jigsaw_asic_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
