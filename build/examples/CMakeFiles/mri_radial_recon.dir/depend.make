# Empty dependencies file for mri_radial_recon.
# This may be replaced when dependencies are built.
