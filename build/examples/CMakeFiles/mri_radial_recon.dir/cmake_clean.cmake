file(REMOVE_RECURSE
  "CMakeFiles/mri_radial_recon.dir/mri_radial_recon.cpp.o"
  "CMakeFiles/mri_radial_recon.dir/mri_radial_recon.cpp.o.d"
  "mri_radial_recon"
  "mri_radial_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mri_radial_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
