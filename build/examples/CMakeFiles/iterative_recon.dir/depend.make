# Empty dependencies file for iterative_recon.
# This may be replaced when dependencies are built.
