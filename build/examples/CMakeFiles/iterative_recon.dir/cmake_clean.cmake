file(REMOVE_RECURSE
  "CMakeFiles/iterative_recon.dir/iterative_recon.cpp.o"
  "CMakeFiles/iterative_recon.dir/iterative_recon.cpp.o.d"
  "iterative_recon"
  "iterative_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
