# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;11;jigsaw_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mri_radial_recon "/root/repo/build/examples/mri_radial_recon")
set_tests_properties(example_mri_radial_recon PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;12;jigsaw_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_iterative_recon "/root/repo/build/examples/iterative_recon")
set_tests_properties(example_iterative_recon PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;13;jigsaw_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_jigsaw_asic_demo "/root/repo/build/examples/jigsaw_asic_demo")
set_tests_properties(example_jigsaw_asic_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;14;jigsaw_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trajectory_gallery "/root/repo/build/examples/trajectory_gallery")
set_tests_properties(example_trajectory_gallery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;15;jigsaw_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cg_sense "/root/repo/build/examples/cg_sense")
set_tests_properties(example_cg_sense PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;16;jigsaw_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_realtime_radial "/root/repo/build/examples/realtime_radial")
set_tests_properties(example_realtime_radial PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;17;jigsaw_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_volume_3d "/root/repo/build/examples/volume_3d")
set_tests_properties(example_volume_3d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;18;jigsaw_add_example;/root/repo/examples/CMakeLists.txt;0;")
