# Empty dependencies file for fig6_gridding_speedup.
# This may be replaced when dependencies are built.
