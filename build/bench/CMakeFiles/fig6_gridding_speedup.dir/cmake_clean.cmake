file(REMOVE_RECURSE
  "CMakeFiles/fig6_gridding_speedup.dir/fig6_gridding_speedup.cpp.o"
  "CMakeFiles/fig6_gridding_speedup.dir/fig6_gridding_speedup.cpp.o.d"
  "fig6_gridding_speedup"
  "fig6_gridding_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gridding_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
