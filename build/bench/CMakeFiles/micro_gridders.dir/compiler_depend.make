# Empty compiler generated dependencies file for micro_gridders.
# This may be replaced when dependencies are built.
