file(REMOVE_RECURSE
  "CMakeFiles/micro_gridders.dir/micro_gridders.cpp.o"
  "CMakeFiles/micro_gridders.dir/micro_gridders.cpp.o.d"
  "micro_gridders"
  "micro_gridders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gridders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
