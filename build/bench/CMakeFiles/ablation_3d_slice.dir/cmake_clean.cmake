file(REMOVE_RECURSE
  "CMakeFiles/ablation_3d_slice.dir/ablation_3d_slice.cpp.o"
  "CMakeFiles/ablation_3d_slice.dir/ablation_3d_slice.cpp.o.d"
  "ablation_3d_slice"
  "ablation_3d_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_3d_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
