# Empty compiler generated dependencies file for ablation_3d_slice.
# This may be replaced when dependencies are built.
