# Empty dependencies file for ablation_time_breakdown.
# This may be replaced when dependencies are built.
