file(REMOVE_RECURSE
  "CMakeFiles/ablation_time_breakdown.dir/ablation_time_breakdown.cpp.o"
  "CMakeFiles/ablation_time_breakdown.dir/ablation_time_breakdown.cpp.o.d"
  "ablation_time_breakdown"
  "ablation_time_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_time_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
