file(REMOVE_RECURSE
  "CMakeFiles/ablation_beatty.dir/ablation_beatty.cpp.o"
  "CMakeFiles/ablation_beatty.dir/ablation_beatty.cpp.o.d"
  "ablation_beatty"
  "ablation_beatty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_beatty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
