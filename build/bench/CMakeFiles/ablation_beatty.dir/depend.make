# Empty dependencies file for ablation_beatty.
# This may be replaced when dependencies are built.
