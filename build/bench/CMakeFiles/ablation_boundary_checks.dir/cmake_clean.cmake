file(REMOVE_RECURSE
  "CMakeFiles/ablation_boundary_checks.dir/ablation_boundary_checks.cpp.o"
  "CMakeFiles/ablation_boundary_checks.dir/ablation_boundary_checks.cpp.o.d"
  "ablation_boundary_checks"
  "ablation_boundary_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_boundary_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
