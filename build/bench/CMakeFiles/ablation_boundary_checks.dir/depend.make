# Empty dependencies file for ablation_boundary_checks.
# This may be replaced when dependencies are built.
