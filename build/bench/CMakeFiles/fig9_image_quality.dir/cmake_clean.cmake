file(REMOVE_RECURSE
  "CMakeFiles/fig9_image_quality.dir/fig9_image_quality.cpp.o"
  "CMakeFiles/fig9_image_quality.dir/fig9_image_quality.cpp.o.d"
  "fig9_image_quality"
  "fig9_image_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_image_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
