# Empty dependencies file for fig9_image_quality.
# This may be replaced when dependencies are built.
