# Empty compiler generated dependencies file for table1_parameter_space.
# This may be replaced when dependencies are built.
