file(REMOVE_RECURSE
  "CMakeFiles/table1_parameter_space.dir/table1_parameter_space.cpp.o"
  "CMakeFiles/table1_parameter_space.dir/table1_parameter_space.cpp.o.d"
  "table1_parameter_space"
  "table1_parameter_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_parameter_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
