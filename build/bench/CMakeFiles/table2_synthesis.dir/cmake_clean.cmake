file(REMOVE_RECURSE
  "CMakeFiles/table2_synthesis.dir/table2_synthesis.cpp.o"
  "CMakeFiles/table2_synthesis.dir/table2_synthesis.cpp.o.d"
  "table2_synthesis"
  "table2_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
