# Empty compiler generated dependencies file for table2_synthesis.
# This may be replaced when dependencies are built.
