# Empty dependencies file for fig7_end_to_end_speedup.
# This may be replaced when dependencies are built.
