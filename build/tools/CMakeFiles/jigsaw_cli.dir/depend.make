# Empty dependencies file for jigsaw_cli.
# This may be replaced when dependencies are built.
