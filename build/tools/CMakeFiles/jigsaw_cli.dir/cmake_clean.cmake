file(REMOVE_RECURSE
  "CMakeFiles/jigsaw_cli.dir/jigsaw_cli.cpp.o"
  "CMakeFiles/jigsaw_cli.dir/jigsaw_cli.cpp.o.d"
  "jigsaw_cli"
  "jigsaw_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jigsaw_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
