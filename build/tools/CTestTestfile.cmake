# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_info "/root/repo/build/tools/jigsaw_cli" "info")
set_tests_properties(cli_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_recon "/root/repo/build/tools/jigsaw_cli" "recon" "--n" "64" "--samples" "8000" "--out" "cli_recon_test.pgm")
set_tests_properties(cli_recon PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_grid "/root/repo/build/tools/jigsaw_cli" "grid" "--n" "64" "--samples" "8000" "--engine" "slice-dice")
set_tests_properties(cli_grid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/jigsaw_cli" "simulate" "--n" "64" "--samples" "8000")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_flag "/root/repo/build/tools/jigsaw_cli" "recon" "--bogus" "1")
set_tests_properties(cli_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
