file(REMOVE_RECURSE
  "CMakeFiles/jigsaw_core.dir/density.cpp.o"
  "CMakeFiles/jigsaw_core.dir/density.cpp.o.d"
  "CMakeFiles/jigsaw_core.dir/gridder_base.cpp.o"
  "CMakeFiles/jigsaw_core.dir/gridder_base.cpp.o.d"
  "CMakeFiles/jigsaw_core.dir/gridder_factory.cpp.o"
  "CMakeFiles/jigsaw_core.dir/gridder_factory.cpp.o.d"
  "CMakeFiles/jigsaw_core.dir/io.cpp.o"
  "CMakeFiles/jigsaw_core.dir/io.cpp.o.d"
  "CMakeFiles/jigsaw_core.dir/metrics.cpp.o"
  "CMakeFiles/jigsaw_core.dir/metrics.cpp.o.d"
  "CMakeFiles/jigsaw_core.dir/nudft.cpp.o"
  "CMakeFiles/jigsaw_core.dir/nudft.cpp.o.d"
  "CMakeFiles/jigsaw_core.dir/nufft.cpp.o"
  "CMakeFiles/jigsaw_core.dir/nufft.cpp.o.d"
  "CMakeFiles/jigsaw_core.dir/recon.cpp.o"
  "CMakeFiles/jigsaw_core.dir/recon.cpp.o.d"
  "CMakeFiles/jigsaw_core.dir/sense.cpp.o"
  "CMakeFiles/jigsaw_core.dir/sense.cpp.o.d"
  "libjigsaw_core.a"
  "libjigsaw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jigsaw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
