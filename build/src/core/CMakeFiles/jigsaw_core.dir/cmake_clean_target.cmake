file(REMOVE_RECURSE
  "libjigsaw_core.a"
)
