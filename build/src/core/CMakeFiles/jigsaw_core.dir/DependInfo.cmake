
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/density.cpp" "src/core/CMakeFiles/jigsaw_core.dir/density.cpp.o" "gcc" "src/core/CMakeFiles/jigsaw_core.dir/density.cpp.o.d"
  "/root/repo/src/core/gridder_base.cpp" "src/core/CMakeFiles/jigsaw_core.dir/gridder_base.cpp.o" "gcc" "src/core/CMakeFiles/jigsaw_core.dir/gridder_base.cpp.o.d"
  "/root/repo/src/core/gridder_factory.cpp" "src/core/CMakeFiles/jigsaw_core.dir/gridder_factory.cpp.o" "gcc" "src/core/CMakeFiles/jigsaw_core.dir/gridder_factory.cpp.o.d"
  "/root/repo/src/core/io.cpp" "src/core/CMakeFiles/jigsaw_core.dir/io.cpp.o" "gcc" "src/core/CMakeFiles/jigsaw_core.dir/io.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/jigsaw_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/jigsaw_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/nudft.cpp" "src/core/CMakeFiles/jigsaw_core.dir/nudft.cpp.o" "gcc" "src/core/CMakeFiles/jigsaw_core.dir/nudft.cpp.o.d"
  "/root/repo/src/core/nufft.cpp" "src/core/CMakeFiles/jigsaw_core.dir/nufft.cpp.o" "gcc" "src/core/CMakeFiles/jigsaw_core.dir/nufft.cpp.o.d"
  "/root/repo/src/core/recon.cpp" "src/core/CMakeFiles/jigsaw_core.dir/recon.cpp.o" "gcc" "src/core/CMakeFiles/jigsaw_core.dir/recon.cpp.o.d"
  "/root/repo/src/core/sense.cpp" "src/core/CMakeFiles/jigsaw_core.dir/sense.cpp.o" "gcc" "src/core/CMakeFiles/jigsaw_core.dir/sense.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jigsaw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/jigsaw_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/jigsaw_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/jigsaw_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
