# Empty dependencies file for jigsaw_core.
# This may be replaced when dependencies are built.
