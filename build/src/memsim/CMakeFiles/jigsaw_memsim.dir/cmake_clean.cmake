file(REMOVE_RECURSE
  "CMakeFiles/jigsaw_memsim.dir/cache.cpp.o"
  "CMakeFiles/jigsaw_memsim.dir/cache.cpp.o.d"
  "libjigsaw_memsim.a"
  "libjigsaw_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jigsaw_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
