file(REMOVE_RECURSE
  "libjigsaw_memsim.a"
)
