# Empty dependencies file for jigsaw_memsim.
# This may be replaced when dependencies are built.
