file(REMOVE_RECURSE
  "libjigsaw_trajectory.a"
)
