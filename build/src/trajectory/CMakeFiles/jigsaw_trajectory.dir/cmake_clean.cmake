file(REMOVE_RECURSE
  "CMakeFiles/jigsaw_trajectory.dir/phantom.cpp.o"
  "CMakeFiles/jigsaw_trajectory.dir/phantom.cpp.o.d"
  "CMakeFiles/jigsaw_trajectory.dir/trajectory.cpp.o"
  "CMakeFiles/jigsaw_trajectory.dir/trajectory.cpp.o.d"
  "libjigsaw_trajectory.a"
  "libjigsaw_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jigsaw_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
