
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trajectory/phantom.cpp" "src/trajectory/CMakeFiles/jigsaw_trajectory.dir/phantom.cpp.o" "gcc" "src/trajectory/CMakeFiles/jigsaw_trajectory.dir/phantom.cpp.o.d"
  "/root/repo/src/trajectory/trajectory.cpp" "src/trajectory/CMakeFiles/jigsaw_trajectory.dir/trajectory.cpp.o" "gcc" "src/trajectory/CMakeFiles/jigsaw_trajectory.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jigsaw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/jigsaw_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
