# Empty dependencies file for jigsaw_trajectory.
# This may be replaced when dependencies are built.
