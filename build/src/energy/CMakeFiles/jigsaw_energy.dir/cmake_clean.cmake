file(REMOVE_RECURSE
  "CMakeFiles/jigsaw_energy.dir/asic_model.cpp.o"
  "CMakeFiles/jigsaw_energy.dir/asic_model.cpp.o.d"
  "CMakeFiles/jigsaw_energy.dir/gpu_model.cpp.o"
  "CMakeFiles/jigsaw_energy.dir/gpu_model.cpp.o.d"
  "libjigsaw_energy.a"
  "libjigsaw_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jigsaw_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
