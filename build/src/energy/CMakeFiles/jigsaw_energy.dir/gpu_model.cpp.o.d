src/energy/CMakeFiles/jigsaw_energy.dir/gpu_model.cpp.o: \
 /root/repo/src/energy/gpu_model.cpp /usr/include/stdc-predef.h \
 /root/repo/src/energy/gpu_model.hpp
