# Empty compiler generated dependencies file for jigsaw_energy.
# This may be replaced when dependencies are built.
