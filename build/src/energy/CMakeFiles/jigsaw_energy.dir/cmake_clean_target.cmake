file(REMOVE_RECURSE
  "libjigsaw_energy.a"
)
