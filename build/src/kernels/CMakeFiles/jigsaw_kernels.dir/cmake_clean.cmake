file(REMOVE_RECURSE
  "CMakeFiles/jigsaw_kernels.dir/bessel.cpp.o"
  "CMakeFiles/jigsaw_kernels.dir/bessel.cpp.o.d"
  "CMakeFiles/jigsaw_kernels.dir/kernel.cpp.o"
  "CMakeFiles/jigsaw_kernels.dir/kernel.cpp.o.d"
  "CMakeFiles/jigsaw_kernels.dir/lut.cpp.o"
  "CMakeFiles/jigsaw_kernels.dir/lut.cpp.o.d"
  "libjigsaw_kernels.a"
  "libjigsaw_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jigsaw_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
