file(REMOVE_RECURSE
  "libjigsaw_kernels.a"
)
