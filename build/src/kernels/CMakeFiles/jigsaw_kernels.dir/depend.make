# Empty dependencies file for jigsaw_kernels.
# This may be replaced when dependencies are built.
