file(REMOVE_RECURSE
  "libjigsaw_sim.a"
)
