file(REMOVE_RECURSE
  "CMakeFiles/jigsaw_sim.dir/cycle_sim.cpp.o"
  "CMakeFiles/jigsaw_sim.dir/cycle_sim.cpp.o.d"
  "CMakeFiles/jigsaw_sim.dir/pipeline_trace.cpp.o"
  "CMakeFiles/jigsaw_sim.dir/pipeline_trace.cpp.o.d"
  "libjigsaw_sim.a"
  "libjigsaw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jigsaw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
