# Empty compiler generated dependencies file for jigsaw_sim.
# This may be replaced when dependencies are built.
