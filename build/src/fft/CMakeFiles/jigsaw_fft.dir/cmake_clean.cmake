file(REMOVE_RECURSE
  "CMakeFiles/jigsaw_fft.dir/fft.cpp.o"
  "CMakeFiles/jigsaw_fft.dir/fft.cpp.o.d"
  "libjigsaw_fft.a"
  "libjigsaw_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jigsaw_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
