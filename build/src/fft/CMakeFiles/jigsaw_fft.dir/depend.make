# Empty dependencies file for jigsaw_fft.
# This may be replaced when dependencies are built.
