file(REMOVE_RECURSE
  "libjigsaw_fft.a"
)
