file(REMOVE_RECURSE
  "libjigsaw_common.a"
)
