file(REMOVE_RECURSE
  "CMakeFiles/jigsaw_common.dir/cli.cpp.o"
  "CMakeFiles/jigsaw_common.dir/cli.cpp.o.d"
  "CMakeFiles/jigsaw_common.dir/pgm.cpp.o"
  "CMakeFiles/jigsaw_common.dir/pgm.cpp.o.d"
  "CMakeFiles/jigsaw_common.dir/table.cpp.o"
  "CMakeFiles/jigsaw_common.dir/table.cpp.o.d"
  "CMakeFiles/jigsaw_common.dir/thread_pool.cpp.o"
  "CMakeFiles/jigsaw_common.dir/thread_pool.cpp.o.d"
  "libjigsaw_common.a"
  "libjigsaw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jigsaw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
