# Empty dependencies file for jigsaw_common.
# This may be replaced when dependencies are built.
