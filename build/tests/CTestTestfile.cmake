# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_fixed[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_trajectory[1]_include.cmake")
include("/root/repo/build/tests/test_phantom[1]_include.cmake")
include("/root/repo/build/tests/test_memsim[1]_include.cmake")
include("/root/repo/build/tests/test_gridders[1]_include.cmake")
include("/root/repo/build/tests/test_gridder_stats[1]_include.cmake")
include("/root/repo/build/tests/test_jigsaw_fixed[1]_include.cmake")
include("/root/repo/build/tests/test_cycle_sim[1]_include.cmake")
include("/root/repo/build/tests/test_nufft[1]_include.cmake")
include("/root/repo/build/tests/test_recon[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_gridder[1]_include.cmake")
include("/root/repo/build/tests/test_sense[1]_include.cmake")
include("/root/repo/build/tests/test_dma[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_trace[1]_include.cmake")
include("/root/repo/build/tests/test_property_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_float_gridder[1]_include.cmake")
include("/root/repo/build/tests/test_batch[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_tracer_integration[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
