
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/test_cli.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/test_cli.dir/test_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/jigsaw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/jigsaw/CMakeFiles/jigsaw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trajectory/CMakeFiles/jigsaw_trajectory.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/jigsaw_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/jigsaw_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/jigsaw_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/jigsaw_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jigsaw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
