file(REMOVE_RECURSE
  "CMakeFiles/test_jigsaw_fixed.dir/test_jigsaw_fixed.cpp.o"
  "CMakeFiles/test_jigsaw_fixed.dir/test_jigsaw_fixed.cpp.o.d"
  "test_jigsaw_fixed"
  "test_jigsaw_fixed.pdb"
  "test_jigsaw_fixed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jigsaw_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
