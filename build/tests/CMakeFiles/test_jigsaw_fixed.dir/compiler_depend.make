# Empty compiler generated dependencies file for test_jigsaw_fixed.
# This may be replaced when dependencies are built.
