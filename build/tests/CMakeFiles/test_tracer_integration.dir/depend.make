# Empty dependencies file for test_tracer_integration.
# This may be replaced when dependencies are built.
