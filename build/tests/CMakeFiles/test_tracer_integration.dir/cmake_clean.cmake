file(REMOVE_RECURSE
  "CMakeFiles/test_tracer_integration.dir/test_tracer_integration.cpp.o"
  "CMakeFiles/test_tracer_integration.dir/test_tracer_integration.cpp.o.d"
  "test_tracer_integration"
  "test_tracer_integration.pdb"
  "test_tracer_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracer_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
