# Empty dependencies file for test_gridders.
# This may be replaced when dependencies are built.
