file(REMOVE_RECURSE
  "CMakeFiles/test_gridders.dir/test_gridders.cpp.o"
  "CMakeFiles/test_gridders.dir/test_gridders.cpp.o.d"
  "test_gridders"
  "test_gridders.pdb"
  "test_gridders[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gridders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
