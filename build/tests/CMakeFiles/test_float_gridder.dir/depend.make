# Empty dependencies file for test_float_gridder.
# This may be replaced when dependencies are built.
