file(REMOVE_RECURSE
  "CMakeFiles/test_float_gridder.dir/test_float_gridder.cpp.o"
  "CMakeFiles/test_float_gridder.dir/test_float_gridder.cpp.o.d"
  "test_float_gridder"
  "test_float_gridder.pdb"
  "test_float_gridder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_float_gridder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
