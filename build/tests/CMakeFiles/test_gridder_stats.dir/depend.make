# Empty dependencies file for test_gridder_stats.
# This may be replaced when dependencies are built.
