file(REMOVE_RECURSE
  "CMakeFiles/test_gridder_stats.dir/test_gridder_stats.cpp.o"
  "CMakeFiles/test_gridder_stats.dir/test_gridder_stats.cpp.o.d"
  "test_gridder_stats"
  "test_gridder_stats.pdb"
  "test_gridder_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gridder_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
