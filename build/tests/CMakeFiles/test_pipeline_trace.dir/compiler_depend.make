# Empty compiler generated dependencies file for test_pipeline_trace.
# This may be replaced when dependencies are built.
