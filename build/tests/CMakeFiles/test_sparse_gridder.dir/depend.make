# Empty dependencies file for test_sparse_gridder.
# This may be replaced when dependencies are built.
