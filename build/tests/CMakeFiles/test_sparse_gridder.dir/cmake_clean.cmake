file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_gridder.dir/test_sparse_gridder.cpp.o"
  "CMakeFiles/test_sparse_gridder.dir/test_sparse_gridder.cpp.o.d"
  "test_sparse_gridder"
  "test_sparse_gridder.pdb"
  "test_sparse_gridder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_gridder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
