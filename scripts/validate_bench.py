#!/usr/bin/env python3
"""Validate a bench_suite BENCH_<tag>.json against scripts/bench_schema.json.

Usage:
    validate_bench.py BENCH.json [--schema scripts/bench_schema.json]
        [--require-counters]
    validate_bench.py wisdom.json          # autotuner wisdom store

Stdlib-only on purpose (CI boxes have no jsonschema); the schema file uses
a small declarative subset documented in its $comment. --require-counters
additionally fails unless every benchmark entry carries a non-empty
"counters" block and the document says obs_enabled — the CI assertion that
a JIGSAW_OBS=ON build actually counted its work.

A document whose "kind" is "jigsaw-wisdom" (the autotuner's persistent
store, src/tune/wisdom.cpp) is validated against scripts/wisdom_schema.json
instead, plus wisdom-specific invariants: every entry's engine must be a
concrete known engine (never "auto"), and every key must be 16 lowercase
hex digits.
"""
import argparse
import json
import os
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    # bool is an int subclass in Python; exclude it explicitly.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
}


def check(value, schema, path, errors):
    expected = schema.get("type")
    if expected and not TYPE_CHECKS[expected](value):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    if "minimum" in schema and TYPE_CHECKS["number"](value):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if expected == "object":
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key \"{key}\"")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                check(value[key], sub, f"{path}.{key}", errors)
        vt = schema.get("valuesType")
        vmin = schema.get("valuesMinimum")
        prefixes = schema.get("keyPrefixOneOf")
        for key, v in value.items():
            if key in schema.get("properties", {}):
                continue
            if vt and not TYPE_CHECKS[vt](v):
                errors.append(f"{path}.{key}: expected {vt} value, "
                              f"got {type(v).__name__}")
            if vmin is not None and TYPE_CHECKS["number"](v) and v < vmin:
                errors.append(f"{path}.{key}: {v} < minimum {vmin}")
            if prefixes and not any(key.startswith(p) for p in prefixes):
                errors.append(f"{path}.{key}: counter name outside the known "
                              f"families {prefixes}")
    elif expected == "array" and "items" in schema:
        for i, item in enumerate(value):
            check(item, schema["items"], f"{path}[{i}]", errors)


# Engine names as serialized by core::to_string(GridderKind) — the only
# values a wisdom entry's "engine" field may take ("auto" is a request, not
# a decision, and must never be persisted).
WISDOM_ENGINES = {"serial", "output-driven", "binning", "slice-and-dice",
                  "jigsaw", "sparse-matrix", "serial-f32"}
# Engines with a vectorized twin: the only ones a wisdom entry may mark
# "simd": true ("engine" stays the concrete scalar name; the flag selects
# the SIMD kernel table at plan time). Matches core::gridder_kind_has_simd.
WISDOM_SIMD_ENGINES = {"serial", "binning", "slice-and-dice"}
WISDOM_KEY_HEX = 16


def check_wisdom(doc, errors):
    """Wisdom-specific invariants beyond the declarative schema."""
    if doc.get("kind") != "jigsaw-wisdom":
        errors.append("$.kind: expected \"jigsaw-wisdom\"")
    seen = set()
    for i, e in enumerate(doc.get("entries", [])):
        if not isinstance(e, dict):
            continue
        engine = e.get("engine")
        if engine not in WISDOM_ENGINES:
            errors.append(f"$.entries[{i}].engine: \"{engine}\" is not a "
                          f"concrete engine (valid: {sorted(WISDOM_ENGINES)})")
        if e.get("simd") and engine not in WISDOM_SIMD_ENGINES:
            errors.append(f"$.entries[{i}].simd: true, but \"{engine}\" has "
                          f"no SIMD variant (valid: "
                          f"{sorted(WISDOM_SIMD_ENGINES)})")
        key = e.get("key", "")
        if not (isinstance(key, str) and len(key) == WISDOM_KEY_HEX
                and all(c in "0123456789abcdef" for c in key)):
            errors.append(f"$.entries[{i}].key: \"{key}\" is not "
                          f"{WISDOM_KEY_HEX} lowercase hex digits")
        elif key in seen:
            errors.append(f"$.entries[{i}].key: duplicate key \"{key}\"")
        else:
            seen.add(key)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench")
    ap.add_argument("--schema",
                    default=os.path.join(os.path.dirname(__file__),
                                         "bench_schema.json"))
    ap.add_argument("--require-counters", action="store_true",
                    help="fail unless obs_enabled and every entry has counters")
    args = ap.parse_args()

    with open(args.bench) as f:
        doc = json.load(f)

    errors = []
    if isinstance(doc, dict) and doc.get("kind") == "jigsaw-wisdom":
        wisdom_schema = os.path.join(os.path.dirname(__file__),
                                     "wisdom_schema.json")
        with open(wisdom_schema) as f:
            schema = json.load(f)
        check(doc, schema, "$", errors)
        check_wisdom(doc, errors)
        if errors:
            print(f"{args.bench}: {len(errors)} schema violation(s):",
                  file=sys.stderr)
            for e in errors:
                print("  " + e, file=sys.stderr)
            return 1
        print(f"OK: {args.bench} valid wisdom store "
              f"({len(doc.get('entries', []))} entries, "
              f"schema_version={doc.get('schema_version')})")
        return 0

    with open(args.schema) as f:
        schema = json.load(f)
    check(doc, schema, "$", errors)

    # A document that carries a "serve" block (bench_serve output) must have
    # actual results in it — an empty array means the benchmark ran nothing.
    if "serve" in doc and not errors:
        serve = doc["serve"]
        if not serve:
            errors.append("$.serve: present but empty — bench_serve must "
                          "record at least one closed-loop result")
        else:
            for i, r in enumerate(serve):
                if not isinstance(r, dict):
                    continue
                if r.get("requests") and not r.get("ok"):
                    errors.append(f"$.serve[{i}] ({r.get('name')}): "
                                  "no request completed OK")
                # Routed results: the worker shares must add up to the run's
                # totals — a mismatch means the router dropped or double-
                # counted requests somewhere.
                if "per_worker" in r:
                    pw = r["per_worker"]
                    if not pw:
                        errors.append(f"$.serve[{i}] ({r.get('name')}): "
                                      "per_worker present but empty")
                    elif all(isinstance(w, dict) for w in pw):
                        total = sum(w.get("requests", 0) for w in pw)
                        if total != r.get("requests"):
                            errors.append(
                                f"$.serve[{i}] ({r.get('name')}): per-worker "
                                f"requests sum to {total}, expected "
                                f"{r.get('requests')}")

    # A "stream" block (bench_stream output) must likewise be non-empty, and
    # every frame pushed into a session must be accounted for by exactly one
    # terminal status — frames != ok + timeout means the session dropped or
    # double-answered a frame.
    if "stream" in doc and not errors:
        stream = doc["stream"]
        if not stream:
            errors.append("$.stream: present but empty — bench_stream must "
                          "record at least one session result")
        else:
            for i, r in enumerate(stream):
                if not isinstance(r, dict):
                    continue
                accounted = r.get("ok", 0) + r.get("timeout", 0)
                if r.get("frames") != accounted:
                    errors.append(
                        f"$.stream[{i}] ({r.get('name')}): {r.get('frames')} "
                        f"frames pushed but only {accounted} accounted for "
                        "(ok + timeout)")
                if r.get("warm_start") and not r.get("warm_frames"):
                    errors.append(
                        f"$.stream[{i}] ({r.get('name')}): warm_start run "
                        "completed no warm frames")

    # A "dataset" block (bench_suite JKSD ingest) must account for every
    # chunk the header promised — ok + rejected — and at least one chunk
    # must have survived, or the "benchmark" reconstructed nothing.
    if "dataset" in doc and not errors:
        d = doc["dataset"]
        if isinstance(d, dict):
            ok = d.get("chunks_ok", 0)
            rejected = d.get("chunks_rejected", 0)
            if d.get("chunks") != ok + rejected:
                errors.append(
                    f"$.dataset: {d.get('chunks')} chunks but "
                    f"{ok} ok + {rejected} rejected don't account for them")
            if not ok:
                errors.append("$.dataset: no chunk survived ingest — the "
                              "recon driver had nothing to reconstruct")

    if args.require_counters and not errors:
        if not doc.get("obs_enabled"):
            errors.append("$.obs_enabled: --require-counters given but the "
                          "producing build had JIGSAW_OBS=OFF")
        else:
            for i, b in enumerate(doc.get("benchmarks", [])):
                if not b.get("counters"):
                    errors.append(f"$.benchmarks[{i}] ({b.get('name')}): "
                                  "missing or empty counters block")

    if errors:
        print(f"{args.bench}: {len(errors)} schema violation(s):",
              file=sys.stderr)
        for e in errors:
            print("  " + e, file=sys.stderr)
        return 1
    n = len(doc.get("benchmarks", []))
    with_counters = sum(1 for b in doc.get("benchmarks", []) if b.get("counters"))
    n_serve = len(doc.get("serve", []))
    n_stream = len(doc.get("stream", []))
    ds = doc.get("dataset")
    ds_note = (f", dataset {ds.get('chunks_ok')}/{ds.get('chunks')} chunks"
               if isinstance(ds, dict) else "")
    print(f"OK: {args.bench} valid ({n} benchmarks, {with_counters} with "
          f"counters, {n_serve} serve results, {n_stream} stream results"
          f"{ds_note}, obs_enabled={doc.get('obs_enabled')})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
