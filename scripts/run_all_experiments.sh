#!/usr/bin/env bash
# Regenerate every paper artifact (tables, figures, ablations) plus the
# example applications, mirroring the EXPERIMENTS.md record.
set -u
BUILD="${1:-build}"

echo "== configure + build"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

echo "== test suite"
ctest --test-dir "$BUILD" --output-on-failure

echo "== paper artifacts (bench/)"
for b in "$BUILD"/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "--- $(basename "$b")"
    "$b"
  fi
done

echo "== examples"
for e in "$BUILD"/examples/*; do
  if [ -f "$e" ] && [ -x "$e" ]; then
    echo "--- $(basename "$e")"
    "$e"
  fi
done
