#!/usr/bin/env bash
# CI pipeline: tiered tests + benchmark regression gate.
#
#   1. plain build, tier-1 tests (ctest -L tier1 — the fast gate set)
#   2. ASan+UBSan build (JIGSAW_SANITIZE=ON), tier-1 tests — includes the
#      thread-invariance and plan-cache concurrency suites, so the
#      coil-parallel paths run sanitized on every CI pass
#   3. bench_suite --smoke compared against the committed BENCH_baseline.json
#      (fails on >15% slowdown or any checksum drift; see
#      docs/benchmarking.md for the baseline refresh policy)
#
# JIGSAW_CI_FULL=1 widens both test runs to the complete suite (tier1 +
# tier2 soak tests) — what the merge gate runs; the default is the fast
# inner-loop configuration.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

TEST_ARGS=(--output-on-failure -j"${JOBS}")
if [[ "${JIGSAW_CI_FULL:-0}" != "1" ]]; then
  TEST_ARGS+=(-L tier1)
  echo "=== tier-1 run (JIGSAW_CI_FULL=1 for the full suite) ==="
else
  echo "=== full-suite run ==="
fi

echo "=== plain build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build "${TEST_ARGS[@]}"

echo "=== ASan+UBSan build + ctest ==="
cmake -B build-asan -S . -DJIGSAW_SANITIZE=ON >/dev/null
cmake --build build-asan -j"${JOBS}"
ctest --test-dir build-asan "${TEST_ARGS[@]}"

echo "=== benchmark smoke + regression gate ==="
./build/bench/bench_suite --smoke --tag ci --out build/BENCH_ci.json
python3 scripts/bench_compare.py BENCH_baseline.json build/BENCH_ci.json

echo "=== CI green: tests + sanitizers + benchmark gate pass ==="
