#!/usr/bin/env bash
# CI pipeline: tiered tests + benchmark regression gate.
#
#   1. plain build (JIGSAW_OBS=ON, the default), tier-1 tests
#      (ctest -L tier1 — the fast gate set)
#   2. JIGSAW_OBS=OFF build, tier-1 tests — proves the no-op observability
#      stubs compile everywhere and nothing depends on counters existing
#   3. ASan+UBSan build (JIGSAW_SANITIZE=ON), tier-1 tests — includes the
#      thread-invariance, plan-cache, and counter-shard concurrency suites,
#      so the lock-free counter paths run sanitized on every CI pass
#   3a. the SIMD kernel/differential/thread-invariance suites rerun from
#      the ASan build with JIGSAW_SIMD=scalar — sanitized coverage for the
#      portable staged-scalar dispatch path, not just the host's best ISA
#   3b. TSan build (JIGSAW_TSAN=ON) of the serve/deadline suites — the
#      service layer's dispatcher + connection threads and the deadline
#      token run under ThreadSanitizer on every CI pass
#   4. bench_suite --smoke (obs ON) compared against the committed
#      BENCH_baseline.json — fails on >15% slowdown, any checksum drift,
#      or any work-counter drift (see scripts/bench_compare.py); the JSON
#      is schema-validated with counters required
#   4b. jigsaw_tune smoke — calibrates two tiny geometries into a fresh
#      wisdom store, schema-validates it, then reruns with --expect-hits:
#      a cold process must serve both decisions from the reloaded store
#      with zero new trials (the wisdom persistence round-trip)
#   5. bench_suite --smoke from the OFF build compared against the same
#      baseline — the overhead guard: a disabled observability layer must
#      bench within the ordinary noise threshold
#
# JIGSAW_CI_FULL=1 widens the test runs to the complete suite (tier1 +
# tier2 soak tests) — what the merge gate runs; the default is the fast
# inner-loop configuration.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

TEST_ARGS=(--output-on-failure -j"${JOBS}")
if [[ "${JIGSAW_CI_FULL:-0}" != "1" ]]; then
  TEST_ARGS+=(-L tier1)
  echo "=== tier-1 run (JIGSAW_CI_FULL=1 for the full suite) ==="
else
  echo "=== full-suite run ==="
fi

echo "=== plain build (JIGSAW_OBS=ON) + ctest ==="
cmake -B build -S . -DJIGSAW_OBS=ON >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build "${TEST_ARGS[@]}"

echo "=== JIGSAW_OBS=OFF build + ctest ==="
cmake -B build-noobs -S . -DJIGSAW_OBS=OFF >/dev/null
cmake --build build-noobs -j"${JOBS}"
ctest --test-dir build-noobs "${TEST_ARGS[@]}"

echo "=== ASan+UBSan build + ctest ==="
cmake -B build-asan -S . -DJIGSAW_SANITIZE=ON >/dev/null
cmake --build build-asan -j"${JOBS}"
ctest --test-dir build-asan "${TEST_ARGS[@]}"

echo "=== ASan+UBSan SIMD kernel suites, forced-scalar dispatch ==="
# The tier-1 ASan pass above already ran the SIMD suites under whichever
# ISA the dispatcher picked on this machine; rerun them with
# JIGSAW_SIMD=scalar so the portable staged-scalar kernel table (the path
# hosts without vector units take, and the wrapped-edge fallback every ISA
# shares) gets sanitizer coverage on every CI run too.
JIGSAW_SIMD=scalar ctest --test-dir build-asan --output-on-failure \
  -j"${JOBS}" -R 'Simd|Differential|ThreadInvariance'

echo "=== TSan build + serve/deadline concurrency suites ==="
# The service layer is the most thread-heavy subsystem (dispatcher thread,
# per-connection readers, concurrent clients); run exactly those suites
# under ThreadSanitizer. Bench/examples are skipped to keep the stage short.
cmake -B build-tsan -S . -DJIGSAW_TSAN=ON \
  -DJIGSAW_BUILD_BENCH=OFF -DJIGSAW_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j"${JOBS}" --target test_serve test_deadline
ctest --test-dir build-tsan --output-on-failure -j"${JOBS}" \
  -R 'Serve|Deadline'

echo "=== benchmark smoke + regression/work gate (obs ON) ==="
./build/bench/bench_suite --smoke --tag ci --out build/BENCH_ci.json
python3 scripts/validate_bench.py build/BENCH_ci.json --require-counters
python3 scripts/bench_compare.py BENCH_baseline.json build/BENCH_ci.json --smoke

echo "=== serve throughput smoke + schema gate ==="
# Latency numbers are machine-dependent, so there is no regression compare;
# the gate is schema validity plus every closed-loop request completing OK.
./build/bench/bench_serve --smoke --tag ci-serve \
  --out build/BENCH_ci-serve.json
python3 scripts/validate_bench.py build/BENCH_ci-serve.json

echo "=== autotuner smoke + wisdom persistence gate ==="
# Calibrate two tiny geometries into a throwaway wisdom store, validate the
# store's schema, then rerun the same geometries from a cold process:
# --expect-hits fails the stage unless every decision came from the reloaded
# store with zero new trials — the persistence round-trip, end to end.
# (--expect-hits must follow the positionals: boolean flags would otherwise
# swallow the next token as their value.)
TUNE_WISDOM=build/ci_wisdom.json
rm -f "${TUNE_WISDOM}"
./build/tools/jigsaw_tune --wisdom "${TUNE_WISDOM}" 48x4000 64x8192
python3 scripts/validate_bench.py "${TUNE_WISDOM}"
./build/tools/jigsaw_tune --wisdom "${TUNE_WISDOM}" 48x4000 64x8192 \
  --expect-hits

echo "=== observability overhead guard (obs OFF) ==="
./build-noobs/bench/bench_suite --smoke --tag ci-noobs \
  --out build-noobs/BENCH_ci-noobs.json
python3 scripts/validate_bench.py build-noobs/BENCH_ci-noobs.json
python3 scripts/bench_compare.py BENCH_baseline.json \
  build-noobs/BENCH_ci-noobs.json --smoke

echo "=== CI green: tests + sanitizers + benchmark/work/overhead gates pass ==="
