#!/usr/bin/env bash
# CI pipeline: tiered tests + benchmark regression gate.
#
#   1. plain build (JIGSAW_OBS=ON, the default), tier-1 tests
#      (ctest -L tier1 — the fast gate set)
#   2. JIGSAW_OBS=OFF build, tier-1 tests — proves the no-op observability
#      stubs compile everywhere and nothing depends on counters existing
#   3. ASan+UBSan build (JIGSAW_SANITIZE=ON), tier-1 tests — includes the
#      thread-invariance, plan-cache, and counter-shard concurrency suites,
#      so the lock-free counter paths run sanitized on every CI pass
#   3a. the SIMD kernel/differential/thread-invariance suites rerun from
#      the ASan build with JIGSAW_SIMD=scalar — sanitized coverage for the
#      portable staged-scalar dispatch path, not just the host's best ISA
#   3b. TSan build (JIGSAW_TSAN=ON) of the serve/deadline/router/stream
#      suites — the service layer's dispatcher + connection threads, the
#      deadline token, the router's forwarder + health-ping threads, and
#      the streaming-session machinery run under ThreadSanitizer on every
#      CI pass
#   4. bench_suite --smoke (obs ON) compared against the committed
#      BENCH_baseline.json — fails on >15% slowdown, any checksum drift,
#      or any work-counter drift (see scripts/bench_compare.py); the JSON
#      is schema-validated with counters required
#   4b. jigsaw_tune smoke — calibrates two tiny geometries into a fresh
#      wisdom store, schema-validates it, then reruns with --expect-hits:
#      a cold process must serve both decisions from the reloaded store
#      with zero new trials (the wisdom persistence round-trip)
#   4c. router smoke — two jigsaw_serve workers (one TCP, one Unix socket)
#      behind jigsaw_router on an ephemeral TCP port; interleaved requests
#      across three geometry classes must all relay, each class must pin to
#      exactly one worker (shard counts read from the router's stats JSON),
#      and SIGTERM must drain router and workers to a clean exit 0
#   4d. dataset smoke — jigsaw_dataset generate -> validate -> jigsaw_cli
#      recon --dataset with Pipe-Menon DCF under an NRMSE <= 0.30 quality
#      gate, then a mid-file byte flip: validate must exit 2 naming the
#      rejected chunk and the recon must complete on the survivors
#   5. bench_suite --smoke from the OFF build compared against the same
#      baseline — the overhead guard: a disabled observability layer must
#      bench within the ordinary noise threshold
#
# JIGSAW_CI_FULL=1 widens the test runs to the complete suite (tier1 +
# tier2 soak tests) — what the merge gate runs; the default is the fast
# inner-loop configuration.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

TEST_ARGS=(--output-on-failure -j"${JOBS}")
if [[ "${JIGSAW_CI_FULL:-0}" != "1" ]]; then
  TEST_ARGS+=(-L tier1)
  echo "=== tier-1 run (JIGSAW_CI_FULL=1 for the full suite) ==="
else
  echo "=== full-suite run ==="
fi

echo "=== plain build (JIGSAW_OBS=ON) + ctest ==="
cmake -B build -S . -DJIGSAW_OBS=ON >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build "${TEST_ARGS[@]}"

echo "=== JIGSAW_OBS=OFF build + ctest ==="
cmake -B build-noobs -S . -DJIGSAW_OBS=OFF >/dev/null
cmake --build build-noobs -j"${JOBS}"
ctest --test-dir build-noobs "${TEST_ARGS[@]}"

echo "=== ASan+UBSan build + ctest ==="
cmake -B build-asan -S . -DJIGSAW_SANITIZE=ON >/dev/null
cmake --build build-asan -j"${JOBS}"
ctest --test-dir build-asan "${TEST_ARGS[@]}"

echo "=== ASan+UBSan SIMD kernel suites, forced-scalar dispatch ==="
# The tier-1 ASan pass above already ran the SIMD suites under whichever
# ISA the dispatcher picked on this machine; rerun them with
# JIGSAW_SIMD=scalar so the portable staged-scalar kernel table (the path
# hosts without vector units take, and the wrapped-edge fallback every ISA
# shares) gets sanitizer coverage on every CI run too.
JIGSAW_SIMD=scalar ctest --test-dir build-asan --output-on-failure \
  -j"${JOBS}" -R 'Simd|Differential|ThreadInvariance'

echo "=== TSan build + serve/deadline/router/stream concurrency suites ==="
# The service layer is the most thread-heavy subsystem (dispatcher thread,
# per-connection readers, concurrent clients, the router's forwarders +
# health pinger, and the session dispatcher shared by streaming frames);
# run exactly those suites under ThreadSanitizer. Bench/examples are
# skipped to keep the stage short.
cmake -B build-tsan -S . -DJIGSAW_TSAN=ON \
  -DJIGSAW_BUILD_BENCH=OFF -DJIGSAW_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j"${JOBS}" --target test_serve test_deadline \
  test_router test_stream
ctest --test-dir build-tsan --output-on-failure -j"${JOBS}" \
  -R 'Serve|Deadline|Router|Stream'

echo "=== benchmark smoke + regression/work gate (obs ON) ==="
./build/bench/bench_suite --smoke --tag ci --out build/BENCH_ci.json
python3 scripts/validate_bench.py build/BENCH_ci.json --require-counters
python3 scripts/bench_compare.py BENCH_baseline.json build/BENCH_ci.json --smoke

echo "=== serve throughput smoke + schema gate ==="
# Latency numbers are machine-dependent, so there is no regression compare;
# the gate is schema validity plus every closed-loop request completing OK.
./build/bench/bench_serve --smoke --tag ci-serve \
  --out build/BENCH_ci-serve.json
python3 scripts/validate_bench.py build/BENCH_ci-serve.json
# Routed mode: a 2-worker fleet behind an in-process router. The validator
# cross-checks the per-worker request shares against the run's totals.
./build/bench/bench_serve --smoke --workers 2 --tag ci-routed \
  --out build/BENCH_ci-routed.json
python3 scripts/validate_bench.py build/BENCH_ci-routed.json

echo "=== streaming smoke + warm-start gate ==="
# Cold vs warm frame sequences through the routed tier. bench_stream exits
# non-zero unless every frame completes OK and warm-start saves >= 30% of
# the total CG iterations at equal per-frame NRMSE; the validator then
# checks the "stream" block accounts for every pushed frame.
./build/bench/bench_stream --smoke --tag ci-stream \
  --out build/BENCH_ci-stream.json
python3 scripts/validate_bench.py build/BENCH_ci-stream.json

echo "=== autotuner smoke + wisdom persistence gate ==="
# Calibrate two tiny geometries into a throwaway wisdom store, validate the
# store's schema, then rerun the same geometries from a cold process:
# --expect-hits fails the stage unless every decision came from the reloaded
# store with zero new trials — the persistence round-trip, end to end.
# (--expect-hits must follow the positionals: boolean flags would otherwise
# swallow the next token as their value.)
TUNE_WISDOM=build/ci_wisdom.json
rm -f "${TUNE_WISDOM}"
./build/tools/jigsaw_tune --wisdom "${TUNE_WISDOM}" 48x4000 64x8192
python3 scripts/validate_bench.py "${TUNE_WISDOM}"
./build/tools/jigsaw_tune --wisdom "${TUNE_WISDOM}" 48x4000 64x8192 \
  --expect-hits

echo "=== dataset smoke: generate -> validate -> recon + corruption gate ==="
# End-to-end ingest path: synthesize a multi-coil JKSD acquisition, validate
# its checksums, reconstruct it through jigsaw_cli with Pipe-Menon DCF (the
# NRMSE quality gate), then flip bytes mid-file and require (a) validate to
# exit 2 naming the rejected chunk and (b) the recon to proceed on the
# surviving chunks — per-chunk corruption must never be fatal.
(
  DSMOKE=build/dataset_smoke
  rm -rf "${DSMOKE}" && mkdir -p "${DSMOKE}"
  ./build/tools/jigsaw_dataset generate --out "${DSMOKE}/scan.jksd" \
    --n 64 --coils 8 --chunks 3 --samples-per-chunk 6000 --seed 7
  ./build/tools/jigsaw_dataset validate "${DSMOKE}/scan.jksd"
  ./build/tools/jigsaw_cli recon --dataset "${DSMOKE}/scan.jksd" --coils 8 \
    --engine auto --dcf pipe-menon --out "${DSMOKE}/recon.pgm" \
    | tee "${DSMOKE}/recon.log"
  python3 - "${DSMOKE}/recon.log" <<'PYEOF'
import re, sys
log = open(sys.argv[1]).read()
m = re.search(r"dataset recon: mean NRMSE ([0-9.]+) over (\d+) chunks", log)
assert m, log
nrmse, chunks = float(m.group(1)), int(m.group(2))
assert chunks == 3, (chunks, "a chunk went missing on a clean file")
assert nrmse <= 0.30, (nrmse, "DCF-corrected recon quality gate")
print(f"dataset smoke: clean file, {chunks}/3 chunks, "
      f"NRMSE {nrmse:.4f} <= 0.30")
PYEOF

  head -c 64 /dev/zero | tr '\0' 'J' \
    | dd of="${DSMOKE}/scan.jksd" bs=1 seek=4096 conv=notrunc 2>/dev/null
  set +e
  ./build/tools/jigsaw_dataset validate "${DSMOKE}/scan.jksd" \
    > "${DSMOKE}/validate.log"
  VRC=$?
  set -e
  [ "${VRC}" -eq 2 ] || {
    echo "validate exit ${VRC} on a corrupt file, expected 2" >&2
    cat "${DSMOKE}/validate.log" >&2
    exit 1
  }
  grep -q "REJECT slot 0" "${DSMOKE}/validate.log"
  ./build/tools/jigsaw_cli recon --dataset "${DSMOKE}/scan.jksd" \
    --dcf pipe-menon --out "${DSMOKE}/recon_cut.pgm" \
    | tee "${DSMOKE}/recon_cut.log"
  grep -q "ingest: 2 chunks read .*, 1 rejected" "${DSMOKE}/recon_cut.log"
  echo "dataset smoke: corrupt chunk rejected, recon survived on 2/3 chunks"
)

echo "=== router smoke: sharded fleet + stats gate + graceful drain ==="
# Two workers — one TCP, one Unix socket (the router mixes transports) —
# behind jigsaw_router, everything on ephemeral ports parsed from the
# daemons' own "listening on" lines so parallel CI runs never collide.
# The stage runs in a subshell so its EXIT trap reaps the daemons even
# when an assertion fails mid-stage.
(
  RSMOKE=build/router_smoke
  rm -rf "${RSMOKE}" && mkdir -p "${RSMOKE}"
  trap 'kill ${WA:-} ${WB:-} ${RT:-} 2>/dev/null || true' EXIT

  wait_for_line() {  # <file> <pattern>: daemons print readiness to stdout
    for _ in $(seq 1 100); do
      grep -q "$2" "$1" 2>/dev/null && return 0
      sleep 0.1
    done
    echo "timeout waiting for '$2' in $1" >&2
    cat "$1" >&2 || true
    return 1
  }
  bound_endpoint() { sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$1" | head -1; }

  ./build/tools/jigsaw_serve --listen 127.0.0.1:0 --threads 2 \
    > "${RSMOKE}/worker_a.log" 2>&1 &
  WA=$!
  ./build/tools/jigsaw_serve --socket "${RSMOKE}/worker_b.sock" --threads 2 \
    > "${RSMOKE}/worker_b.log" 2>&1 &
  WB=$!
  wait_for_line "${RSMOKE}/worker_a.log" "listening on"
  wait_for_line "${RSMOKE}/worker_b.log" "listening on"

  ./build/tools/jigsaw_router --listen 127.0.0.1:0 \
    "$(bound_endpoint "${RSMOKE}/worker_a.log")" \
    "unix:${RSMOKE}/worker_b.sock" > "${RSMOKE}/router.log" 2>&1 &
  RT=$!
  wait_for_line "${RSMOKE}/router.log" "listening on"
  RT_EP=$(bound_endpoint "${RSMOKE}/router.log")

  # Three geometry classes (distinct N), four requests each, interleaved:
  # rendezvous sharding must pin every class to exactly one worker.
  for _ in 1 2 3 4; do
    for n in 96 112 128; do
      ./build/tools/jigsaw_client recon --endpoint "${RT_EP}" --n "${n}" \
        --samples 4000 --engine slice-dice >/dev/null
    done
  done

  ./build/tools/jigsaw_client stats --endpoint "${RT_EP}" \
    > "${RSMOKE}/statsz.json"
  python3 - "${RSMOKE}/statsz.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["router"] is True, doc
req = doc["requests"]
assert req["received"] == 12 and req["relayed"] == 12, req
workers = doc["workers"]
assert len(workers) == 2 and all(w["healthy"] for w in workers), workers
shares = [w["forwarded"] for w in workers]
# 4 requests per class, each class entirely on one worker => every share
# is a multiple of 4 and the shares cover all 12 requests.
assert sum(shares) == 12 and all(s % 4 == 0 for s in shares), shares
print(f"router smoke: 12/12 relayed, shard split {shares}")
PYEOF

  # Graceful drain: SIGTERM each tier, require clean exits and the final
  # counter lines proving nothing was dropped on the way down.
  kill -TERM "${RT}" && wait "${RT}"
  grep -q "received=12 relayed=12" "${RSMOKE}/router.log"
  kill -TERM "${WA}" "${WB}" && wait "${WA}" && wait "${WB}"
  grep -q "jigsaw_serve: done\." "${RSMOKE}/worker_a.log"
  grep -q "jigsaw_serve: done\." "${RSMOKE}/worker_b.log"
  trap - EXIT
)

echo "=== stream smoke: session round trip + lossless mid-stream drain ==="
# One worker on an ephemeral TCP port. First a full 8-frame session must
# complete with every frame OK and warm-started after the first. Then a
# long stream is SIGTERMed mid-flight: the drain contract says every frame
# the worker admitted gets a terminal reply — the client's reply count must
# equal the worker's frames_submitted, zero drops.
(
  SSMOKE=build/stream_smoke
  rm -rf "${SSMOKE}" && mkdir -p "${SSMOKE}"
  trap 'kill ${SW:-} 2>/dev/null || true' EXIT

  wait_for_line() {
    for _ in $(seq 1 100); do
      grep -q "$2" "$1" 2>/dev/null && return 0
      sleep 0.1
    done
    echo "timeout waiting for '$2' in $1" >&2
    cat "$1" >&2 || true
    return 1
  }
  bound_endpoint() { sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$1" | head -1; }

  ./build/tools/jigsaw_serve --listen 127.0.0.1:0 --threads 2 \
    > "${SSMOKE}/worker.log" 2>&1 &
  SW=$!
  wait_for_line "${SSMOKE}/worker.log" "listening on"
  SW_EP=$(bound_endpoint "${SSMOKE}/worker.log")

  # Full session: open -> 8 frames -> close, all OK, frames 2..8 warm.
  ./build/tools/jigsaw_client stream --endpoint "${SW_EP}" --frames 8 \
    --n 64 --spoke-samples 64 > "${SSMOKE}/full.log"
  grep -q "8/8 ok, 7 warm" "${SSMOKE}/full.log"

  # Mid-stream drain: push a long sequence, SIGTERM the worker while frames
  # are in flight. The client exits non-zero (its stream was cut short) —
  # that is expected; the gate is the reply accounting below.
  ./build/tools/jigsaw_client stream --endpoint "${SW_EP}" --frames 500 \
    --n 96 > "${SSMOKE}/cut.log" 2>&1 &
  CL=$!
  wait_for_line "${SSMOKE}/cut.log" "frame   3/500"
  kill -TERM "${SW}" && wait "${SW}"
  wait "${CL}" || true

  grep -q "jigsaw_serve: done\." "${SSMOKE}/worker.log"
  python3 - "${SSMOKE}" <<'PYEOF'
import re, sys
base = sys.argv[1]
worker = open(base + "/worker.log").read()
m = re.search(r"sessions opened=(\d+) closed=(\d+) frames=(\d+) "
              r"answered=(\d+)", worker)
assert m, worker
opened, closed, frames, answered = map(int, m.groups())
assert opened == 2, (opened, "both sessions reached the worker")
assert frames == answered, (frames, answered, "drain dropped a frame")
# Every frame the worker admitted produced a reply line at the client
# (8 in the completed run + the mid-stream replies in the cut run).
cut_replies = len(re.findall(r"^frame +\d+/500:", open(base + "/cut.log")
                             .read(), re.M))
assert 8 + cut_replies == answered, (cut_replies, answered)
print(f"stream smoke: {answered}/{frames} frames answered "
      f"({cut_replies} before the mid-stream drain), zero drops")
PYEOF
  trap - EXIT
)

echo "=== observability overhead guard (obs OFF) ==="
./build-noobs/bench/bench_suite --smoke --tag ci-noobs \
  --out build-noobs/BENCH_ci-noobs.json
python3 scripts/validate_bench.py build-noobs/BENCH_ci-noobs.json
python3 scripts/bench_compare.py BENCH_baseline.json \
  build-noobs/BENCH_ci-noobs.json --smoke

echo "=== CI green: tests + sanitizers + benchmark/work/overhead gates pass ==="
