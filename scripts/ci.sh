#!/usr/bin/env bash
# Tier-1 CI: build and run the full test suite twice — once plain, once
# under AddressSanitizer + UBSan (JIGSAW_SANITIZE=ON). Both configurations
# must pass for a change to land.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

echo "=== plain build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

echo "=== ASan+UBSan build + ctest ==="
cmake -B build-asan -S . -DJIGSAW_SANITIZE=ON >/dev/null
cmake --build build-asan -j"${JOBS}"
ctest --test-dir build-asan --output-on-failure -j"${JOBS}"

echo "=== CI green: both configurations pass ==="
