#!/usr/bin/env python3
"""Compare two bench_suite JSON files and fail on regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json
        [--threshold 0.15] [--min-seconds 0.02] [--checksum-tol 1e-6]
        [--work-tol 0.0] [--smoke]

Exit status 1 when:
  * a benchmark present in the baseline is missing from the candidate,
  * a checksum drifts beyond --checksum-tol (relative) — a correctness
    bug, never timing noise,
  * a benchmark slows down by more than --threshold (relative) and both
    measurements exceed --min-seconds (sub-threshold timings are too noisy
    to gate on, especially in --smoke mode),
  * a work counter (the deterministic grid./nufft./fft./cg./sim. families
    in an entry's "counters" block) changes beyond --work-tol (relative,
    default exact). Unlike wall-clock, counters are noise-free: any drift
    means the algorithm now does different work. The gate only engages
    when both files were produced by JIGSAW_OBS=ON builds and both entries
    carry counters; an OFF-build candidate is reported, never failed.
    Benchmarks whose name contains "/auto/" get an indirect gate: the
    autotuner resolves them to whichever engine measured fastest on the
    producing machine, so their counters cannot be compared against the
    baseline's auto entry (hosts and runs legitimately pick different
    winners). When the candidate entry records "resolved_engine", the gate
    instead compares its counters against the BASELINE entry of that
    concrete engine's scalar twin at the same problem size — a SIMD winner
    must do bit-identical logical work to its scalar twin, so e.g. an auto
    entry resolved to "binning-simd" is checked against ".../binning/...".
    Candidates without resolved_engine (pre-SIMD producers) keep the old
    wholesale exemption. The checksum gate always applies — every engine
    must produce the same grid.

New benchmarks in the candidate are reported but never fail the run, so
adding coverage does not require a simultaneous baseline refresh.
"""
import argparse
import json
import sys

# Counter families that are pure functions of the workload (sample count,
# kernel width, grid size, iteration count). Excluded by design: pool.*
# (scheduling-dependent), scratch.*/fftcache.* per-entry values depend on
# suite-global cache state, memsim.* (opt-in probes).
WORK_PREFIXES = ("grid.", "nufft.", "fft.", "cg.", "sim.")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        sys.exit(f"{path}: unsupported schema_version {doc.get('schema_version')!r}")
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative slowdown that counts as a regression")
    ap.add_argument("--min-seconds", type=float, default=0.02,
                    help="ignore timing changes when either side is faster than this")
    ap.add_argument("--checksum-tol", type=float, default=1e-6,
                    help="relative checksum drift that counts as a failure")
    ap.add_argument("--work-tol", type=float, default=0.0,
                    help="relative drift allowed in work counters (default: exact)")
    ap.add_argument("--smoke", action="store_true",
                    help="require both files to be --smoke runs")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    if base_doc.get("smoke") != cand_doc.get("smoke"):
        sys.exit("refusing to compare: baseline and candidate were run in "
                 "different modes (smoke vs full) — problem sizes differ")
    if args.smoke and not (base_doc.get("smoke") and cand_doc.get("smoke")):
        sys.exit("--smoke given but the files are full-size runs")

    work_gate = bool(base_doc.get("obs_enabled")) and bool(
        cand_doc.get("obs_enabled"))

    base = {b["name"]: b for b in base_doc["benchmarks"]}
    cand = {b["name"]: b for b in cand_doc["benchmarks"]}

    failures = []
    notes = []
    rows = []
    for name, b in base.items():
        c = cand.get(name)
        if c is None:
            failures.append(f"MISSING   {name}: present in baseline, absent in candidate")
            continue

        ref = max(abs(b["checksum"]), abs(c["checksum"]), 1e-300)
        drift = abs(b["checksum"] - c["checksum"]) / ref
        if drift > args.checksum_tol:
            failures.append(
                f"CHECKSUM  {name}: {b['checksum']:.12g} -> {c['checksum']:.12g} "
                f"(rel drift {drift:.3g})")

        # Autotuned entries run on whichever engine won the calibration
        # trials on the producing machine, so their work counters cannot be
        # diffed against the baseline's own auto entry. When the candidate
        # says which engine it resolved to, gate against that engine's
        # scalar twin in the baseline instead (SIMD variants perform
        # identical logical work); otherwise fall back to exempting.
        tuned_entry = "/auto/" in name
        ref_counters = b.get("counters")
        if tuned_entry:
            resolved = c.get("resolved_engine")
            if resolved:
                scalar = resolved[:-len("-simd")] if resolved.endswith("-simd") else resolved
                ref_name = name.replace("/auto/", f"/{scalar}/")
                ref_entry = base.get(ref_name)
                if ref_entry is None or "counters" not in ref_entry:
                    notes.append(f"NOTE      {name}: resolved to {resolved} but "
                                 f"baseline has no counters for {ref_name}; "
                                 "work gate skipped")
                    ref_counters = None
                else:
                    ref_counters = ref_entry["counters"]
            else:
                ref_counters = None
        if work_gate and ref_counters is not None and "counters" in c:
            bc, cc = ref_counters, c["counters"]
            for key in sorted(set(bc) | set(cc)):
                if not key.startswith(WORK_PREFIXES):
                    continue
                bv, cv = bc.get(key, 0), cc.get(key, 0)
                ref = max(abs(bv), abs(cv), 1)
                if abs(bv - cv) / ref > args.work_tol:
                    failures.append(
                        f"WORK      {name}: {key} {bv} -> {cv} "
                        f"(the engine now performs different work)")

        ratio = c["seconds"] / b["seconds"] if b["seconds"] > 0 else float("inf")
        gated = b["seconds"] >= args.min_seconds and c["seconds"] >= args.min_seconds
        status = "ok"
        if gated and ratio > 1.0 + args.threshold:
            status = "REGRESSED"
            failures.append(
                f"REGRESSED {name}: {b['seconds']:.4f}s -> {c['seconds']:.4f}s "
                f"({(ratio - 1) * 100:+.1f}%, threshold {args.threshold * 100:.0f}%)")
        elif not gated:
            status = "skipped (sub-threshold)"
        rows.append((name, b["seconds"], c["seconds"], ratio, status))

    for name in cand:
        if name not in base:
            notes.append(f"NEW       {name}: not in baseline (will gate after refresh)")
    if not work_gate:
        notes.append("NOTE      work-counter gate inactive (one side lacks "
                     "obs_enabled — JIGSAW_OBS=OFF build or pre-obs baseline)")

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'benchmark':<{width}} {'base':>10} {'cand':>10} {'ratio':>7}  status")
    for name, bs, cs, ratio, status in rows:
        print(f"{name:<{width}} {bs:>10.4f} {cs:>10.4f} {ratio:>7.2f}  {status}")

    for n in notes:
        print(n)
    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print(f"\nOK: {len(rows)} benchmarks within {args.threshold * 100:.0f}% "
          f"of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
