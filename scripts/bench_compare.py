#!/usr/bin/env python3
"""Compare two bench_suite JSON files and fail on regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json
        [--threshold 0.15] [--min-seconds 0.02] [--checksum-tol 1e-6]

Exit status 1 when:
  * a benchmark present in the baseline is missing from the candidate,
  * a checksum drifts beyond --checksum-tol (relative) — a correctness
    bug, never timing noise,
  * a benchmark slows down by more than --threshold (relative) and both
    measurements exceed --min-seconds (sub-threshold timings are too noisy
    to gate on, especially in --smoke mode).

New benchmarks in the candidate are reported but never fail the run, so
adding coverage does not require a simultaneous baseline refresh.
"""
import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        sys.exit(f"{path}: unsupported schema_version {doc.get('schema_version')!r}")
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative slowdown that counts as a regression")
    ap.add_argument("--min-seconds", type=float, default=0.02,
                    help="ignore timing changes when either side is faster than this")
    ap.add_argument("--checksum-tol", type=float, default=1e-6,
                    help="relative checksum drift that counts as a failure")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    if base_doc.get("smoke") != cand_doc.get("smoke"):
        sys.exit("refusing to compare: baseline and candidate were run in "
                 "different modes (smoke vs full) — problem sizes differ")

    base = {b["name"]: b for b in base_doc["benchmarks"]}
    cand = {b["name"]: b for b in cand_doc["benchmarks"]}

    failures = []
    notes = []
    rows = []
    for name, b in base.items():
        c = cand.get(name)
        if c is None:
            failures.append(f"MISSING   {name}: present in baseline, absent in candidate")
            continue

        ref = max(abs(b["checksum"]), abs(c["checksum"]), 1e-300)
        drift = abs(b["checksum"] - c["checksum"]) / ref
        if drift > args.checksum_tol:
            failures.append(
                f"CHECKSUM  {name}: {b['checksum']:.12g} -> {c['checksum']:.12g} "
                f"(rel drift {drift:.3g})")

        ratio = c["seconds"] / b["seconds"] if b["seconds"] > 0 else float("inf")
        gated = b["seconds"] >= args.min_seconds and c["seconds"] >= args.min_seconds
        status = "ok"
        if gated and ratio > 1.0 + args.threshold:
            status = "REGRESSED"
            failures.append(
                f"REGRESSED {name}: {b['seconds']:.4f}s -> {c['seconds']:.4f}s "
                f"({(ratio - 1) * 100:+.1f}%, threshold {args.threshold * 100:.0f}%)")
        elif not gated:
            status = "skipped (sub-threshold)"
        rows.append((name, b["seconds"], c["seconds"], ratio, status))

    for name in cand:
        if name not in base:
            notes.append(f"NEW       {name}: not in baseline (will gate after refresh)")

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'benchmark':<{width}} {'base':>10} {'cand':>10} {'ratio':>7}  status")
    for name, bs, cs, ratio, status in rows:
        print(f"{name:<{width}} {bs:>10.4f} {cs:>10.4f} {ratio:>7.2f}  {status}")

    for n in notes:
        print(n)
    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print(f"\nOK: {len(rows)} benchmarks within {args.threshold * 100:.0f}% "
          f"of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
