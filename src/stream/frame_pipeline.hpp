// FramePipeline: stateful per-session reconstruction of a frame sequence.
//
// One pipeline owns the state a dynamic-MRI session accumulates across
// frames and that a stateless per-request recon cannot exploit:
//
//   * the NufftPlan of the previous frame — reused outright when the
//     trajectory repeats (coordinate hash match), and even when the window
//     slid the new plan's FFT stage comes from the shared FftPlanCache, so
//     only the gridder's sample setup is paid per frame;
//   * the previous frame's image — the CG / CG-SENSE warm start. CG on the
//     (PSD) normal equations converges to the same fixed point from any
//     seed; consecutive frames differ little, so seeding from frame f-1
//     reaches the tolerance in a fraction of the cold-start iterations
//     (the whole point of the streaming workload, ROADMAP item 3);
//   * a divergence guard: a warm start is accepted only while its initial
//     relative residual stays below `divergence_guard` (a cold start's is
//     exactly 1.0, so the default 1.0 means "never start worse than
//     cold"). On a scene cut the guard trips, the frame re-solves cold,
//     and warm-starting resumes from the fresh image.
//
// Per-frame iterations / residual / latency are reported through the
// returned FrameResult, the cumulative PipelineStats, and obs ("stream.*"
// counters, "stream.frame" tracer spans). The per-frame deadline is
// enforced at phase boundaries (admission, plan build, solve, respond) via
// common/deadline.hpp; a timed-out frame raises DeadlineExceeded and leaves
// the previous frame's warm-start state untouched.
//
// Thread contract: a pipeline is a session — one frame at a time, called
// from one thread (the serve engine's dispatcher, or a bench/test loop).
// Bit-exactness: with a bit-exact engine (e.g. binning) the frame sequence
// is reproducible bit-for-bit for any options.threads, because every
// frame's solve consumes only deterministic inputs (samples + the previous
// frame's image).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/deadline.hpp"
#include "core/gridder.hpp"
#include "core/nufft.hpp"
#include "core/sense.hpp"

namespace jigsaw::stream {

struct PipelineConfig {
  std::int64_t n = 128;          // base grid side
  core::GridderOptions options;  // engine / kernel / threads for every frame
  int iters = 10;                // CG iteration cap per frame (>= 1)
  double tolerance = 1e-5;       // CG stop: relative residual
  int coils = 1;                 // > 1 = CG-SENSE with birdcage maps
  unsigned coil_threads = 1;     // coil parallelism (bit-exact, see sense.hpp)
  bool warm_start = true;        // seed each frame with the previous image
  double divergence_guard = 1.0;  // max accepted warm initial rel-residual;
                                  // <= 0 disables the guard
};

/// One frame's outcome.
struct FrameResult {
  std::vector<c64> image;      // n*n pixels
  int iterations = 0;          // CG iterations this frame consumed (guard
                               // trips include the discarded warm attempt)
  double residual = 0.0;       // final relative residual
  bool warm_started = false;   // the accepted solve was warm-seeded
  bool guard_tripped = false;  // warm attempt discarded, cold re-solve used
  bool plan_reused = false;    // trajectory matched the previous frame's
  double latency_ms = 0.0;     // wall clock inside recon_frame()
};

/// Cumulative session totals (mirrored to stream.* obs counters).
struct PipelineStats {
  std::uint64_t frames = 0;
  std::uint64_t warm_frames = 0;
  std::uint64_t cold_frames = 0;
  std::uint64_t guard_trips = 0;
  std::uint64_t plan_builds = 0;
  std::uint64_t plan_reuses = 0;
  std::uint64_t total_iterations = 0;
};

class FramePipeline {
 public:
  explicit FramePipeline(const PipelineConfig& config);
  ~FramePipeline();

  FramePipeline(const FramePipeline&) = delete;
  FramePipeline& operator=(const FramePipeline&) = delete;

  /// Reconstruct one frame: `values` holds coils blocks of coords.size()
  /// samples (coil-major, single block when coils == 1). Throws
  /// DeadlineExceeded at a phase boundary past the deadline (state of the
  /// previous frame is preserved), std::invalid_argument on a size
  /// mismatch.
  FrameResult recon_frame(const std::vector<Coord<2>>& coords,
                          const std::vector<c64>& values,
                          const Deadline& deadline = Deadline());

  const PipelineConfig& config() const { return config_; }
  const PipelineStats& stats() const { return stats_; }

  /// The warm-start seed the next frame would use (empty before the first
  /// successful frame).
  const std::vector<c64>& last_image() const { return prev_image_; }

  /// Drop the warm-start image and resident plan (a scene cut / session
  /// reset). Cumulative stats are kept.
  void reset();

 private:
  FrameResult solve(const std::vector<Coord<2>>& coords,
                    const std::vector<c64>& values, const Deadline& deadline,
                    const std::vector<c64>* warm, core::CgResult* cg);

  const PipelineConfig config_;
  PipelineStats stats_;
  std::unique_ptr<core::NufftPlan<2>> plan_;
  std::uint64_t plan_coords_hash_ = 0;
  std::size_t plan_samples_ = 0;
  std::optional<core::CoilMaps> maps_;  // built once when coils > 1
  std::vector<c64> prev_image_;
};

}  // namespace jigsaw::stream
