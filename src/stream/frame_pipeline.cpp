#include "stream/frame_pipeline.hpp"

#include <chrono>

#include "common/error.hpp"
#include "core/recon.hpp"
#include "obs/obs.hpp"

namespace jigsaw::stream {

namespace {

std::uint64_t fnv1a(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

FramePipeline::FramePipeline(const PipelineConfig& config) : config_(config) {
  JIGSAW_REQUIRE(config_.n >= 2, "stream: grid side must be >= 2");
  JIGSAW_REQUIRE(config_.iters >= 0, "stream: CG iteration cap must be >= 0");
  JIGSAW_REQUIRE(config_.coils >= 1, "stream: coil count must be >= 1");
  if (config_.coils > 1) {
    maps_ = core::make_birdcage_maps(config_.n, config_.coils);
  }
}

FramePipeline::~FramePipeline() = default;

void FramePipeline::reset() {
  prev_image_.clear();
  plan_.reset();
  plan_coords_hash_ = 0;
  plan_samples_ = 0;
}

FrameResult FramePipeline::solve(const std::vector<Coord<2>>& coords,
                                 const std::vector<c64>& values,
                                 const Deadline& deadline,
                                 const std::vector<c64>* warm,
                                 core::CgResult* cg) {
  FrameResult out;
  out.warm_started = warm != nullptr;
  if (config_.coils > 1) {
    const std::size_t m = coords.size();
    std::vector<std::vector<c64>> y(static_cast<std::size_t>(config_.coils));
    for (int c = 0; c < config_.coils; ++c) {
      const auto* first = values.data() + static_cast<std::size_t>(c) * m;
      y[static_cast<std::size_t>(c)].assign(first, first + m);
    }
    out.image = core::cg_sense(*plan_, *maps_, y, config_.iters,
                               config_.tolerance, cg, config_.coil_threads,
                               deadline, warm);
  } else if (config_.iters > 0) {
    out.image = core::iterative_recon<2>(*plan_, values, config_.iters,
                                         config_.tolerance,
                                         /*use_toeplitz=*/false, cg, deadline,
                                         warm);
  } else {
    // Adjoint-only streaming (gridding view): no solve, no warm-start
    // semantics — the "previous image" is simply unused.
    out.image = plan_->adjoint(values, nullptr, deadline);
    out.warm_started = false;
  }
  out.iterations = cg->iterations;
  out.residual = cg->final_residual;
  return out;
}

FrameResult FramePipeline::recon_frame(const std::vector<Coord<2>>& coords,
                                       const std::vector<c64>& values,
                                       const Deadline& deadline) {
  obs::Span span("stream.frame");
  const auto t0 = std::chrono::steady_clock::now();
  deadline.check("stream.admit");
  JIGSAW_REQUIRE(!coords.empty(), "stream: empty frame");
  JIGSAW_REQUIRE(values.size() ==
                     coords.size() * static_cast<std::size_t>(config_.coils),
                 "stream: value count does not equal samples x coils");

  // Plan phase: reuse the resident plan when the trajectory repeats (a
  // static window, or window == stride with a repeating schedule); a slid
  // window rebuilds the gridder but still shares the cached FFT plan.
  const std::uint64_t hash =
      fnv1a(coords.data(), coords.size() * sizeof(Coord<2>));
  const bool reuse = plan_ != nullptr && plan_samples_ == coords.size() &&
                     plan_coords_hash_ == hash;
  if (!reuse) {
    deadline.check("stream.plan");
    plan_ = std::make_unique<core::NufftPlan<2>>(config_.n, coords,
                                                 config_.options);
    plan_coords_hash_ = hash;
    plan_samples_ = coords.size();
    ++stats_.plan_builds;
    obs::add("stream.plan_builds", 1);
  } else {
    ++stats_.plan_reuses;
    obs::add("stream.plan_reuses", 1);
  }

  const std::size_t pixels = static_cast<std::size_t>(config_.n) *
                             static_cast<std::size_t>(config_.n);
  const std::vector<c64>* warm =
      config_.warm_start && config_.iters > 0 && prev_image_.size() == pixels
          ? &prev_image_
          : nullptr;

  core::CgResult cg;
  FrameResult out = solve(coords, values, deadline, warm, &cg);

  // Divergence guard: residual_history.front() is the warm seed's initial
  // relative residual (a cold start's is exactly 1.0). A seed that starts
  // worse than the guard came from a different scene — discard the warm
  // solve and redo this frame cold; warm-starting resumes from its image.
  if (warm != nullptr && config_.divergence_guard > 0.0 &&
      !cg.residual_history.empty() &&
      cg.residual_history.front() > config_.divergence_guard) {
    const int wasted = out.iterations;
    core::CgResult cold;
    out = solve(coords, values, deadline, nullptr, &cold);
    out.iterations += wasted;  // honest accounting: the trip was paid for
    out.guard_tripped = true;
    ++stats_.guard_trips;
    obs::add("stream.guard_trips", 1);
  }
  out.plan_reused = reuse;

  deadline.check("stream.respond");
  prev_image_ = out.image;

  ++stats_.frames;
  if (out.warm_started && !out.guard_tripped) {
    ++stats_.warm_frames;
  } else {
    ++stats_.cold_frames;
  }
  stats_.total_iterations += static_cast<std::uint64_t>(out.iterations);
  obs::add("stream.frames", 1);
  obs::add(out.warm_started && !out.guard_tripped ? "stream.warm_frames"
                                                  : "stream.cold_frames",
           1);
  if (out.iterations > 0) {
    obs::add("stream.iterations", static_cast<std::uint64_t>(out.iterations));
  }

  out.latency_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  obs::set_gauge("stream.last_latency_ms", out.latency_ms);
  obs::set_gauge("stream.last_iterations",
                 static_cast<double>(out.iterations));
  obs::set_gauge("stream.last_residual", out.residual);
  return out;
}

}  // namespace jigsaw::stream
