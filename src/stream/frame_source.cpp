#include "stream/frame_source.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace jigsaw::stream {

namespace {
constexpr double kPi = std::numbers::pi;
const double kGolden = kPi * (3.0 - std::sqrt(5.0));

/// Fold a coordinate into [-0.5, 0.5) — same convention as trajectory.cpp.
double fold(double v) {
  v -= std::floor(v + 0.5);
  if (v >= 0.5) v -= 1.0;
  if (v < -0.5) v += 1.0;
  return v;
}
}  // namespace

FrameSource::FrameSource(const FrameWindow& window, int frames)
    : window_(window), frames_(frames) {
  JIGSAW_REQUIRE(frames >= 1, "frame sequence needs >= 1 frame");
  JIGSAW_REQUIRE(window.spokes_per_frame >= 1,
                 "sliding window needs >= 1 spoke of stride");
  JIGSAW_REQUIRE(window.window_spokes >= window.spokes_per_frame,
                 "window must be at least as wide as its stride");
  JIGSAW_REQUIRE(window.samples_per_spoke >= 2,
                 "spokes need >= 2 samples each");
  total_spokes_ =
      (frames - 1) * window.spokes_per_frame + window.window_spokes;
  stream_.reserve(static_cast<std::size_t>(total_spokes_) *
                  static_cast<std::size_t>(window.samples_per_spoke));
  // One continuous golden-angle stream: spoke s at angle s * golden. This is
  // radial_2d's golden mode unrolled so a frame can start at any spoke, not
  // just spoke 0.
  for (int s = 0; s < total_spokes_; ++s) {
    const double theta = static_cast<double>(s) * kGolden;
    const double cx = std::cos(theta), cy = std::sin(theta);
    for (int i = 0; i < window.samples_per_spoke; ++i) {
      const double r =
          -0.5 + static_cast<double>(i) /
                     static_cast<double>(window.samples_per_spoke);
      stream_.push_back({fold(r * cx), fold(r * cy)});
    }
  }
}

std::size_t FrameSource::samples_per_frame() const {
  return static_cast<std::size_t>(window_.window_spokes) *
         static_cast<std::size_t>(window_.samples_per_spoke);
}

std::vector<Coord<2>> FrameSource::frame_coords(int frame) const {
  JIGSAW_REQUIRE(frame >= 0 && frame < frames_,
                 "frame index out of range");
  const std::size_t per_spoke =
      static_cast<std::size_t>(window_.samples_per_spoke);
  const std::size_t begin =
      static_cast<std::size_t>(frame) *
      static_cast<std::size_t>(window_.spokes_per_frame) * per_spoke;
  const std::size_t count = samples_per_frame();
  return std::vector<Coord<2>>(stream_.begin() + begin,
                               stream_.begin() + begin + count);
}

double FrameSource::frame_time(int frame) const {
  JIGSAW_REQUIRE(frame >= 0 && frame < frames_,
                 "frame index out of range");
  const double mid = static_cast<double>(frame) * window_.spokes_per_frame +
                     0.5 * window_.window_spokes;
  return total_spokes_ > 1 ? mid / static_cast<double>(total_spokes_) : 0.0;
}

std::vector<trajectory::Ellipse> DynamicPhantom::at(double t) const {
  std::vector<trajectory::Ellipse> ellipses = trajectory::shepp_logan();
  const double phase_step = 2.39996;  // ~golden angle: decorrelates shapes
  for (std::size_t i = 2; i < ellipses.size(); ++i) {  // skip the skull pair
    const double phase = static_cast<double>(i) * phase_step;
    const double beat = 2.0 * kPi * cycles * t + phase;
    trajectory::Ellipse& e = ellipses[i];
    e.intensity *= 1.0 + intensity_amp * std::sin(beat);
    e.x0 += motion_amp * std::sin(beat);
    e.y0 += motion_amp * std::cos(beat * 0.5);
  }
  return ellipses;
}

std::vector<double> DynamicPhantom::image_at(double t, int n) const {
  return trajectory::rasterize(at(t), n);
}

std::vector<c64> DynamicPhantom::kspace_at(const std::vector<Coord<2>>& coords,
                                           double t, int n) const {
  return trajectory::kspace_samples(at(t), coords, n);
}

}  // namespace jigsaw::stream
