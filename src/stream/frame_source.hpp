// Frame slicing for dynamic (real-time) MRI acquisition.
//
// A golden-angle radial scanner acquires one spoke after another at a fixed
// angular increment of pi*(3 - sqrt 5); any window of consecutive spokes
// covers k-space near-uniformly, so frames can be formed retrospectively by
// sliding a window over the spoke stream (Schaetz et al.'s real-time
// pipeline, PAPERS.md). FrameSource materializes that model:
//
//   spoke stream:  s_0 s_1 s_2 s_3 s_4 s_5 s_6 s_7 ...
//   frame f:       spokes [f*stride, f*stride + window)
//
// `stride` spokes of fresh data advance each frame while `window - stride`
// spokes are shared with the previous frame — the standard sliding-window
// view (window == stride degenerates to disjoint frames). Consecutive
// frames therefore have *different* trajectories (the window slid), but the
// same sample count and grid, so the FFT plan inside each frame's NufftPlan
// is shared via fft::FftPlanCache and only the gridder's sample setup is
// rebuilt.
//
// DynamicPhantom supplies hermetic ground truth: a Shepp-Logan variant
// whose ellipse intensities and centers vary smoothly with time, with the
// *exact* analytic k-space available at any trajectory coordinate — tests
// and benches score per-frame NRMSE against a rasterization of the same
// instant, no data files required.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

namespace jigsaw::stream {

/// Sliding-window geometry of a golden-angle frame sequence.
struct FrameWindow {
  int spokes_per_frame = 13;  // stride: fresh spokes advanced per frame
  int window_spokes = 34;     // spokes reconstructed per frame (>= stride)
  int samples_per_spoke = 128;
};

class FrameSource {
 public:
  /// Precomputes the golden-angle spoke stream covering `frames` windows.
  /// Requires frames >= 1 and a window wide enough to hold its stride.
  FrameSource(const FrameWindow& window, int frames);

  int frames() const { return frames_; }
  const FrameWindow& window() const { return window_; }

  /// Samples per frame: window_spokes * samples_per_spoke (constant across
  /// frames — the property that lets serve sessions pin one geometry class).
  std::size_t samples_per_frame() const;

  /// Trajectory of frame `f` (coordinates of its window's spokes, spoke-
  /// major). Valid for 0 <= f < frames().
  std::vector<Coord<2>> frame_coords(int frame) const;

  /// Nominal acquisition time of frame `f`, normalized to [0, 1] across the
  /// sequence: the mid-window spoke's position in the spoke stream. The
  /// dynamic phantom is evaluated at this instant (piecewise-static per
  /// frame, so per-frame k-space stays exact).
  double frame_time(int frame) const;

 private:
  FrameWindow window_;
  int frames_ = 0;
  int total_spokes_ = 0;
  std::vector<Coord<2>> stream_;  // all spokes, spoke-major
};

/// Shepp-Logan with smooth time-varying contrast and motion. `t` is
/// normalized time in [0, 1]; every ellipse past the two outer "skull"
/// shells gets a sinusoidal intensity modulation and a small center drift,
/// each with an index-dependent phase so the structures move out of step
/// (a crude beating-heart). All evaluations are deterministic closed forms:
/// the exact k-space of the instant is available via kspace_at().
struct DynamicPhantom {
  double intensity_amp = 0.15;  // fractional intensity modulation depth
  double motion_amp = 0.008;    // center drift amplitude, FOV units
  double cycles = 1.0;          // modulation periods over t in [0, 1]

  /// The ellipse set at time `t`.
  std::vector<trajectory::Ellipse> at(double t) const;

  /// Ground-truth image at time `t` on an n x n grid.
  std::vector<double> image_at(double t, int n) const;

  /// Exact k-space of the instant-`t` phantom at `coords` (normalized torus
  /// units, scaled by n to cycles/FOV — same convention as
  /// trajectory::kspace_samples).
  std::vector<c64> kspace_at(const std::vector<Coord<2>>& coords, double t,
                             int n) const;
};

}  // namespace jigsaw::stream
