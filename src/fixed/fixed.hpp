// Fixed-point arithmetic substrate for the JIGSAW datapath.
//
// The paper's accelerator performs all arithmetic in 32-bit fixed point with
// 16-bit interpolation weights (Sec. IV). This module provides a
// compile-time-parameterized Q-format scalar (`Fixed<Bits, Frac>`), a complex
// wrapper, and Knuth's 3-multiplication complex product, which is what the
// weight-lookup and interpolation units instantiate.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "common/types.hpp"

namespace jigsaw::fixed {

namespace detail {
template <int Bits>
struct StorageFor {
  static_assert(Bits == 16 || Bits == 32 || Bits == 64,
                "supported fixed-point widths: 16, 32, 64");
  using type = std::conditional_t<
      Bits == 16, std::int16_t,
      std::conditional_t<Bits == 32, std::int32_t, std::int64_t>>;
  using wide = std::conditional_t<Bits == 16, std::int32_t, std::int64_t>;
};
}  // namespace detail

/// Signed two's-complement Q(Bits-Frac-1).Frac fixed-point value.
/// Conversions from double saturate; arithmetic wraps like hardware
/// registers unless the saturating helpers are used.
template <int Bits, int Frac>
class Fixed {
 public:
  static_assert(Frac >= 0 && Frac < Bits, "fraction bits must fit the word");
  using storage = typename detail::StorageFor<Bits>::type;
  using wide = typename detail::StorageFor<Bits>::wide;

  static constexpr int bits = Bits;
  static constexpr int frac = Frac;
  static constexpr storage max_raw = std::numeric_limits<storage>::max();
  static constexpr storage min_raw = std::numeric_limits<storage>::min();

  constexpr Fixed() = default;

  /// Reinterpret a raw register value.
  static constexpr Fixed from_raw(storage raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  /// Round-to-nearest, saturating conversion from double.
  static Fixed from_double(double v) {
    const double scaled = v * static_cast<double>(std::int64_t{1} << Frac);
    const double rounded = std::nearbyint(scaled);
    if (rounded >= static_cast<double>(max_raw)) return from_raw(max_raw);
    if (rounded <= static_cast<double>(min_raw)) return from_raw(min_raw);
    return from_raw(static_cast<storage>(rounded));
  }

  constexpr storage raw() const { return raw_; }

  double to_double() const {
    return static_cast<double>(raw_) /
           static_cast<double>(std::int64_t{1} << Frac);
  }

  /// Wrapping add/sub — mirrors hardware accumulator registers.
  friend constexpr Fixed operator+(Fixed a, Fixed b) {
    using U = std::make_unsigned_t<storage>;
    return from_raw(static_cast<storage>(static_cast<U>(a.raw_) +
                                         static_cast<U>(b.raw_)));
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) {
    using U = std::make_unsigned_t<storage>;
    return from_raw(static_cast<storage>(static_cast<U>(a.raw_) -
                                         static_cast<U>(b.raw_)));
  }
  constexpr Fixed operator-() const {
    using U = std::make_unsigned_t<storage>;
    return from_raw(static_cast<storage>(U{0} - static_cast<U>(raw_)));
  }
  Fixed& operator+=(Fixed other) { return *this = *this + other; }
  Fixed& operator-=(Fixed other) { return *this = *this - other; }

  friend constexpr bool operator==(Fixed a, Fixed b) {
    return a.raw_ == b.raw_;
  }

  /// Saturating add: clamps instead of wrapping.
  static Fixed sat_add(Fixed a, Fixed b) {
    const wide sum = static_cast<wide>(a.raw_) + static_cast<wide>(b.raw_);
    if (sum > static_cast<wide>(max_raw)) return from_raw(max_raw);
    if (sum < static_cast<wide>(min_raw)) return from_raw(min_raw);
    return from_raw(static_cast<storage>(sum));
  }

 private:
  storage raw_ = 0;
};

/// Multiply two fixed values with independent formats, producing a result in
/// a third format with round-half-up on the discarded fraction bits.
/// The intermediate product is held in a wide register (as the hardware
/// multiplier's full-width output port) and then shifted/truncated.
template <typename Out, typename A, typename B>
Out fx_mul(A a, B b) {
  static_assert(A::bits + B::bits <= 64, "product must fit in 64 bits");
  const std::int64_t prod =
      static_cast<std::int64_t>(a.raw()) * static_cast<std::int64_t>(b.raw());
  const int shift = A::frac + B::frac - Out::frac;
  std::int64_t shifted;
  if (shift > 0) {
    const std::int64_t bias = std::int64_t{1} << (shift - 1);
    shifted = (prod + bias) >> shift;
  } else {
    shifted = prod << (-shift);
  }
  // Wrap into the output register width (hardware truncation of high bits).
  using S = typename Out::storage;
  return Out::from_raw(static_cast<S>(static_cast<std::uint64_t>(shifted)));
}

/// Complex fixed-point value.
template <typename F>
struct Complex {
  F re{};
  F im{};

  static Complex from_c64(const c64& v) {
    return {F::from_double(v.real()), F::from_double(v.imag())};
  }
  c64 to_c64() const { return {re.to_double(), im.to_double()}; }

  friend constexpr Complex operator+(Complex a, Complex b) {
    return {a.re + b.re, a.im + b.im};
  }
  friend constexpr Complex operator-(Complex a, Complex b) {
    return {a.re - b.re, a.im - b.im};
  }
  friend constexpr bool operator==(Complex a, Complex b) {
    return a.re == b.re && a.im == b.im;
  }
};

/// Knuth's complex multiplication (TAOCP vol. 1): three real multiplies and
/// five real add/subs, as used by the weight-lookup and interpolation units:
///   t1 = ar*(br + bi);  t2 = bi*(ar + ai);  t3 = br*(ai - ar)
///   re = t1 - t2;       im = t1 + t3
/// Additions on the inputs are performed at input precision +1 headroom via
/// the wide intermediate; rounding happens once per output component.
template <typename Out, typename A, typename B>
Complex<Out> knuth_cmul(const Complex<A>& a, const Complex<B>& b) {
  // Wide-register arithmetic at combined fraction (A::frac + B::frac).
  const std::int64_t ar = a.re.raw(), ai = a.im.raw();
  const std::int64_t br = b.re.raw(), bi = b.im.raw();
  const std::int64_t t1 = ar * (br + bi);
  const std::int64_t t2 = bi * (ar + ai);
  const std::int64_t t3 = br * (ai - ar);
  const int shift = A::frac + B::frac - Out::frac;
  auto narrow = [&](std::int64_t v) {
    std::int64_t shifted;
    if (shift > 0) {
      const std::int64_t bias = std::int64_t{1} << (shift - 1);
      shifted = (v + bias) >> shift;
    } else {
      shifted = v << (-shift);
    }
    using S = typename Out::storage;
    return Out::from_raw(static_cast<S>(static_cast<std::uint64_t>(shifted)));
  };
  return {narrow(t1 - t2), narrow(t1 + t3)};
}

// --- JIGSAW datapath formats (paper Table I) ---------------------------------

/// 16-bit interpolation weight, Q1.15 — kernel values lie in [0, 1].
using Weight16 = Fixed<16, 15>;
/// 32-bit sample / accumulator component, Q7.24 — 128x headroom over a
/// unit-normalized input stream.
using Data32 = Fixed<32, 24>;
/// 64-bit wide accumulator used by the verification ("ideal") datapath.
using Data64 = Fixed<64, 48>;

using CWeight16 = Complex<Weight16>;
using CData32 = Complex<Data32>;

}  // namespace jigsaw::fixed
