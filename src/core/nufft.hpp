// Non-uniform Fast Fourier Transform (paper Sec. II-B).
//
// Plan-based API: a NufftPlan is constructed for a fixed base grid size N,
// a set of M non-uniform coordinates, and a gridding configuration; it then
// executes forward and adjoint transforms over that geometry.
//
//   adjoint:  image[k] = sum_j f_j e^{+2 pi i k . x_j}          (type 1)
//     steps:  (1) gridding  (2) size-(sigma N)^d FFT  (3) de-apodization
//   forward:  f_j = sum_k image[k] e^{-2 pi i k . x_j}          (type 2)
//     steps:  (1) pre-apodization  (2) FFT  (3) re-gridding
//
// Conventions: coordinates x_j in [-0.5, 0.5)^d; uniform frequencies k
// centered in [-N/2, N/2)^d, stored row-major with index i = k + N/2.
// The pair (forward, adjoint) is an exact conjugate-transpose pair (up to
// FP rounding), which the CG reconstruction in recon.hpp relies on.
#pragma once

#include <memory>
#include <vector>

#include "common/deadline.hpp"
#include "core/gridder.hpp"
#include "fft/fft.hpp"

namespace jigsaw::core {

/// Per-phase wall-clock breakdown of one transform execution. Used for the
/// end-to-end speedup (Fig. 7) and time-breakdown (Sec. II's 99.6% claim)
/// experiments.
struct NufftTimings {
  double grid_seconds = 0.0;   // interpolation (gridding / re-gridding)
  double fft_seconds = 0.0;
  double apod_seconds = 0.0;   // (de-)apodization + center crop/embed
  double presort_seconds = 0.0;  // binning presort, when applicable

  double total() const {
    return grid_seconds + fft_seconds + apod_seconds + presort_seconds;
  }
};

template <int D>
class NufftPlan {
 public:
  /// Build a plan. `n` is the base (image) grid size per dimension; the
  /// oversampled working grid has side sigma*n. The coordinate set is fixed
  /// per plan (as in MIRT / NFFT plans); values vary per execution.
  NufftPlan(std::int64_t n, std::vector<Coord<D>> coords,
            const GridderOptions& options);

  std::int64_t base_size() const { return n_; }
  std::int64_t grid_size() const { return gridder_->grid_size(); }
  std::size_t num_samples() const { return coords_.size(); }
  std::int64_t image_total() const { return pow_dim<D>(n_); }
  const std::vector<Coord<D>>& coords() const { return coords_; }
  Gridder<D>& gridder() { return *gridder_; }
  const Gridder<D>& gridder() const { return *gridder_; }

  /// Adjoint NuFFT: M sample values -> N^D centered image. The deadline is
  /// checked at each phase boundary (grid / FFT / de-apodization); a passed
  /// deadline raises DeadlineExceeded there.
  std::vector<c64> adjoint(const std::vector<c64>& values,
                           NufftTimings* timings = nullptr,
                           const Deadline& deadline = Deadline());

  /// Forward NuFFT: N^D centered image -> M sample values. Deadline
  /// semantics as in adjoint().
  std::vector<c64> forward(const std::vector<c64>& image,
                           NufftTimings* timings = nullptr,
                           const Deadline& deadline = Deadline());

  /// The de-apodization (1/A(k/G)) profile along one dimension, index
  /// i = k + N/2 (diagnostic / tests).
  const std::vector<double>& apodization_1d() const { return apod_; }

 private:
  std::int64_t n_;
  std::vector<Coord<D>> coords_;
  std::unique_ptr<Gridder<D>> gridder_;
  std::shared_ptr<const fft::FftNd> fft_;  // shared via FftPlanCache
  std::vector<double> apod_;  // A((i - N/2) / G) per dimension
  Grid<D> work_;              // oversampled working grid
};

extern template class NufftPlan<1>;
extern template class NufftPlan<2>;
extern template class NufftPlan<3>;

}  // namespace jigsaw::core
