// Gridding engine interface.
//
// A Gridder owns the interpolation configuration (kernel, width W, table
// oversampling L, oversampling factor sigma) and implements the adjoint
// (non-uniform samples -> uniform grid, "gridding") and forward (uniform
// grid -> non-uniform samples, "re-gridding") interpolation steps of the
// NuFFT. Five engines are provided, mirroring the implementations the paper
// evaluates:
//
//   Serial       — input-driven serial double precision (MIRT-like baseline)
//   OutputDriven — naive output-parallel: every sample checked against every
//                  grid point (the strawman of Sec. II-C)
//   Binning      — geometric tiling with pre-sorted bins and per-tile-point
//                  boundary checks (Impatient-like [10])
//   SliceDice    — the paper's contribution: stacked virtual tiles, two-part
//                  coordinate decomposition, no presort (Sec. III)
//   Jigsaw       — bit-exact functional model of the JIGSAW fixed-point
//                  datapath (Sec. IV); shares arithmetic with jigsaw::CycleSim
//   Sparse       — precomputed CSR interpolation matrix (MIRT's sparse
//                  mode [7]): pay O(M*W^d) setup once, then SpMV applies
//
// All engines use the same window convention (see window.hpp) and therefore
// produce numerically identical grids in double precision — a property the
// test suite asserts.
#pragma once

#include <climits>
#include <cstdint>
#include <memory>
#include <string>

#include "core/grid.hpp"
#include "core/sample_set.hpp"
#include "kernels/kernel.hpp"
#include "kernels/lut.hpp"
#include "memsim/cache.hpp"
#include "robustness/sanitize.hpp"
#include "robustness/soft_error.hpp"

namespace jigsaw::core {

enum class GridderKind {
  Serial,
  OutputDriven,
  Binning,
  SliceDice,
  Jigsaw,
  Sparse,
  FloatSerial,  // single-precision (the paper's GPU numeric configuration)
  Auto,         // defer the choice to the autotuner (src/tune/); sites that
                // know the sample count resolve it against wisdom/trials,
                // make_gridder falls back to SliceDice
};

std::string to_string(GridderKind k);

/// Comma-separated list of the engine names parse_gridder_kind() accepts.
std::string gridder_kind_names();

/// Parse an engine name as accepted by the CLI and the serve protocol
/// (aliases included: "slice-and-dice", "sparse-matrix", "serial-f32").
/// Throws std::invalid_argument("unknown engine '<name>', valid: ...").
GridderKind parse_gridder_kind(const std::string& s);

/// Engine spec: a GridderKind plus the SIMD-variant flag. The "-simd"
/// suffixed names ("serial-simd", "slice-dice-simd", "binning-simd", plus
/// the usual aliases) select the runtime-dispatched vectorized variant of
/// the corresponding scalar engine (see kernels/simd/simd.hpp).
struct GridderSpec {
  GridderKind kind = GridderKind::SliceDice;
  bool simd = false;
};

/// True when `kind` honors GridderOptions::simd (Serial, SliceDice,
/// Binning — the engines with vectorized inner loops).
bool gridder_kind_has_simd(GridderKind kind);

/// Comma-separated list of every name parse_gridder_spec() accepts:
/// gridder_kind_names() plus the "-simd" variants.
std::string gridder_spec_names();

/// Parse an engine spec: every parse_gridder_kind() name plus the "-simd"
/// suffix forms. Throws std::invalid_argument("unknown engine ...") listing
/// gridder_spec_names().
GridderSpec parse_gridder_spec(const std::string& s);

/// Display name: to_string(kind), with "-simd" appended when set.
std::string to_string(const GridderSpec& spec);

struct GridderOptions {
  GridderKind kind = GridderKind::SliceDice;
  double sigma = 2.0;  // grid oversampling factor
  int width = 6;       // interpolation kernel width W
  int table_oversampling = 32;  // LUT factor L (power of two)
  kernels::KernelType kernel = kernels::KernelType::KaiserBessel;
  int tile = 8;        // virtual tile dimension T (SliceDice/Jigsaw) or
                       // bin tile dimension (Binning)
  unsigned threads = 1;
  bool simd = false;   // use the runtime-dispatched SIMD micro-kernels for
                       // the inner interpolate/accumulate loops (Serial,
                       // SliceDice, Binning). Falls back to the scalar path
                       // under exact_weights (no LUT to gather from) or an
                       // attached memory tracer; results match the scalar
                       // engine to rel-L2 <= 1e-9 (weights are bit-identical,
                       // accumulation order/FMA contraction differ)
  bool exact_weights = false;  // evaluate the kernel on-line instead of LUT
                               // (Impatient computes weights during
                               // processing; Binning defaults to this)
  bool model_faithful_checks = false;  // SliceDice: check every column per
                                       // sample (exactly M*T^d checks, as the
                                       // hardware does in parallel) instead of
                                       // walking only the W^d affected columns
  int fixed_scale_log2 = INT_MIN;  // Jigsaw: input scaling exponent;
                                   // INT_MIN = choose automatically
  robustness::SanitizePolicy sanitize = robustness::SanitizePolicy::None;
                                   // degraded-input policy applied by
                                   // Gridder::adjoint/forward before the
                                   // engine runs (None = zero overhead)
  robustness::SoftErrorConfig soft_error;  // Jigsaw/CycleSim accumulation
                                           // SRAM bit-flip campaign hook
};

/// Work/traffic counters. The prose claims of Secs. II-III (boundary-check
/// counts, duplicate sample processing, presort cost) are validated against
/// these.
struct GriddingStats {
  std::uint64_t boundary_checks = 0;   // sample-vs-point/column distance tests
  std::uint64_t samples_processed = 0; // incl. duplicates from bin overlap
  std::uint64_t interpolations = 0;    // weighted accumulations to grid points
  std::uint64_t lut_lookups = 0;
  std::uint64_t kernel_evals = 0;      // on-line kernel evaluations
  std::uint64_t grid_bytes_touched = 0;
  std::uint64_t saturation_events = 0; // Jigsaw fixed-point accumulator clips
  std::uint64_t soft_error_flips = 0;  // injected accumulator bit flips
  double presort_seconds = 0.0;
  double grid_seconds = 0.0;

  void reset() { *this = GriddingStats{}; }
};

template <int D>
class Gridder {
 public:
  Gridder(std::int64_t n, const GridderOptions& options);
  virtual ~Gridder() = default;

  Gridder(const Gridder&) = delete;
  Gridder& operator=(const Gridder&) = delete;

  std::int64_t base_size() const { return n_; }   // N
  std::int64_t grid_size() const { return g_; }   // G = sigma * N
  const GridderOptions& options() const { return options_; }
  const kernels::Kernel& kernel() const { return *kernel_; }
  const kernels::KernelLut& lut() const { return *lut_; }

  virtual GridderKind kind() const = 0;

  /// Adjoint interpolation (gridding): accumulate every sample's windowed
  /// contribution onto `out` (cleared first). `out` must have side G.
  /// Applies the configured sanitize policy first (see GridderOptions):
  /// with SanitizePolicy::None the input reaches the engine untouched; a
  /// clean input is never copied under any policy, so sanitization is a
  /// bit-exact no-op on valid data.
  void adjoint(const SampleSet<D>& in, Grid<D>& out);

  /// Forward interpolation (re-gridding): evaluate the windowed sum of grid
  /// values at each sample coordinate. Under a non-None sanitize policy the
  /// coordinates are clamped onto the torus (samples are output slots here,
  /// so nothing is ever dropped).
  void forward(const Grid<D>& in, SampleSet<D>& out);

  /// Report of the sanitization pass performed by the last adjoint() /
  /// forward() call (empty when the policy is None).
  const robustness::SanitizeReport& last_sanitize_report() const {
    return sanitize_report_;
  }

  GriddingStats& stats() { return stats_; }
  const GriddingStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Optional grid-memory trace sink (feeds memsim::Cache). Null disables.
  void set_tracer(memsim::MemTracer* tracer) { tracer_ = tracer; }

 protected:
  /// Engine hooks behind the sanitizing entry points above. Engines see
  /// only defect-free (or policy-repaired) samples.
  virtual void do_adjoint(const SampleSet<D>& in, Grid<D>& out) = 0;

  /// Default forward implementation is input-parallel; engines may override.
  virtual void do_forward(const Grid<D>& in, SampleSet<D>& out);

  /// One-dimensional interpolation weight at signed distance `dist`,
  /// honoring the exact_weights option. Counter updates are the caller's
  /// responsibility (hot loops batch them).
  double weight_1d(double dist) const {
    if (options_.exact_weights) {
      return kernel_->evaluate(dist);
    }
    return lut_->weight(dist);
  }

  void trace_grid_access(std::int64_t lin, bool write) const {
    if (tracer_ != nullptr) {
      tracer_->access(static_cast<std::uint64_t>(lin) * sizeof(c64),
                      sizeof(c64), write);
    }
  }

  std::int64_t n_;
  std::int64_t g_;
  GridderOptions options_;
  std::unique_ptr<kernels::Kernel> kernel_;
  std::unique_ptr<kernels::KernelLut> lut_;
  GriddingStats stats_;
  robustness::SanitizeReport sanitize_report_;
  memsim::MemTracer* tracer_ = nullptr;
};

/// Factory: build a gridder for base grid size N (per dimension).
template <int D>
std::unique_ptr<Gridder<D>> make_gridder(std::int64_t n,
                                         const GridderOptions& options);

extern template class Gridder<1>;
extern template class Gridder<2>;
extern template class Gridder<3>;
extern template std::unique_ptr<Gridder<1>> make_gridder<1>(
    std::int64_t, const GridderOptions&);
extern template std::unique_ptr<Gridder<2>> make_gridder<2>(
    std::int64_t, const GridderOptions&);
extern template std::unique_ptr<Gridder<3>> make_gridder<3>(
    std::int64_t, const GridderOptions&);

}  // namespace jigsaw::core
