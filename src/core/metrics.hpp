// Image/signal quality metrics.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace jigsaw::core {

/// Normalized root-mean-square difference (the paper's NRMSD, Sec. VI-C):
/// ||a - ref||_2 / ||ref||_2. Multiply by 100 for the percentages the paper
/// quotes (0.047% float32, 0.012% fixed-point).
double nrmsd(const std::vector<c64>& a, const std::vector<c64>& ref);
double nrmsd(const std::vector<double>& a, const std::vector<double>& ref);

/// Maximum absolute difference.
double max_abs_diff(const std::vector<c64>& a, const std::vector<c64>& b);

/// L2 norm.
double norm2(const std::vector<c64>& a);

/// Peak signal-to-noise ratio in dB, peak taken from `ref`.
double psnr_db(const std::vector<double>& a, const std::vector<double>& ref);

/// Mean structural similarity (SSIM) between two n x n grayscale images,
/// computed over sliding 8x8 windows with the standard constants
/// (k1=0.01, k2=0.03) and the dynamic range of `ref`. Used by the image-
/// quality experiments to back the paper's "visually indistinguishable"
/// claim with a perceptual metric.
double ssim(const std::vector<double>& a, const std::vector<double>& ref,
            int n, int window = 8);

}  // namespace jigsaw::core
