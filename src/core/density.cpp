#include "core/density.hpp"

#include <cmath>

#include "obs/obs.hpp"

namespace jigsaw::core {

template <int D>
std::vector<double> pipe_menon_weights(Gridder<D>& gridder,
                                       const std::vector<Coord<D>>& coords,
                                       const PipeMenonOptions& options,
                                       PipeMenonReport* report) {
  JIGSAW_REQUIRE(!coords.empty(), "no coordinates");
  JIGSAW_REQUIRE(options.iterations >= 1, "need >= 1 iteration");
  const std::size_t m = coords.size();
  std::vector<double> w(m, 1.0);

  Grid<D> grid(gridder.grid_size());
  SampleSet<D> set;
  set.coords = coords;
  set.values.assign(m, c64{});

  PipeMenonReport local;
  for (int it = 0; it < options.iterations; ++it) {
    for (std::size_t j = 0; j < m; ++j) set.values[j] = c64(w[j], 0.0);
    gridder.adjoint(set, grid);
    gridder.forward(grid, set);
    double max_update = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double p = std::abs(set.values[j]);
      const double next = w[j] / std::max(p, options.epsilon);
      if (w[j] > 0.0) {
        max_update = std::max(max_update, std::abs(next - w[j]) / w[j]);
      }
      w[j] = next;
    }
    local.iterations = it + 1;
    local.max_update = max_update;
    if (options.tolerance > 0.0 && max_update < options.tolerance) {
      local.converged = true;
      break;
    }
  }
  obs::add("dcf.runs", 1);
  obs::add("dcf.iterations", static_cast<std::uint64_t>(local.iterations));
  if (report != nullptr) *report = local;

  // Normalize to mean 1.
  double sum = 0.0;
  for (double v : w) sum += v;
  const double scale = static_cast<double>(m) / sum;
  for (auto& v : w) v *= scale;
  return w;
}

template std::vector<double> pipe_menon_weights<1>(Gridder<1>&,
                                                   const std::vector<Coord<1>>&,
                                                   const PipeMenonOptions&,
                                                   PipeMenonReport*);
template std::vector<double> pipe_menon_weights<2>(Gridder<2>&,
                                                   const std::vector<Coord<2>>&,
                                                   const PipeMenonOptions&,
                                                   PipeMenonReport*);
template std::vector<double> pipe_menon_weights<3>(Gridder<3>&,
                                                   const std::vector<Coord<3>>&,
                                                   const PipeMenonOptions&,
                                                   PipeMenonReport*);

}  // namespace jigsaw::core
