// Precomputed sparse-matrix gridder — MIRT's second operating mode.
//
// The paper's baseline toolbox (MIRT [7]) "relies on optimized matrix
// processing ... using both interpolation table and sparse matrix
// implementations". This engine implements the sparse-matrix mode: during
// plan construction the full M x G^d interpolation operator is materialized
// in CSR form (row = sample, entries = the W^d window weights); the adjoint
// is then a transposed SpMV (scatter) and the forward a plain SpMV
// (gather). Weights are computed once, so repeated transforms over a fixed
// trajectory — the iterative-reconstruction workload of the paper's
// introduction — avoid all per-transform kernel evaluation at the cost of
// O(M * W^d) precomputation time and memory (16 bytes per nonzero).
//
// This engine is the "precompute everything" endpoint of the design space
// the paper explores (binning presorts indices; Slice-and-Dice presorts
// nothing; the sparse matrix presorts indices *and* weights).
#pragma once

#include <vector>

#include "common/timer.hpp"
#include "core/gridder.hpp"
#include "core/window.hpp"

namespace jigsaw::core {

template <int D>
class SparseGridder final : public Gridder<D> {
 public:
  SparseGridder(std::int64_t n, const GridderOptions& options)
      : Gridder<D>(n, options) {}

  GridderKind kind() const override { return GridderKind::Sparse; }

  /// Nonzeros currently cached (0 before the first transform).
  std::size_t nonzeros() const { return weights_.size(); }

  /// Bytes of precomputed matrix state.
  std::size_t matrix_bytes() const {
    return weights_.size() * (sizeof(double) + sizeof(std::int64_t));
  }

  /// Seconds spent building the matrix (plan phase; reported separately
  /// from stats().grid_seconds, analogous to binning's presort time).
  double build_seconds() const { return build_seconds_; }

  void do_adjoint(const SampleSet<D>& in, Grid<D>& out) override {
    JIGSAW_REQUIRE(out.size() == this->g_, "grid size mismatch in adjoint()");
    ensure_matrix(in.coords);
    out.clear();
    Timer timer;
    const auto m = static_cast<std::int64_t>(in.size());
    const std::int64_t row_nnz = pow_dim<D>(this->options_.width);
    for (std::int64_t j = 0; j < m; ++j) {
      const c64 f = in.values[static_cast<std::size_t>(j)];
      const std::size_t base = static_cast<std::size_t>(j * row_nnz);
      for (std::int64_t e = 0; e < row_nnz; ++e) {
        const std::int64_t lin = columns_[base + static_cast<std::size_t>(e)];
        out[lin] += weights_[base + static_cast<std::size_t>(e)] * f;
        this->trace_grid_access(lin, /*write=*/true);
      }
    }
    this->stats_.grid_seconds += timer.seconds();
    this->stats_.samples_processed += static_cast<std::uint64_t>(m);
    this->stats_.interpolations +=
        static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(row_nnz);
    this->stats_.grid_bytes_touched += static_cast<std::uint64_t>(m) *
                                       static_cast<std::uint64_t>(row_nnz) *
                                       sizeof(c64);
  }

  void do_forward(const Grid<D>& in, SampleSet<D>& out) override {
    JIGSAW_REQUIRE(in.size() == this->g_, "grid size mismatch in forward()");
    ensure_matrix(out.coords);
    Timer timer;
    const auto m = static_cast<std::int64_t>(out.size());
    const std::int64_t row_nnz = pow_dim<D>(this->options_.width);
    for (std::int64_t j = 0; j < m; ++j) {
      const std::size_t base = static_cast<std::size_t>(j * row_nnz);
      c64 acc{};
      for (std::int64_t e = 0; e < row_nnz; ++e) {
        acc += weights_[base + static_cast<std::size_t>(e)] *
               in[columns_[base + static_cast<std::size_t>(e)]];
      }
      out.values[static_cast<std::size_t>(j)] = acc;
    }
    this->stats_.grid_seconds += timer.seconds();
    this->stats_.interpolations +=
        static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(row_nnz);
  }

 private:
  /// (Re)build the CSR matrix when the coordinate set changes. The row
  /// count is fixed at W^D nonzeros per sample, so no row-pointer array is
  /// needed.
  void ensure_matrix(const std::vector<Coord<D>>& coords) {
    if (coords == cached_coords_) return;
    Timer timer;
    const int w = this->options_.width;
    const std::int64_t g = this->g_;
    const std::int64_t row_nnz = pow_dim<D>(w);
    const auto m = static_cast<std::int64_t>(coords.size());
    columns_.resize(static_cast<std::size_t>(m * row_nnz));
    weights_.resize(static_cast<std::size_t>(m * row_nnz));

    std::int64_t idx[3][64];
    double wt[3][64];
    for (std::int64_t j = 0; j < m; ++j) {
      for (int d = 0; d < D; ++d) {
        const double u = grid_coord(
            coords[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)],
            g);
        const std::int64_t g0 = window_start(u, w);
        for (int o = 0; o < w; ++o) {
          idx[d][o] = pos_mod(g0 + o, g);
          wt[d][o] = this->weight_1d(static_cast<double>(g0 + o) - u);
        }
      }
      std::size_t base = static_cast<std::size_t>(j * row_nnz);
      if constexpr (D == 1) {
        for (int ox = 0; ox < w; ++ox) {
          columns_[base] = idx[0][ox];
          weights_[base] = wt[0][ox];
          ++base;
        }
      } else if constexpr (D == 2) {
        for (int oy = 0; oy < w; ++oy) {
          const std::int64_t row = idx[0][oy] * g;
          for (int ox = 0; ox < w; ++ox) {
            columns_[base] = row + idx[1][ox];
            weights_[base] = wt[0][oy] * wt[1][ox];
            ++base;
          }
        }
      } else {
        for (int oz = 0; oz < w; ++oz) {
          for (int oy = 0; oy < w; ++oy) {
            const std::int64_t row = (idx[0][oz] * g + idx[1][oy]) * g;
            const double wzy = wt[0][oz] * wt[1][oy];
            for (int ox = 0; ox < w; ++ox) {
              columns_[base] = row + idx[2][ox];
              weights_[base] = wzy * wt[2][ox];
              ++base;
            }
          }
        }
      }
    }
    cached_coords_ = coords;
    build_seconds_ = timer.seconds();
    this->stats_.presort_seconds += build_seconds_;
    const auto weight_ops = static_cast<std::uint64_t>(m) *
                            static_cast<std::uint64_t>(D) *
                            static_cast<std::uint64_t>(w);
    if (this->options_.exact_weights) {
      this->stats_.kernel_evals += weight_ops;
    } else {
      this->stats_.lut_lookups += weight_ops;
    }
  }

  std::vector<Coord<D>> cached_coords_;
  std::vector<std::int64_t> columns_;
  std::vector<double> weights_;
  double build_seconds_ = 0.0;
};

}  // namespace jigsaw::core
