// Input-driven serial gridder — the CPU baseline (MIRT-like).
//
// Processes the (randomly ordered) samples one at a time, scattering each
// sample's W^d windowed contribution into the full-size output grid. Quick
// to determine affected points and free of write conflicts, but with poor
// memory locality: nearly every grid update is a cache miss on real problem
// sizes (paper Sec. II-C).
#pragma once

#include "common/timer.hpp"
#include "core/gridder.hpp"
#include "core/window.hpp"
#include "kernels/simd/simd.hpp"

namespace jigsaw::core {

template <int D>
class SerialGridder final : public Gridder<D> {
 public:
  SerialGridder(std::int64_t n, const GridderOptions& options)
      : Gridder<D>(n, options) {}

  GridderKind kind() const override { return GridderKind::Serial; }

  void do_adjoint(const SampleSet<D>& in, Grid<D>& out) override {
    JIGSAW_REQUIRE(out.size() == this->g_, "grid size mismatch in adjoint()");
    const int w = this->options_.width;
    const std::int64_t g = this->g_;
    out.clear();
    // SIMD fast path: vector LUT-weight gather, and a vector complex axpy
    // onto the innermost-dim window row whenever it does not wrap the torus
    // (then its W grid points are contiguous). Wrapping samples scatter
    // through the scalar index path with the same (bit-identical) weights.
    // exact_weights has no LUT to gather; a memory tracer needs the
    // per-point scalar writes — both stay scalar.
    const bool use_simd = this->options_.simd &&
                          !this->options_.exact_weights &&
                          this->tracer_ == nullptr;
    const kernels::simd::KernelTable* K =
        use_simd ? &kernels::simd::table() : nullptr;
    const kernels::simd::LutView lv =
        use_simd ? kernels::simd::lut_view(*this->lut_)
                 : kernels::simd::LutView{};
    Timer timer;

    std::int64_t idx[3][64];
    double wt[3][64];
    const auto m = static_cast<std::int64_t>(in.size());
    for (std::int64_t j = 0; j < m; ++j) {
      const c64 f = in.values[static_cast<std::size_t>(j)];
      if (K != nullptr) {
        // Fused whole-window kernel: weights + W^d accumulate in one call,
        // vectorized at the dispatched ISA's native width.
        double u[3];
        std::int64_t g0[3];
        for (int d = 0; d < D; ++d) {
          u[d] = grid_coord(in.coords[static_cast<std::size_t>(j)]
                                     [static_cast<std::size_t>(d)],
                            g);
          g0[d] = window_start(u[d], w);
        }
        K->scatter(lv, D, u, g0, g, w, f, &out[0]);
        continue;
      }
      for (int d = 0; d < D; ++d) {
        const double u = grid_coord(
            in.coords[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)],
            g);
        const std::int64_t g0 = window_start(u, w);
        for (int o = 0; o < w; ++o) {
          idx[d][o] = pos_mod(g0 + o, g);
          wt[d][o] = this->weight_1d(static_cast<double>(g0 + o) - u);
        }
      }
      if constexpr (D == 1) {
        for (int ox = 0; ox < w; ++ox) {
          const std::int64_t lin = idx[0][ox];
          out[lin] += wt[0][ox] * f;
          this->trace_grid_access(lin, /*write=*/true);
        }
      } else if constexpr (D == 2) {
        for (int oy = 0; oy < w; ++oy) {
          const std::int64_t row = idx[0][oy] * g;
          const c64 fy = wt[0][oy] * f;
          for (int ox = 0; ox < w; ++ox) {
            const std::int64_t lin = row + idx[1][ox];
            out[lin] += wt[1][ox] * fy;
            this->trace_grid_access(lin, /*write=*/true);
          }
        }
      } else {
        for (int oz = 0; oz < w; ++oz) {
          const std::int64_t zoff = idx[0][oz] * g * g;
          const c64 fz = wt[0][oz] * f;
          for (int oy = 0; oy < w; ++oy) {
            const std::int64_t row = zoff + idx[1][oy] * g;
            const c64 fzy = wt[1][oy] * fz;
            for (int ox = 0; ox < w; ++ox) {
              const std::int64_t lin = row + idx[2][ox];
              out[lin] += wt[2][ox] * fzy;
              this->trace_grid_access(lin, /*write=*/true);
            }
          }
        }
      }
    }

    const auto window_points = static_cast<std::uint64_t>(pow_dim<D>(w));
    this->stats_.grid_seconds += timer.seconds();
    this->stats_.samples_processed += static_cast<std::uint64_t>(m);
    this->stats_.interpolations += static_cast<std::uint64_t>(m) * window_points;
    this->stats_.grid_bytes_touched +=
        static_cast<std::uint64_t>(m) * window_points * sizeof(c64);
    const auto weight_ops = static_cast<std::uint64_t>(m) *
                            static_cast<std::uint64_t>(D) *
                            static_cast<std::uint64_t>(w);
    if (this->options_.exact_weights) {
      this->stats_.kernel_evals += weight_ops;
    } else {
      this->stats_.lut_lookups += weight_ops;
    }
  }
};

}  // namespace jigsaw::core
