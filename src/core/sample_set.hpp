// Non-uniform sample container: M coordinates (normalized torus units) and
// their complex values.
#pragma once

#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace jigsaw::core {

template <int D>
struct SampleSet {
  std::vector<Coord<D>> coords;  // each component in [-0.5, 0.5)
  std::vector<c64> values;       // complex sample magnitudes f_j

  SampleSet() = default;
  SampleSet(std::vector<Coord<D>> c, std::vector<c64> v)
      : coords(std::move(c)), values(std::move(v)) {
    JIGSAW_REQUIRE(coords.size() == values.size(),
                   "coords/values size mismatch: " << coords.size() << " vs "
                                                   << values.size());
  }

  std::size_t size() const { return coords.size(); }
  bool empty() const { return coords.empty(); }

  /// Validate that every coordinate lies in [-0.5, 0.5).
  void validate() const {
    for (const auto& c : coords) {
      for (int d = 0; d < D; ++d) {
        JIGSAW_REQUIRE(c[static_cast<std::size_t>(d)] >= -0.5 &&
                           c[static_cast<std::size_t>(d)] < 0.5,
                       "coordinate component out of [-0.5, 0.5)");
      }
    }
  }
};

}  // namespace jigsaw::core
