// Non-uniform sample container: M coordinates (normalized torus units) and
// their complex values.
#pragma once

#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "robustness/sanitize.hpp"

namespace jigsaw::core {

template <int D>
struct SampleSet {
  std::vector<Coord<D>> coords;  // each component in [-0.5, 0.5)
  std::vector<c64> values;       // complex sample magnitudes f_j

  SampleSet() = default;
  SampleSet(std::vector<Coord<D>> c, std::vector<c64> v)
      : coords(std::move(c)), values(std::move(v)) {
    JIGSAW_REQUIRE(coords.size() == values.size(),
                   "coords/values size mismatch: " << coords.size() << " vs "
                                                   << values.size());
  }

  std::size_t size() const { return coords.size(); }
  bool empty() const { return coords.empty(); }

  /// Validate that every value is finite and every coordinate lies in
  /// [-0.5, 0.5). This is exactly the sanitizer's Strict policy: on the
  /// first defect it throws std::invalid_argument naming the sample index,
  /// the dimension and the offending value — indispensable context when one
  /// sample in a 50M-sample acquisition is bad.
  void validate() const { robustness::require_valid<D>(*this); }
};

}  // namespace jigsaw::core
