// Functional (untimed) model of the JIGSAW accelerator's gridding.
//
// Streams the samples once, in order, through the fixed-point datapath of
// jigsaw_datapath.hpp — exactly the arithmetic the cycle-level simulator
// performs, minus the timing. Use this engine to study JIGSAW's numerical
// behaviour (Fig. 9) cheaply; use jigsaw::CycleSim when cycle counts and
// activity-based energy are needed. The two are bit-exact (tested).
//
// The forward (re-gridding) direction falls back to the base double-
// precision implementation: the paper's accelerator targets the adjoint
// gridding step.
#pragma once

#include <vector>

#include "common/timer.hpp"
#include "core/gridder.hpp"
#include "core/jigsaw_datapath.hpp"
#include "core/window.hpp"
#include "robustness/soft_error.hpp"

namespace jigsaw::core {

template <int D>
class JigsawGridder final : public Gridder<D> {
 public:
  JigsawGridder(std::int64_t n, const GridderOptions& options)
      : Gridder<D>(n, options) {
    const std::int64_t t = options.tile;
    JIGSAW_REQUIRE((t & (t - 1)) == 0,
                   "JIGSAW tile size must be a power of two, got " << t);
    JIGSAW_REQUIRE(t >= options.width,
                   "virtual tile must be at least as wide as the window");
    JIGSAW_REQUIRE(this->g_ % t == 0,
                   "tile size must divide the oversampled grid");
    JIGSAW_REQUIRE(
        (options.table_oversampling & (options.table_oversampling - 1)) == 0,
        "table oversampling factor must be a power of two");
    ntiles_ = this->g_ / t;
    int log2_l = 0;
    while ((1 << log2_l) < options.table_oversampling) ++log2_l;
    JIGSAW_REQUIRE(log2_l <= datapath::kCoordFracBits,
                   "table oversampling exceeds coordinate precision");
    select_cfg_ = datapath::SelectConfig{
        options.width, t, ntiles_, log2_l,
        static_cast<std::int32_t>(this->lut_->entries()) - 1};
  }

  GridderKind kind() const override { return GridderKind::Jigsaw; }

  std::int64_t tiles_per_dim() const { return ntiles_; }
  const datapath::SelectConfig& select_config() const { return select_cfg_; }

  /// Scale exponent used by the last adjoint() call.
  int scale_log2() const { return scale_log2_; }

  void do_adjoint(const SampleSet<D>& in, Grid<D>& out) override {
    JIGSAW_REQUIRE(out.size() == this->g_, "grid size mismatch in adjoint()");
    const int w = this->options_.width;
    const std::int64_t t = this->options_.tile;
    const std::int64_t columns = pow_dim<D>(t);
    const std::int64_t tile_count = pow_dim<D>(ntiles_);
    dice_.assign(static_cast<std::size_t>(columns * tile_count),
                 fixed::CData32{});

    scale_log2_ = this->options_.fixed_scale_log2 != INT_MIN
                      ? this->options_.fixed_scale_log2
                      : datapath::auto_scale_log2(in.values);
    const double scale = std::ldexp(1.0, scale_log2_);

    Timer timer;
    const auto m = static_cast<std::int64_t>(in.size());
    std::uint64_t saturations = 0;
    // Soft-error campaign hook: possibly flip one bit per accumulation-SRAM
    // write (inactive and draw-free at the default rate of 0).
    robustness::SoftErrorInjector seu(this->options_.soft_error);
    datapath::DimSelect sel[3][64];
    fixed::CWeight16 wsel[3][64];
    for (std::int64_t j = 0; j < m; ++j) {
      const c64 fv = in.values[static_cast<std::size_t>(j)] * scale;
      const fixed::CData32 value = fixed::CData32::from_c64(fv);
      for (int d = 0; d < D; ++d) {
        const double u = grid_coord(
            in.coords[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)],
            this->g_);
        const std::int64_t us_q =
            datapath::quantize_coord(u) +
            (static_cast<std::int64_t>(w) << (datapath::kCoordFracBits - 1));
        for (int k = 0; k < w; ++k) {
          sel[d][k] = datapath::select_dim(us_q, k, select_cfg_);
          wsel[d][k] = fixed::CWeight16{
              this->lut_->entry_fixed(sel[d][k].lut_index),
              fixed::Weight16{}};
        }
      }
      if constexpr (D == 1) {
        for (int kx = 0; kx < w; ++kx) {
          const auto& sx = sel[0][kx];
          const auto wt = datapath::widen_weight(wsel[0][kx]);
          const std::int64_t addr = sx.column * tile_count + sx.tile;
          saturations += datapath::accumulate(
              dice_[static_cast<std::size_t>(addr)],
              datapath::interpolate(wt, value));
          seu.corrupt(dice_[static_cast<std::size_t>(addr)]);
          this->trace_grid_access(addr, /*write=*/true);
        }
      } else if constexpr (D == 2) {
        for (int ky = 0; ky < w; ++ky) {
          const auto& sy = sel[0][ky];
          for (int kx = 0; kx < w; ++kx) {
            const auto& sx = sel[1][kx];
            const auto wt = datapath::combine_weights(wsel[0][ky], wsel[1][kx]);
            const std::int64_t col = sy.column * t + sx.column;
            const std::int64_t tile_addr = sy.tile * ntiles_ + sx.tile;
            const std::int64_t addr = col * tile_count + tile_addr;
            saturations += datapath::accumulate(
                dice_[static_cast<std::size_t>(addr)],
                datapath::interpolate(wt, value));
            seu.corrupt(dice_[static_cast<std::size_t>(addr)]);
            this->trace_grid_access(addr, /*write=*/true);
          }
        }
      } else {
        for (int kz = 0; kz < w; ++kz) {
          const auto& sz = sel[0][kz];
          for (int ky = 0; ky < w; ++ky) {
            const auto& sy = sel[1][ky];
            const auto wzy =
                datapath::combine_weights(wsel[0][kz], wsel[1][ky]);
            for (int kx = 0; kx < w; ++kx) {
              const auto& sx = sel[2][kx];
              const auto wt = datapath::combine_weights(wzy, wsel[2][kx]);
              const std::int64_t col =
                  (sz.column * t + sy.column) * t + sx.column;
              const std::int64_t tile_addr =
                  (sz.tile * ntiles_ + sy.tile) * ntiles_ + sx.tile;
              const std::int64_t addr = col * tile_count + tile_addr;
              saturations += datapath::accumulate(
                  dice_[static_cast<std::size_t>(addr)],
                  datapath::interpolate(wt, value));
              seu.corrupt(dice_[static_cast<std::size_t>(addr)]);
              this->trace_grid_access(addr, /*write=*/true);
            }
          }
        }
      }
    }
    this->stats_.grid_seconds += timer.seconds();

    // Readout: dequantize into the row-major grid.
    const double descale = 1.0 / scale;
    const std::int64_t total = out.total();
    for (std::int64_t lin = 0; lin < total; ++lin) {
      const Index<D> p = unlinear_index<D>(lin, this->g_);
      std::int64_t col = 0, tile_addr = 0;
      for (int d = 0; d < D; ++d) {
        const std::int64_t pd = p[static_cast<std::size_t>(d)];
        col = col * t + (pd % t);
        tile_addr = tile_addr * ntiles_ + (pd / t);
      }
      out[lin] =
          dice_[static_cast<std::size_t>(col * tile_count + tile_addr)]
              .to_c64() *
          descale;
    }

    const auto window_points = static_cast<std::uint64_t>(pow_dim<D>(w));
    this->stats_.samples_processed += static_cast<std::uint64_t>(m);
    this->stats_.boundary_checks +=
        static_cast<std::uint64_t>(m) * window_points;
    this->stats_.interpolations +=
        static_cast<std::uint64_t>(m) * window_points;
    this->stats_.lut_lookups += static_cast<std::uint64_t>(m) *
                                static_cast<std::uint64_t>(D) *
                                static_cast<std::uint64_t>(w);
    this->stats_.saturation_events += saturations;
    this->stats_.soft_error_flips += seu.flips();
  }

  /// Fixed-point forward interpolation (re-gridding): the symmetric
  /// operation for the forward NuFFT (paper Fig. 1). The grid is quantized
  /// into the dice SRAM layout and each sample gathers its W^D windowed
  /// contributions through the same select / weight-lookup / interpolate
  /// datapath, accumulating into a per-sample register. Bit-exact with
  /// jigsaw::CycleSim::run_2d_forward (tested).
  void do_forward(const Grid<D>& in, SampleSet<D>& out) override {
    JIGSAW_REQUIRE(in.size() == this->g_, "grid size mismatch in forward()");
    const int w = this->options_.width;
    const std::int64_t t = this->options_.tile;
    const std::int64_t tile_count = pow_dim<D>(ntiles_);

    // Quantize the grid into dice-layout fixed point.
    std::vector<c64> grid_vals(in.data(), in.data() + in.total());
    scale_log2_ = this->options_.fixed_scale_log2 != INT_MIN
                      ? this->options_.fixed_scale_log2
                      : datapath::auto_scale_log2(grid_vals);
    const double scale = std::ldexp(1.0, scale_log2_);
    dice_.assign(static_cast<std::size_t>(pow_dim<D>(t) * tile_count),
                 fixed::CData32{});
    const std::int64_t total = in.total();
    for (std::int64_t lin = 0; lin < total; ++lin) {
      const Index<D> p = unlinear_index<D>(lin, this->g_);
      std::int64_t col = 0, tile_addr = 0;
      for (int d = 0; d < D; ++d) {
        const std::int64_t pd = p[static_cast<std::size_t>(d)];
        col = col * t + (pd % t);
        tile_addr = tile_addr * ntiles_ + (pd / t);
      }
      dice_[static_cast<std::size_t>(col * tile_count + tile_addr)] =
          fixed::CData32::from_c64(in[lin] * scale);
    }

    Timer timer;
    const auto m = static_cast<std::int64_t>(out.size());
    std::uint64_t saturations = 0;
    datapath::DimSelect sel[3][64];
    fixed::CWeight16 wsel[3][64];
    const double descale = 1.0 / scale;
    for (std::int64_t j = 0; j < m; ++j) {
      for (int d = 0; d < D; ++d) {
        const double u = grid_coord(
            out.coords[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)],
            this->g_);
        const std::int64_t us_q =
            datapath::quantize_coord(u) +
            (static_cast<std::int64_t>(w) << (datapath::kCoordFracBits - 1));
        for (int k = 0; k < w; ++k) {
          sel[d][k] = datapath::select_dim(us_q, k, select_cfg_);
          wsel[d][k] = fixed::CWeight16{
              this->lut_->entry_fixed(sel[d][k].lut_index),
              fixed::Weight16{}};
        }
      }
      fixed::CData32 acc{};
      auto gather = [&](const std::int64_t addr,
                        const datapath::CWeight32& wt) {
        saturations += datapath::accumulate(
            acc, datapath::interpolate(
                     wt, dice_[static_cast<std::size_t>(addr)]));
      };
      if constexpr (D == 1) {
        for (int kx = 0; kx < w; ++kx) {
          const auto& sx = sel[0][kx];
          gather(sx.column * tile_count + sx.tile,
                 datapath::widen_weight(wsel[0][kx]));
        }
      } else if constexpr (D == 2) {
        for (int ky = 0; ky < w; ++ky) {
          const auto& sy = sel[0][ky];
          for (int kx = 0; kx < w; ++kx) {
            const auto& sx = sel[1][kx];
            const std::int64_t col = sy.column * t + sx.column;
            const std::int64_t tile_addr = sy.tile * ntiles_ + sx.tile;
            gather(col * tile_count + tile_addr,
                   datapath::combine_weights(wsel[0][ky], wsel[1][kx]));
          }
        }
      } else {
        for (int kz = 0; kz < w; ++kz) {
          const auto& sz = sel[0][kz];
          for (int ky = 0; ky < w; ++ky) {
            const auto& sy = sel[1][ky];
            const auto wzy =
                datapath::combine_weights(wsel[0][kz], wsel[1][ky]);
            for (int kx = 0; kx < w; ++kx) {
              const auto& sx = sel[2][kx];
              const std::int64_t col =
                  (sz.column * t + sy.column) * t + sx.column;
              const std::int64_t tile_addr =
                  (sz.tile * ntiles_ + sy.tile) * ntiles_ + sx.tile;
              gather(col * tile_count + tile_addr,
                     datapath::combine_weights(wzy, wsel[2][kx]));
            }
          }
        }
      }
      out.values[static_cast<std::size_t>(j)] = acc.to_c64() * descale;
    }
    this->stats_.grid_seconds += timer.seconds();
    const auto window_points = static_cast<std::uint64_t>(pow_dim<D>(w));
    this->stats_.interpolations +=
        static_cast<std::uint64_t>(m) * window_points;
    this->stats_.lut_lookups += static_cast<std::uint64_t>(m) *
                                static_cast<std::uint64_t>(D) *
                                static_cast<std::uint64_t>(w);
    this->stats_.saturation_events += saturations;
  }

  /// Raw fixed-point dice contents after adjoint() — used by the
  /// bit-exactness test against jigsaw::CycleSim.
  const std::vector<fixed::CData32>& dice() const { return dice_; }

 private:
  std::int64_t ntiles_;
  datapath::SelectConfig select_cfg_;
  std::vector<fixed::CData32> dice_;
  int scale_log2_ = 0;
};

}  // namespace jigsaw::core
