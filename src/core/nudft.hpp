// Direct Non-uniform Discrete Fourier Transform (paper Sec. II-A).
//
// Exact O(M * N^d) evaluation of Eqs. (1)-(2), used as the accuracy oracle
// for the NuFFT. Uniform frequencies are centered: k in [-N/2, N/2)^d,
// stored row-major with index i = k + N/2.
#pragma once

#include <vector>

#include "core/sample_set.hpp"

namespace jigsaw::core {

/// Adjoint NuDFT (Eq. 2): h[k] = sum_j f_j e^{+2 pi i k . x_j}.
/// Output has N^D entries (centered layout).
template <int D>
std::vector<c64> nudft_adjoint(const SampleSet<D>& in, std::int64_t n);

/// Forward NuDFT (Eq. 1): f_j = sum_k image[k] e^{-2 pi i k . x_j}.
template <int D>
std::vector<c64> nudft_forward(const std::vector<c64>& image, std::int64_t n,
                               const std::vector<Coord<D>>& coords);

extern template std::vector<c64> nudft_adjoint<1>(const SampleSet<1>&,
                                                  std::int64_t);
extern template std::vector<c64> nudft_adjoint<2>(const SampleSet<2>&,
                                                  std::int64_t);
extern template std::vector<c64> nudft_adjoint<3>(const SampleSet<3>&,
                                                  std::int64_t);
extern template std::vector<c64> nudft_forward<1>(
    const std::vector<c64>&, std::int64_t, const std::vector<Coord<1>>&);
extern template std::vector<c64> nudft_forward<2>(
    const std::vector<c64>&, std::int64_t, const std::vector<Coord<2>>&);
extern template std::vector<c64> nudft_forward<3>(
    const std::vector<c64>&, std::int64_t, const std::vector<Coord<3>>&);

}  // namespace jigsaw::core
