#include "core/gridder.hpp"

#include <cmath>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/window.hpp"
#include "kernels/simd/simd.hpp"
#include "obs/obs.hpp"

namespace jigsaw::core {
namespace {

/// Publish the work performed by one adjoint()/forward() call to the
/// global counter registry under grid.<engine>.*. The engines batch their
/// counts into GriddingStats, so this is one string build + shard add per
/// counter per *operation* — invisible next to the gridding itself.
void publish_gridding_delta(GridderKind kind, const char* op,
                            const GriddingStats& before,
                            const GriddingStats& after, std::size_t samples_in) {
  if constexpr (!obs::kEnabled) {
    (void)kind; (void)op; (void)before; (void)after; (void)samples_in;
    return;
  }
  const std::string prefix = "grid." + to_string(kind) + ".";
  obs::add(prefix + op + "_calls", 1);
  obs::add(prefix + "samples_in", samples_in);
  obs::add(prefix + "samples_processed",
           after.samples_processed - before.samples_processed);
  obs::add(prefix + "kernel_evals", after.kernel_evals - before.kernel_evals);
  obs::add(prefix + "lut_lookups", after.lut_lookups - before.lut_lookups);
  obs::add(prefix + "boundary_checks",
           after.boundary_checks - before.boundary_checks);
  obs::add(prefix + "interpolations",
           after.interpolations - before.interpolations);
  obs::add(prefix + "saturations",
           after.saturation_events - before.saturation_events);
  obs::add(prefix + "soft_error_flips",
           after.soft_error_flips - before.soft_error_flips);
  // Bin-overlap duplicates (only the binning engine processes a sample more
  // than once; everyone else publishes 0 and the add is dropped).
  const std::uint64_t processed =
      after.samples_processed - before.samples_processed;
  if (processed > samples_in) {
    obs::add(prefix + "bin_duplicates", processed - samples_in);
  }
}

}  // namespace

std::string to_string(GridderKind k) {
  switch (k) {
    case GridderKind::Serial: return "serial";
    case GridderKind::OutputDriven: return "output-driven";
    case GridderKind::Binning: return "binning";
    case GridderKind::SliceDice: return "slice-and-dice";
    case GridderKind::Jigsaw: return "jigsaw";
    case GridderKind::Sparse: return "sparse-matrix";
    case GridderKind::FloatSerial: return "serial-f32";
    case GridderKind::Auto: return "auto";
  }
  return "unknown";
}

std::string gridder_kind_names() {
  return "serial, output-driven, binning, slice-dice, jigsaw, sparse, float, "
         "auto";
}

GridderKind parse_gridder_kind(const std::string& s) {
  if (s == "serial") return GridderKind::Serial;
  if (s == "output-driven") return GridderKind::OutputDriven;
  if (s == "binning") return GridderKind::Binning;
  if (s == "slice-dice" || s == "slice-and-dice") return GridderKind::SliceDice;
  if (s == "jigsaw") return GridderKind::Jigsaw;
  if (s == "sparse" || s == "sparse-matrix") return GridderKind::Sparse;
  if (s == "float" || s == "serial-f32") return GridderKind::FloatSerial;
  if (s == "auto" || s == "tuned") return GridderKind::Auto;
  throw std::invalid_argument("unknown engine '" + s +
                              "', valid: " + gridder_kind_names());
}

bool gridder_kind_has_simd(GridderKind kind) {
  return kind == GridderKind::Serial || kind == GridderKind::SliceDice ||
         kind == GridderKind::Binning;
}

std::string gridder_spec_names() {
  return gridder_kind_names() + ", serial-simd, slice-dice-simd, binning-simd";
}

GridderSpec parse_gridder_spec(const std::string& s) {
  constexpr const char* kSuffix = "-simd";
  constexpr std::size_t kSuffixLen = 5;
  if (s.size() > kSuffixLen &&
      s.compare(s.size() - kSuffixLen, kSuffixLen, kSuffix) == 0) {
    try {
      const GridderKind kind = parse_gridder_kind(s.substr(0, s.size() -
                                                           kSuffixLen));
      if (gridder_kind_has_simd(kind)) return {kind, true};
    } catch (const std::invalid_argument&) {
      // fall through to the spec-level diagnostic
    }
  } else {
    try {
      return {parse_gridder_kind(s), false};
    } catch (const std::invalid_argument&) {
    }
  }
  throw std::invalid_argument("unknown engine '" + s +
                              "', valid: " + gridder_spec_names());
}

std::string to_string(const GridderSpec& spec) {
  return to_string(spec.kind) + (spec.simd ? "-simd" : "");
}

template <int D>
Gridder<D>::Gridder(std::int64_t n, const GridderOptions& options)
    : n_(n), options_(options) {
  JIGSAW_REQUIRE(n >= 2, "base grid size must be >= 2");
  JIGSAW_REQUIRE(options.sigma > 1.0 && options.sigma <= 4.0,
                 "oversampling factor out of range (1, 4]");
  const double gd = options.sigma * static_cast<double>(n);
  g_ = static_cast<std::int64_t>(std::llround(gd));
  JIGSAW_REQUIRE(std::fabs(gd - static_cast<double>(g_)) < 1e-9,
                 "sigma * N must be an integer, got " << gd);
  JIGSAW_REQUIRE(options.width >= 1, "kernel width must be >= 1");
  JIGSAW_REQUIRE(g_ >= options.width,
                 "oversampled grid smaller than the kernel window");
  kernel_ = kernels::make_kernel(options.kernel, options.width, options.sigma);
  lut_ = std::make_unique<kernels::KernelLut>(*kernel_,
                                              options.table_oversampling);
}

template <int D>
void Gridder<D>::adjoint(const SampleSet<D>& in, Grid<D>& out) {
  using robustness::SanitizePolicy;
  JIGSAW_OBS_SPAN(span, "grid.adjoint/" + to_string(kind()));
  const GriddingStats before = stats_;
  if (options_.sanitize == SanitizePolicy::None) {
    sanitize_report_ = robustness::SanitizeReport{};
    sanitize_report_.scanned = in.size();
    sanitize_report_.kept = in.size();
    do_adjoint(in, out);
    publish_gridding_delta(kind(), "adjoint", before, stats_, in.size());
    return;
  }
  auto outcome =
      robustness::sanitize<D>(in, options_.sanitize, options_.threads);
  sanitize_report_ = std::move(outcome.report);
  // A clean input never takes the copy path, so sanitization is a bit-exact
  // no-op on valid data (asserted by the robustness tests).
  if (sanitize_report_.modified()) {
    do_adjoint(outcome.samples, out);
  } else {
    do_adjoint(in, out);
  }
  publish_gridding_delta(kind(), "adjoint", before, stats_, in.size());
}

template <int D>
void Gridder<D>::forward(const Grid<D>& in, SampleSet<D>& out) {
  using robustness::SanitizePolicy;
  JIGSAW_OBS_SPAN(span, "grid.forward/" + to_string(kind()));
  const GriddingStats stats_before = stats_;
  sanitize_report_ = robustness::SanitizeReport{};
  sanitize_report_.policy = options_.sanitize;
  sanitize_report_.scanned = out.size();
  sanitize_report_.kept = out.size();
  if (options_.sanitize != SanitizePolicy::None) {
    // Samples are output slots here: repair coordinates (Strict still
    // throws), never drop.
    std::vector<Coord<D>> repaired = out.coords;
    const std::size_t changed = robustness::clamp_coords<D>(repaired);
    if (options_.sanitize == SanitizePolicy::Strict) {
      JIGSAW_REQUIRE(changed == 0,
                     "forward(): " << changed
                         << " sample coordinates are non-finite or off the "
                            "torus (strict sanitize policy)");
    }
    if (changed > 0) {
      sanitize_report_.out_of_range_coords = changed;
      sanitize_report_.defective_samples = changed;
      sanitize_report_.repaired = changed;
      SampleSet<D> tmp;
      tmp.coords = std::move(repaired);
      tmp.values = std::move(out.values);
      do_forward(in, tmp);
      out.values = std::move(tmp.values);
      publish_gridding_delta(kind(), "forward", stats_before, stats_,
                             out.size());
      return;
    }
  }
  do_forward(in, out);
  publish_gridding_delta(kind(), "forward", stats_before, stats_, out.size());
}

template <int D>
void Gridder<D>::do_forward(const Grid<D>& in, SampleSet<D>& out) {
  JIGSAW_REQUIRE(in.size() == g_, "grid size mismatch in forward()");
  JIGSAW_REQUIRE(out.values.size() == out.coords.size(),
                 "sample set coords/values mismatch");
  const int w = options_.width;
  const std::int64_t g = g_;
  const auto m = static_cast<std::int64_t>(out.size());
  // SIMD fast path: vector LUT-weight gather, and when the innermost-dim
  // window does not wrap the torus its W grid points are contiguous memory —
  // a vector complex dot. Wrapping samples keep the scalar gather. Weight
  // values are bit-identical either way (same LUT index rounding); only the
  // accumulation order differs. exact_weights has no LUT, so it stays on the
  // scalar path.
  const bool use_simd = options_.simd && !options_.exact_weights;
  Timer timer;

  auto work = [&](std::int64_t begin, std::int64_t end, unsigned) {
    const kernels::simd::KernelTable* K =
        use_simd ? &kernels::simd::table() : nullptr;
    const kernels::simd::LutView lv =
        use_simd ? kernels::simd::lut_view(*lut_) : kernels::simd::LutView{};
    std::int64_t idx[3][64];
    double wt[3][64];
    for (std::int64_t j = begin; j < end; ++j) {
      if (K != nullptr) {
        // Fused whole-window kernel: weights + W^d weighted sum in one
        // call, vectorized at the dispatched ISA's native width.
        double u[3];
        std::int64_t g0[3];
        for (int d = 0; d < D; ++d) {
          u[d] = grid_coord(out.coords[static_cast<std::size_t>(j)]
                                      [static_cast<std::size_t>(d)],
                            g);
          g0[d] = window_start(u[d], w);
        }
        out.values[static_cast<std::size_t>(j)] =
            K->gather(lv, D, u, g0, g, w, &in[0]);
        continue;
      }
      for (int d = 0; d < D; ++d) {
        const double u = grid_coord(
            out.coords[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)],
            g);
        const std::int64_t g0 = window_start(u, w);
        for (int o = 0; o < w; ++o) {
          idx[d][o] = pos_mod(g0 + o, g);
          wt[d][o] = weight_1d(static_cast<double>(g0 + o) - u);
        }
      }
      c64 acc{};
      if constexpr (D == 1) {
        for (int ox = 0; ox < w; ++ox) {
          acc += wt[0][ox] * in[idx[0][ox]];
        }
      } else if constexpr (D == 2) {
        for (int oy = 0; oy < w; ++oy) {
          const std::int64_t row = idx[0][oy] * g;
          const double wy = wt[0][oy];
          for (int ox = 0; ox < w; ++ox) {
            acc += (wy * wt[1][ox]) * in[row + idx[1][ox]];
          }
        }
      } else {
        for (int oz = 0; oz < w; ++oz) {
          const std::int64_t zoff = idx[0][oz] * g * g;
          for (int oy = 0; oy < w; ++oy) {
            const std::int64_t row = zoff + idx[1][oy] * g;
            const double wzy = wt[0][oz] * wt[1][oy];
            for (int ox = 0; ox < w; ++ox) {
              acc += (wzy * wt[2][ox]) * in[row + idx[2][ox]];
            }
          }
        }
      }
      out.values[static_cast<std::size_t>(j)] = acc;
    }
  };

  if (options_.threads <= 1) {
    work(0, m, 0);
  } else {
    ThreadPool pool(options_.threads);
    pool.parallel_for(m, work);
  }

  stats_.grid_seconds += timer.seconds();
  stats_.interpolations +=
      static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(pow_dim<D>(w));
  if (options_.exact_weights) {
    stats_.kernel_evals += static_cast<std::uint64_t>(m) *
                           static_cast<std::uint64_t>(D) *
                           static_cast<std::uint64_t>(w);
  } else {
    stats_.lut_lookups += static_cast<std::uint64_t>(m) *
                          static_cast<std::uint64_t>(D) *
                          static_cast<std::uint64_t>(w);
  }
}

template class Gridder<1>;
template class Gridder<2>;
template class Gridder<3>;

}  // namespace jigsaw::core
