// Single-precision (float32) gridder — the numeric configuration of the
// paper's GPU implementations.
//
// "The GPU implementation of Slice-and-Dice uses single-precision
// floating-point values to closely match the prior work" (Sec. V), and
// Sec. VI-C compares 32-bit float against JIGSAW's 32-bit fixed point
// (NRMSD 0.047% vs 0.012%). This engine performs the LUT lookup,
// per-dimension weight product and grid accumulation entirely in float32,
// converting only at the API boundary, so those comparisons can be made
// with a first-class library engine.
#pragma once

#include <complex>
#include <vector>

#include "common/timer.hpp"
#include "core/gridder.hpp"
#include "core/window.hpp"

namespace jigsaw::core {

template <int D>
class FloatGridder final : public Gridder<D> {
 public:
  FloatGridder(std::int64_t n, const GridderOptions& options)
      : Gridder<D>(n, options) {
    lut32_.resize(this->lut_->entries());
    for (std::size_t i = 0; i < lut32_.size(); ++i) {
      lut32_[i] = static_cast<float>(
          this->lut_->entry(static_cast<std::int32_t>(i)));
    }
  }

  GridderKind kind() const override { return GridderKind::FloatSerial; }

  void do_adjoint(const SampleSet<D>& in, Grid<D>& out) override {
    JIGSAW_REQUIRE(out.size() == this->g_, "grid size mismatch in adjoint()");
    const int w = this->options_.width;
    const std::int64_t g = this->g_;
    grid32_.assign(static_cast<std::size_t>(out.total()),
                   std::complex<float>{});
    Timer timer;

    std::int64_t idx[3][64];
    float wt[3][64];
    const auto m = static_cast<std::int64_t>(in.size());
    for (std::int64_t j = 0; j < m; ++j) {
      const auto& vj = in.values[static_cast<std::size_t>(j)];
      const std::complex<float> f(static_cast<float>(vj.real()),
                                  static_cast<float>(vj.imag()));
      for (int d = 0; d < D; ++d) {
        const double u = grid_coord(
            in.coords[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)],
            g);
        const std::int64_t g0 = window_start(u, w);
        for (int o = 0; o < w; ++o) {
          idx[d][o] = pos_mod(g0 + o, g);
          const double dist = static_cast<double>(g0 + o) - u;
          wt[d][o] = lut32_[static_cast<std::size_t>(
              this->lut_->index_of(dist < 0 ? -dist : dist))];
        }
      }
      if constexpr (D == 1) {
        for (int ox = 0; ox < w; ++ox) {
          grid32_[static_cast<std::size_t>(idx[0][ox])] += wt[0][ox] * f;
        }
      } else if constexpr (D == 2) {
        for (int oy = 0; oy < w; ++oy) {
          const std::int64_t row = idx[0][oy] * g;
          const std::complex<float> fy = wt[0][oy] * f;
          for (int ox = 0; ox < w; ++ox) {
            grid32_[static_cast<std::size_t>(row + idx[1][ox])] +=
                wt[1][ox] * fy;
          }
        }
      } else {
        for (int oz = 0; oz < w; ++oz) {
          const std::complex<float> fz = wt[0][oz] * f;
          for (int oy = 0; oy < w; ++oy) {
            const std::int64_t row = (idx[0][oz] * g + idx[1][oy]) * g;
            const std::complex<float> fzy = wt[1][oy] * fz;
            for (int ox = 0; ox < w; ++ox) {
              grid32_[static_cast<std::size_t>(row + idx[2][ox])] +=
                  wt[2][ox] * fzy;
            }
          }
        }
      }
    }
    // Boundary conversion to the double API.
    for (std::int64_t i = 0; i < out.total(); ++i) {
      const auto& v = grid32_[static_cast<std::size_t>(i)];
      out[i] = c64(v.real(), v.imag());
    }

    const auto window_points = static_cast<std::uint64_t>(pow_dim<D>(w));
    this->stats_.grid_seconds += timer.seconds();
    this->stats_.samples_processed += static_cast<std::uint64_t>(m);
    this->stats_.interpolations +=
        static_cast<std::uint64_t>(m) * window_points;
    this->stats_.lut_lookups += static_cast<std::uint64_t>(m) *
                                static_cast<std::uint64_t>(D) *
                                static_cast<std::uint64_t>(w);
  }

  void do_forward(const Grid<D>& in, SampleSet<D>& out) override {
    JIGSAW_REQUIRE(in.size() == this->g_, "grid size mismatch in forward()");
    const int w = this->options_.width;
    const std::int64_t g = this->g_;
    grid32_.resize(static_cast<std::size_t>(in.total()));
    for (std::int64_t i = 0; i < in.total(); ++i) {
      grid32_[static_cast<std::size_t>(i)] =
          std::complex<float>(static_cast<float>(in[i].real()),
                              static_cast<float>(in[i].imag()));
    }
    Timer timer;
    std::int64_t idx[3][64];
    float wt[3][64];
    const auto m = static_cast<std::int64_t>(out.size());
    for (std::int64_t j = 0; j < m; ++j) {
      for (int d = 0; d < D; ++d) {
        const double u = grid_coord(
            out.coords[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)],
            g);
        const std::int64_t g0 = window_start(u, w);
        for (int o = 0; o < w; ++o) {
          idx[d][o] = pos_mod(g0 + o, g);
          const double dist = static_cast<double>(g0 + o) - u;
          wt[d][o] = lut32_[static_cast<std::size_t>(
              this->lut_->index_of(dist < 0 ? -dist : dist))];
        }
      }
      std::complex<float> acc{};
      if constexpr (D == 1) {
        for (int ox = 0; ox < w; ++ox) {
          acc += wt[0][ox] * grid32_[static_cast<std::size_t>(idx[0][ox])];
        }
      } else if constexpr (D == 2) {
        for (int oy = 0; oy < w; ++oy) {
          const std::int64_t row = idx[0][oy] * g;
          for (int ox = 0; ox < w; ++ox) {
            acc += (wt[0][oy] * wt[1][ox]) *
                   grid32_[static_cast<std::size_t>(row + idx[1][ox])];
          }
        }
      } else {
        for (int oz = 0; oz < w; ++oz) {
          for (int oy = 0; oy < w; ++oy) {
            const std::int64_t row = (idx[0][oz] * g + idx[1][oy]) * g;
            const float wzy = wt[0][oz] * wt[1][oy];
            for (int ox = 0; ox < w; ++ox) {
              acc += (wzy * wt[2][ox]) *
                     grid32_[static_cast<std::size_t>(row + idx[2][ox])];
            }
          }
        }
      }
      out.values[static_cast<std::size_t>(j)] = c64(acc.real(), acc.imag());
    }
    this->stats_.grid_seconds += timer.seconds();
    this->stats_.interpolations += static_cast<std::uint64_t>(m) *
                                   static_cast<std::uint64_t>(pow_dim<D>(w));
  }

 private:
  std::vector<float> lut32_;
  std::vector<std::complex<float>> grid32_;
};

}  // namespace jigsaw::core
