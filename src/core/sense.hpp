// Multi-coil (SENSE) MRI reconstruction on top of the NuFFT.
//
// Modern MRI acquires with arrays of receive coils; each coil sees the
// image modulated by its complex spatial sensitivity. Reconstruction then
// solves  min_x sum_c || F S_c x - y_c ||^2  where S_c multiplies by coil
// c's sensitivity map and F is the forward NuFFT over the non-Cartesian
// trajectory. This is precisely the iterative, NuFFT-per-step workload the
// paper's introduction motivates (refs [5], [28], [30] — the Impatient
// toolkit itself is a SENSE solver), so it is the flagship integration
// exercise for the gridding engines.
//
// Synthetic birdcage-style sensitivity maps substitute for measured coil
// calibrations (DESIGN.md §1).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/nufft.hpp"
#include "core/recon.hpp"

namespace jigsaw::core {

/// Complex coil sensitivity maps over an n x n FOV, row-major per coil.
struct CoilMaps {
  std::int64_t n = 0;
  int coils = 0;
  std::vector<std::vector<c64>> maps;  // maps[c][pixel]

  const std::vector<c64>& map(int c) const {
    return maps[static_cast<std::size_t>(c)];
  }
};

/// Synthetic birdcage-style array: `coils` smooth complex Gaussians placed
/// on a ring around the FOV, phases rotating with coil angle, normalized so
/// the voxel-wise sum of squared magnitudes is ~1 inside the FOV.
CoilMaps make_birdcage_maps(std::int64_t n, int coils,
                            double coil_radius = 0.6,
                            double coil_width = 0.45);

/// Simulate a multi-coil acquisition: y_c = forward_nufft(S_c .* image).
/// Returns coils x M sample values.
std::vector<std::vector<c64>> simulate_multicoil(
    NufftPlan<2>& plan, const CoilMaps& maps, const std::vector<c64>& image);

/// The SENSE normal-equations operator  A^H A = sum_c S_c^H F^H F S_c  and
/// right-hand side  A^H y = sum_c S_c^H F^H y_c.
///
/// `coil_threads > 1` processes coils concurrently: the operator builds
/// extra NuFFT lanes (own gridder + work grid, shared cached FFT plan) and
/// distributes coils over them; per-coil results are then reduced in coil
/// order. Each coil's transform is computed identically whichever lane runs
/// it and the reduction order is fixed, so the output is bit-exact for any
/// thread count — including coil_threads == 1, which skips the pool
/// entirely and uses the caller's plan.
class SenseOperator {
 public:
  SenseOperator(NufftPlan<2>& plan, const CoilMaps& maps,
                unsigned coil_threads = 1);

  /// b = A^H y for multi-coil data y (coils x M). The deadline is checked
  /// before every coil's transform (DeadlineExceeded on expiry).
  std::vector<c64> adjoint(const std::vector<std::vector<c64>>& y,
                           const Deadline& deadline = Deadline()) const;

  /// (A^H A) x. Deadline semantics as in adjoint().
  std::vector<c64> gram(const std::vector<c64>& x,
                        const Deadline& deadline = Deadline()) const;

  unsigned coil_threads() const {
    return static_cast<unsigned>(extra_lanes_.size()) + 1;
  }

 private:
  /// Run `fn(c, lane)` for every coil, coil-parallel when configured.
  void for_each_coil(
      const std::function<void(int, NufftPlan<2>&)>& fn) const;

  NufftPlan<2>& plan_;  // lane 0
  const CoilMaps& maps_;
  std::vector<std::unique_ptr<NufftPlan<2>>> extra_lanes_;  // lanes 1..
};

/// CG-SENSE reconstruction. `y[c]` holds coil c's k-space samples at the
/// plan's coordinates. `coil_threads` parallelizes the per-coil NuFFTs of
/// every operator application (see SenseOperator); the result is bit-exact
/// across thread counts. The deadline is enforced at phase boundaries
/// (right-hand side, per CG iteration, per coil transform); an expired
/// deadline raises DeadlineExceeded promptly — before any transform work
/// when it was already expired on entry.
///
/// `warm_start` seeds CG with a previous frame's image (streaming entry
/// point, same contract as iterative_recon): CG still converges to the
/// same fixed point, a good seed just gets there in fewer iterations; a
/// size mismatch silently falls back to the cold zero start.
std::vector<c64> cg_sense(NufftPlan<2>& plan, const CoilMaps& maps,
                          const std::vector<std::vector<c64>>& y,
                          int max_iterations = 15, double tolerance = 1e-6,
                          CgResult* result = nullptr,
                          unsigned coil_threads = 1,
                          const Deadline& deadline = Deadline(),
                          const std::vector<c64>* warm_start = nullptr);

}  // namespace jigsaw::core
