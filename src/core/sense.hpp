// Multi-coil (SENSE) MRI reconstruction on top of the NuFFT.
//
// Modern MRI acquires with arrays of receive coils; each coil sees the
// image modulated by its complex spatial sensitivity. Reconstruction then
// solves  min_x sum_c || F S_c x - y_c ||^2  where S_c multiplies by coil
// c's sensitivity map and F is the forward NuFFT over the non-Cartesian
// trajectory. This is precisely the iterative, NuFFT-per-step workload the
// paper's introduction motivates (refs [5], [28], [30] — the Impatient
// toolkit itself is a SENSE solver), so it is the flagship integration
// exercise for the gridding engines.
//
// Synthetic birdcage-style sensitivity maps substitute for measured coil
// calibrations (DESIGN.md §1).
#pragma once

#include <memory>
#include <vector>

#include "core/nufft.hpp"
#include "core/recon.hpp"

namespace jigsaw::core {

/// Complex coil sensitivity maps over an n x n FOV, row-major per coil.
struct CoilMaps {
  std::int64_t n = 0;
  int coils = 0;
  std::vector<std::vector<c64>> maps;  // maps[c][pixel]

  const std::vector<c64>& map(int c) const {
    return maps[static_cast<std::size_t>(c)];
  }
};

/// Synthetic birdcage-style array: `coils` smooth complex Gaussians placed
/// on a ring around the FOV, phases rotating with coil angle, normalized so
/// the voxel-wise sum of squared magnitudes is ~1 inside the FOV.
CoilMaps make_birdcage_maps(std::int64_t n, int coils,
                            double coil_radius = 0.6,
                            double coil_width = 0.45);

/// Simulate a multi-coil acquisition: y_c = forward_nufft(S_c .* image).
/// Returns coils x M sample values.
std::vector<std::vector<c64>> simulate_multicoil(
    NufftPlan<2>& plan, const CoilMaps& maps, const std::vector<c64>& image);

/// The SENSE normal-equations operator  A^H A = sum_c S_c^H F^H F S_c  and
/// right-hand side  A^H y = sum_c S_c^H F^H y_c.
class SenseOperator {
 public:
  SenseOperator(NufftPlan<2>& plan, const CoilMaps& maps);

  /// b = A^H y for multi-coil data y (coils x M).
  std::vector<c64> adjoint(const std::vector<std::vector<c64>>& y) const;

  /// (A^H A) x.
  std::vector<c64> gram(const std::vector<c64>& x) const;

 private:
  NufftPlan<2>& plan_;
  const CoilMaps& maps_;
};

/// CG-SENSE reconstruction. `y[c]` holds coil c's k-space samples at the
/// plan's coordinates.
std::vector<c64> cg_sense(NufftPlan<2>& plan, const CoilMaps& maps,
                          const std::vector<std::vector<c64>>& y,
                          int max_iterations = 15, double tolerance = 1e-6,
                          CgResult* result = nullptr);

}  // namespace jigsaw::core
