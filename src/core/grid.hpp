// Uniform (oversampled) target grid: a d-dimensional torus of side G with
// complex values, stored row-major (last dimension fastest).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace jigsaw::core {

template <int D>
class Grid {
 public:
  Grid() : size_(0) {}
  explicit Grid(std::int64_t size)
      : size_(size),
        data_(static_cast<std::size_t>(pow_dim<D>(size)), c64{}) {
    JIGSAW_REQUIRE(size >= 1, "grid side must be >= 1");
  }

  std::int64_t size() const { return size_; }
  std::int64_t total() const { return static_cast<std::int64_t>(data_.size()); }

  c64* data() { return data_.data(); }
  const c64* data() const { return data_.data(); }

  c64& operator[](std::int64_t lin) {
    return data_[static_cast<std::size_t>(lin)];
  }
  const c64& operator[](std::int64_t lin) const {
    return data_[static_cast<std::size_t>(lin)];
  }

  /// Access by d-dimensional index (must be in [0, G)^d).
  c64& at(const Index<D>& idx) {
    return data_[static_cast<std::size_t>(linear_index<D>(idx, size_))];
  }
  const c64& at(const Index<D>& idx) const {
    return data_[static_cast<std::size_t>(linear_index<D>(idx, size_))];
  }

  /// Toroidal access: indices are wrapped into [0, G).
  c64& at_wrapped(Index<D> idx) {
    for (int d = 0; d < D; ++d) {
      idx[static_cast<std::size_t>(d)] =
          pos_mod(idx[static_cast<std::size_t>(d)], size_);
    }
    return at(idx);
  }

  void clear() { std::fill(data_.begin(), data_.end(), c64{}); }

 private:
  std::int64_t size_;
  std::vector<c64> data_;
};

}  // namespace jigsaw::core
