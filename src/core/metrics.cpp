#include "core/metrics.hpp"

#include <cmath>

#include "common/error.hpp"

namespace jigsaw::core {

double nrmsd(const std::vector<c64>& a, const std::vector<c64>& ref) {
  JIGSAW_REQUIRE(a.size() == ref.size(), "nrmsd size mismatch");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::norm(a[i] - ref[i]);
    den += std::norm(ref[i]);
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : HUGE_VAL;
  return std::sqrt(num / den);
}

double nrmsd(const std::vector<double>& a, const std::vector<double>& ref) {
  JIGSAW_REQUIRE(a.size() == ref.size(), "nrmsd size mismatch");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - ref[i];
    num += d * d;
    den += ref[i] * ref[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : HUGE_VAL;
  return std::sqrt(num / den);
}

double max_abs_diff(const std::vector<c64>& a, const std::vector<c64>& b) {
  JIGSAW_REQUIRE(a.size() == b.size(), "max_abs_diff size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

double norm2(const std::vector<c64>& a) {
  double s = 0.0;
  for (const auto& v : a) s += std::norm(v);
  return std::sqrt(s);
}

double psnr_db(const std::vector<double>& a, const std::vector<double>& ref) {
  JIGSAW_REQUIRE(a.size() == ref.size() && !a.empty(),
                 "psnr size mismatch or empty");
  double peak = 0.0, mse = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    peak = std::max(peak, std::fabs(ref[i]));
    const double d = a[i] - ref[i];
    mse += d * d;
  }
  mse /= static_cast<double>(a.size());
  if (mse == 0.0) return HUGE_VAL;
  return 10.0 * std::log10(peak * peak / mse);
}

double ssim(const std::vector<double>& a, const std::vector<double>& ref,
            int n, int window) {
  JIGSAW_REQUIRE(a.size() == ref.size(), "ssim size mismatch");
  JIGSAW_REQUIRE(static_cast<std::size_t>(n) * static_cast<std::size_t>(n) ==
                     a.size(),
                 "ssim image must be n x n");
  JIGSAW_REQUIRE(window >= 2 && window <= n, "bad ssim window");

  double lo = ref[0], hi = ref[0];
  for (double v : ref) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi > lo ? hi - lo : 1.0;
  const double c1 = (0.01 * range) * (0.01 * range);
  const double c2 = (0.03 * range) * (0.03 * range);

  double total = 0.0;
  std::int64_t count = 0;
  const int step = window / 2;  // half-overlapping windows
  for (int y0 = 0; y0 + window <= n; y0 += step) {
    for (int x0 = 0; x0 + window <= n; x0 += step) {
      double ma = 0, mb = 0;
      const int wn = window * window;
      for (int y = 0; y < window; ++y) {
        for (int x = 0; x < window; ++x) {
          const std::size_t i =
              static_cast<std::size_t>((y0 + y) * n + x0 + x);
          ma += a[i];
          mb += ref[i];
        }
      }
      ma /= wn;
      mb /= wn;
      double va = 0, vb = 0, cov = 0;
      for (int y = 0; y < window; ++y) {
        for (int x = 0; x < window; ++x) {
          const std::size_t i =
              static_cast<std::size_t>((y0 + y) * n + x0 + x);
          va += (a[i] - ma) * (a[i] - ma);
          vb += (ref[i] - mb) * (ref[i] - mb);
          cov += (a[i] - ma) * (ref[i] - mb);
        }
      }
      va /= wn - 1;
      vb /= wn - 1;
      cov /= wn - 1;
      total += ((2 * ma * mb + c1) * (2 * cov + c2)) /
               ((ma * ma + mb * mb + c1) * (va + vb + c2));
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 1.0;
}

}  // namespace jigsaw::core
