#include "core/nufft.hpp"

#include <cmath>

#include "common/timer.hpp"
#include "fft/plan_cache.hpp"
#include "obs/obs.hpp"

namespace jigsaw::core {

template <int D>
NufftPlan<D>::NufftPlan(std::int64_t n, std::vector<Coord<D>> coords,
                        const GridderOptions& options)
    : n_(n), coords_(std::move(coords)) {
  obs::Span span("nufft.plan");
  obs::add("nufft.plans", 1);
  // Validate once at plan time (the per-transform hot paths do not check):
  // every coordinate must be finite and inside the torus. Under a repairing
  // sanitize policy (Drop/Clamp) the gridder handles defects itself, so the
  // plan accepts degraded coordinates as-is.
  using robustness::SanitizePolicy;
  if (options.sanitize == SanitizePolicy::None ||
      options.sanitize == SanitizePolicy::Strict) {
    const std::size_t m = coords_.size();
    for (std::size_t j = 0; j < m; ++j) {
      for (int d = 0; d < D; ++d) {
        const double v = coords_[j][static_cast<std::size_t>(d)];
        JIGSAW_REQUIRE(robustness::coord_in_range(v),
                       "sample " << j << " of " << m << ": coordinate dim "
                                 << d << " out of [-0.5, 0.5): " << v);
      }
    }
  }
  gridder_ = make_gridder<D>(n, options);
  const std::int64_t g = gridder_->grid_size();
  // Shared, immutable plan: every NufftPlan (and every coil lane) with the
  // same oversampled geometry reuses one twiddle/bit-reversal table set.
  fft_ = fft::FftPlanCache::global().get_cube(D, static_cast<std::size_t>(g));
  work_ = Grid<D>(g);

  // De-apodization profile: the kernel's continuous Fourier transform
  // evaluated at k/G for centered k. The same profile applies to every
  // dimension (square grids, isotropic kernel).
  apod_.resize(static_cast<std::size_t>(n_));
  for (std::int64_t i = 0; i < n_; ++i) {
    const double nu = static_cast<double>(i - n_ / 2) / static_cast<double>(g);
    apod_[static_cast<std::size_t>(i)] = gridder_->kernel().fourier(nu);
    JIGSAW_CHECK(std::fabs(apod_[static_cast<std::size_t>(i)]) > 1e-12,
                 "apodization vanishes at k=" << (i - n_ / 2)
                     << " — kernel/sigma combination unusable");
  }
}

template <int D>
std::vector<c64> NufftPlan<D>::adjoint(const std::vector<c64>& values,
                                       NufftTimings* timings,
                                       const Deadline& deadline) {
  JIGSAW_REQUIRE(values.size() == coords_.size(),
                 "value count does not match plan coordinates");
  obs::Span span("nufft.adjoint");
  obs::add("nufft.adjoints", 1);
  NufftTimings local;
  const std::int64_t g = gridder_->grid_size();

  // (1) Gridding.
  {
    deadline.check("nufft.adjoint.grid");
    obs::Span phase("nufft.adjoint.grid");
    SampleSet<D> in;
    in.coords = coords_;  // cheap relative to gridding itself
    in.values = values;
    const double presort_before = gridder_->stats().presort_seconds;
    Timer t;
    gridder_->adjoint(in, work_);
    const double elapsed = t.seconds();
    local.presort_seconds =
        gridder_->stats().presort_seconds - presort_before;
    local.grid_seconds = elapsed - local.presort_seconds;
  }

  // (2) FFT with positive exponent (unnormalized inverse).
  {
    deadline.check("nufft.adjoint.fft");
    obs::Span phase("nufft.adjoint.fft");
    Timer t;
    fft_->execute(work_.data(), fft::Direction::Inverse,
                  gridder_->options().threads);
    local.fft_seconds = t.seconds();
  }

  // (3) Center crop + checkerboard sign + de-apodization.
  deadline.check("nufft.adjoint.apod");
  std::vector<c64> image(static_cast<std::size_t>(image_total()));
  {
    obs::Span phase("nufft.adjoint.apod");
    Timer t;
    const std::int64_t total = image_total();
    for (std::int64_t lin = 0; lin < total; ++lin) {
      const Index<D> idx = unlinear_index<D>(lin, n_);
      Index<D> src{};
      std::int64_t ksum = 0;
      double apod = 1.0;
      for (int d = 0; d < D; ++d) {
        const std::int64_t k = idx[static_cast<std::size_t>(d)] - n_ / 2;
        ksum += k;
        src[static_cast<std::size_t>(d)] = pos_mod(k, g);
        apod *= apod_[static_cast<std::size_t>(idx[static_cast<std::size_t>(d)])];
      }
      const double sign = (ksum & 1) ? -1.0 : 1.0;
      image[static_cast<std::size_t>(lin)] = work_.at(src) * (sign / apod);
    }
    local.apod_seconds = t.seconds();
  }

  if (timings != nullptr) *timings = local;
  return image;
}

template <int D>
std::vector<c64> NufftPlan<D>::forward(const std::vector<c64>& image,
                                       NufftTimings* timings,
                                       const Deadline& deadline) {
  JIGSAW_REQUIRE(static_cast<std::int64_t>(image.size()) == image_total(),
                 "image size does not match plan");
  obs::Span span("nufft.forward");
  obs::add("nufft.forwards", 1);
  NufftTimings local;
  const std::int64_t g = gridder_->grid_size();

  // (1) Pre-apodization + checkerboard sign + zero-padded center embed.
  {
    deadline.check("nufft.forward.apod");
    obs::Span phase("nufft.forward.apod");
    Timer t;
    work_.clear();
    const std::int64_t total = image_total();
    for (std::int64_t lin = 0; lin < total; ++lin) {
      const Index<D> idx = unlinear_index<D>(lin, n_);
      Index<D> dst{};
      std::int64_t ksum = 0;
      double apod = 1.0;
      for (int d = 0; d < D; ++d) {
        const std::int64_t k = idx[static_cast<std::size_t>(d)] - n_ / 2;
        ksum += k;
        dst[static_cast<std::size_t>(d)] = pos_mod(k, g);
        apod *= apod_[static_cast<std::size_t>(idx[static_cast<std::size_t>(d)])];
      }
      const double sign = (ksum & 1) ? -1.0 : 1.0;
      work_.at(dst) = image[static_cast<std::size_t>(lin)] * (sign / apod);
    }
    local.apod_seconds = t.seconds();
  }

  // (2) FFT with negative exponent.
  {
    deadline.check("nufft.forward.fft");
    obs::Span phase("nufft.forward.fft");
    Timer t;
    fft_->execute(work_.data(), fft::Direction::Forward,
                  gridder_->options().threads);
    local.fft_seconds = t.seconds();
  }

  // (3) Re-gridding (forward interpolation at the sample coordinates).
  deadline.check("nufft.forward.grid");
  SampleSet<D> out;
  out.coords = coords_;
  out.values.assign(coords_.size(), c64{});
  {
    obs::Span phase("nufft.forward.grid");
    Timer t;
    gridder_->forward(work_, out);
    local.grid_seconds = t.seconds();
  }

  if (timings != nullptr) *timings = local;
  return std::move(out.values);
}

template class NufftPlan<1>;
template class NufftPlan<2>;
template class NufftPlan<3>;

}  // namespace jigsaw::core
