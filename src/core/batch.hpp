// Batched NuFFT execution.
//
// Iterative and dynamic MRI apply the same trajectory to many value sets
// (time frames, coils, iterations). BatchedNufft wraps a NufftPlan and
// amortizes everything reusable — the gridder (including the sparse
// engine's precomputed matrix), FFT twiddles, and the apodization profile —
// across the batch, and reports aggregate per-phase timing. This is the
// "millions of NuFFTs per volume" usage pattern of the paper's
// introduction packaged as an API.
#pragma once

#include <vector>

#include "core/nufft.hpp"

namespace jigsaw::core {

template <int D>
class BatchedNufft {
 public:
  BatchedNufft(std::int64_t n, std::vector<Coord<D>> coords,
               const GridderOptions& options)
      : plan_(n, std::move(coords), options) {}

  NufftPlan<D>& plan() { return plan_; }

  /// Adjoint transform of every frame. frames[f] holds M sample values.
  std::vector<std::vector<c64>> adjoint(
      const std::vector<std::vector<c64>>& frames,
      NufftTimings* total = nullptr) {
    std::vector<std::vector<c64>> out;
    out.reserve(frames.size());
    NufftTimings sum;
    for (const auto& f : frames) {
      NufftTimings t;
      out.push_back(plan_.adjoint(f, &t));
      accumulate(sum, t);
    }
    if (total != nullptr) *total = sum;
    return out;
  }

  /// Forward transform of every frame. frames[f] holds an N^D image.
  std::vector<std::vector<c64>> forward(
      const std::vector<std::vector<c64>>& frames,
      NufftTimings* total = nullptr) {
    std::vector<std::vector<c64>> out;
    out.reserve(frames.size());
    NufftTimings sum;
    for (const auto& f : frames) {
      NufftTimings t;
      out.push_back(plan_.forward(f, &t));
      accumulate(sum, t);
    }
    if (total != nullptr) *total = sum;
    return out;
  }

 private:
  static void accumulate(NufftTimings& sum, const NufftTimings& t) {
    sum.grid_seconds += t.grid_seconds;
    sum.fft_seconds += t.fft_seconds;
    sum.apod_seconds += t.apod_seconds;
    sum.presort_seconds += t.presort_seconds;
  }

  NufftPlan<D> plan_;
};

}  // namespace jigsaw::core
