// Batched, coil-parallel NuFFT execution.
//
// Iterative and dynamic MRI apply the same trajectory to many value sets
// (time frames, coils, iterations). BatchedNufft amortizes everything
// reusable — the gridder (including the sparse engine's precomputed
// matrix), the FFT plan (shared process-wide via FftPlanCache), and the
// apodization profile — across the batch, and reports aggregate per-phase
// timing. This is the "millions of NuFFTs per volume" usage pattern of the
// paper's introduction packaged as an API.
//
// With `coil_threads > 1` the frames themselves run concurrently: the
// batch owns one independent execution lane (gridder + work grid) per
// thread, all sharing one cached FFT plan, and frames are distributed over
// the lanes through the ThreadPool. Because every lane is configured
// identically and each frame is processed start-to-finish by exactly one
// lane, the result for a given frame is bit-exact regardless of thread
// count or which lane computed it — the same determinism contract the
// gridders make for their internal threading.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/nufft.hpp"

namespace jigsaw::core {

template <int D>
class BatchedNufft {
 public:
  /// `coil_threads` is the number of frames gridded/FFT'd concurrently
  /// (1 = the classic serial frame loop; 0 is treated as 1). Independent of
  /// `options.threads`, which parallelizes *within* one transform.
  BatchedNufft(std::int64_t n, std::vector<Coord<D>> coords,
               const GridderOptions& options, unsigned coil_threads = 1) {
    lanes_.push_back(
        std::make_unique<NufftPlan<D>>(n, std::move(coords), options));
    for (unsigned l = 1; l < std::max(1u, coil_threads); ++l) {
      lanes_.push_back(std::make_unique<NufftPlan<D>>(
          n, lanes_.front()->coords(), options));
    }
  }

  /// The primary lane. With coil_threads == 1 every frame goes through this
  /// plan, preserving the classic aggregate-stats behavior.
  NufftPlan<D>& plan() { return *lanes_.front(); }

  unsigned coil_threads() const {
    return static_cast<unsigned>(lanes_.size());
  }

  /// Adjoint transform of every frame. frames[f] holds M sample values.
  /// The deadline is checked before every frame (and at the phase
  /// boundaries inside each transform); a passed deadline raises
  /// DeadlineExceeded on the calling thread, ThreadPool's first-error-wins
  /// semantics included.
  std::vector<std::vector<c64>> adjoint(
      const std::vector<std::vector<c64>>& frames,
      NufftTimings* total = nullptr, const Deadline& deadline = Deadline()) {
    return run(frames, total, /*adjoint=*/true, deadline);
  }

  /// Forward transform of every frame. frames[f] holds an N^D image.
  std::vector<std::vector<c64>> forward(
      const std::vector<std::vector<c64>>& frames,
      NufftTimings* total = nullptr, const Deadline& deadline = Deadline()) {
    return run(frames, total, /*adjoint=*/false, deadline);
  }

 private:
  std::vector<std::vector<c64>> run(
      const std::vector<std::vector<c64>>& frames, NufftTimings* total,
      bool adjoint, const Deadline& deadline) {
    std::vector<std::vector<c64>> out(frames.size());
    std::vector<NufftTimings> per_frame(frames.size());
    const std::size_t pool_threads =
        std::min<std::size_t>(lanes_.size(), frames.size());
    if (pool_threads <= 1) {
      for (std::size_t f = 0; f < frames.size(); ++f) {
        deadline.check("batch.frame");
        out[f] = adjoint
                     ? lanes_.front()->adjoint(frames[f], &per_frame[f],
                                               deadline)
                     : lanes_.front()->forward(frames[f], &per_frame[f],
                                               deadline);
      }
    } else {
      // parallel_for hands out one contiguous chunk per chunk id, and chunk
      // ids are unique within a call — so indexing lanes by chunk id gives
      // each inflight chunk a private gridder + work grid.
      ThreadPool pool(static_cast<unsigned>(pool_threads));
      pool.parallel_for(
          static_cast<std::int64_t>(frames.size()),
          [&](std::int64_t begin, std::int64_t end, unsigned lane) {
            for (std::int64_t f = begin; f < end; ++f) {
              deadline.check("batch.frame");
              const auto uf = static_cast<std::size_t>(f);
              out[uf] = adjoint ? lanes_[lane]->adjoint(frames[uf],
                                                        &per_frame[uf],
                                                        deadline)
                                : lanes_[lane]->forward(frames[uf],
                                                        &per_frame[uf],
                                                        deadline);
            }
          });
    }
    if (total != nullptr) {
      NufftTimings sum;  // frame-order reduction: deterministic
      for (const auto& t : per_frame) {
        sum.grid_seconds += t.grid_seconds;
        sum.fft_seconds += t.fft_seconds;
        sum.apod_seconds += t.apod_seconds;
        sum.presort_seconds += t.presort_seconds;
      }
      *total = sum;
    }
    return out;
  }

  std::vector<std::unique_ptr<NufftPlan<D>>> lanes_;  // lane 0 = plan()
};

}  // namespace jigsaw::core
