#include "core/sense.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/thread_pool.hpp"
#include "obs/obs.hpp"

namespace jigsaw::core {

CoilMaps make_birdcage_maps(std::int64_t n, int coils, double coil_radius,
                            double coil_width) {
  JIGSAW_REQUIRE(n >= 2 && coils >= 1, "need n >= 2 and >= 1 coil");
  CoilMaps cm;
  cm.n = n;
  cm.coils = coils;
  cm.maps.assign(static_cast<std::size_t>(coils),
                 std::vector<c64>(static_cast<std::size_t>(n * n)));

  for (int c = 0; c < coils; ++c) {
    const double ang = 2.0 * std::numbers::pi * c / coils;
    const double cy = coil_radius * std::sin(ang);
    const double cx = coil_radius * std::cos(ang);
    for (std::int64_t iy = 0; iy < n; ++iy) {
      const double y = (static_cast<double>(iy) - n / 2) /
                       static_cast<double>(n);
      for (std::int64_t ix = 0; ix < n; ++ix) {
        const double x = (static_cast<double>(ix) - n / 2) /
                         static_cast<double>(n);
        const double d2 =
            (x - cx) * (x - cx) + (y - cy) * (y - cy);
        const double mag = std::exp(-d2 / (2.0 * coil_width * coil_width));
        // Smooth spatial phase that differs per coil (B1 phase roll).
        const double phase = ang + std::numbers::pi * (x * cx + y * cy);
        cm.maps[static_cast<std::size_t>(c)]
               [static_cast<std::size_t>(iy * n + ix)] =
            c64(mag * std::cos(phase), mag * std::sin(phase));
      }
    }
  }

  // Normalize voxel-wise sum of squares to ~1 (standard map conditioning).
  for (std::int64_t p = 0; p < n * n; ++p) {
    double ss = 0.0;
    for (int c = 0; c < coils; ++c) {
      ss += std::norm(cm.maps[static_cast<std::size_t>(c)]
                             [static_cast<std::size_t>(p)]);
    }
    const double inv = 1.0 / std::sqrt(ss + 1e-12);
    for (int c = 0; c < coils; ++c) {
      cm.maps[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)] *= inv;
    }
  }
  return cm;
}

std::vector<std::vector<c64>> simulate_multicoil(NufftPlan<2>& plan,
                                                 const CoilMaps& maps,
                                                 const std::vector<c64>& image) {
  JIGSAW_REQUIRE(maps.n == plan.base_size(), "map/plan size mismatch");
  JIGSAW_REQUIRE(static_cast<std::int64_t>(image.size()) ==
                     plan.image_total(),
                 "image size mismatch");
  std::vector<std::vector<c64>> y(static_cast<std::size_t>(maps.coils));
  std::vector<c64> weighted(image.size());
  for (int c = 0; c < maps.coils; ++c) {
    const auto& s = maps.map(c);
    for (std::size_t p = 0; p < image.size(); ++p) weighted[p] = s[p] * image[p];
    y[static_cast<std::size_t>(c)] = plan.forward(weighted);
  }
  return y;
}

SenseOperator::SenseOperator(NufftPlan<2>& plan, const CoilMaps& maps,
                             unsigned coil_threads)
    : plan_(plan), maps_(maps) {
  JIGSAW_REQUIRE(maps.n == plan.base_size(), "map/plan size mismatch");
  const unsigned lanes =
      std::min<unsigned>(std::max(1u, coil_threads),
                         static_cast<unsigned>(maps.coils));
  for (unsigned l = 1; l < lanes; ++l) {
    extra_lanes_.push_back(std::make_unique<NufftPlan<2>>(
        plan.base_size(), plan.coords(), plan.gridder().options()));
  }
}

void SenseOperator::for_each_coil(
    const std::function<void(int, NufftPlan<2>&)>& fn) const {
  if (extra_lanes_.empty()) {
    for (int c = 0; c < maps_.coils; ++c) fn(c, plan_);
    return;
  }
  // Chunk ids are unique within one parallel_for call, so lane-by-chunk-id
  // gives every inflight chunk a private NuFFT plan (gridder + work grid).
  ThreadPool pool(coil_threads());
  pool.parallel_for(maps_.coils,
                    [&](std::int64_t begin, std::int64_t end, unsigned lane) {
                      NufftPlan<2>& p =
                          lane == 0 ? plan_ : *extra_lanes_[lane - 1];
                      for (std::int64_t c = begin; c < end; ++c) {
                        fn(static_cast<int>(c), p);
                      }
                    });
}

std::vector<c64> SenseOperator::adjoint(const std::vector<std::vector<c64>>& y,
                                        const Deadline& deadline) const {
  JIGSAW_REQUIRE(static_cast<int>(y.size()) == maps_.coils,
                 "coil count mismatch");
  obs::Span span("sense.adjoint");
  obs::add("sense.adjoint_applies", 1);
  obs::add("sense.coil_transforms", static_cast<std::uint64_t>(maps_.coils));
  const auto pixels = static_cast<std::size_t>(plan_.image_total());
  std::vector<std::vector<c64>> per_coil(
      static_cast<std::size_t>(maps_.coils));
  for_each_coil([&](int c, NufftPlan<2>& p) {
    deadline.check("sense.coil");
    per_coil[static_cast<std::size_t>(c)] =
        p.adjoint(y[static_cast<std::size_t>(c)], nullptr, deadline);
  });
  // Coil-order reduction: bit-exact for any thread count.
  std::vector<c64> out(pixels, c64{});
  for (int c = 0; c < maps_.coils; ++c) {
    const auto& img = per_coil[static_cast<std::size_t>(c)];
    const auto& s = maps_.map(c);
    for (std::size_t p = 0; p < out.size(); ++p) {
      out[p] += std::conj(s[p]) * img[p];
    }
  }
  return out;
}

std::vector<c64> SenseOperator::gram(const std::vector<c64>& x,
                                     const Deadline& deadline) const {
  obs::Span span("sense.gram");
  obs::add("sense.gram_applies", 1);
  // Each gram apply runs a forward+adjoint pair per coil.
  obs::add("sense.coil_transforms",
           2 * static_cast<std::uint64_t>(maps_.coils));
  std::vector<std::vector<c64>> per_coil(
      static_cast<std::size_t>(maps_.coils));
  for_each_coil([&](int c, NufftPlan<2>& p) {
    deadline.check("sense.coil");
    const auto& s = maps_.map(c);
    std::vector<c64> weighted(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) weighted[i] = s[i] * x[i];
    per_coil[static_cast<std::size_t>(c)] =
        p.adjoint(p.forward(weighted, nullptr, deadline), nullptr, deadline);
  });
  std::vector<c64> out(x.size(), c64{});
  for (int c = 0; c < maps_.coils; ++c) {
    const auto& back = per_coil[static_cast<std::size_t>(c)];
    const auto& s = maps_.map(c);
    for (std::size_t p = 0; p < x.size(); ++p) {
      out[p] += std::conj(s[p]) * back[p];
    }
  }
  return out;
}

std::vector<c64> cg_sense(NufftPlan<2>& plan, const CoilMaps& maps,
                          const std::vector<std::vector<c64>>& y,
                          int max_iterations, double tolerance,
                          CgResult* result, unsigned coil_threads,
                          const Deadline& deadline,
                          const std::vector<c64>* warm_start) {
  obs::Span span("sense.cg_sense");
  // An already-expired deadline returns before any operator construction or
  // transform work — the prompt-timeout contract the serve layer relies on.
  deadline.check("sense.rhs");
  obs::add("sense.cg_solves", 1);
  SenseOperator op(plan, maps, coil_threads);
  const auto b = op.adjoint(y, deadline);
  std::vector<c64> x(b.size(), c64{});
  if (warm_start != nullptr && warm_start->size() == b.size()) {
    x = *warm_start;
    obs::add("cg.warm_starts", 1);
  }
  const CgResult cg = conjugate_gradient(
      [&op, &deadline](const std::vector<c64>& v) {
        return op.gram(v, deadline);
      },
      b, x, max_iterations, tolerance, deadline);
  if (result != nullptr) *result = cg;
  return x;
}

}  // namespace jigsaw::core
