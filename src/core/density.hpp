// Sampling density compensation.
//
// Non-uniform trajectories oversample some k-space regions (e.g. the center
// of radial scans); density-compensation weights equalize this before the
// adjoint NuFFT so that the gridded reconstruction approximates the inverse
// rather than the plain adjoint. Two methods:
//   * analytic ramp for radial trajectories (trajectory module), and
//   * the iterative Pipe-Menon scheme implemented here, which works for any
//     trajectory and only needs the gridding operator pair:
//       w <- w ./ |interp(grid(w))|
#pragma once

#include <vector>

#include "core/gridder.hpp"

namespace jigsaw::core {

struct PipeMenonOptions {
  int iterations = 12;     // iteration cap
  double epsilon = 1e-12;  // guard against division by zero
  double tolerance = 0.0;  // > 0: stop early once the largest relative
                           // per-sample weight update falls below this
};

/// Convergence record of one pipe_menon_weights() run.
struct PipeMenonReport {
  int iterations = 0;       // iterations actually executed
  double max_update = 0.0;  // largest relative weight change, last iteration
  bool converged = false;   // stopped by tolerance rather than the cap
};

/// Iterative density-compensation weights for `coords`, using `gridder`'s
/// kernel/grid configuration. Weights are normalized so their mean is 1.
/// Publishes `dcf.runs` and `dcf.iterations` obs counters per call.
template <int D>
std::vector<double> pipe_menon_weights(
    Gridder<D>& gridder, const std::vector<Coord<D>>& coords,
    const PipeMenonOptions& options = PipeMenonOptions{},
    PipeMenonReport* report = nullptr);

extern template std::vector<double> pipe_menon_weights<1>(
    Gridder<1>&, const std::vector<Coord<1>>&, const PipeMenonOptions&,
    PipeMenonReport*);
extern template std::vector<double> pipe_menon_weights<2>(
    Gridder<2>&, const std::vector<Coord<2>>&, const PipeMenonOptions&,
    PipeMenonReport*);
extern template std::vector<double> pipe_menon_weights<3>(
    Gridder<3>&, const std::vector<Coord<3>>&, const PipeMenonOptions&,
    PipeMenonReport*);

}  // namespace jigsaw::core
