// Model-based MRI reconstruction on top of the NuFFT (paper refs [5], [10]).
//
// Solves min_x ||A x - y||^2 with A the forward NuFFT, via conjugate
// gradients on the normal equations A^H A x = A^H y. The Gram operator
// A^H A is Toeplitz (shift-invariant), so it can be applied with two
// FFTs on a 2x-padded grid and no per-iteration gridding — the strategy of
// the Impatient framework [10] ("Toeplitz-based"). Both the direct
// (forward+adjoint NuFFT) and the Toeplitz Gram application are provided.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/deadline.hpp"
#include "core/nufft.hpp"
#include "fft/fft.hpp"

namespace jigsaw::core {

/// Toeplitz embedding of the Gram operator A^H W A for a fixed trajectory,
/// where W = diag(weights) (density compensation or all-ones).
template <int D>
class ToeplitzOperator {
 public:
  /// `n` is the image size; the eigenvalue grid has side 2n.
  ToeplitzOperator(std::int64_t n, const std::vector<Coord<D>>& coords,
                   const std::vector<double>& weights,
                   const GridderOptions& options);

  std::int64_t image_size() const { return n_; }

  /// y = (A^H W A) x for a centered N^D image.
  std::vector<c64> apply(const std::vector<c64>& x) const;

 private:
  std::int64_t n_;
  unsigned threads_;              // FFT threading (from options.threads)
  std::vector<c64> eigenvalues_;  // FFT of the embedded PSF on (2N)^D
  std::shared_ptr<const fft::FftNd> fft_;  // shared via FftPlanCache
};

/// Conjugate-gradient solve of the Hermitian PSD system op(x) = b.
struct CgResult {
  int iterations = 0;
  double final_residual = 0.0;  // ||op(x) - b|| / ||b||
  std::vector<double> residual_history;
};

/// The deadline is checked at the top of every CG iteration (and before the
/// initial operator application); a passed deadline raises DeadlineExceeded.
/// The "cg.inflight" gauge reads the number of solves currently running
/// (concurrent solves each count once); it returns to 0 once none is in
/// flight, on every exit path, timeout included.
CgResult conjugate_gradient(
    const std::function<std::vector<c64>(const std::vector<c64>&)>& op,
    const std::vector<c64>& b, std::vector<c64>& x, int max_iterations = 30,
    double tolerance = 1e-6, const Deadline& deadline = Deadline());

/// Convenience: iterative least-squares reconstruction of k-space data
/// `y` sampled at `plan`'s coordinates. When `use_toeplitz` is set the Gram
/// operator is applied via ToeplitzOperator (two FFTs) instead of
/// forward+adjoint NuFFT per iteration.
///
/// `warm_start` (the streaming entry point): a non-null pointer to an image
/// of exactly plan.base_size()^D pixels seeds CG with that image instead of
/// zero — the previous frame of a dynamic sequence. CG converges to the
/// same fixed point either way (the normal equations are PSD with a unique
/// least-norm solution on the operator's range); a good seed only changes
/// how many iterations reaching `tolerance` takes. A size mismatch falls
/// back to the cold (zero) start rather than erroring, so callers may hand
/// in "whatever the last frame produced" unconditionally.
template <int D>
std::vector<c64> iterative_recon(NufftPlan<D>& plan,
                                 const std::vector<c64>& y,
                                 int max_iterations = 20,
                                 double tolerance = 1e-6,
                                 bool use_toeplitz = false,
                                 CgResult* result = nullptr,
                                 const Deadline& deadline = Deadline(),
                                 const std::vector<c64>* warm_start = nullptr);

extern template class ToeplitzOperator<1>;
extern template class ToeplitzOperator<2>;
extern template class ToeplitzOperator<3>;
extern template std::vector<c64> iterative_recon<1>(
    NufftPlan<1>&, const std::vector<c64>&, int, double, bool, CgResult*,
    const Deadline&, const std::vector<c64>*);
extern template std::vector<c64> iterative_recon<2>(
    NufftPlan<2>&, const std::vector<c64>&, int, double, bool, CgResult*,
    const Deadline&, const std::vector<c64>*);
extern template std::vector<c64> iterative_recon<3>(
    NufftPlan<3>&, const std::vector<c64>&, int, double, bool, CgResult*,
    const Deadline&, const std::vector<c64>*);

}  // namespace jigsaw::core
