#include "core/recon.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "fft/plan_cache.hpp"
#include "obs/obs.hpp"

namespace jigsaw::core {

template <int D>
ToeplitzOperator<D>::ToeplitzOperator(std::int64_t n,
                                      const std::vector<Coord<D>>& coords,
                                      const std::vector<double>& weights,
                                      const GridderOptions& options)
    : n_(n), threads_(options.threads) {
  JIGSAW_REQUIRE(weights.size() == coords.size(),
                 "weights/coords size mismatch");
  // PSF lambda(m) = sum_j w_j e^{+2 pi i m . x_j} for m in [-N, N)^D —
  // exactly an adjoint NuFFT of the weights on a 2N base grid.
  NufftPlan<D> psf_plan(2 * n, coords, options);
  std::vector<c64> wv(weights.size());
  for (std::size_t j = 0; j < weights.size(); ++j) {
    wv[j] = c64(weights[j], 0.0);
  }
  std::vector<c64> psf = psf_plan.adjoint(wv);

  // Embed the centered PSF into a (2N)^D circulant kernel and take its FFT.
  const std::int64_t n2 = 2 * n_;
  const std::int64_t total = pow_dim<D>(n2);
  eigenvalues_.assign(static_cast<std::size_t>(total), c64{});
  for (std::int64_t lin = 0; lin < total; ++lin) {
    const Index<D> idx = unlinear_index<D>(lin, n2);
    Index<D> dst{};
    for (int d = 0; d < D; ++d) {
      const std::int64_t m = idx[static_cast<std::size_t>(d)] - n_;
      dst[static_cast<std::size_t>(d)] = pos_mod(m, n2);
    }
    eigenvalues_[static_cast<std::size_t>(linear_index<D>(dst, n2))] =
        psf[static_cast<std::size_t>(lin)];
  }
  fft_ = fft::FftPlanCache::global().get_cube(
      D, static_cast<std::size_t>(n2));
  fft_->execute(eigenvalues_.data(), fft::Direction::Forward, threads_);
}

template <int D>
std::vector<c64> ToeplitzOperator<D>::apply(const std::vector<c64>& x) const {
  JIGSAW_REQUIRE(static_cast<std::int64_t>(x.size()) == pow_dim<D>(n_),
                 "image size mismatch in ToeplitzOperator::apply");
  const std::int64_t n2 = 2 * n_;
  const std::int64_t total2 = pow_dim<D>(n2);
  const std::int64_t total = pow_dim<D>(n_);

  fft::ScratchLease lease(static_cast<std::size_t>(total2));
  auto& buf = lease.buffer();
  std::fill(buf.begin(), buf.end(), c64{});
  for (std::int64_t lin = 0; lin < total; ++lin) {
    const Index<D> idx = unlinear_index<D>(lin, n_);
    Index<D> dst{};
    for (int d = 0; d < D; ++d) {
      dst[static_cast<std::size_t>(d)] =
          pos_mod(idx[static_cast<std::size_t>(d)] - n_ / 2, n2);
    }
    buf[static_cast<std::size_t>(linear_index<D>(dst, n2))] =
        x[static_cast<std::size_t>(lin)];
  }
  fft_->execute(buf.data(), fft::Direction::Forward, threads_);
  const double inv = 1.0 / static_cast<double>(total2);
  for (std::int64_t i = 0; i < total2; ++i) {
    buf[static_cast<std::size_t>(i)] *=
        eigenvalues_[static_cast<std::size_t>(i)] * inv;
  }
  fft_->execute(buf.data(), fft::Direction::Inverse, threads_);

  std::vector<c64> y(static_cast<std::size_t>(total));
  for (std::int64_t lin = 0; lin < total; ++lin) {
    const Index<D> idx = unlinear_index<D>(lin, n_);
    Index<D> src{};
    for (int d = 0; d < D; ++d) {
      src[static_cast<std::size_t>(d)] =
          pos_mod(idx[static_cast<std::size_t>(d)] - n_ / 2, n2);
    }
    y[static_cast<std::size_t>(lin)] =
        buf[static_cast<std::size_t>(linear_index<D>(src, n2))];
  }
  return y;
}

namespace {

/// Publishes the number of CG solves currently running as "cg.inflight".
/// The count and the gauge write share one mutex so concurrent solves
/// (coil-parallel CLI, embedders) never publish stale values; the gauge
/// reads 0 exactly when no solve is in flight — on every exit path,
/// including a DeadlineExceeded unwind, which the deadline test asserts
/// leaves no gauge stuck non-zero.
struct InflightGauge {
  InflightGauge() { update(+1); }
  ~InflightGauge() { update(-1); }

 private:
  static void update(int delta) {
    static std::mutex mu;
    static int count = 0;
    std::lock_guard<std::mutex> lk(mu);
    count += delta;
    obs::set_gauge("cg.inflight", static_cast<double>(count));
  }
};

}  // namespace

CgResult conjugate_gradient(
    const std::function<std::vector<c64>(const std::vector<c64>&)>& op,
    const std::vector<c64>& b, std::vector<c64>& x, int max_iterations,
    double tolerance, const Deadline& deadline) {
  JIGSAW_REQUIRE(!b.empty(), "empty right-hand side");
  deadline.check("cg.init");
  const InflightGauge inflight;
  if (x.size() != b.size()) x.assign(b.size(), c64{});

  auto dot = [](const std::vector<c64>& a, const std::vector<c64>& c) {
    c64 s{};
    for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * c[i];
    return s;
  };
  auto nrm = [&](const std::vector<c64>& a) {
    return std::sqrt(std::abs(dot(a, a)));
  };

  CgResult result;
  const double bnorm = nrm(b);
  if (bnorm == 0.0) {
    x.assign(b.size(), c64{});
    return result;
  }

  std::vector<c64> r = b;
  {
    const std::vector<c64> ax = op(x);
    for (std::size_t i = 0; i < r.size(); ++i) r[i] -= ax[i];
  }
  std::vector<c64> p = r;
  double rs = std::abs(dot(r, r));

  obs::add("cg.solves", 1);
  for (int it = 0; it < max_iterations; ++it) {
    deadline.check("cg.iteration");
    obs::Span iter_span("cg.iteration");
    const double rel = std::sqrt(rs) / bnorm;
    result.residual_history.push_back(rel);
    // Per-iteration residual gauge: dashboards/tests read the latest value;
    // the full history stays in CgResult.
    obs::set_gauge("cg.residual", rel);
    obs::set_gauge("cg.iteration", static_cast<double>(it));
    if (rel < tolerance) break;
    const std::vector<c64> ap = op(p);
    const c64 pap = dot(p, ap);
    if (std::abs(pap) == 0.0) break;
    const c64 alpha = rs / pap;
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rs_new = std::abs(dot(r, r));
    const double beta = rs_new / rs;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
    rs = rs_new;
    ++result.iterations;
    obs::add("cg.iterations", 1);
  }
  result.final_residual = std::sqrt(rs) / bnorm;
  obs::set_gauge("cg.final_residual", result.final_residual);
  return result;
}

template <int D>
std::vector<c64> iterative_recon(NufftPlan<D>& plan, const std::vector<c64>& y,
                                 int max_iterations, double tolerance,
                                 bool use_toeplitz, CgResult* result,
                                 const Deadline& deadline,
                                 const std::vector<c64>* warm_start) {
  const std::vector<c64> b = plan.adjoint(y, nullptr, deadline);

  std::function<std::vector<c64>(const std::vector<c64>&)> gram;
  std::unique_ptr<ToeplitzOperator<D>> toeplitz;
  if (use_toeplitz) {
    const std::vector<double> ones(plan.num_samples(), 1.0);
    toeplitz = std::make_unique<ToeplitzOperator<D>>(
        plan.base_size(), plan.coords(), ones, plan.gridder().options());
    gram = [&toeplitz](const std::vector<c64>& x) {
      return toeplitz->apply(x);
    };
  } else {
    gram = [&plan, &deadline](const std::vector<c64>& x) {
      return plan.adjoint(plan.forward(x, nullptr, deadline), nullptr,
                          deadline);
    };
  }

  // A warm start of the wrong size is a stale frame from another geometry
  // (e.g. the stream reconfigured mid-session): fall back to cold rather
  // than poison the solve.
  std::vector<c64> x(b.size(), c64{});
  if (warm_start != nullptr && warm_start->size() == b.size()) {
    x = *warm_start;
    obs::add("cg.warm_starts", 1);
  }
  const CgResult cg = conjugate_gradient(gram, b, x, max_iterations,
                                         tolerance, deadline);
  if (result != nullptr) *result = cg;
  return x;
}

template class ToeplitzOperator<1>;
template class ToeplitzOperator<2>;
template class ToeplitzOperator<3>;
template std::vector<c64> iterative_recon<1>(
    NufftPlan<1>&, const std::vector<c64>&, int, double, bool, CgResult*,
    const Deadline&, const std::vector<c64>*);
template std::vector<c64> iterative_recon<2>(
    NufftPlan<2>&, const std::vector<c64>&, int, double, bool, CgResult*,
    const Deadline&, const std::vector<c64>*);
template std::vector<c64> iterative_recon<3>(
    NufftPlan<3>&, const std::vector<c64>&, int, double, bool, CgResult*,
    const Deadline&, const std::vector<c64>*);

}  // namespace jigsaw::core
