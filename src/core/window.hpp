// Shared interpolation-window geometry.
//
// Every gridder in this library uses the same window convention so that
// their outputs are numerically identical (the equivalence property tests
// rely on this). The convention matches the Slice-and-Dice hardware: a
// sample at grid coordinate u affects the W integer grid points in the
// half-open interval (u - W/2, u + W/2], i.e. signed distances
// dist = g - u in (-W/2, W/2].
#pragma once

#include <cmath>

#include "common/types.hpp"

namespace jigsaw::core {

/// Map a normalized torus coordinate tau in [-0.5, 0.5) to a grid coordinate
/// u in [0, G).
inline double grid_coord(double tau, std::int64_t g) {
  double u = (tau + 0.5) * static_cast<double>(g);
  // Guard against FP landing exactly on G.
  if (u >= static_cast<double>(g)) u -= static_cast<double>(g);
  if (u < 0.0) u += static_cast<double>(g);
  return u;
}

/// First grid point of the interpolation window of a sample at u:
/// g0 = floor(u + W/2) - W + 1; offsets o in [0, W) give g = g0 + o with
/// dist = g - u in (-W/2, W/2].
inline std::int64_t window_start(double u, int w) {
  return static_cast<std::int64_t>(std::floor(u + static_cast<double>(w) * 0.5)) -
         w + 1;
}

/// Slice-and-Dice two-part coordinate decomposition (paper Sec. III / Fig. 4)
/// of the *shifted* coordinate u' = u + W/2: tile coordinate = floor(u'/T),
/// relative coordinate = u' mod T.
struct Decomposed {
  std::int64_t tile;    // quotient
  double relative;      // remainder in [0, T)
};

inline Decomposed decompose(double u_shifted, int t) {
  const double td = static_cast<double>(t);
  const auto tile = static_cast<std::int64_t>(std::floor(u_shifted / td));
  double rel = u_shifted - static_cast<double>(tile) * td;
  if (rel >= td) rel -= td;  // FP guard
  return {tile, rel};
}

}  // namespace jigsaw::core
