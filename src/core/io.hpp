// Plain-text I/O for non-uniform sample sets.
//
// Lets real acquisitions (or data exported from other NuFFT packages) flow
// through the CLI and examples: one line per sample,
//   k0,k1,real,imag        (2D)
//   k0,k1,k2,real,imag     (3D)
// with coordinates in normalized torus units [-0.5, 0.5). Lines starting
// with '#' are comments; blank lines and CRLF line endings are tolerated.
//
// The loader is a recovering line-oriented parser: a malformed row is
// recorded as a (1-based line number, reason) reject and skipped, so one
// corrupt export line cannot discard an entire acquisition. Out-of-range or
// non-finite numbers parse successfully — classifying and repairing them is
// the sanitizer's job (robustness/sanitize.hpp), not the parser's.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/sample_set.hpp"

namespace jigsaw::core {

/// Write a sample set as CSV (D coordinate fields + real,imag per row).
/// Returns false on I/O failure.
bool save_samples_csv(const std::string& path, const SampleSet<2>& samples);
bool save_samples_csv(const std::string& path, const SampleSet<3>& samples);

/// One rejected CSV row.
struct CsvReject {
  std::size_t line = 0;  // 1-based line number in the file
  std::string reason;
};

/// Outcome of one load: accepted row count plus every reject, in file order.
struct CsvReport {
  std::size_t rows_parsed = 0;
  std::vector<CsvReject> rejects;
};

/// Read a 2D sample set from CSV. Throws std::runtime_error if the file is
/// unreadable. With `report` non-null, malformed rows are skipped and
/// recorded there; with `report` null, malformed rows raise
/// std::invalid_argument listing every rejected line. A file with no data
/// rows (empty or comment-only) yields an empty SampleSet.
SampleSet<2> load_samples_csv(const std::string& path,
                              CsvReport* report = nullptr);

/// 3D variant: rows are k0,k1,k2,real,imag. Same recovery contract.
SampleSet<3> load_samples_csv_3d(const std::string& path,
                                 CsvReport* report = nullptr);

}  // namespace jigsaw::core
