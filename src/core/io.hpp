// Plain-text I/O for non-uniform sample sets.
//
// Lets real acquisitions (or data exported from other NuFFT packages) flow
// through the CLI and examples: one line per sample,
//   k0,k1,real,imag
// with coordinates in normalized torus units [-0.5, 0.5). Lines starting
// with '#' are comments.
#pragma once

#include <string>

#include "core/sample_set.hpp"

namespace jigsaw::core {

/// Write a 2D sample set as CSV. Returns false on I/O failure.
bool save_samples_csv(const std::string& path, const SampleSet<2>& samples);

/// Read a 2D sample set from CSV. Throws std::invalid_argument on malformed
/// rows or out-of-range coordinates; std::runtime_error if unreadable.
SampleSet<2> load_samples_csv(const std::string& path);

}  // namespace jigsaw::core
