#include "core/nudft.hpp"

#include <cmath>
#include <numbers>

namespace jigsaw::core {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

template <int D>
std::vector<c64> nudft_adjoint(const SampleSet<D>& in, std::int64_t n) {
  const std::int64_t total = pow_dim<D>(n);
  std::vector<c64> out(static_cast<std::size_t>(total), c64{});
  const auto m = static_cast<std::int64_t>(in.size());
  for (std::int64_t lin = 0; lin < total; ++lin) {
    const Index<D> idx = unlinear_index<D>(lin, n);
    double k[3];
    for (int d = 0; d < D; ++d) {
      k[d] = static_cast<double>(idx[static_cast<std::size_t>(d)] - n / 2);
    }
    c64 acc{};
    for (std::int64_t j = 0; j < m; ++j) {
      double phase = 0.0;
      for (int d = 0; d < D; ++d) {
        phase += k[d] * in.coords[static_cast<std::size_t>(j)]
                                 [static_cast<std::size_t>(d)];
      }
      phase *= kTwoPi;
      acc += in.values[static_cast<std::size_t>(j)] *
             c64(std::cos(phase), std::sin(phase));
    }
    out[static_cast<std::size_t>(lin)] = acc;
  }
  return out;
}

template <int D>
std::vector<c64> nudft_forward(const std::vector<c64>& image, std::int64_t n,
                               const std::vector<Coord<D>>& coords) {
  JIGSAW_REQUIRE(static_cast<std::int64_t>(image.size()) == pow_dim<D>(n),
                 "image size mismatch in nudft_forward");
  std::vector<c64> out(coords.size(), c64{});
  const std::int64_t total = pow_dim<D>(n);
  for (std::size_t j = 0; j < coords.size(); ++j) {
    c64 acc{};
    for (std::int64_t lin = 0; lin < total; ++lin) {
      const Index<D> idx = unlinear_index<D>(lin, n);
      double phase = 0.0;
      for (int d = 0; d < D; ++d) {
        phase += static_cast<double>(idx[static_cast<std::size_t>(d)] - n / 2) *
                 coords[j][static_cast<std::size_t>(d)];
      }
      phase *= -kTwoPi;
      acc += image[static_cast<std::size_t>(lin)] *
             c64(std::cos(phase), std::sin(phase));
    }
    out[j] = acc;
  }
  return out;
}

template std::vector<c64> nudft_adjoint<1>(const SampleSet<1>&, std::int64_t);
template std::vector<c64> nudft_adjoint<2>(const SampleSet<2>&, std::int64_t);
template std::vector<c64> nudft_adjoint<3>(const SampleSet<3>&, std::int64_t);
template std::vector<c64> nudft_forward<1>(const std::vector<c64>&,
                                           std::int64_t,
                                           const std::vector<Coord<1>>&);
template std::vector<c64> nudft_forward<2>(const std::vector<c64>&,
                                           std::int64_t,
                                           const std::vector<Coord<2>>&);
template std::vector<c64> nudft_forward<3>(const std::vector<c64>&,
                                           std::int64_t,
                                           const std::vector<Coord<3>>&);

}  // namespace jigsaw::core
