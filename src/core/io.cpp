#include "core/io.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace jigsaw::core {

namespace {

/// Shared writer: D coordinate fields then real,imag per row.
template <int D>
bool save_samples_impl(const std::string& path, const SampleSet<D>& samples,
                       const char* header) {
  std::ofstream f(path);
  if (!f) return false;
  f << header;
  f.precision(17);
  for (std::size_t j = 0; j < samples.size(); ++j) {
    for (int d = 0; d < D; ++d) {
      f << samples.coords[j][static_cast<std::size_t>(d)] << ',';
    }
    f << samples.values[j].real() << ',' << samples.values[j].imag() << '\n';
  }
  return static_cast<bool>(f);
}

/// Parse one data row of `fields` comma-separated numbers into v. Returns
/// an empty string on success, otherwise the reason the row is rejected.
/// strtod (rather than stream extraction) so "nan"/"inf" survive the round
/// trip to the sanitizer.
std::string parse_row(const std::string& line, double* v, int fields) {
  const char* p = line.c_str();
  for (int i = 0; i < fields; ++i) {
    if (i > 0) {
      while (*p == ' ' || *p == '\t') ++p;
      if (*p != ',') {
        return "expected ',' before field " + std::to_string(i + 1);
      }
      ++p;
    }
    char* end = nullptr;
    v[i] = std::strtod(p, &end);
    if (end == p) {
      return "field " + std::to_string(i + 1) + " is not a number";
    }
    p = end;
  }
  while (*p == ' ' || *p == '\t') ++p;
  if (*p != '\0') {
    return "trailing characters after field " + std::to_string(fields);
  }
  return {};
}

template <int D>
SampleSet<D> load_samples_impl(const std::string& path, CsvReport* report) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("jigsaw: cannot open sample file: " + path);
  }
  SampleSet<D> out;
  CsvReport local;
  std::string line;
  std::size_t lineno = 0;  // 1-based in diagnostics
  while (std::getline(f, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    double v[D + 2];
    std::string reason = parse_row(line, v, D + 2);
    if (!reason.empty()) {
      local.rejects.push_back(CsvReject{lineno, std::move(reason)});
      continue;
    }
    ++local.rows_parsed;
    Coord<D> c;
    for (int d = 0; d < D; ++d) c[static_cast<std::size_t>(d)] = v[d];
    out.coords.push_back(c);
    out.values.emplace_back(v[D], v[D + 1]);
  }
  if (report == nullptr) {
    if (!local.rejects.empty()) {
      std::ostringstream msg;
      msg << "jigsaw: " << local.rejects.size() << " malformed row"
          << (local.rejects.size() == 1 ? "" : "s") << " in " << path;
      for (const auto& r : local.rejects) {
        msg << "\n  line " << r.line << ": " << r.reason;
      }
      throw std::invalid_argument(msg.str());
    }
  } else {
    *report = std::move(local);
  }
  return out;
}

}  // namespace

bool save_samples_csv(const std::string& path, const SampleSet<2>& samples) {
  return save_samples_impl<2>(
      path, samples,
      "# kx,ky,real,imag — coordinates in [-0.5, 0.5) torus units\n");
}

bool save_samples_csv(const std::string& path, const SampleSet<3>& samples) {
  return save_samples_impl<3>(
      path, samples,
      "# kx,ky,kz,real,imag — coordinates in [-0.5, 0.5) torus units\n");
}

SampleSet<2> load_samples_csv(const std::string& path, CsvReport* report) {
  return load_samples_impl<2>(path, report);
}

SampleSet<3> load_samples_csv_3d(const std::string& path, CsvReport* report) {
  return load_samples_impl<3>(path, report);
}

}  // namespace jigsaw::core
