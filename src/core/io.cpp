#include "core/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace jigsaw::core {

bool save_samples_csv(const std::string& path, const SampleSet<2>& samples) {
  std::ofstream f(path);
  if (!f) return false;
  f << "# kx,ky,real,imag — coordinates in [-0.5, 0.5) torus units\n";
  f.precision(17);
  for (std::size_t j = 0; j < samples.size(); ++j) {
    f << samples.coords[j][0] << ',' << samples.coords[j][1] << ','
      << samples.values[j].real() << ',' << samples.values[j].imag() << '\n';
  }
  return static_cast<bool>(f);
}

SampleSet<2> load_samples_csv(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("jigsaw: cannot open sample file: " + path);
  }
  SampleSet<2> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    double v[4];
    char comma;
    for (int i = 0; i < 4; ++i) {
      if (i > 0) {
        ss >> comma;
        JIGSAW_REQUIRE(comma == ',', "malformed CSV at " << path << ":"
                                                          << lineno);
      }
      JIGSAW_REQUIRE(static_cast<bool>(ss >> v[i]),
                     "malformed CSV at " << path << ":" << lineno);
    }
    JIGSAW_REQUIRE(v[0] >= -0.5 && v[0] < 0.5 && v[1] >= -0.5 && v[1] < 0.5,
                   "coordinate out of [-0.5, 0.5) at " << path << ":"
                                                       << lineno);
    out.coords.push_back({v[0], v[1]});
    out.values.emplace_back(v[2], v[3]);
  }
  JIGSAW_REQUIRE(!out.empty(), "no samples in " << path);
  return out;
}

}  // namespace jigsaw::core
