#include "core/io.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace jigsaw::core {

bool save_samples_csv(const std::string& path, const SampleSet<2>& samples) {
  std::ofstream f(path);
  if (!f) return false;
  f << "# kx,ky,real,imag — coordinates in [-0.5, 0.5) torus units\n";
  f.precision(17);
  for (std::size_t j = 0; j < samples.size(); ++j) {
    f << samples.coords[j][0] << ',' << samples.coords[j][1] << ','
      << samples.values[j].real() << ',' << samples.values[j].imag() << '\n';
  }
  return static_cast<bool>(f);
}

namespace {

/// Parse one data row "k0,k1,real,imag" into v. Returns an empty string on
/// success, otherwise the reason the row is rejected. strtod (rather than
/// stream extraction) so "nan"/"inf" survive the round trip to the
/// sanitizer.
std::string parse_row(const std::string& line, double v[4]) {
  const char* p = line.c_str();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      while (*p == ' ' || *p == '\t') ++p;
      if (*p != ',') {
        return "expected ',' before field " + std::to_string(i + 1);
      }
      ++p;
    }
    char* end = nullptr;
    v[i] = std::strtod(p, &end);
    if (end == p) {
      return "field " + std::to_string(i + 1) + " is not a number";
    }
    p = end;
  }
  while (*p == ' ' || *p == '\t') ++p;
  if (*p != '\0') return "trailing characters after field 4";
  return {};
}

}  // namespace

SampleSet<2> load_samples_csv(const std::string& path, CsvReport* report) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("jigsaw: cannot open sample file: " + path);
  }
  SampleSet<2> out;
  CsvReport local;
  std::string line;
  std::size_t lineno = 0;  // 1-based in diagnostics
  while (std::getline(f, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    double v[4];
    std::string reason = parse_row(line, v);
    if (!reason.empty()) {
      local.rejects.push_back(CsvReject{lineno, std::move(reason)});
      continue;
    }
    ++local.rows_parsed;
    out.coords.push_back({v[0], v[1]});
    out.values.emplace_back(v[2], v[3]);
  }
  if (report == nullptr) {
    if (!local.rejects.empty()) {
      std::ostringstream msg;
      msg << "jigsaw: " << local.rejects.size() << " malformed row"
          << (local.rejects.size() == 1 ? "" : "s") << " in " << path;
      for (const auto& r : local.rejects) {
        msg << "\n  line " << r.line << ": " << r.reason;
      }
      throw std::invalid_argument(msg.str());
    }
  } else {
    *report = std::move(local);
  }
  return out;
}

}  // namespace jigsaw::core
