// The JIGSAW fixed-point datapath (paper Sec. IV), shared bit-for-bit by the
// functional JigsawGridder and the cycle-level jigsaw::CycleSim so the two
// are exactly equivalent by construction (and tested to be).
//
// Stage mapping:
//   select       — select_dim(): coordinate truncation into tile/relative
//                  parts, forward-distance boundary check, wrap handling,
//                  global tile address and LUT address generation
//   weight lookup— LUT read + Knuth complex multiply of per-dim weights
//   interpolate  — Knuth complex multiply of weight and sample value
//   accumulate   — saturating add into the column's SRAM entry
//
// Numeric formats (Table I): 32-bit pipelines, 16-bit weights. Coordinates
// arrive as unsigned fixed point with kCoordFracBits fraction bits.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "fixed/fixed.hpp"

namespace jigsaw::core::datapath {

/// Fraction bits of the streamed sample coordinates.
inline constexpr int kCoordFracBits = 16;

/// Quantize a grid-unit coordinate u in [0, G) to the bus fixed-point format.
inline std::int64_t quantize_coord(double u) {
  return std::llround(u * static_cast<double>(std::int64_t{1}
                                              << kCoordFracBits));
}

/// Per-dimension select-unit result for one window offset.
struct DimSelect {
  std::int64_t column;     // relative position c in [0, T)
  std::int64_t tile;       // wrapped tile coordinate q in [0, ntiles)
  std::int32_t lut_index;  // weight SRAM address
};

/// Geometry constants the select unit is configured with.
struct SelectConfig {
  int width;               // W
  std::int64_t tile;       // T (power of two)
  std::int64_t ntiles;     // G / T
  int log2_table;          // log2(L)
  std::int32_t lut_last;   // last valid LUT address (W*L/2 - 1)
};

/// Select-unit computation for window offset k in [0, W) given the
/// quantized *shifted* coordinate us_q = quantize(u) + (W/2 << frac).
/// All arithmetic is integer, mirroring the hardware's truncate/add/compare
/// structure (Sec. IV "Select").
inline DimSelect select_dim(std::int64_t us_q, int k,
                            const SelectConfig& cfg) {
  const std::int64_t tq = cfg.tile << kCoordFracBits;
  std::int64_t tile = us_q / tq;            // truncate upper bits
  const std::int64_t rel_q = us_q % tq;     // relative coordinate (Q.frac)
  const std::int64_t fl = rel_q >> kCoordFracBits;
  std::int64_t c = fl - k;
  if (c < 0) {  // wrap: relative coordinate below column index
    c += cfg.tile;
    tile -= 1;
  }
  if (tile < 0) tile += cfg.ntiles;          // torus edge wrap
  if (tile >= cfg.ntiles) tile -= cfg.ntiles;
  // Forward distance fd = (rel - c) mod T, in Q.frac.
  std::int64_t fd_q = rel_q - (c << kCoordFracBits);
  if (fd_q < 0) fd_q += tq;
  // Signed distance to the window center: dist = fd - W/2.
  std::int64_t dist_q =
      fd_q - (static_cast<std::int64_t>(cfg.width) << (kCoordFracBits - 1));
  if (dist_q < 0) dist_q = -dist_q;
  // Table address: multiply by L (power of two -> truncate lower bits,
  // with a half-LSB bias for round-to-nearest).
  const int shift = kCoordFracBits - cfg.log2_table;
  std::int64_t idx;
  if (shift > 0) {
    idx = (dist_q + (std::int64_t{1} << (shift - 1))) >> shift;
  } else {
    idx = dist_q << (-shift);
  }
  if (idx > cfg.lut_last) idx = cfg.lut_last;
  return {c, tile, static_cast<std::int32_t>(idx)};
}

/// Per-column (per-pipeline) select result: what one hardware pipeline
/// computes for one incoming sample in one dimension.
struct ColumnSelect {
  bool affected;           // forward distance < W
  std::int64_t tile;       // wrapped tile coordinate q in [0, ntiles)
  std::int32_t lut_index;  // weight SRAM address
};

/// Select-unit computation as performed by the pipeline at column index c
/// (Sec. IV "Select"): truncate to get the relative coordinate, form the
/// forward distance fd = (rel - c) mod T, compare against W, detect tile
/// wrap (rel < c), and generate table address. Bit-identical to
/// select_dim() on the columns that pass the check (tested).
inline ColumnSelect select_column(std::int64_t us_q, std::int64_t c,
                                  const SelectConfig& cfg) {
  const std::int64_t tq = cfg.tile << kCoordFracBits;
  std::int64_t tile = us_q / tq;
  const std::int64_t rel_q = us_q % tq;
  std::int64_t fd_q = rel_q - (c << kCoordFracBits);
  if (fd_q < 0) {  // wrap: relative coordinate below column index
    fd_q += tq;
    tile -= 1;
  }
  const bool affected =
      fd_q < (static_cast<std::int64_t>(cfg.width) << kCoordFracBits);
  if (tile < 0) tile += cfg.ntiles;
  if (tile >= cfg.ntiles) tile -= cfg.ntiles;
  std::int64_t dist_q =
      fd_q - (static_cast<std::int64_t>(cfg.width) << (kCoordFracBits - 1));
  if (dist_q < 0) dist_q = -dist_q;
  const int shift = kCoordFracBits - cfg.log2_table;
  std::int64_t idx;
  if (shift > 0) {
    idx = (dist_q + (std::int64_t{1} << (shift - 1))) >> shift;
  } else {
    idx = dist_q << (-shift);
  }
  if (idx > cfg.lut_last) idx = cfg.lut_last;
  return {affected, tile, static_cast<std::int32_t>(idx)};
}

using Weight32 = fixed::Fixed<32, 30>;
using CWeight32 = fixed::Complex<Weight32>;

/// Widen a 16-bit Q1.15 complex weight to the 32-bit Q2.30 pipeline format
/// (exact, shift by 15).
inline CWeight32 widen_weight(fixed::CWeight16 w) {
  return {Weight32::from_raw(static_cast<std::int32_t>(w.re.raw()) << 15),
          Weight32::from_raw(static_cast<std::int32_t>(w.im.raw()) << 15)};
}

/// Weight-lookup unit: combine two per-dimension weights (Knuth product).
inline CWeight32 combine_weights(fixed::CWeight16 a, fixed::CWeight16 b) {
  return fixed::knuth_cmul<Weight32>(a, b);
}

/// Third-dimension combine for the 3D Slice variant.
inline CWeight32 combine_weights(CWeight32 ab, fixed::CWeight16 c) {
  return fixed::knuth_cmul<Weight32>(ab, c);
}

/// Interpolation unit: weighted sample contribution (Knuth product).
inline fixed::CData32 interpolate(CWeight32 w, fixed::CData32 value) {
  return fixed::knuth_cmul<fixed::Data32>(w, value);
}

/// Accumulation unit: saturating add into the column SRAM entry.
/// Returns true when either component clipped.
inline bool accumulate(fixed::CData32& acc, fixed::CData32 v) {
  using F = fixed::Data32;
  const std::int64_t re = static_cast<std::int64_t>(acc.re.raw()) +
                          static_cast<std::int64_t>(v.re.raw());
  const std::int64_t im = static_cast<std::int64_t>(acc.im.raw()) +
                          static_cast<std::int64_t>(v.im.raw());
  bool sat = false;
  auto clamp = [&sat](std::int64_t x) {
    if (x > static_cast<std::int64_t>(F::max_raw)) {
      sat = true;
      return F::max_raw;
    }
    if (x < static_cast<std::int64_t>(F::min_raw)) {
      sat = true;
      return F::min_raw;
    }
    return static_cast<typename F::storage>(x);
  };
  acc.re = F::from_raw(clamp(re));
  acc.im = F::from_raw(clamp(im));
  return sat;
}

/// Host-side input normalization: the scale exponent s such that the
/// largest |component| of the stream maps near 1.0 (values are streamed as
/// value * 2^s and the grid is descaled on readout).
inline int auto_scale_log2(const std::vector<c64>& values) {
  double maxabs = 0.0;
  for (const auto& v : values) {
    maxabs = std::max({maxabs, std::fabs(v.real()), std::fabs(v.imag())});
  }
  if (maxabs <= 0.0) return 0;
  return static_cast<int>(-std::ceil(std::log2(maxabs)));
}

}  // namespace jigsaw::core::datapath
