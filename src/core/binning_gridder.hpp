// Binning gridder — geometric tiling with pre-sorted bins (Impatient-like).
//
// The uniform grid is broken into tiles of side B chosen to fit an on-chip
// cache; a presort pass assigns every sample to the bin of each tile its
// interpolation window touches (samples near tile edges are duplicated into
// up to 2^d bins). Tile-bin pairs are then processed output-driven: every
// uniform point of the tile performs a boundary check against every sample
// of the bin (Fig. 3a). This reproduces the three overheads the paper
// attributes to binning: the presort pass, duplicate sample processing, and
// B^d-per-sample boundary checks. Weights are computed on-line by default
// (Impatient evaluates its Kaiser-Bessel kernel during processing rather
// than from a LUT — paper Sec. VI.A reason (1)).
#pragma once

#include <vector>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/gridder.hpp"
#include "core/window.hpp"
#include "kernels/simd/simd.hpp"

namespace jigsaw::core {

template <int D>
class BinningGridder final : public Gridder<D> {
 public:
  BinningGridder(std::int64_t n, const GridderOptions& options)
      : Gridder<D>(n, options) {
    const std::int64_t b = options.tile;
    JIGSAW_REQUIRE(b >= 1 && this->g_ % b == 0,
                   "bin tile size must divide the oversampled grid (G="
                       << this->g_ << ", B=" << b << ")");
    tiles_per_dim_ = this->g_ / b;
    // A window must not wrap onto the same tile twice (that would place a
    // sample in one bin twice and double-count it), and the folded-distance
    // boundary check needs a unique torus representative.
    JIGSAW_REQUIRE(tiles_per_dim_ >= (options.width - 1) / b + 2,
                   "grid too small for this tile/window combination (G="
                       << this->g_ << ", B=" << b << ", W="
                       << options.width << ")");
    JIGSAW_REQUIRE(this->g_ > options.width,
                   "oversampled grid must exceed the window width");
  }

  GridderKind kind() const override { return GridderKind::Binning; }

  std::int64_t tiles_per_dim() const { return tiles_per_dim_; }

  /// Presort samples into per-tile bins. Returns bins of sample indices;
  /// exposed publicly so tests can assert duplicate-placement behaviour.
  std::vector<std::vector<std::int32_t>> presort(
      const SampleSet<D>& in) const {
    const int w = this->options_.width;
    const std::int64_t g = this->g_;
    const std::int64_t b = this->options_.tile;
    const std::int64_t ntiles = pow_dim<D>(tiles_per_dim_);
    std::vector<std::vector<std::int32_t>> bins(
        static_cast<std::size_t>(ntiles));
    const auto m = static_cast<std::int64_t>(in.size());
    for (std::int64_t j = 0; j < m; ++j) {
      // Tile range per dimension covered by the window (wrapped).
      std::int64_t t0[3], t1[3];
      for (int d = 0; d < D; ++d) {
        const double u = grid_coord(
            in.coords[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)],
            g);
        const std::int64_t g0 = window_start(u, w);
        t0[d] = g0 >= 0 ? g0 / b : (g0 - b + 1) / b;  // floor division
        const std::int64_t gend = g0 + w - 1;
        t1[d] = gend >= 0 ? gend / b : (gend - b + 1) / b;
      }
      // Cross product of tile ranges.
      Index<D> t{};
      for (int d = 0; d < D; ++d) t[static_cast<std::size_t>(d)] = t0[d];
      for (;;) {
        Index<D> wrapped{};
        for (int d = 0; d < D; ++d) {
          wrapped[static_cast<std::size_t>(d)] =
              pos_mod(t[static_cast<std::size_t>(d)], tiles_per_dim_);
        }
        bins[static_cast<std::size_t>(linear_index<D>(wrapped, tiles_per_dim_))]
            .push_back(static_cast<std::int32_t>(j));
        int d = D - 1;
        for (; d >= 0; --d) {
          if (++t[static_cast<std::size_t>(d)] <= t1[d]) break;
          t[static_cast<std::size_t>(d)] = t0[d];
        }
        if (d < 0) break;
      }
    }
    return bins;
  }

  void do_adjoint(const SampleSet<D>& in, Grid<D>& out) override {
    JIGSAW_REQUIRE(out.size() == this->g_, "grid size mismatch in adjoint()");
    const int w = this->options_.width;
    const std::int64_t g = this->g_;
    const std::int64_t b = this->options_.tile;
    out.clear();

    Timer presort_timer;
    const auto bins = presort(in);
    this->stats_.presort_seconds += presort_timer.seconds();

    Timer timer;
    const auto m = static_cast<std::int64_t>(in.size());
    std::vector<std::array<double, D>> u(static_cast<std::size_t>(m));
    std::vector<std::array<std::int64_t, D>> w0(static_cast<std::size_t>(m));
    for (std::int64_t j = 0; j < m; ++j) {
      for (int d = 0; d < D; ++d) {
        const double uj =
            grid_coord(in.coords[static_cast<std::size_t>(j)]
                                [static_cast<std::size_t>(d)],
                       g);
        u[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)] = uj;
        w0[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)] =
            window_start(uj, w);
      }
    }

    const std::int64_t ntiles = pow_dim<D>(tiles_per_dim_);
    const std::int64_t tile_points = pow_dim<D>(b);
    std::uint64_t checks = 0;
    std::uint64_t interpolations = 0;
    std::uint64_t duplicates = 0;

    // SIMD variant: stage each bin's samples into a structure-of-arrays
    // buffer, then vectorize the output-driven boundary-check/accumulate
    // across the bin's samples for every tile point. Boundary and LUT-index
    // arithmetic match the scalar loop bit-for-bit; only the accumulation
    // order differs. Tiles stay disjoint, so the result is still independent
    // of the thread count. exact_weights (Impatient's on-line evaluation)
    // has no LUT to gather; a memory tracer needs the per-point scalar
    // writes — both keep the scalar path.
    const bool use_simd = this->options_.simd &&
                          !this->options_.exact_weights &&
                          this->tracer_ == nullptr;

    auto work_simd = [&](std::int64_t tile_begin, std::int64_t tile_end,
                         unsigned) {
      const kernels::simd::KernelTable& K = kernels::simd::table();
      const kernels::simd::LutView lv = kernels::simd::lut_view(*this->lut_);
      kernels::simd::BinSoa soa;  // reused across this range's bins
      std::uint64_t local_checks = 0, local_interp = 0, local_dups = 0;
      for (std::int64_t tl = tile_begin; tl < tile_end; ++tl) {
        const auto& bin = bins[static_cast<std::size_t>(tl)];
        if (bin.empty()) continue;
        local_dups += bin.size();
        soa.clear();
        for (const std::int32_t j : bin) {
          const auto js = static_cast<std::size_t>(j);
          for (int d = 0; d < D; ++d) {
            const auto ds = static_cast<std::size_t>(d);
            soa.u[ds].push_back(u[js][ds]);
            soa.g0[ds].push_back(static_cast<double>(w0[js][ds]));
          }
          soa.re.push_back(in.values[js].real());
          soa.im.push_back(in.values[js].imag());
        }
        const Index<D> tcoord = unlinear_index<D>(tl, tiles_per_dim_);
        for (std::int64_t pl = 0; pl < tile_points; ++pl) {
          const Index<D> local = unlinear_index<D>(pl, b);
          Index<D> p{};
          for (int d = 0; d < D; ++d) {
            p[static_cast<std::size_t>(d)] =
                tcoord[static_cast<std::size_t>(d)] * b +
                local[static_cast<std::size_t>(d)];
          }
          local_checks += bin.size();
          out[linear_index<D>(p, g)] +=
              K.bin_point(soa, lv, D, p.data(), g, w, &local_interp);
        }
      }
      __atomic_fetch_add(&checks, local_checks, __ATOMIC_RELAXED);
      __atomic_fetch_add(&interpolations, local_interp, __ATOMIC_RELAXED);
      __atomic_fetch_add(&duplicates, local_dups, __ATOMIC_RELAXED);
    };

    auto work = [&](std::int64_t tile_begin, std::int64_t tile_end, unsigned) {
      std::uint64_t local_checks = 0, local_interp = 0, local_dups = 0;
      for (std::int64_t tl = tile_begin; tl < tile_end; ++tl) {
        const auto& bin = bins[static_cast<std::size_t>(tl)];
        if (bin.empty()) continue;
        local_dups += bin.size();
        const Index<D> tcoord = unlinear_index<D>(tl, tiles_per_dim_);
        // Output-driven: every point of the tile checks every bin sample.
        for (std::int64_t pl = 0; pl < tile_points; ++pl) {
          const Index<D> local = unlinear_index<D>(pl, b);
          Index<D> p{};
          for (int d = 0; d < D; ++d) {
            p[static_cast<std::size_t>(d)] =
                tcoord[static_cast<std::size_t>(d)] * b +
                local[static_cast<std::size_t>(d)];
          }
          const std::int64_t lin = linear_index<D>(p, g);
          c64 acc{};
          for (const std::int32_t j : bin) {
            ++local_checks;
            // Same window_start-derived boundary check as the output-driven
            // engine: keeps the W/2-edge weight on the serial engine's side
            // of FP ties (see output_driven_gridder.hpp).
            double dist[3];
            bool inside = true;
            for (int d = 0; d < D; ++d) {
              const std::int64_t g0 =
                  w0[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)];
              const std::int64_t o =
                  pos_mod(p[static_cast<std::size_t>(d)] - g0, g);
              if (o >= w) {
                inside = false;
                break;
              }
              dist[d] = static_cast<double>(g0 + o) -
                        u[static_cast<std::size_t>(j)]
                         [static_cast<std::size_t>(d)];
            }
            if (!inside) continue;
            double wt = 1.0;
            for (int d = 0; d < D; ++d) wt *= this->weight_1d(dist[d]);
            acc += wt * in.values[static_cast<std::size_t>(j)];
            ++local_interp;
          }
          // Tiles are disjoint, so no synchronization is needed here.
          out[lin] += acc;
          this->trace_grid_access(lin, /*write=*/true);
        }
      }
      __atomic_fetch_add(&checks, local_checks, __ATOMIC_RELAXED);
      __atomic_fetch_add(&interpolations, local_interp, __ATOMIC_RELAXED);
      __atomic_fetch_add(&duplicates, local_dups, __ATOMIC_RELAXED);
    };

    if (this->options_.threads <= 1) {
      use_simd ? work_simd(0, ntiles, 0) : work(0, ntiles, 0);
    } else {
      ThreadPool pool(this->options_.threads);
      if (use_simd) {
        pool.parallel_for(ntiles, work_simd);
      } else {
        pool.parallel_for(ntiles, work);
      }
    }

    this->stats_.grid_seconds += timer.seconds();
    this->stats_.samples_processed += duplicates;  // includes bin duplicates
    this->stats_.boundary_checks += checks;
    this->stats_.interpolations += interpolations;
    this->stats_.grid_bytes_touched += interpolations * sizeof(c64);
    const std::uint64_t weight_ops =
        interpolations * static_cast<std::uint64_t>(D);
    if (this->options_.exact_weights) {
      this->stats_.kernel_evals += weight_ops;
    } else {
      this->stats_.lut_lookups += weight_ops;
    }
  }

 private:
  std::int64_t tiles_per_dim_;
};

}  // namespace jigsaw::core
