// Slice-and-Dice gridder — the paper's contribution (Sec. III).
//
// The target grid is broken into virtual tiles of side T (T >= W) which are
// conceptually stacked into "dice". One worker is assigned to each of the
// T^d relative positions ("columns"); because the window is no wider than a
// tile, a sample affects at most one point per column. Samples are *not*
// presorted: a two-part decomposition of each coordinate (quotient = tile
// coordinate, remainder = relative coordinate) replaces binning. The column
// worker derives, per sample, (a) whether it is affected — the forward
// distance fd = (rel - c) mod T must be < W — and (b) which entry of its
// private accumulation array is hit — the global tile address, decremented
// in a dimension when the relative coordinate is smaller than the column
// index (tile wrap, Fig. 4).
//
// Storage uses the stacked-tile ("dice") layout: each column's accumulators
// are contiguous, which is what gives the hardware/GPU implementations
// their locality (the memory trace hook emits dice addresses).
//
// Two execution modes:
//   * direct (default): per sample, enumerate exactly the W^d affected
//     columns — what each live pipeline computes; fastest on a CPU.
//   * model-faithful (options.model_faithful_checks): per sample, test all
//     T^d columns, counting exactly M * T^d boundary checks — the work the
//     hardware performs in parallel. Results are identical (tested).
#pragma once

#include <atomic>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/gridder.hpp"
#include "core/window.hpp"
#include "kernels/simd/simd.hpp"

namespace jigsaw::core {

template <int D>
class SliceDiceGridder final : public Gridder<D> {
 public:
  SliceDiceGridder(std::int64_t n, const GridderOptions& options)
      : Gridder<D>(n, options) {
    const std::int64_t t = options.tile;
    JIGSAW_REQUIRE(t >= options.width,
                   "virtual tile must be at least as wide as the window (T="
                       << t << ", W=" << options.width << ")");
    JIGSAW_REQUIRE(this->g_ % t == 0,
                   "virtual tile size must divide the oversampled grid (G="
                       << this->g_ << ", T=" << t << ")");
    ntiles_ = this->g_ / t;
  }

  GridderKind kind() const override { return GridderKind::SliceDice; }

  std::int64_t tiles_per_dim() const { return ntiles_; }

  void do_adjoint(const SampleSet<D>& in, Grid<D>& out) override {
    JIGSAW_REQUIRE(out.size() == this->g_, "grid size mismatch in adjoint()");
    const std::int64_t t = this->options_.tile;
    const std::int64_t columns = pow_dim<D>(t);
    const std::int64_t tile_count = pow_dim<D>(ntiles_);
    dice_.assign(static_cast<std::size_t>(columns * tile_count), c64{});

    Timer timer;
    if (this->options_.model_faithful_checks) {
      adjoint_columns(in);
    } else {
      adjoint_direct(in);
    }
    this->stats_.grid_seconds += timer.seconds();

    // Readout: dice layout -> row-major grid.
    readout(out);
  }

  /// Linear dice address for (column, tile-address) — exposed for tests and
  /// the memory-trace ablation.
  std::int64_t dice_address(std::int64_t column_lin,
                            std::int64_t tile_addr) const {
    return column_lin * pow_dim<D>(ntiles_) + tile_addr;
  }

 private:
  struct DimSelect {
    std::int64_t column;   // relative position c in [0, T)
    std::int64_t tile;     // wrapped tile coordinate q in [0, ntiles)
    double weight;
  };

  /// Per-dimension select logic for one sample: fills `sel[k]` for the W
  /// affected columns. Shared by both execution modes.
  void select_dim(double tau, DimSelect* sel) const {
    const int w = this->options_.width;
    const std::int64_t t = this->options_.tile;
    const double u = grid_coord(tau, this->g_);
    const double us = u + static_cast<double>(w) * 0.5;  // shifted coordinate
    const Decomposed dec = decompose(us, static_cast<int>(t));
    const auto fl = static_cast<std::int64_t>(dec.relative);  // floor(rel)
    for (int k = 0; k < w; ++k) {
      std::int64_t c = fl - k;
      std::int64_t q = dec.tile;
      if (c < 0) {  // tile wrap: relative coordinate below column index
        c += t;
        q -= 1;
      }
      q = pos_mod(q, ntiles_);
      // Reconstruct the integer grid point for an exact distance:
      // g = floor(us) - k; dist = g - u in (-W/2, W/2].
      const std::int64_t gint = dec.tile * t + fl - k;
      sel[k].column = c;
      sel[k].tile = q;
      sel[k].weight = this->weight_1d(static_cast<double>(gint) - u);
    }
  }

  /// SIMD variant of select_dim: the scalar loop looks weights up at
  /// gint = dec.tile*t + fl - k for k = 0..W-1 — the same W distances in
  /// descending grid order. Gather them ascending with the vector LUT path
  /// (bit-identical indices) and hand them out reversed. Column/tile
  /// bookkeeping is unchanged. `wbuf` needs the micro-kernel weight
  /// capacity (see kernels/simd/kernel_table.hpp).
  void select_dim_simd(const kernels::simd::KernelTable& K,
                       const kernels::simd::LutView& lv, double tau,
                       DimSelect* sel, double* wbuf) const {
    const int w = this->options_.width;
    const std::int64_t t = this->options_.tile;
    const double u = grid_coord(tau, this->g_);
    const double us = u + static_cast<double>(w) * 0.5;
    const Decomposed dec = decompose(us, static_cast<int>(t));
    const auto fl = static_cast<std::int64_t>(dec.relative);
    K.lut_weights(lv, u, dec.tile * t + fl - (w - 1), w, wbuf);
    for (int k = 0; k < w; ++k) {
      std::int64_t c = fl - k;
      std::int64_t q = dec.tile;
      if (c < 0) {  // tile wrap: relative coordinate below column index
        c += t;
        q -= 1;
      }
      sel[k].column = c;
      sel[k].tile = pos_mod(q, ntiles_);
      sel[k].weight = wbuf[w - 1 - k];
    }
  }

  void accumulate(std::int64_t addr, c64 v, bool use_atomics) {
    c64& slot = dice_[static_cast<std::size_t>(addr)];
    if (use_atomics) {
      auto* p = reinterpret_cast<double*>(&slot);
      std::atomic_ref<double> re(p[0]);
      std::atomic_ref<double> im(p[1]);
      re.fetch_add(v.real(), std::memory_order_relaxed);
      im.fetch_add(v.imag(), std::memory_order_relaxed);
    } else {
      slot += v;
    }
    this->trace_grid_access(addr, /*write=*/true);
  }

  void adjoint_direct(const SampleSet<D>& in) {
    const int w = this->options_.width;
    const std::int64_t t = this->options_.tile;
    const std::int64_t tile_count = pow_dim<D>(ntiles_);
    const auto m = static_cast<std::int64_t>(in.size());
    const bool parallel = this->options_.threads > 1;
    // SIMD variant: only the per-dimension weight gather vectorizes — the
    // dice accumulation is strided (and atomic under threads > 1), so it
    // stays scalar and the thread-invariance contract is untouched.
    const bool use_simd =
        this->options_.simd && !this->options_.exact_weights;
    const kernels::simd::KernelTable* K =
        use_simd ? &kernels::simd::table() : nullptr;
    const kernels::simd::LutView lv =
        use_simd ? kernels::simd::lut_view(*this->lut_)
                 : kernels::simd::LutView{};

    auto work = [&](std::int64_t begin, std::int64_t end, unsigned) {
      DimSelect sel[3][64];
      double wbuf[64 + kernels::simd::kWeightLanes];
      for (std::int64_t j = begin; j < end; ++j) {
        const c64 f = in.values[static_cast<std::size_t>(j)];
        for (int d = 0; d < D; ++d) {
          const double tau = in.coords[static_cast<std::size_t>(j)]
                                      [static_cast<std::size_t>(d)];
          if (K != nullptr) {
            select_dim_simd(*K, lv, tau, sel[d], wbuf);
          } else {
            select_dim(tau, sel[d]);
          }
        }
        if constexpr (D == 1) {
          for (int kx = 0; kx < w; ++kx) {
            const auto& sx = sel[0][kx];
            accumulate(sx.column * tile_count + sx.tile, sx.weight * f,
                       parallel);
          }
        } else if constexpr (D == 2) {
          for (int ky = 0; ky < w; ++ky) {
            const auto& sy = sel[0][ky];
            const c64 fy = sy.weight * f;
            for (int kx = 0; kx < w; ++kx) {
              const auto& sx = sel[1][kx];
              const std::int64_t col = sy.column * t + sx.column;
              const std::int64_t tile_addr = sy.tile * ntiles_ + sx.tile;
              accumulate(col * tile_count + tile_addr, sx.weight * fy,
                         parallel);
            }
          }
        } else {
          for (int kz = 0; kz < w; ++kz) {
            const auto& sz = sel[0][kz];
            const c64 fz = sz.weight * f;
            for (int ky = 0; ky < w; ++ky) {
              const auto& sy = sel[1][ky];
              const c64 fzy = sy.weight * fz;
              for (int kx = 0; kx < w; ++kx) {
                const auto& sx = sel[2][kx];
                const std::int64_t col =
                    (sz.column * t + sy.column) * t + sx.column;
                const std::int64_t tile_addr =
                    (sz.tile * ntiles_ + sy.tile) * ntiles_ + sx.tile;
                accumulate(col * tile_count + tile_addr, sx.weight * fzy,
                           parallel);
              }
            }
          }
        }
      }
    };

    if (!parallel) {
      work(0, m, 0);
    } else {
      ThreadPool pool(this->options_.threads);
      pool.parallel_for(m, work);
    }

    const auto window_points = static_cast<std::uint64_t>(pow_dim<D>(w));
    this->stats_.samples_processed += static_cast<std::uint64_t>(m);
    this->stats_.boundary_checks +=
        static_cast<std::uint64_t>(m) * window_points;
    this->stats_.interpolations +=
        static_cast<std::uint64_t>(m) * window_points;
    this->stats_.grid_bytes_touched +=
        static_cast<std::uint64_t>(m) * window_points * sizeof(c64);
    this->add_weight_ops(static_cast<std::uint64_t>(m) *
                         static_cast<std::uint64_t>(D) *
                         static_cast<std::uint64_t>(w));
  }

  /// Model-faithful mode: every column checks every sample, exactly as the
  /// T^d hardware pipelines / GPU thread block do in parallel.
  void adjoint_columns(const SampleSet<D>& in) {
    const int w = this->options_.width;
    const std::int64_t t = this->options_.tile;
    const std::int64_t columns = pow_dim<D>(t);
    const std::int64_t tile_count = pow_dim<D>(ntiles_);
    const auto m = static_cast<std::int64_t>(in.size());

    // Column-parallel (output-driven across columns; no synchronization,
    // each column owns its accumulation array).
    auto work = [&](std::int64_t col_begin, std::int64_t col_end, unsigned) {
      for (std::int64_t col = col_begin; col < col_end; ++col) {
        const Index<D> c = unlinear_index<D>(col, t);
        for (std::int64_t j = 0; j < m; ++j) {
          // Two-part boundary check in every dimension.
          double wt = 1.0;
          std::int64_t tile_addr = 0;
          bool affected = true;
          for (int d = 0; d < D; ++d) {
            const double u = grid_coord(
                in.coords[static_cast<std::size_t>(j)]
                         [static_cast<std::size_t>(d)],
                this->g_);
            const double us = u + static_cast<double>(w) * 0.5;
            const Decomposed dec =
                decompose(us, static_cast<int>(t));
            const double cd =
                static_cast<double>(c[static_cast<std::size_t>(d)]);
            // Forward distance fd = (rel - c) mod T.
            double fd = dec.relative - cd;
            std::int64_t q = dec.tile;
            if (fd < 0.0) {
              fd += static_cast<double>(t);
              q -= 1;  // wrap: relative coordinate < column index
            }
            if (!(fd < static_cast<double>(w))) {
              affected = false;
              break;
            }
            q = pos_mod(q, ntiles_);
            tile_addr = tile_addr * ntiles_ + q;
            // dist = g - u with g = floor(us) - k and fd = frac + k:
            const auto k = static_cast<std::int64_t>(fd);
            const std::int64_t gint =
                dec.tile * t + static_cast<std::int64_t>(dec.relative) - k;
            wt *= this->weight_1d(static_cast<double>(gint) - u);
          }
          if (!affected) continue;
          const std::int64_t addr = col * tile_count + tile_addr;
          dice_[static_cast<std::size_t>(addr)] +=
              wt * in.values[static_cast<std::size_t>(j)];
          this->trace_grid_access(addr, /*write=*/true);
        }
      }
    };

    if (this->options_.threads <= 1) {
      work(0, columns, 0);
    } else {
      ThreadPool pool(this->options_.threads);
      pool.parallel_for(columns, work);
    }

    this->stats_.samples_processed += static_cast<std::uint64_t>(m);
    this->stats_.boundary_checks +=
        static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(columns);
    const auto window_points = static_cast<std::uint64_t>(pow_dim<D>(w));
    this->stats_.interpolations +=
        static_cast<std::uint64_t>(m) * window_points;
    this->add_weight_ops(static_cast<std::uint64_t>(m) * window_points *
                         static_cast<std::uint64_t>(D));
  }

  void readout(Grid<D>& out) {
    const std::int64_t t = this->options_.tile;
    const std::int64_t tile_count = pow_dim<D>(ntiles_);
    const std::int64_t total = out.total();
    for (std::int64_t lin = 0; lin < total; ++lin) {
      const Index<D> p = unlinear_index<D>(lin, this->g_);
      std::int64_t col = 0, tile_addr = 0;
      for (int d = 0; d < D; ++d) {
        const std::int64_t pd = p[static_cast<std::size_t>(d)];
        col = col * t + (pd % t);
        tile_addr = tile_addr * ntiles_ + (pd / t);
      }
      out[lin] = dice_[static_cast<std::size_t>(col * tile_count + tile_addr)];
    }
  }

  void add_weight_ops(std::uint64_t n) {
    if (this->options_.exact_weights) {
      this->stats_.kernel_evals += n;
    } else {
      this->stats_.lut_lookups += n;
    }
  }

  std::int64_t ntiles_;
  std::vector<c64> dice_;
};

}  // namespace jigsaw::core
