#include "core/binning_gridder.hpp"
#include "core/gridder.hpp"
#include "core/jigsaw_gridder.hpp"
#include "core/output_driven_gridder.hpp"
#include "core/serial_gridder.hpp"
#include "core/slice_dice_gridder.hpp"
#include "core/float_gridder.hpp"
#include "core/sparse_gridder.hpp"

namespace jigsaw::core {

template <int D>
std::unique_ptr<Gridder<D>> make_gridder(std::int64_t n,
                                         const GridderOptions& options) {
  // Auto is exempt: its static fallback (SliceDice) honors the flag.
  if (options.simd && options.kind != GridderKind::Auto &&
      !gridder_kind_has_simd(options.kind)) {
    throw std::invalid_argument("engine '" + to_string(options.kind) +
                                "' has no SIMD variant (valid: serial-simd, "
                                "slice-dice-simd, binning-simd)");
  }
  switch (options.kind) {
    case GridderKind::Serial:
      return std::make_unique<SerialGridder<D>>(n, options);
    case GridderKind::OutputDriven:
      return std::make_unique<OutputDrivenGridder<D>>(n, options);
    case GridderKind::Binning:
      return std::make_unique<BinningGridder<D>>(n, options);
    case GridderKind::SliceDice:
      return std::make_unique<SliceDiceGridder<D>>(n, options);
    case GridderKind::Jigsaw:
      return std::make_unique<JigsawGridder<D>>(n, options);
    case GridderKind::Sparse:
      return std::make_unique<SparseGridder<D>>(n, options);
    case GridderKind::FloatSerial:
      return std::make_unique<FloatGridder<D>>(n, options);
    case GridderKind::Auto: {
      // The factory has no sample count (the tuner's key needs M), so Auto
      // here is a static fallback to the paper engine. Call sites that know
      // the geometry — the CLI, the serve plan pool, jigsaw_tune — resolve
      // Auto through tune::Autotuner before reaching this function.
      GridderOptions resolved = options;
      resolved.kind = GridderKind::SliceDice;
      return std::make_unique<SliceDiceGridder<D>>(n, resolved);
    }
  }
  throw std::invalid_argument("jigsaw: unknown gridder kind");
}

template std::unique_ptr<Gridder<1>> make_gridder<1>(std::int64_t,
                                                     const GridderOptions&);
template std::unique_ptr<Gridder<2>> make_gridder<2>(std::int64_t,
                                                     const GridderOptions&);
template std::unique_ptr<Gridder<3>> make_gridder<3>(std::int64_t,
                                                     const GridderOptions&);

}  // namespace jigsaw::core
