// Naive output-driven parallel gridder — the strawman of Sec. II-C.
//
// One "thread" per uniform grid point accumulates every sample affecting it.
// Output-parallel execution needs no synchronization (disjoint writes), but
// there is no way to know whether a point is affected without a distance
// boundary check, so M checks are performed for each of the G^d grid
// points — M * G^d in total, the vast majority of which fail. This engine
// exists to quantify that cost (ablation E8); do not use it on large
// problems.
#pragma once

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/gridder.hpp"
#include "core/window.hpp"

namespace jigsaw::core {

template <int D>
class OutputDrivenGridder final : public Gridder<D> {
 public:
  OutputDrivenGridder(std::int64_t n, const GridderOptions& options)
      : Gridder<D>(n, options) {
    // The folded-distance boundary check needs a unique torus
    // representative per grid point.
    JIGSAW_REQUIRE(this->g_ > options.width,
                   "oversampled grid must exceed the window width");
  }

  GridderKind kind() const override { return GridderKind::OutputDriven; }

  void do_adjoint(const SampleSet<D>& in, Grid<D>& out) override {
    JIGSAW_REQUIRE(out.size() == this->g_, "grid size mismatch in adjoint()");
    const int w = this->options_.width;
    const std::int64_t g = this->g_;
    out.clear();
    Timer timer;

    // Precompute grid-unit coordinates and window starts once.
    const auto m = static_cast<std::int64_t>(in.size());
    std::vector<std::array<double, D>> u(static_cast<std::size_t>(m));
    std::vector<std::array<std::int64_t, D>> w0(static_cast<std::size_t>(m));
    for (std::int64_t j = 0; j < m; ++j) {
      for (int d = 0; d < D; ++d) {
        const double uj =
            grid_coord(in.coords[static_cast<std::size_t>(j)]
                                [static_cast<std::size_t>(d)],
                       g);
        u[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)] = uj;
        w0[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)] =
            window_start(uj, w);
      }
    }

    const std::int64_t total = out.total();
    std::uint64_t interpolations = 0;

    auto work = [&](std::int64_t begin, std::int64_t end, unsigned) {
      std::uint64_t local_interp = 0;
      for (std::int64_t lin = begin; lin < end; ++lin) {
        const Index<D> p = unlinear_index<D>(lin, g);
        c64 acc{};
        for (std::int64_t j = 0; j < m; ++j) {
          // Boundary check: the point must fall inside the sample's
          // interpolation window, distance in (-W/2, W/2]. Membership is
          // derived from the same window_start decomposition the
          // input-driven engines use, so FP ties (a sample within one ULP
          // of a grid point puts the W/2-edge exactly on a boundary) land
          // the edge weight on the same side in every engine.
          double dist[3];
          bool inside = true;
          for (int d = 0; d < D; ++d) {
            const std::int64_t g0 =
                w0[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)];
            const std::int64_t o =
                pos_mod(p[static_cast<std::size_t>(d)] - g0, g);
            if (o >= w) {
              inside = false;
              break;
            }
            dist[d] = static_cast<double>(g0 + o) -
                      u[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)];
          }
          if (!inside) continue;
          double wt = 1.0;
          for (int d = 0; d < D; ++d) wt *= this->weight_1d(dist[d]);
          acc += wt * in.values[static_cast<std::size_t>(j)];
          ++local_interp;
        }
        out[lin] = acc;
        this->trace_grid_access(lin, /*write=*/true);
      }
      // Single aggregated update below; races avoided via chunk-local count.
      __atomic_fetch_add(&interpolations, local_interp, __ATOMIC_RELAXED);
    };

    if (this->options_.threads <= 1) {
      work(0, total, 0);
    } else {
      ThreadPool pool(this->options_.threads);
      pool.parallel_for(total, work);
    }

    this->stats_.grid_seconds += timer.seconds();
    this->stats_.samples_processed += static_cast<std::uint64_t>(m);
    this->stats_.boundary_checks +=
        static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(total);
    this->stats_.interpolations += interpolations;
    this->stats_.grid_bytes_touched +=
        static_cast<std::uint64_t>(total) * sizeof(c64);
  }
};

}  // namespace jigsaw::core
