// Naive output-driven parallel gridder — the strawman of Sec. II-C.
//
// One "thread" per uniform grid point accumulates every sample affecting it.
// Output-parallel execution needs no synchronization (disjoint writes), but
// there is no way to know whether a point is affected without a distance
// boundary check, so M checks are performed for each of the G^d grid
// points — M * G^d in total, the vast majority of which fail. This engine
// exists to quantify that cost (ablation E8); do not use it on large
// problems.
#pragma once

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/gridder.hpp"
#include "core/window.hpp"

namespace jigsaw::core {

template <int D>
class OutputDrivenGridder final : public Gridder<D> {
 public:
  OutputDrivenGridder(std::int64_t n, const GridderOptions& options)
      : Gridder<D>(n, options) {
    // The folded-distance boundary check needs a unique torus
    // representative per grid point.
    JIGSAW_REQUIRE(this->g_ > options.width,
                   "oversampled grid must exceed the window width");
  }

  GridderKind kind() const override { return GridderKind::OutputDriven; }

  void do_adjoint(const SampleSet<D>& in, Grid<D>& out) override {
    JIGSAW_REQUIRE(out.size() == this->g_, "grid size mismatch in adjoint()");
    const int w = this->options_.width;
    const std::int64_t g = this->g_;
    const double half_w = static_cast<double>(w) * 0.5;
    out.clear();
    Timer timer;

    // Precompute grid-unit coordinates once.
    const auto m = static_cast<std::int64_t>(in.size());
    std::vector<std::array<double, D>> u(static_cast<std::size_t>(m));
    for (std::int64_t j = 0; j < m; ++j) {
      for (int d = 0; d < D; ++d) {
        u[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)] =
            grid_coord(in.coords[static_cast<std::size_t>(j)]
                                [static_cast<std::size_t>(d)],
                       g);
      }
    }

    const std::int64_t total = out.total();
    std::uint64_t interpolations = 0;

    auto work = [&](std::int64_t begin, std::int64_t end, unsigned) {
      std::uint64_t local_interp = 0;
      for (std::int64_t lin = begin; lin < end; ++lin) {
        const Index<D> p = unlinear_index<D>(lin, g);
        c64 acc{};
        for (std::int64_t j = 0; j < m; ++j) {
          // Boundary check: toroidal signed distance in every dimension
          // must lie in (-W/2, W/2].
          double dist[3];
          bool inside = true;
          for (int d = 0; d < D; ++d) {
            double dd = static_cast<double>(p[static_cast<std::size_t>(d)]) -
                        u[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)];
            dd -= std::floor(dd / static_cast<double>(g) + 0.5) *
                  static_cast<double>(g);
            if (!(dd > -half_w && dd <= half_w)) {
              inside = false;
              break;
            }
            dist[d] = dd;
          }
          if (!inside) continue;
          double wt = 1.0;
          for (int d = 0; d < D; ++d) wt *= this->weight_1d(dist[d]);
          acc += wt * in.values[static_cast<std::size_t>(j)];
          ++local_interp;
        }
        out[lin] = acc;
        this->trace_grid_access(lin, /*write=*/true);
      }
      // Single aggregated update below; races avoided via chunk-local count.
      __atomic_fetch_add(&interpolations, local_interp, __ATOMIC_RELAXED);
    };

    if (this->options_.threads <= 1) {
      work(0, total, 0);
    } else {
      ThreadPool pool(this->options_.threads);
      pool.parallel_for(total, work);
    }

    this->stats_.grid_seconds += timer.seconds();
    this->stats_.samples_processed += static_cast<std::uint64_t>(m);
    this->stats_.boundary_checks +=
        static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(total);
    this->stats_.interpolations += interpolations;
    this->stats_.grid_bytes_touched +=
        static_cast<std::uint64_t>(total) * sizeof(c64);
  }
};

}  // namespace jigsaw::core
