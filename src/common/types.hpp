// Core scalar/complex type aliases shared across the library.
#pragma once

#include <array>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace jigsaw {

using c64 = std::complex<double>;
using c32 = std::complex<float>;

/// d-dimensional non-uniform sample coordinate in normalized torus units,
/// each component in [-0.5, 0.5).
template <int D>
using Coord = std::array<double, D>;

/// d-dimensional integer index (grid point / tile coordinate).
template <int D>
using Index = std::array<std::int64_t, D>;

/// Number of points in a d-dimensional box of side n.
template <int D>
constexpr std::int64_t pow_dim(std::int64_t n) {
  std::int64_t r = 1;
  for (int i = 0; i < D; ++i) r *= n;
  return r;
}

/// Row-major linear index of `idx` in a cube of side `n` (last dim fastest).
template <int D>
constexpr std::int64_t linear_index(const Index<D>& idx, std::int64_t n) {
  std::int64_t lin = 0;
  for (int i = 0; i < D; ++i) lin = lin * n + idx[static_cast<std::size_t>(i)];
  return lin;
}

/// Inverse of linear_index.
template <int D>
constexpr Index<D> unlinear_index(std::int64_t lin, std::int64_t n) {
  Index<D> idx{};
  for (int i = D - 1; i >= 0; --i) {
    idx[static_cast<std::size_t>(i)] = lin % n;
    lin /= n;
  }
  return idx;
}

/// Positive modulo (result in [0, n)).
constexpr std::int64_t pos_mod(std::int64_t a, std::int64_t n) {
  std::int64_t m = a % n;
  return m < 0 ? m + n : m;
}

}  // namespace jigsaw
