#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace jigsaw {

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void ConsoleTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string ConsoleTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string ConsoleTable::fmt_si(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  const double a = std::fabs(v);
  if (a >= 1e9) {
    scaled = v / 1e9;
    suffix = " G";
  } else if (a >= 1e6) {
    scaled = v / 1e6;
    suffix = " M";
  } else if (a >= 1e3) {
    scaled = v / 1e3;
    suffix = " k";
  } else if (a > 0 && a < 1e-6) {
    scaled = v * 1e9;
    suffix = " n";
  } else if (a > 0 && a < 1e-3) {
    scaled = v * 1e6;
    suffix = " u";
  } else if (a > 0 && a < 1.0) {
    scaled = v * 1e3;
    suffix = " m";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%s", precision, scaled, suffix);
  return buf;
}

std::string ConsoleTable::fmt_times(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
  return buf;
}

}  // namespace jigsaw
