// Minimal binary PGM (P5) writer for reconstruction outputs — lets the
// quality experiments and examples emit viewable images with no external
// image dependency.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace jigsaw {

/// Write an n x n grayscale image. Values are min/max normalized to 0..255.
/// Returns false on I/O failure.
bool write_pgm(const std::string& path, const std::vector<double>& pixels,
               int width, int height);

/// Magnitude-image convenience overload.
bool write_pgm(const std::string& path, const std::vector<c64>& pixels,
               int width, int height);

}  // namespace jigsaw
