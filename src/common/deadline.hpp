// Deadline / abort token for long-running reconstruction work.
//
// A Deadline is a cheap value type carried down through the transform and
// solver entry points (NufftPlan, BatchedNufft, conjugate_gradient,
// cg_sense). Work is *never* preempted mid-kernel: callees call check() at
// phase boundaries (per gridding/FFT/apodization phase, per batch frame,
// per CG iteration, per coil) and a passed deadline raises DeadlineExceeded
// there. This keeps the hot loops branch-free while bounding how long an
// expired request can hold an execution lane — the serving layer
// (src/serve/) maps the exception to its TIMEOUT status.
//
// A default-constructed Deadline never expires, so every entry point can
// take one as a trailing default argument with zero behavior change for
// existing callers. An optional cancel flag turns the same token into a
// cooperative abort handle: expiry is "time passed OR flag raised".
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace jigsaw {

/// Raised by check() at the first phase boundary past the deadline (or
/// after the attached cancel flag was raised). The message names the
/// boundary, e.g. "deadline exceeded at cg.iteration".
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& phase)
      : std::runtime_error("deadline exceeded at " + phase) {}
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires (and has no cancel flag).
  Deadline() = default;

  static Deadline never() { return Deadline{}; }

  /// Expires `d` from now. Non-positive durations are already expired.
  static Deadline after(Clock::duration d) { return at(Clock::now() + d); }

  static Deadline after_ms(std::int64_t ms) {
    return after(std::chrono::milliseconds(ms));
  }

  static Deadline at(Clock::time_point tp) {
    Deadline dl;
    dl.tp_ = tp;
    dl.bounded_ = true;
    return dl;
  }

  /// Already expired on construction (tests, admission-time rejection).
  static Deadline already_expired() { return at(Clock::time_point::min()); }

  /// Attach a cooperative cancel flag: once `*flag` is true the deadline
  /// reports expired regardless of time. The flag must outlive every use
  /// of this Deadline (and its copies).
  void attach_cancel(const std::atomic<bool>* flag) { cancel_ = flag; }

  bool bounded() const { return bounded_ || cancel_ != nullptr; }

  bool cancelled() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

  bool expired() const {
    if (cancelled()) return true;
    return bounded_ && Clock::now() >= tp_;
  }

  /// Time left; Clock::duration::max() when unbounded, zero when expired.
  Clock::duration remaining() const {
    if (!bounded_) return Clock::duration::max();
    const auto now = Clock::now();
    return now >= tp_ ? Clock::duration::zero() : tp_ - now;
  }

  /// Throw DeadlineExceeded naming `phase` if expired. The intended call
  /// sites are phase boundaries only — never per-sample hot loops.
  void check(const char* phase) const {
    if (expired()) throw DeadlineExceeded(phase);
  }

 private:
  Clock::time_point tp_ = Clock::time_point::max();
  bool bounded_ = false;
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace jigsaw
