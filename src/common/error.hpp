// Error handling helpers: precondition checks that throw std::invalid_argument
// / std::runtime_error with stream-formatted context, e.g.
//   JIGSAW_REQUIRE(n >= 1, "bad length " << n);
#pragma once

#include <sstream>
#include <stdexcept>

/// Throw std::invalid_argument when a user-facing precondition fails.
#define JIGSAW_REQUIRE(cond, ...)                                           \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream jigsaw_os_;                                        \
      jigsaw_os_ << "jigsaw: requirement failed (" << #cond                 \
                 << "): " << __VA_ARGS__;                                   \
      throw std::invalid_argument(jigsaw_os_.str());                        \
    }                                                                       \
  } while (0)

/// Throw std::runtime_error for internal invariant violations.
#define JIGSAW_CHECK(cond, ...)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream jigsaw_os_;                                        \
      jigsaw_os_ << "jigsaw: internal invariant failed (" << #cond          \
                 << "): " << __VA_ARGS__;                                   \
      throw std::runtime_error(jigsaw_os_.str());                           \
    }                                                                       \
  } while (0)
