// Tiny command-line flag parser for the tools/ binaries.
//
// Supports `--flag value`, `--flag=value` and boolean `--flag`. Unknown
// flags are an error (catches typos); positional arguments are collected
// in order.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace jigsaw {

class CliArgs {
 public:
  /// Parse argv. `known_flags` lists every accepted flag name (without the
  /// leading dashes). Throws std::invalid_argument on unknown flags or a
  /// trailing flag with no value.
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& known_flags);

  bool has(const std::string& flag) const { return flags_.count(flag) > 0; }

  std::string get(const std::string& flag,
                  const std::string& fallback = "") const {
    const auto it = flags_.find(flag);
    return it == flags_.end() ? fallback : it->second;
  }

  long long get_int(const std::string& flag, long long fallback) const;
  double get_double(const std::string& flag, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace jigsaw
