#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "obs/obs.hpp"

namespace jigsaw {
namespace {

std::uint64_t obs_now_ns() {
  if constexpr (!obs::kEnabled) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop(unsigned /*id*/) {
  for (;;) {
    Task task;
    {
      const std::uint64_t wait_begin = obs_now_ns();
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      // Idle time: from wanting work to holding a task (or shutdown). One
      // add per wakeup, so the cost is dwarfed by the task body.
      obs::add("pool.idle_ns", obs_now_ns() - wait_begin);
      if (stop_ && pending_.empty()) return;
      task = pending_.back();
      pending_.pop_back();
    }
    try {
      obs::add("pool.tasks", 1);
      (*task.fn)(task.begin, task.end, task.worker_id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--inflight_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::int64_t n,
    const std::function<void(std::int64_t, std::int64_t, unsigned)>& fn) {
  if (n <= 0) return;
  obs::add("pool.parallel_fors", 1);
  const unsigned nthreads = thread_count();
  if (nthreads == 1 || n == 1 || workers_.empty()) {
    obs::add("pool.tasks", 1);
    fn(0, n, 0);
    return;
  }
  const unsigned chunks = std::min<std::int64_t>(nthreads, n);
  const std::int64_t step = (n + chunks - 1) / chunks;

  // Chunk 0 runs on the calling thread; the rest are queued.
  {
    std::lock_guard<std::mutex> lock(mu_);
    error_ = nullptr;
    for (unsigned c = 1; c < chunks; ++c) {
      Task t;
      t.fn = &fn;
      t.begin = static_cast<std::int64_t>(c) * step;
      t.end = std::min<std::int64_t>(n, t.begin + step);
      t.worker_id = c;
      if (t.begin >= t.end) continue;
      pending_.push_back(t);
      ++inflight_;
    }
  }
  cv_task_.notify_all();
  // The caller's chunk gets the same treatment as worker chunks: catch,
  // record the first error, and — crucially — keep waiting for the inflight
  // chunks. Letting the exception escape here would unwind `fn` while
  // workers still hold a pointer to it.
  try {
    obs::add("pool.tasks", 1);
    fn(0, std::min<std::int64_t>(n, step), 0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return inflight_ == 0; });
    if (error_) {
      auto err = error_;
      error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

}  // namespace jigsaw
