// Minimal work-sharing thread pool with a blocking parallel_for.
//
// The GPU implementations in the paper are reproduced here as multithreaded
// CPU code; this pool is the substrate. On a single-core host the pool
// degrades gracefully to serial execution (zero worker threads).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jigsaw {

/// Fixed-size pool executing index-range chunks. parallel_for blocks until
/// every chunk has completed; exceptions from workers are rethrown on the
/// calling thread.
class ThreadPool {
 public:
  /// threads == 0 -> hardware_concurrency(); threads == 1 -> fully serial.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Invoke fn(begin, end, worker_id) over [0, n) split into roughly equal
  /// chunks, one per thread (worker_id in [0, thread_count())).
  ///
  /// Error semantics are first-error-wins: if any chunk throws (including
  /// the chunk run on the calling thread), parallel_for waits for every
  /// inflight chunk to finish, then rethrows the first recorded exception
  /// on the calling thread. The pool remains usable afterwards.
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t, std::int64_t,
                                             unsigned)>& fn);

  /// Shared default pool (hardware_concurrency threads).
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::int64_t, std::int64_t, unsigned)>* fn = nullptr;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    unsigned worker_id = 0;
  };

  void worker_loop(unsigned id);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::vector<Task> pending_;
  unsigned inflight_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace jigsaw
