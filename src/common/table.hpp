// Console table formatting used by the benchmark harnesses so that every
// figure/table reproduction prints rows in a uniform, diff-friendly layout.
#pragma once

#include <string>
#include <vector>

namespace jigsaw {

/// Accumulates rows of string cells and prints them column-aligned.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a header underline; returns the full text block.
  std::string to_string() const;

  /// Print to stdout.
  void print() const;

  /// Format helpers.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_si(double v, int precision = 3);   // 1.2 k / 3.4 M
  static std::string fmt_times(double v, int precision = 1);  // "123.4x"

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace jigsaw
