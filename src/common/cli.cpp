#include "common/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace jigsaw {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& known_flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    bool has_value = false;
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    JIGSAW_REQUIRE(std::find(known_flags.begin(), known_flags.end(), arg) !=
                       known_flags.end(),
                   "unknown flag --" << arg);
    if (!has_value) {
      // `--flag value` unless the next token is another flag / absent.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
    }
    flags_[arg] = value;
  }
}

long long CliArgs::get_int(const std::string& flag, long long fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::atoll(it->second.c_str());
}

double CliArgs::get_double(const std::string& flag, double fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::atof(it->second.c_str());
}

}  // namespace jigsaw
