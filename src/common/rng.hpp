// Deterministic, seedable RNG used everywhere so that every test, bench and
// example is reproducible run-to-run. xoshiro256++ with splitmix64 seeding.
#pragma once

#include <cstdint>
#include <limits>

namespace jigsaw {

/// splitmix64 — used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcdULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return (*this)() % n; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace jigsaw
