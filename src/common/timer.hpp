// Wall-clock timer for benchmark harnesses.
#pragma once

#include <chrono>

namespace jigsaw {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Run `fn` repeatedly until `min_seconds` of wall time or `max_reps`
/// repetitions have elapsed; return the best (minimum) per-rep time.
template <typename Fn>
double time_best(Fn&& fn, double min_seconds = 0.05, int max_reps = 5) {
  double best = 1e300;
  double total = 0.0;
  for (int rep = 0; rep < max_reps; ++rep) {
    Timer t;
    fn();
    const double s = t.seconds();
    if (s < best) best = s;
    total += s;
    if (total >= min_seconds && rep >= 0) break;
  }
  return best;
}

}  // namespace jigsaw
