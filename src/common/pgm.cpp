#include "common/pgm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

namespace jigsaw {

bool write_pgm(const std::string& path, const std::vector<double>& pixels,
               int width, int height) {
  if (width <= 0 || height <= 0 ||
      pixels.size() != static_cast<std::size_t>(width) *
                           static_cast<std::size_t>(height)) {
    return false;
  }
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!f) return false;
  double lo = pixels[0], hi = pixels[0];
  for (double v : pixels) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi > lo ? hi - lo : 1.0;
  std::fprintf(f.get(), "P5\n%d %d\n255\n", width, height);
  std::vector<unsigned char> row(static_cast<std::size_t>(width));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double v =
          (pixels[static_cast<std::size_t>(y) * width + x] - lo) / span;
      row[static_cast<std::size_t>(x)] =
          static_cast<unsigned char>(std::lround(v * 255.0));
    }
    if (std::fwrite(row.data(), 1, row.size(), f.get()) != row.size()) {
      return false;
    }
  }
  return true;
}

bool write_pgm(const std::string& path, const std::vector<c64>& pixels,
               int width, int height) {
  std::vector<double> mag(pixels.size());
  for (std::size_t i = 0; i < pixels.size(); ++i) mag[i] = std::abs(pixels[i]);
  return write_pgm(path, mag, width, height);
}

}  // namespace jigsaw
