#include "data/driver.hpp"

#include <cmath>
#include <stdexcept>

#include "core/metrics.hpp"
#include "core/nufft.hpp"
#include "core/recon.hpp"
#include "obs/obs.hpp"
#include "trajectory/phantom.hpp"

namespace jigsaw::data {
namespace {

/// Least-squares scalar fit then NRMSD — the scale-invariant score the CLI
/// uses (adjoint images carry an arbitrary overall gain).
double fitted_nrmse(std::vector<double> mag, const std::vector<double>& ref) {
  double dot = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < mag.size(); ++i) {
    dot += mag[i] * ref[i];
    sq += mag[i] * mag[i];
  }
  if (sq > 0.0) {
    const double alpha = dot / sq;
    for (double& v : mag) v *= alpha;
  }
  return core::nrmsd(mag, ref);
}

std::vector<double> magnitude(const std::vector<c64>& img) {
  std::vector<double> mag(img.size());
  for (std::size_t i = 0; i < img.size(); ++i) mag[i] = std::abs(img[i]);
  return mag;
}

/// Weighted CG on the SENSE normal equations with data-estimated maps.
/// With W = identity this is plain CG-SENSE; coils == 1 degenerates to
/// weighted least-squares on the single-coil NuFFT.
std::vector<c64> weighted_cg_sense(core::NufftPlan<2>& plan,
                                   const core::CoilMaps& maps,
                                   const std::vector<std::vector<c64>>& y,
                                   const std::vector<double>& w, int iters,
                                   double tolerance, core::CgResult* cg) {
  const std::size_t m = plan.num_samples();
  const auto pixels = static_cast<std::size_t>(plan.image_total());
  const int coils = maps.coils;

  const auto apply_w = [&](std::vector<c64>& v) {
    if (w.empty()) return;
    for (std::size_t j = 0; j < m; ++j) v[j] *= w[j];
  };

  // b = sum_c S_c^H A^H W y_c
  std::vector<c64> b(pixels, c64(0.0, 0.0));
  for (int c = 0; c < coils; ++c) {
    std::vector<c64> wy = y[static_cast<std::size_t>(c)];
    apply_w(wy);
    const auto img = plan.adjoint(wy);
    const auto& map = maps.map(c);
    for (std::size_t p = 0; p < pixels; ++p) {
      b[p] += std::conj(map[p]) * img[p];
    }
  }

  const auto op = [&](const std::vector<c64>& x) {
    std::vector<c64> out(pixels, c64(0.0, 0.0));
    std::vector<c64> sx(pixels);
    for (int c = 0; c < coils; ++c) {
      const auto& map = maps.map(c);
      for (std::size_t p = 0; p < pixels; ++p) sx[p] = map[p] * x[p];
      auto f = plan.forward(sx);
      apply_w(f);
      const auto img = plan.adjoint(f);
      for (std::size_t p = 0; p < pixels; ++p) {
        out[p] += std::conj(map[p]) * img[p];
      }
    }
    return out;
  };

  std::vector<c64> x(pixels, c64(0.0, 0.0));
  const auto result = core::conjugate_gradient(op, b, x, iters, tolerance);
  if (cg) *cg = result;
  return x;
}

}  // namespace

std::string to_string(DcfMode mode) {
  switch (mode) {
    case DcfMode::kNone:
      return "none";
    case DcfMode::kEmbedded:
      return "embedded";
    case DcfMode::kPipeMenon:
      return "pipe-menon";
  }
  return "?";
}

DcfMode parse_dcf_mode(const std::string& s) {
  if (s == "none") return DcfMode::kNone;
  if (s == "embedded") return DcfMode::kEmbedded;
  if (s == "pipe-menon" || s == "pipe") return DcfMode::kPipeMenon;
  throw std::invalid_argument("unknown dcf mode '" + s +
                              "', valid: none, embedded, pipe-menon");
}

ReconDatasetResult recon_dataset(const std::string& path,
                                 const ReconDatasetOptions& options) {
  DatasetReader reader(path);
  ReconDatasetResult result;
  result.info = reader.info();
  if (result.info.dim != 2) {
    throw std::runtime_error(
        "recon_dataset: only 2D datasets are reconstructable (the format "
        "and reader carry 3D, the recon pipelines are 2D)");
  }
  const auto n = result.info.n;
  const int coils = result.info.coils;

  std::vector<double> truth;
  if (result.info.source == Source::kSheppLogan) {
    truth = trajectory::rasterize(trajectory::shepp_logan(),
                                  static_cast<int>(n));
  }

  double nrmse_sum = 0.0;
  std::size_t nrmse_count = 0;
  Chunk chunk;
  while (reader.next(chunk)) {
    auto coords = chunk.typed_coords<2>();
    core::NufftPlan<2> plan(n, std::move(coords), options.gridding);

    ChunkRecon rec;
    rec.index = chunk.index;
    rec.m = chunk.m;

    std::vector<double> w;
    switch (options.dcf) {
      case DcfMode::kNone:
        break;
      case DcfMode::kEmbedded:
        w = chunk.dcf;  // may be empty: chunk carries none, fall through
        break;
      case DcfMode::kPipeMenon:
        w = core::pipe_menon_weights<2>(plan.gridder(), plan.coords(),
                                        options.pipe_menon);
        break;
    }
    rec.dcf_applied = !w.empty();

    std::vector<std::vector<c64>> y(static_cast<std::size_t>(coils));
    for (int c = 0; c < coils; ++c) y[static_cast<std::size_t>(c)] = chunk.coil_values(c);

    if (options.iters <= 0) {
      // Weighted adjoint per coil, RSS across coils (single coil: |.|).
      std::vector<std::vector<c64>> imgs;
      imgs.reserve(y.size());
      std::vector<c64> wy(chunk.values.size() / y.size());
      for (const auto& coil : y) {
        wy = coil;
        if (!w.empty()) {
          for (std::size_t j = 0; j < wy.size(); ++j) wy[j] *= w[j];
        }
        imgs.push_back(plan.adjoint(wy));
      }
      rec.image = rss_combine(imgs);
    } else {
      core::CoilMaps maps;
      if (coils > 1) {
        maps = estimate_coil_maps(plan, y, w, options.estimate);
      } else {
        maps.n = n;
        maps.coils = 1;
        maps.maps.assign(
            1, std::vector<c64>(static_cast<std::size_t>(plan.image_total()),
                                c64(1.0, 0.0)));
      }
      core::CgResult cg;
      const auto img = weighted_cg_sense(plan, maps, y, w, options.iters,
                                         options.tolerance, &cg);
      rec.iterations = cg.iterations;
      rec.image = magnitude(img);
    }

    if (!truth.empty()) {
      rec.nrmse = fitted_nrmse(rec.image, truth);
      nrmse_sum += rec.nrmse;
      ++nrmse_count;
    }
    obs::add("data.recon_chunks", 1);
    result.chunks.push_back(std::move(rec));
  }

  result.report = reader.report();
  if (result.chunks.empty()) {
    throw std::runtime_error("recon_dataset: no chunk survived ingest (" +
                             std::to_string(result.report.rejects.size()) +
                             " rejected)");
  }
  if (nrmse_count > 0) {
    result.mean_nrmse = nrmse_sum / static_cast<double>(nrmse_count);
  }
  return result;
}

}  // namespace jigsaw::data
