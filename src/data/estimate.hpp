// Coil-sensitivity estimation and root-sum-of-squares combination for
// ingested multi-coil data (no calibration scan required).
//
// The estimate is the classic low-resolution one (Pruessmann-style, also
// what fastMRI baselines use): coil sensitivities are smooth, so each
// coil's map is proportional to its image seen at low resolution. We
// apodize the k-space samples with a Gaussian low-pass, run the adjoint
// NuFFT per coil (density-corrected when weights are available), and
// normalize by the root-sum-of-squares across coils so sum_c |S_c|^2 ~ 1
// where the object has support.
#pragma once

#include <vector>

#include "core/nufft.hpp"
#include "core/sense.hpp"

namespace jigsaw::data {

struct CoilEstimateOptions {
  double lowpass_radius = 0.08;  // Gaussian sigma in torus units — keeps
                                 // only the calibration-region frequencies
  double epsilon = 0.05;         // RSS floor, relative to the peak RSS value
                                 // (regularizes S_c where the object is dark)
};

/// Estimate coil maps from multi-coil k-space `y` (coils x M, sampled at
/// `plan`'s coordinates). `dcf` is optional per-sample density weights
/// (empty = uniform). Throws std::invalid_argument on shape mismatch.
core::CoilMaps estimate_coil_maps(
    core::NufftPlan<2>& plan, const std::vector<std::vector<c64>>& y,
    const std::vector<double>& dcf = {},
    const CoilEstimateOptions& options = {});

/// Root-sum-of-squares combination: out[p] = sqrt(sum_c |images[c][p]|^2).
/// The model-free multi-coil combine — no maps needed, magnitude only.
std::vector<double> rss_combine(const std::vector<std::vector<c64>>& images);

}  // namespace jigsaw::data
