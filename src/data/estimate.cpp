#include "data/estimate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jigsaw::data {

core::CoilMaps estimate_coil_maps(core::NufftPlan<2>& plan,
                                  const std::vector<std::vector<c64>>& y,
                                  const std::vector<double>& dcf,
                                  const CoilEstimateOptions& options) {
  const std::size_t m = plan.num_samples();
  if (y.empty()) throw std::invalid_argument("estimate: no coil data");
  for (const auto& coil : y) {
    if (coil.size() != m) {
      throw std::invalid_argument("estimate: coil sample count mismatch");
    }
  }
  if (!dcf.empty() && dcf.size() != m) {
    throw std::invalid_argument("estimate: dcf size mismatch");
  }
  if (!(options.lowpass_radius > 0.0)) {
    throw std::invalid_argument("estimate: lowpass_radius must be > 0");
  }

  // Per-sample low-pass apodization (times density weight when given).
  const auto& coords = plan.coords();
  const double inv2r2 =
      1.0 / (2.0 * options.lowpass_radius * options.lowpass_radius);
  std::vector<double> window(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double k2 =
        coords[j][0] * coords[j][0] + coords[j][1] * coords[j][1];
    window[j] = std::exp(-k2 * inv2r2) * (dcf.empty() ? 1.0 : dcf[j]);
  }

  core::CoilMaps maps;
  maps.n = plan.base_size();
  maps.coils = static_cast<int>(y.size());
  maps.maps.resize(y.size());
  std::vector<c64> weighted(m);
  for (std::size_t c = 0; c < y.size(); ++c) {
    for (std::size_t j = 0; j < m; ++j) weighted[j] = y[c][j] * window[j];
    maps.maps[c] = plan.adjoint(weighted);
  }

  // RSS normalization with a relative floor: where the object (and thus
  // every coil image) is near zero the quotient is meaningless, so the
  // floor keeps those maps small instead of amplifying noise.
  const std::size_t pixels = maps.maps[0].size();
  std::vector<double> rss(pixels, 0.0);
  double peak = 0.0;
  for (std::size_t p = 0; p < pixels; ++p) {
    double s = 0.0;
    for (const auto& img : maps.maps) s += std::norm(img[p]);
    rss[p] = std::sqrt(s);
    peak = std::max(peak, rss[p]);
  }
  const double floor_val = options.epsilon * (peak > 0.0 ? peak : 1.0);
  for (auto& img : maps.maps) {
    for (std::size_t p = 0; p < pixels; ++p) {
      img[p] /= std::max(rss[p], floor_val);
    }
  }
  return maps;
}

std::vector<double> rss_combine(const std::vector<std::vector<c64>>& images) {
  if (images.empty()) throw std::invalid_argument("rss: no coil images");
  const std::size_t pixels = images[0].size();
  for (const auto& img : images) {
    if (img.size() != pixels) {
      throw std::invalid_argument("rss: coil image size mismatch");
    }
  }
  std::vector<double> out(pixels, 0.0);
  for (const auto& img : images) {
    for (std::size_t p = 0; p < pixels; ++p) out[p] += std::norm(img[p]);
  }
  for (double& v : out) v = std::sqrt(v);
  return out;
}

}  // namespace jigsaw::data
