#include "data/synthetic.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "core/density.hpp"
#include "core/nufft.hpp"
#include "core/sense.hpp"
#include "obs/obs.hpp"
#include "trajectory/phantom.hpp"

namespace jigsaw::data {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kGoldenAngle = kPi * (3.0 - 2.2360679774997896);  // pi(3-v5)

double fold(double x) { return x - std::floor(x + 0.5); }

/// Rotate a 2D trajectory by `angle` and fold back onto the torus — gives
/// each chunk its own k-space coverage the way consecutive golden-angle
/// slices differ, while radii (and thus sampling density) are preserved.
std::vector<Coord<2>> rotated(const std::vector<Coord<2>>& coords,
                              double angle) {
  const double c = std::cos(angle), s = std::sin(angle);
  std::vector<Coord<2>> out(coords.size());
  for (std::size_t j = 0; j < coords.size(); ++j) {
    out[j][0] = fold(c * coords[j][0] - s * coords[j][1]);
    out[j][1] = fold(s * coords[j][0] + c * coords[j][1]);
  }
  return out;
}

}  // namespace

GenerateReport generate_synthetic(const std::string& path,
                                  const SyntheticOptions& options) {
  if (options.chunks < 1) {
    throw std::invalid_argument("synthetic: chunks must be >= 1");
  }
  if (options.noise < 0.0) {
    throw std::invalid_argument("synthetic: noise must be >= 0");
  }
  const std::int64_t n = options.n;
  const std::int64_t m_req =
      options.samples_per_chunk > 0 ? options.samples_per_chunk : 2 * n * n;

  DatasetInfo info;
  info.n = n;
  info.coils = options.coils;
  info.source = Source::kSheppLogan;
  info.has_dcf = options.embed_dcf;
  DatasetWriter writer(path, info);

  const auto maps = core::make_birdcage_maps(n, options.coils);
  const auto truth = trajectory::rasterize(trajectory::shepp_logan(),
                                           static_cast<int>(n));
  std::vector<c64> truth_c(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) truth_c[i] = truth[i];

  GenerateReport rep;
  for (int chunk = 0; chunk < options.chunks; ++chunk) {
    const std::uint64_t chunk_seed =
        options.seed + static_cast<std::uint64_t>(chunk);
    auto coords = trajectory::make_2d(options.traj, m_req, chunk_seed);
    if (chunk > 0) coords = rotated(coords, chunk * kGoldenAngle);

    core::NufftPlan<2> plan(n, coords, options.gridding);
    const auto y = core::simulate_multicoil(plan, maps, truth_c);

    const std::size_t m = coords.size();
    std::vector<double> flat(2 * m);
    for (std::size_t j = 0; j < m; ++j) {
      flat[2 * j] = coords[j][0];
      flat[2 * j + 1] = coords[j][1];
    }
    std::vector<c64> values;
    values.reserve(m * static_cast<std::size_t>(options.coils));
    for (const auto& coil : y) {
      values.insert(values.end(), coil.begin(), coil.end());
    }

    if (options.noise > 0.0) {
      double sumsq = 0.0;
      for (const c64& v : values) sumsq += std::norm(v);
      const double rms = std::sqrt(sumsq / static_cast<double>(values.size()));
      const double amp = options.noise * rms;
      Rng rng(chunk_seed ^ 0x6e6f697365ULL);  // "noise"
      for (c64& v : values) {
        v += c64(rng.uniform(-amp, amp), rng.uniform(-amp, amp));
      }
    }

    std::vector<double> dcf;
    if (options.embed_dcf) {
      dcf = core::pipe_menon_weights<2>(plan.gridder(), coords);
    }

    writer.add_chunk(static_cast<std::uint64_t>(chunk), flat, values, dcf);
    rep.samples += m;
  }
  writer.close();
  rep.chunks = static_cast<std::uint64_t>(options.chunks);
  obs::add("data.generated_chunks", rep.chunks);
  return rep;
}

}  // namespace jigsaw::data
