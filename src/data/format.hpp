// JKSD — the Jigsaw K-Space Dataset container (docs/datasets.md).
//
// A self-describing binary format for streaming multi-coil non-Cartesian
// acquisitions, shaped after the fastMRI convention (Zbontar et al.,
// PAPERS.md): one file holds a whole acquisition as a fixed header followed
// by independent per-slice/per-frame chunks. Each chunk carries its own
// trajectory coordinates, `coils` blocks of complex k-space samples, and
// optionally per-sample density-compensation weights — everything one
// reconstruction needs, so a reader can process an arbitrarily large
// dataset one chunk at a time in bounded memory.
//
// Layout (all integers/doubles host-endian, like the JSRV wire protocol —
// datasets are a node-local interchange format, not a network one):
//
//   FileHeader   (56 bytes, checksummed)
//   Chunk 0:  ChunkHeader (48 bytes) + payload (checksummed)
//   Chunk 1:  ...
//
// Payload of a chunk with m samples, dimension d, c coils:
//   f64 coords[d * m]      sample coordinates, torus units [-0.5, 0.5)
//   f64 values[2 * m * c]  coil-major blocks of (re, im) pairs
//   f64 dcf[m]             iff (flags & kChunkHasDcf)
//
// Integrity: the file header carries an FNV-1a checksum of its own bytes;
// every chunk header carries an FNV-1a checksum of its payload. A reader
// can therefore reject a corrupt chunk with a reason and resynchronize at
// the next chunk magic instead of aborting the whole acquisition — the
// dataset-level analogue of core/io.cpp's recovering CSV parser.
#pragma once

#include <cstddef>
#include <cstdint>

namespace jigsaw::data {

inline constexpr std::uint32_t kFileMagic = 0x4A4B5344;   // "JKSD"
inline constexpr std::uint32_t kChunkMagic = 0x4B4E4843;  // "CHNK"
inline constexpr std::uint32_t kFormatVersion = 1;

/// FileHeader::flags bits.
inline constexpr std::uint32_t kFileHasDcf = 1u;  // every chunk carries dcf

/// ChunkHeader::flags bits.
inline constexpr std::uint32_t kChunkHasDcf = 1u;

/// FileHeader::source values — what the k-space was acquired from. Lets a
/// consumer score reconstructions against ground truth when the source is
/// analytic (the hermetic-test path); real scanner exports say kUnknown.
enum class Source : std::uint32_t {
  kUnknown = 0,
  kSheppLogan = 1,  // trajectory::shepp_logan() phantom at grid size n
};

/// Fixed 56-byte file header. `checksum` is fnv1a() over the first 48
/// bytes (everything before the checksum field itself).
struct FileHeader {
  std::uint32_t magic = kFileMagic;
  std::uint32_t version = kFormatVersion;
  std::uint32_t dim = 2;        // 2 or 3
  std::uint32_t coils = 1;      // >= 1
  std::uint64_t n = 0;          // base (image) grid side
  std::uint32_t source = 0;     // Source enum
  std::uint32_t flags = 0;      // kFileHasDcf
  std::uint64_t chunk_count = 0;    // 0 = unknown (stream until EOF)
  std::uint64_t total_samples = 0;  // 0 = unknown
  std::uint64_t checksum = 0;
};
static_assert(sizeof(FileHeader) == 56, "JKSD file header layout");

/// Fixed 48-byte chunk header. `payload_checksum` is fnv1a() over the
/// payload bytes that follow; `payload_bytes` must equal the size implied
/// by (m, dim, coils, flags) — a mismatch marks the header itself corrupt.
struct ChunkHeader {
  std::uint32_t magic = kChunkMagic;
  std::uint32_t flags = 0;        // kChunkHasDcf
  std::uint64_t index = 0;        // slice/frame number (informational)
  std::uint64_t m = 0;            // samples in this chunk
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_checksum = 0;
  std::uint64_t reserved = 0;
};
static_assert(sizeof(ChunkHeader) == 48, "JKSD chunk header layout");

/// FNV-1a 64-bit over a byte range — the integrity hash of both headers
/// and payloads (fast, dependency-free; this is corruption *detection* for
/// storage glitches, not an adversarial MAC).
inline std::uint64_t fnv1a(const void* data, std::size_t len,
                           std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Payload size implied by a chunk's sample count and the dataset shape.
inline std::uint64_t chunk_payload_bytes(std::uint64_t m, std::uint32_t dim,
                                         std::uint32_t coils,
                                         std::uint32_t flags) {
  const std::uint64_t doubles =
      m * dim + 2 * m * coils + ((flags & kChunkHasDcf) ? m : 0);
  return doubles * sizeof(double);
}

}  // namespace jigsaw::data
