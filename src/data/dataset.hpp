// Streaming JKSD dataset reader/writer (format.hpp, docs/datasets.md).
//
// DatasetWriter appends chunks as they are produced and back-patches the
// header's chunk/sample totals on close(), so a partially written file is
// still readable (totals read 0 = unknown, consumers stream to EOF).
//
// DatasetReader holds ONE chunk in memory at a time — an arbitrarily large
// acquisition streams through in bounded memory. The parse is recovering:
// a chunk whose header or payload fails validation is recorded as a
// ChunkReject {byte offset, chunk ordinal, reason} and skipped, and the
// reader resynchronizes at the next plausible chunk magic. One flipped
// block on disk costs one slice, not the acquisition. Only an unreadable
// or wrong-magic/wrong-version *file header* is fatal (nothing after it
// can be interpreted).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "data/format.hpp"

namespace jigsaw::data {

/// Shape + provenance of a dataset, as recorded in the file header.
struct DatasetInfo {
  int dim = 2;
  std::int64_t n = 0;   // base grid side
  int coils = 1;
  Source source = Source::kUnknown;
  bool has_dcf = false;           // every chunk carries weights
  std::uint64_t chunk_count = 0;  // 0 = unknown
  std::uint64_t total_samples = 0;
};

/// One decoded chunk. coords is flattened sample-major: sample j's
/// coordinate d lives at coords[j * dim + d]. values holds `coils`
/// consecutive blocks of m complex samples (coil-major, the CG-SENSE
/// layout). dcf is empty when the chunk carries no weights.
struct Chunk {
  std::uint64_t index = 0;
  std::uint64_t m = 0;
  std::vector<double> coords;
  std::vector<c64> values;
  std::vector<double> dcf;

  /// The chunk's coordinates as typed Coord<D> (D must match the dataset).
  template <int D>
  std::vector<Coord<D>> typed_coords() const {
    std::vector<Coord<D>> out(static_cast<std::size_t>(m));
    for (std::uint64_t j = 0; j < m; ++j) {
      for (int d = 0; d < D; ++d) {
        out[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)] =
            coords[static_cast<std::size_t>(j * D + static_cast<std::uint64_t>(d))];
      }
    }
    return out;
  }

  /// Coil c's value block (c in [0, coils)).
  std::vector<c64> coil_values(int c) const {
    const auto m_sz = static_cast<std::size_t>(m);
    const std::size_t begin = static_cast<std::size_t>(c) * m_sz;
    return std::vector<c64>(values.begin() + static_cast<std::ptrdiff_t>(begin),
                            values.begin() +
                                static_cast<std::ptrdiff_t>(begin + m_sz));
  }
};

/// One rejected chunk: where it sat in the file, which chunk slot it was
/// (0-based ordinal of header candidates seen), and why it was rejected.
struct ChunkReject {
  std::uint64_t offset = 0;
  std::uint64_t ordinal = 0;
  std::string reason;
};

/// Per-file read outcome, accumulated across next() calls.
struct ReadReport {
  std::uint64_t chunks_read = 0;
  std::uint64_t samples_read = 0;
  std::vector<ChunkReject> rejects;
};

class DatasetWriter {
 public:
  /// Create/truncate `path` and write the header. `info.chunk_count` and
  /// `info.total_samples` are ignored (back-patched on close). Throws
  /// std::runtime_error on I/O failure, std::invalid_argument on a bad
  /// shape (dim outside {2,3}, coils < 1, n < 2).
  DatasetWriter(const std::string& path, const DatasetInfo& info);
  ~DatasetWriter();  // closes (best-effort) if close() was not called

  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  /// Append one chunk. coords/values sizes must match the dataset shape
  /// (values.size() == m * coils); dcf must be empty or m long, and is
  /// required when the dataset was declared has_dcf. Throws on mismatch.
  void add_chunk(std::uint64_t index, const std::vector<double>& coords,
                 const std::vector<c64>& values,
                 const std::vector<double>& dcf = {});

  /// Flush, back-patch chunk/sample totals into the header, close the
  /// file. Throws std::runtime_error if the stream failed. Idempotent.
  void close();

  std::uint64_t chunks_written() const { return chunks_; }

 private:
  std::string path_;
  DatasetInfo info_;
  std::ofstream f_;
  std::uint64_t chunks_ = 0;
  std::uint64_t samples_ = 0;
  bool closed_ = false;
};

/// Limits applied while parsing — chunks violating them are rejected
/// (header treated as implausible), which also bounds reader memory.
struct ReaderLimits {
  std::uint64_t max_chunk_samples = 1ull << 22;  // 4M samples per chunk
};

class DatasetReader {
 public:
  using Limits = ReaderLimits;

  /// Open `path` and validate the file header. Throws std::runtime_error
  /// when the file cannot be opened or the header is unusable (short,
  /// bad magic, unsupported version, corrupt checksum, nonsense shape).
  explicit DatasetReader(const std::string& path,
                         const Limits& limits = Limits());

  const DatasetInfo& info() const { return info_; }
  const ReadReport& report() const { return report_; }

  /// Read the next valid chunk into `out` (contents replaced). Returns
  /// false at end of file. Corrupt chunks encountered on the way are
  /// recorded in report().rejects and skipped — next() only ever returns
  /// chunks whose payload checksum verified.
  bool next(Chunk& out);

  /// Convenience: read every remaining chunk (memory-unbounded; tools and
  /// tests only — the streaming consumers use next()).
  std::vector<Chunk> read_all();

 private:
  bool read_exact(void* buf, std::size_t len);
  /// Scan forward byte-by-byte for the next chunk magic; the file is
  /// positioned at its first byte on success. Returns false at EOF.
  bool resync();
  void reject(std::uint64_t offset, std::uint64_t slot,
              const std::string& reason);

  std::ifstream f_;
  DatasetInfo info_;
  Limits limits_;
  ReadReport report_;
  std::uint64_t ordinal_ = 0;  // chunk header slots seen (valid + rejected)
};

/// Validate a whole file in one bounded-memory pass: stream every chunk,
/// return the final report. Header problems throw (same as the reader
/// constructor); chunk problems are rejects in the report.
ReadReport validate_dataset(const std::string& path, DatasetInfo* info = nullptr);

}  // namespace jigsaw::data
