#include "data/dataset.hpp"

#include <cstring>
#include <stdexcept>

#include "obs/obs.hpp"

namespace jigsaw::data {
namespace {

void require_shape(const DatasetInfo& info) {
  if (info.dim != 2 && info.dim != 3) {
    throw std::invalid_argument("dataset dim must be 2 or 3, got " +
                                std::to_string(info.dim));
  }
  if (info.coils < 1 || info.coils > 256) {
    throw std::invalid_argument("dataset coils outside [1, 256]: " +
                                std::to_string(info.coils));
  }
  if (info.n < 2) {
    throw std::invalid_argument("dataset grid side n must be >= 2, got " +
                                std::to_string(info.n));
  }
}

std::uint64_t header_checksum(const FileHeader& h) {
  return fnv1a(&h, sizeof(FileHeader) - sizeof(std::uint64_t));
}

FileHeader header_from_info(const DatasetInfo& info) {
  FileHeader h;
  h.dim = static_cast<std::uint32_t>(info.dim);
  h.coils = static_cast<std::uint32_t>(info.coils);
  h.n = static_cast<std::uint64_t>(info.n);
  h.source = static_cast<std::uint32_t>(info.source);
  h.flags = info.has_dcf ? kFileHasDcf : 0u;
  h.chunk_count = info.chunk_count;
  h.total_samples = info.total_samples;
  h.checksum = header_checksum(h);
  return h;
}

}  // namespace

// ---------------------------------------------------------------- writer --

DatasetWriter::DatasetWriter(const std::string& path, const DatasetInfo& info)
    : path_(path), info_(info) {
  require_shape(info_);
  info_.chunk_count = 0;
  info_.total_samples = 0;
  f_.open(path, std::ios::binary | std::ios::trunc);
  if (!f_) {
    throw std::runtime_error("dataset: cannot open '" + path +
                             "' for writing");
  }
  const FileHeader h = header_from_info(info_);
  f_.write(reinterpret_cast<const char*>(&h), sizeof(h));
  if (!f_) {
    throw std::runtime_error("dataset: header write failed for '" + path +
                             "'");
  }
}

DatasetWriter::~DatasetWriter() {
  if (!closed_) {
    try {
      close();
    } catch (...) {
      // Destructor cleanup only — the explicit close() path reports errors.
    }
  }
}

void DatasetWriter::add_chunk(std::uint64_t index,
                              const std::vector<double>& coords,
                              const std::vector<c64>& values,
                              const std::vector<double>& dcf) {
  if (closed_) throw std::runtime_error("dataset: add_chunk after close");
  const auto dim = static_cast<std::uint64_t>(info_.dim);
  const auto coils = static_cast<std::uint64_t>(info_.coils);
  if (coords.size() % dim != 0) {
    throw std::invalid_argument("dataset: coords size not a multiple of dim");
  }
  const std::uint64_t m = coords.size() / dim;
  if (m == 0) throw std::invalid_argument("dataset: empty chunk");
  if (values.size() != m * coils) {
    throw std::invalid_argument(
        "dataset: values size " + std::to_string(values.size()) +
        " != m * coils = " + std::to_string(m * coils));
  }
  if (info_.has_dcf && dcf.size() != m) {
    throw std::invalid_argument(
        "dataset declared has_dcf but chunk dcf size " +
        std::to_string(dcf.size()) + " != m = " + std::to_string(m));
  }
  if (!dcf.empty() && dcf.size() != m) {
    throw std::invalid_argument("dataset: dcf size != m");
  }

  ChunkHeader ch;
  ch.flags = dcf.empty() ? 0u : kChunkHasDcf;
  ch.index = index;
  ch.m = m;
  ch.payload_bytes = chunk_payload_bytes(
      m, static_cast<std::uint32_t>(dim), static_cast<std::uint32_t>(coils),
      ch.flags);

  std::vector<double> payload;
  payload.reserve(static_cast<std::size_t>(ch.payload_bytes / sizeof(double)));
  payload.insert(payload.end(), coords.begin(), coords.end());
  for (const c64& v : values) {
    payload.push_back(v.real());
    payload.push_back(v.imag());
  }
  payload.insert(payload.end(), dcf.begin(), dcf.end());
  ch.payload_checksum =
      fnv1a(payload.data(), payload.size() * sizeof(double));

  f_.write(reinterpret_cast<const char*>(&ch), sizeof(ch));
  f_.write(reinterpret_cast<const char*>(payload.data()),
           static_cast<std::streamsize>(payload.size() * sizeof(double)));
  if (!f_) {
    throw std::runtime_error("dataset: chunk write failed for '" + path_ +
                             "'");
  }
  ++chunks_;
  samples_ += m;
  obs::add("data.chunks_written", 1);
  obs::add("data.samples_written", m);
}

void DatasetWriter::close() {
  if (closed_) return;
  closed_ = true;
  info_.chunk_count = chunks_;
  info_.total_samples = samples_;
  const FileHeader h = header_from_info(info_);
  f_.seekp(0);
  f_.write(reinterpret_cast<const char*>(&h), sizeof(h));
  f_.flush();
  if (!f_) {
    throw std::runtime_error("dataset: finalize failed for '" + path_ + "'");
  }
  f_.close();
}

// ---------------------------------------------------------------- reader --

DatasetReader::DatasetReader(const std::string& path, const Limits& limits)
    : limits_(limits) {
  f_.open(path, std::ios::binary);
  if (!f_) {
    throw std::runtime_error("dataset: cannot open '" + path + "'");
  }
  FileHeader h;
  f_.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (f_.gcount() != static_cast<std::streamsize>(sizeof(h))) {
    throw std::runtime_error("dataset: '" + path +
                             "' shorter than a file header");
  }
  if (h.magic != kFileMagic) {
    throw std::runtime_error("dataset: '" + path + "' has bad magic");
  }
  if (h.version != kFormatVersion) {
    throw std::runtime_error("dataset: '" + path + "' version " +
                             std::to_string(h.version) + " unsupported");
  }
  if (h.checksum != header_checksum(h)) {
    throw std::runtime_error("dataset: '" + path +
                             "' file header checksum mismatch");
  }
  info_.dim = static_cast<int>(h.dim);
  info_.n = static_cast<std::int64_t>(h.n);
  info_.coils = static_cast<int>(h.coils);
  info_.source = h.source <= static_cast<std::uint32_t>(Source::kSheppLogan)
                     ? static_cast<Source>(h.source)
                     : Source::kUnknown;
  info_.has_dcf = (h.flags & kFileHasDcf) != 0;
  info_.chunk_count = h.chunk_count;
  info_.total_samples = h.total_samples;
  require_shape(info_);  // checksum passed, so this only trips on version-1
                         // files written with shapes we no longer accept
}

bool DatasetReader::read_exact(void* buf, std::size_t len) {
  f_.read(static_cast<char*>(buf), static_cast<std::streamsize>(len));
  return f_.gcount() == static_cast<std::streamsize>(len);
}

void DatasetReader::reject(std::uint64_t offset, std::uint64_t slot,
                           const std::string& reason) {
  report_.rejects.push_back(ChunkReject{offset, slot, reason});
  obs::add("data.chunks_rejected", 1);
}

bool DatasetReader::resync() {
  // The chunk magic as it appears on disk (host-endian byte sequence).
  unsigned char want[sizeof(kChunkMagic)];
  std::memcpy(want, &kChunkMagic, sizeof(want));
  unsigned char window[sizeof(want)];
  std::size_t filled = 0;
  for (;;) {
    const int c = f_.get();
    if (c == std::ifstream::traits_type::eof()) return false;
    if (filled < sizeof(window)) {
      window[filled++] = static_cast<unsigned char>(c);
    } else {
      std::memmove(window, window + 1, sizeof(window) - 1);
      window[sizeof(window) - 1] = static_cast<unsigned char>(c);
    }
    if (filled == sizeof(window) &&
        std::memcmp(window, want, sizeof(want)) == 0) {
      f_.seekg(-static_cast<std::streamoff>(sizeof(want)), std::ios::cur);
      return true;
    }
  }
}

bool DatasetReader::next(Chunk& out) {
  const auto dim = static_cast<std::uint32_t>(info_.dim);
  const auto coils = static_cast<std::uint32_t>(info_.coils);
  for (;;) {
    const std::uint64_t offset = static_cast<std::uint64_t>(f_.tellg());
    ChunkHeader ch;
    f_.read(reinterpret_cast<char*>(&ch), sizeof(ch));
    const auto got = f_.gcount();
    if (got == 0) return false;  // clean EOF on a chunk boundary
    const std::uint64_t slot = ordinal_++;
    if (got != static_cast<std::streamsize>(sizeof(ch))) {
      reject(offset, slot,
             "truncated chunk header (" + std::to_string(got) + "/" +
                 std::to_string(sizeof(ch)) + " bytes)");
      return false;
    }

    if (ch.magic != kChunkMagic) {
      reject(offset, slot, "bad chunk magic");
      // Scan forward from one past the bad header's start so a real chunk
      // beginning inside those 48 bytes is not skipped.
      f_.clear();
      f_.seekg(static_cast<std::streamoff>(offset + 1));
      if (!resync()) return false;
      continue;
    }
    const std::uint64_t expect_bytes =
        chunk_payload_bytes(ch.m, dim, coils, ch.flags);
    if (ch.m == 0 || ch.m > limits_.max_chunk_samples ||
        ch.payload_bytes != expect_bytes) {
      reject(offset, slot, "implausible chunk header (m=" + std::to_string(ch.m) +
                         ", payload_bytes=" + std::to_string(ch.payload_bytes) +
                         ", expected " + std::to_string(expect_bytes) + ")");
      f_.clear();
      f_.seekg(static_cast<std::streamoff>(offset + sizeof(std::uint32_t)));
      if (!resync()) return false;
      continue;
    }

    std::vector<double> payload(
        static_cast<std::size_t>(ch.payload_bytes / sizeof(double)));
    if (!read_exact(payload.data(),
                    static_cast<std::size_t>(ch.payload_bytes))) {
      reject(offset, slot, "truncated chunk payload");
      return false;
    }
    if (fnv1a(payload.data(), payload.size() * sizeof(double)) !=
        ch.payload_checksum) {
      // The header was self-consistent so the stream stays aligned; if the
      // corruption did extend past this chunk, the next header read fails
      // its own checks and resyncs.
      reject(offset, slot, "payload checksum mismatch");
      continue;
    }

    const auto m_sz = static_cast<std::size_t>(ch.m);
    out.index = ch.index;
    out.m = ch.m;
    out.coords.assign(payload.begin(),
                      payload.begin() + static_cast<std::ptrdiff_t>(m_sz * dim));
    out.values.resize(m_sz * coils);
    const double* v = payload.data() + m_sz * dim;
    for (std::size_t j = 0; j < m_sz * coils; ++j) {
      out.values[j] = c64(v[2 * j], v[2 * j + 1]);
    }
    if (ch.flags & kChunkHasDcf) {
      const double* w = v + 2 * m_sz * coils;
      out.dcf.assign(w, w + m_sz);
    } else {
      out.dcf.clear();
    }
    ++report_.chunks_read;
    report_.samples_read += ch.m;
    obs::add("data.chunks_read", 1);
    obs::add("data.samples_read", ch.m);
    obs::add("data.bytes_read", sizeof(ch) + ch.payload_bytes);
    return true;
  }
}

std::vector<Chunk> DatasetReader::read_all() {
  std::vector<Chunk> chunks;
  Chunk c;
  while (next(c)) chunks.push_back(c);
  return chunks;
}

ReadReport validate_dataset(const std::string& path, DatasetInfo* info) {
  DatasetReader reader(path);
  if (info) *info = reader.info();
  Chunk c;
  while (reader.next(c)) {
  }
  return reader.report();
}

}  // namespace jigsaw::data
