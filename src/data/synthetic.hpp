// Hermetic fastMRI-style multi-coil acquisition generator.
//
// Synthesizes a JKSD dataset from the analytic Shepp-Logan phantom: each
// chunk ("slice") gets its own trajectory realization (rotated / reseeded
// per chunk the way consecutive slices of a scan differ), the phantom is
// seen through smooth birdcage coil sensitivities (core/sense.hpp), and
// per-coil k-space is produced by the forward NuFFT — so the generated
// data exercises exactly the ingest path a real scanner export would,
// while ground truth stays available for scoring (header records the
// source, docs/datasets.md).
#pragma once

#include <cstdint>
#include <string>

#include "core/gridder.hpp"
#include "data/dataset.hpp"
#include "trajectory/trajectory.hpp"

namespace jigsaw::data {

struct SyntheticOptions {
  std::int64_t n = 64;  // base image grid side
  int coils = 8;
  int chunks = 4;                     // slices/frames
  std::int64_t samples_per_chunk = 0; // 0 = trajectory's natural count (~2n^2)
  trajectory::TrajectoryType traj = trajectory::TrajectoryType::Radial;
  double noise = 0.0;    // additive complex noise, relative to RMS signal
  std::uint64_t seed = 42;
  bool embed_dcf = false;  // precompute Pipe-Menon weights into each chunk
  core::GridderOptions gridding;  // engine for the forward simulation (and
                                  // the embedded-DCF Pipe-Menon iteration)
};

struct GenerateReport {
  std::uint64_t chunks = 0;
  std::uint64_t samples = 0;  // total across chunks (sum over coils excluded)
};

/// Write a synthetic multi-coil acquisition to `path`. Deterministic for a
/// given option set. Throws on invalid shape or I/O failure.
GenerateReport generate_synthetic(const std::string& path,
                                  const SyntheticOptions& options);

}  // namespace jigsaw::data
