// End-to-end reconstruction driver for ingested JKSD datasets.
//
// Streams a dataset chunk by chunk (bounded memory — one chunk's plan and
// images live at a time) and reconstructs each: density-compensation
// weights are chosen per --dcf mode (embedded from the file, Pipe-Menon
// iterated on the chunk's own trajectory, or none), multi-coil chunks get
// coil maps *estimated from the data itself* (estimate.hpp — not the
// generator's ground-truth maps), and the solve is either the weighted
// adjoint (+RSS combine across coils) or weighted CG on the SENSE normal
// equations  sum_c S_c^H A^H W A S_c x = sum_c S_c^H A^H W y_c.
//
// Corrupt chunks surface as rejects in the result's ReadReport (the
// recovering reader skips them); the reconstruction proceeds on the
// survivors.
#pragma once

#include <string>
#include <vector>

#include "core/density.hpp"
#include "core/gridder.hpp"
#include "data/dataset.hpp"
#include "data/estimate.hpp"

namespace jigsaw::data {

enum class DcfMode {
  kNone,       // plain adjoint / unweighted normal equations
  kEmbedded,   // per-sample weights stored in the chunk (falls back to
               // kNone, flagged in ChunkRecon, when a chunk has none)
  kPipeMenon,  // iterate w <- w ./ |interp(grid(w))| on the chunk
};

std::string to_string(DcfMode mode);

/// Parse "none" | "embedded" | "pipe-menon" (alias "pipe").
/// Throws std::invalid_argument listing the valid names.
DcfMode parse_dcf_mode(const std::string& s);

struct ReconDatasetOptions {
  core::GridderOptions gridding;
  DcfMode dcf = DcfMode::kPipeMenon;
  int iters = 0;  // 0 = weighted adjoint (+RSS); > 0 = CG iteration cap
  double tolerance = 1e-6;
  core::PipeMenonOptions pipe_menon;
  CoilEstimateOptions estimate;
};

/// One reconstructed chunk. `image` is the n x n magnitude image; `nrmse`
/// scores it against the dataset's analytic source after a least-squares
/// scalar fit, and is negative when the source is unknown (nothing to
/// score against).
struct ChunkRecon {
  std::uint64_t index = 0;
  std::uint64_t m = 0;
  std::vector<double> image;
  int iterations = 0;      // CG iterations spent (0 on the adjoint path)
  bool dcf_applied = false;
  double nrmse = -1.0;
};

struct ReconDatasetResult {
  DatasetInfo info;
  ReadReport report;  // chunks read + per-chunk rejects
  std::vector<ChunkRecon> chunks;
  double mean_nrmse = -1.0;  // over scored chunks; negative if none scored
};

/// Reconstruct every surviving chunk of the dataset at `path`. Throws
/// std::runtime_error when the file header is unusable or no chunk
/// survived; per-chunk corruption is reported, not thrown.
ReconDatasetResult recon_dataset(const std::string& path,
                                 const ReconDatasetOptions& options);

}  // namespace jigsaw::data
