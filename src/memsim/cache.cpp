#include "memsim/cache.hpp"

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace jigsaw::memsim {

Cache::Cache(const CacheConfig& config) : config_(config) {
  JIGSAW_REQUIRE(config.line_bytes >= 1 &&
                     (config.line_bytes & (config.line_bytes - 1)) == 0,
                 "cache line size must be a power of two");
  JIGSAW_REQUIRE(config.ways >= 1, "cache must have >= 1 way");
  const std::uint64_t lines_total = config.size_bytes / config.line_bytes;
  JIGSAW_REQUIRE(lines_total >= config.ways,
                 "cache too small for its associativity");
  num_sets_ = static_cast<std::uint32_t>(lines_total / config.ways);
  JIGSAW_REQUIRE(num_sets_ >= 1, "cache needs >= 1 set");
  lines_.resize(static_cast<std::size_t>(num_sets_) * config.ways);
}

void Cache::access(std::uint64_t addr, std::uint32_t bytes, bool write) {
  // Split the access across cache lines it spans.
  const std::uint64_t first = addr / config_.line_bytes;
  const std::uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) /
                             config_.line_bytes;
  for (std::uint64_t line = first; line <= last; ++line) {
    touch_line(line, write);
  }
}

void Cache::touch_line(std::uint64_t line_addr, bool write) {
  ++stats_.accesses;
  ++tick_;
  const std::uint32_t set =
      static_cast<std::uint32_t>(line_addr % num_sets_);
  const std::uint64_t tag = line_addr / num_sets_;
  Line* base = lines_.data() + static_cast<std::size_t>(set) * config_.ways;
  Line* victim = base;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      ++stats_.hits;
      l.lru = tick_;
      if (write) l.dirty = true;
      return;
    }
    if (!l.valid) {
      victim = &l;
    } else if (victim->valid && l.lru < victim->lru) {
      victim = &l;
    }
  }
  ++stats_.misses;
  if (victim->valid && victim->dirty) ++stats_.writebacks;
  victim->valid = true;
  victim->dirty = write;
  victim->tag = tag;
  victim->lru = tick_;
}

void Cache::publish_counters() {
  if constexpr (!obs::kEnabled) return;
  obs::add("memsim.accesses", stats_.accesses - published_.accesses);
  obs::add("memsim.hits", stats_.hits - published_.hits);
  obs::add("memsim.misses", stats_.misses - published_.misses);
  obs::add("memsim.writebacks", stats_.writebacks - published_.writebacks);
  obs::set_gauge("memsim.hit_rate", stats_.hit_rate());
  published_ = stats_;
}

}  // namespace jigsaw::memsim
