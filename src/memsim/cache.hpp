// Set-associative cache simulator.
//
// Used to reproduce the memory-system argument of Sec. VI.A: the paper
// attributes Slice-and-Dice's GPU win partly to an L2 hit rate of ~98%
// versus Impatient's ~80%. The gridders can emit their grid-memory access
// streams through a MemTracer; feeding those streams through this model
// lets us measure hit rates for each gridding strategy directly.
#pragma once

#include <cstdint>
#include <vector>

namespace jigsaw::memsim {

/// Abstract sink for memory accesses emitted by instrumented gridders.
class MemTracer {
 public:
  virtual ~MemTracer() = default;
  virtual void access(std::uint64_t addr, std::uint32_t bytes, bool write) = 0;
};

struct CacheConfig {
  std::uint64_t size_bytes = 4ull << 20;  // Titan Xp class L2: ~3-4 MiB
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 16;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  double hit_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
};

/// Write-back, write-allocate, LRU set-associative cache.
class Cache final : public MemTracer {
 public:
  explicit Cache(const CacheConfig& config);

  void access(std::uint64_t addr, std::uint32_t bytes, bool write) override;

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }
  void reset_stats() { stats_ = CacheStats{}; published_ = CacheStats{}; }

  /// Push the activity since the previous publish into the global counter
  /// registry (memsim.accesses/hits/misses/writebacks, plus a memsim.hit_rate
  /// gauge with this cache's lifetime hit rate). Idempotent between
  /// accesses; a no-op build (JIGSAW_OBS=OFF) compiles this to nothing.
  void publish_counters();

 private:
  struct Line {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  void touch_line(std::uint64_t line_addr, bool write);

  CacheConfig config_;
  std::uint32_t num_sets_;
  std::vector<Line> lines_;  // num_sets * ways
  std::uint64_t tick_ = 0;
  CacheStats stats_;
  CacheStats published_;  // high-water mark of counters already published
};

}  // namespace jigsaw::memsim
