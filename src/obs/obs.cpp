#include "obs/obs.hpp"

#if JIGSAW_OBS_ENABLED

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace jigsaw::obs {
namespace {

constexpr std::size_t kMaxCounters = 1024;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Counter registry
// ---------------------------------------------------------------------------

/// One thread's counter slots. Only the owning thread writes (relaxed
/// load+store, no RMW contention); snapshot() reads concurrently with
/// relaxed loads — counters are monotonic, so a torn *view* is still a
/// valid recent value per slot.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> slots{};
};

class Registry {
 public:
  std::uint32_t intern(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    if (names_.size() >= kMaxCounters) {
      throw std::runtime_error("obs: counter registry full");
    }
    const auto id = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  void attach(const std::shared_ptr<Shard>& shard) {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(shard);
  }

  /// Fold a dying thread's shard into the retired accumulator and unlink it.
  void retire(const Shard* shard) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = shards_.begin(); it != shards_.end(); ++it) {
      if (it->get() != shard) continue;
      for (std::size_t i = 0; i < kMaxCounters; ++i) {
        retired_[i] += (*it)->slots[i].load(std::memory_order_relaxed);
      }
      shards_.erase(it);
      return;
    }
  }

  void set_gauge(std::string_view name, double v) {
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[std::string(name)] = v;
  }

  Snapshot snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::uint64_t> sums(names_.size(), 0);
    for (std::size_t i = 0; i < sums.size(); ++i) sums[i] = retired_[i];
    for (const auto& shard : shards_) {
      for (std::size_t i = 0; i < sums.size(); ++i) {
        sums[i] += shard->slots[i].load(std::memory_order_relaxed);
      }
    }
    Snapshot snap;
    for (std::size_t i = 0; i < sums.size(); ++i) {
      if (sums[i] != 0) snap.counters.emplace(names_[i], sums[i]);
    }
    snap.gauges.insert(gauges_.begin(), gauges_.end());
    return snap;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    retired_.fill(0);
    for (const auto& shard : shards_) {
      for (auto& slot : shard->slots) {
        slot.store(0, std::memory_order_relaxed);
      }
    }
    gauges_.clear();
  }

  /// Leaked singleton: worker threads retiring their shards at process
  /// teardown (the global ThreadPool joins during static destruction) must
  /// still find a live registry.
  static Registry& instance() {
    static Registry* r = new Registry();
    return *r;
  }

 private:
  std::mutex mu_;
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string> names_;
  std::vector<std::shared_ptr<Shard>> shards_;
  std::array<std::uint64_t, kMaxCounters> retired_{};
  std::unordered_map<std::string, double> gauges_;
};

/// Registers this thread's shard on first counter add, retires it (folding
/// the values into the registry) at thread exit.
struct ShardOwner {
  std::shared_ptr<Shard> shard = std::make_shared<Shard>();
  ShardOwner() { Registry::instance().attach(shard); }
  ~ShardOwner() { Registry::instance().retire(shard.get()); }
};

Shard& local_shard() {
  thread_local ShardOwner owner;
  return *owner.shard;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

struct TraceEvent {
  char name[48];
  std::uint64_t t0_ns;
  std::uint64_t dur_ns;
};

/// Per-thread event buffer. The owning thread appends; the writer drains.
/// Both take the buffer mutex, but the two only overlap when
/// trace_stop_write races an in-flight span end, so the lock is
/// uncontended in steady state.
struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

class TraceState {
 public:
  void start() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& b : buffers_) {
      std::lock_guard<std::mutex> bl(b->mu);
      b->events.clear();
    }
    epoch_ns_.store(now_ns(), std::memory_order_relaxed);
    active_.store(true, std::memory_order_release);
  }

  bool active() const { return active_.load(std::memory_order_acquire); }
  std::uint64_t epoch_ns() const {
    return epoch_ns_.load(std::memory_order_relaxed);
  }

  void attach(const std::shared_ptr<TraceBuffer>& buffer) {
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
  }

  std::size_t stop_write(const std::string& path) {
    active_.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu_);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      throw std::runtime_error("obs: cannot open trace file " + path);
    }
    std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    std::size_t written = 0;
    for (const auto& b : buffers_) {
      std::lock_guard<std::mutex> bl(b->mu);
      for (const TraceEvent& e : b->events) {
        std::fprintf(f,
                     "%s{\"name\": \"%s\", \"cat\": \"jigsaw\", \"ph\": \"X\", "
                     "\"pid\": 1, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}",
                     written == 0 ? "" : ",\n", e.name, b->tid,
                     static_cast<double>(e.t0_ns) * 1e-3,
                     static_cast<double>(e.dur_ns) * 1e-3);
        ++written;
      }
      b->events.clear();
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return written;
  }

  static TraceState& instance() {
    static TraceState* t = new TraceState();  // leaked, like the registry
    return *t;
  }

 private:
  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> epoch_ns_{0};
  std::mutex mu_;
  std::vector<std::shared_ptr<TraceBuffer>> buffers_;
  std::uint32_t next_tid_ = 0;
};

TraceBuffer& local_trace_buffer() {
  // The shared_ptr keeps a dead thread's events alive in TraceState until
  // the next start()/stop_write() drains them.
  thread_local std::shared_ptr<TraceBuffer> buffer = [] {
    auto b = std::make_shared<TraceBuffer>();
    TraceState::instance().attach(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

Counter counter(std::string_view name) {
  return Counter(Registry::instance().intern(name));
}

void add(Counter c, std::uint64_t v) {
  if (v == 0) return;
  auto& slot = local_shard().slots[c.id_];
  slot.store(slot.load(std::memory_order_relaxed) + v,
             std::memory_order_relaxed);
}

void add(std::string_view name, std::uint64_t v) {
  if (v == 0) return;
  add(counter(name), v);
}

void set_gauge(std::string_view name, double v) {
  Registry::instance().set_gauge(name, v);
}

Snapshot snapshot() { return Registry::instance().snapshot(); }

void reset() { Registry::instance().reset(); }

void trace_start() { TraceState::instance().start(); }

bool trace_active() { return TraceState::instance().active(); }

std::size_t trace_stop_write(const std::string& path) {
  return TraceState::instance().stop_write(path);
}

Span::Span(std::string_view name) {
  if (!TraceState::instance().active()) return;
  active_ = true;
  const std::size_t len = std::min(name.size(), sizeof(name_) - 1);
  std::memcpy(name_, name.data(), len);
  name_[len] = '\0';
  t0_ns_ = now_ns() - TraceState::instance().epoch_ns();
}

Span::~Span() {
  if (!active_) return;
  TraceEvent e;
  std::memcpy(e.name, name_, sizeof(name_));
  e.t0_ns = t0_ns_;
  const std::uint64_t end = now_ns() - TraceState::instance().epoch_ns();
  e.dur_ns = end > t0_ns_ ? end - t0_ns_ : 0;
  TraceBuffer& buf = local_trace_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(e);
}

}  // namespace jigsaw::obs

#else

// Translation unit intentionally empty when observability is compiled out.
namespace jigsaw::obs {
void obs_disabled_anchor() {}
}  // namespace jigsaw::obs

#endif  // JIGSAW_OBS_ENABLED
