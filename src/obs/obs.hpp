// Runtime observability: counters, gauges, and a chrome-trace span tracer.
//
// Two facilities behind one compile-time gate (CMake option JIGSAW_OBS,
// macro JIGSAW_OBS_ENABLED):
//
//   * CounterRegistry — process-wide named monotonic counters and gauges.
//     Counter increments go to a lock-free per-thread shard (plain relaxed
//     atomics written only by the owning thread); snapshot() merges every
//     live shard plus the retired-thread accumulator under a registry lock.
//     Hot loops are expected to batch: engines accumulate into local
//     variables / GriddingStats and publish one delta per operation, so a
//     counter add costs one hash lookup + one relaxed store per *operation*,
//     not per sample.
//
//   * Tracer — scoped spans emitted as chrome://tracing "complete" events
//     ("ph":"X") with per-thread ids. Disarmed, a Span costs one relaxed
//     atomic load; armed, span end appends one event to a per-thread buffer
//     under a per-buffer mutex (uncontended in practice). trace_stop_write()
//     drains every buffer into a JSON file that chrome://tracing and
//     Perfetto open directly (see docs/observability.md).
//
// With JIGSAW_OBS=OFF every entry point below compiles to an empty inline
// stub: no registry, no atomics, no strings — the instrumented hot paths
// are bit-identical to un-instrumented code (the CI overhead guard holds
// the OFF build to the committed perf baseline).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#ifndef JIGSAW_OBS_ENABLED
#define JIGSAW_OBS_ENABLED 1
#endif

namespace jigsaw::obs {

/// Compile-time gate, usable in `if constexpr`.
inline constexpr bool kEnabled = JIGSAW_OBS_ENABLED != 0;

/// Merged view of the registry at one instant. Counters are monotonic
/// within a process (reset() excepted); gauges hold the last value set.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;

  std::uint64_t counter(std::string_view name) const {
    const auto it = counters.find(std::string(name));
    return it == counters.end() ? 0 : it->second;
  }
  double gauge(std::string_view name) const {
    const auto it = gauges.find(std::string(name));
    return it == gauges.end() ? 0.0 : it->second;
  }
};

#if JIGSAW_OBS_ENABLED

/// Interned counter handle: stable id for repeated adds without a name
/// lookup. Obtained from counter(); the default-constructed handle is
/// invalid and must not be passed to add().
class Counter {
 public:
  Counter() = default;

 private:
  friend Counter counter(std::string_view);
  friend void add(Counter, std::uint64_t);
  explicit Counter(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = ~0u;
};

/// Intern `name` (idempotent) and return its handle.
Counter counter(std::string_view name);

/// Add `v` to a counter. The Counter overload is the hot-path form; the
/// string overload interns per call and suits once-per-operation publishing.
void add(Counter c, std::uint64_t v);
void add(std::string_view name, std::uint64_t v);

/// Set a gauge to its latest value (low-frequency; mutex-protected).
void set_gauge(std::string_view name, double v);

/// Merge all shards + retired threads into one consistent view.
Snapshot snapshot();

/// Zero every counter and drop every gauge (test/bench harness use only;
/// racing increments may survive into the next epoch).
void reset();

/// Arm the tracer: spans entered from now on are recorded.
void trace_start();

/// True while the tracer is armed (cheap: one relaxed atomic load).
bool trace_active();

/// Disarm and write every recorded span to `path` in chrome trace format.
/// Returns the number of events written.
std::size_t trace_stop_write(const std::string& path);

/// RAII scoped span. Records [construction, destruction) when the tracer
/// is armed at construction time. Names longer than the internal buffer
/// (47 chars) are truncated.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::uint64_t t0_ns_ = 0;
  char name_[48];
  bool active_ = false;
};

#else  // !JIGSAW_OBS_ENABLED — every call site compiles to nothing.

class Counter {
 public:
  Counter() = default;
};

inline Counter counter(std::string_view) { return Counter{}; }
inline void add(Counter, std::uint64_t) {}
inline void add(std::string_view, std::uint64_t) {}
inline void set_gauge(std::string_view, double) {}
inline Snapshot snapshot() { return Snapshot{}; }
inline void reset() {}
inline void trace_start() {}
inline bool trace_active() { return false; }
inline std::size_t trace_stop_write(const std::string&) { return 0; }

class Span {
 public:
  explicit Span(std::string_view) {}
};

#endif  // JIGSAW_OBS_ENABLED

}  // namespace jigsaw::obs

/// Declare a scoped span whose name expression is evaluated only when the
/// layer is compiled in — use for dynamically built names so the OFF build
/// does not even construct the string.
#if JIGSAW_OBS_ENABLED
#define JIGSAW_OBS_SPAN(var, name_expr) ::jigsaw::obs::Span var(name_expr)
#else
#define JIGSAW_OBS_SPAN(var, name_expr) \
  do {                                  \
  } while (false)
#endif
