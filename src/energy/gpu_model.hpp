// GPU performance/energy projection model.
//
// No GPU exists on this host (see DESIGN.md §1), so the GPU rows of
// Figs. 6-8 are reproduced with a documented projection: a GPU-class
// implementation's kernel time is modeled from our measured single-thread
// CPU time of the *same algorithm* divided by an effective parallel speedup,
//
//   speedup = base_parallelism * occupancy * memory_efficiency,
//   memory_efficiency = 1 / (1 + miss_rate * miss_penalty_factor),
//
// where `occupancy` and the L2 hit rate are the quantities the paper reports
// for each implementation (Impatient: ~47% occupancy / ~80% L2 hits;
// Slice-and-Dice: ~80% / ~98%) — and the hit rate can alternatively be
// *measured* with the memsim cache model over each gridder's access trace.
// Energy is board power x kernel time. Every constant lives here, in one
// place, and EXPERIMENTS.md reports both raw measured CPU numbers and these
// projections.
#pragma once

namespace jigsaw::energy {

/// Estimated slowdown of the paper's double-precision Matlab MIRT baseline
/// relative to our compiled serial C++ baseline (interpreter + matrix-op
/// overhead for gather/scatter-heavy code). Derived from the paper's own
/// numbers: the reported JIGSAW speedups imply MIRT gridding at
/// ~1.7-2.4 us/sample (e.g. Image5: 1759x over a (2.1M+12) ns runtime),
/// while our serial C++ baseline measures ~0.13-0.14 us/sample — a
/// 12-19x gap; 13 is the mid-range.
inline constexpr double kMatlabBaselineOverhead = 13.0;

/// Speed of the uniform-FFT phase in the accelerated pipelines relative to
/// our generic row-column FFT: an FFTW-class host library (~3x ours).
/// Calibrated against Fig. 7's compression — the paper reports *equal*
/// gridding and FFT time for Slice-and-Dice GPU and gridding at only 25%
/// of NuFFT time with JIGSAW, which rules out a cuFFT-class (50x) FFT
/// assumption and pins the FFT phase near host speed.
inline constexpr double kGpuFftSpeedup = 3.0;

struct GpuModelParams {
  double base_parallelism = 64.0;  // sustained-throughput ratio, one Titan Xp
                                   // SM-array vs one Coffee-Lake core, for a
                                   // bandwidth-bound gridding kernel
  double occupancy = 0.8;          // achieved occupancy (paper Sec. VI.A)
  double l2_hit_rate = 0.98;       // L2 hit rate (paper Sec. VI.A)
  double miss_penalty_factor = 4.0;  // relative cost of an L2 miss
  double simd_overlap = 1.0;       // fraction of the algorithm's *serial*
                                   // instruction stream that executes on
                                   // otherwise-idle SIMD lanes: binning's
                                   // redundant per-point boundary checks and
                                   // on-line weight evaluations parallelize
                                   // across the T/W idle threads the paper
                                   // describes, so its measured serial time
                                   // overstates its GPU time
  double board_power_w = 175.0;    // average board draw during the kernel
};

/// Paper-calibrated parameter sets.
GpuModelParams impatient_gpu();
GpuModelParams slice_and_dice_gpu();

/// Effective parallel speedup over one CPU thread.
double gpu_speedup(const GpuModelParams& p);

/// Projected kernel time from a measured single-thread CPU time.
double projected_gpu_seconds(const GpuModelParams& p, double cpu_seconds_1t);

/// Projected kernel energy (joules).
double projected_gpu_energy_j(const GpuModelParams& p, double cpu_seconds_1t);

}  // namespace jigsaw::energy
