#include "energy/asic_model.hpp"

#include "common/error.hpp"

namespace jigsaw::energy {

int pipeline_depth(bool three_d) { return three_d ? 15 : 12; }

long long gridding_cycles(const AsicConfig& config, long long m,
                          bool z_binned) {
  const long long depth = pipeline_depth(config.three_d);
  if (!config.three_d) return m + depth;
  const long long replays = z_binned ? config.wz : config.nz;
  return (m + depth) * replays;
}

SynthesisEstimate estimate_asic(const AsicConfig& config,
                                const AsicTech& tech) {
  JIGSAW_REQUIRE(config.tile >= 1 && config.grid_n >= config.tile,
                 "grid must be at least one tile");
  JIGSAW_REQUIRE(config.window >= 1 && config.window <= config.tile,
                 "window must satisfy 1 <= W <= T");
  SynthesisEstimate e;
  const int pipes = config.tile * config.tile;

  // --- Accumulation SRAM: one 64-bit complex entry per uniform grid point,
  // banked per pipeline (each pipeline owns its dice column).
  const double grid_points =
      static_cast<double>(config.grid_n) * static_cast<double>(config.grid_n);
  e.accum_sram_mb = grid_points * 8.0 / (1024.0 * 1024.0);

  // --- Weight SRAM: 256 x 32-bit complex entries per pipeline (Sec. IV);
  // the 3D variant needs a third-dimension lookup copy.
  const double weight_kb_per_pipe = 256.0 * 4.0 / 1024.0;
  const double weight_mb =
      pipes * weight_kb_per_pipe * (config.three_d ? 1.5 : 1.0) / 1024.0;
  e.weight_sram_area_mm2 = weight_mb * tech.sram_mm2_per_mb;

  // --- Logic.
  const double per_pipe_area = config.three_d
                                   ? tech.logic_area_mm2_per_pipe_3d
                                   : tech.logic_area_mm2_per_pipe_2d;
  e.logic_area_mm2 = pipes * per_pipe_area + e.weight_sram_area_mm2;

  // MAC/accumulate activity: a pipeline's column is hit by a sample with
  // probability (W/T)^2; in the 3D-Slice variant only samples within Wz of
  // the current slice reach the interpolate/accumulate stages (~Wz/Nz of the
  // stream), while select stays active for all M (paper Sec. VI.B).
  const double w_frac = static_cast<double>(config.window) /
                        static_cast<double>(config.tile);
  double activity = w_frac * w_frac;
  if (config.three_d) {
    activity *= static_cast<double>(config.wz) / static_cast<double>(config.nz);
  }
  e.logic_power_mw = pipes * (tech.logic_static_mw_per_pipe +
                              tech.logic_dyn_mw_per_pipe * activity) *
                     config.clock_ghz;

  // --- Accumulation SRAM power/area (reported with and without in Table II).
  if (config.include_accum_sram) {
    e.accum_sram_area_mm2 = e.accum_sram_mb * tech.sram_mm2_per_mb;
    const double accesses_per_s =
        activity * pipes * config.clock_ghz * 1e9;  // read-modify-write
    e.accum_sram_power_mw = e.accum_sram_mb * tech.sram_leak_mw_per_mb +
                            accesses_per_s * tech.sram_dyn_pj_per_access *
                                1e-12 * 1e3;
  }

  e.power_mw = e.logic_power_mw + e.accum_sram_power_mw;
  e.area_mm2 = e.logic_area_mm2 + e.accum_sram_area_mm2;
  return e;
}

double gridding_energy_j(const AsicConfig& config, long long m, bool z_binned,
                         const AsicTech& tech) {
  const SynthesisEstimate e = estimate_asic(config, tech);
  const double seconds =
      static_cast<double>(gridding_cycles(config, m, z_binned)) /
      (config.clock_ghz * 1e9);
  return e.power_mw * 1e-3 * seconds;
}

}  // namespace jigsaw::energy
