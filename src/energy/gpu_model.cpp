#include "energy/gpu_model.hpp"

namespace jigsaw::energy {

GpuModelParams impatient_gpu() {
  GpuModelParams p;
  p.occupancy = 0.47;     // paper Sec. VI.A
  p.l2_hit_rate = 0.80;   // paper Sec. VI.A
  p.simd_overlap = 4.0;   // output-driven checks + on-line Kaiser-Bessel
                          // evaluation run on lanes idle in Slice-and-Dice
  p.board_power_w = 210.0;  // binning kernels keep the memory system hot
  return p;
}

GpuModelParams slice_and_dice_gpu() {
  GpuModelParams p;
  p.occupancy = 0.80;
  p.l2_hit_rate = 0.98;
  p.board_power_w = 175.0;
  return p;
}

double gpu_speedup(const GpuModelParams& p) {
  const double miss_rate = 1.0 - p.l2_hit_rate;
  const double mem_eff = 1.0 / (1.0 + miss_rate * p.miss_penalty_factor);
  return p.base_parallelism * p.occupancy * mem_eff * p.simd_overlap;
}

double projected_gpu_seconds(const GpuModelParams& p, double cpu_seconds_1t) {
  return cpu_seconds_1t / gpu_speedup(p);
}

double projected_gpu_energy_j(const GpuModelParams& p,
                              double cpu_seconds_1t) {
  return p.board_power_w * projected_gpu_seconds(p, cpu_seconds_1t);
}

}  // namespace jigsaw::energy
