// Parametric 16 nm power/area model for the JIGSAW accelerator (Table II).
//
// We obviously cannot run the authors' industrial synthesis flow; instead
// this module provides a component-level model — accumulation SRAM, weight
// SRAMs, pipeline logic — with four technology constants (SRAM density,
// SRAM leakage, SRAM dynamic energy/access, logic static+dynamic power)
// calibrated against the four rows of Table II. The *structure* the paper
// reports (SRAM ~95% of area and >56% of power; the 3D-Slice variant drawing
// less power because only ~M*(Wz/Nz) samples accumulate per slice) emerges
// from the model rather than being hard-coded per row.
#pragma once

namespace jigsaw::energy {

struct AsicConfig {
  int grid_n = 1024;        // uniform target grid dimension N (per axis)
  int tile = 8;             // virtual tile dimension T (T^2 pipelines)
  int window = 6;           // interpolation kernel width W
  bool three_d = false;     // JIGSAW 3D Slice variant
  int nz = 1024;            // Z-dimension grid size (3D variant)
  int wz = 6;               // Z kernel width (3D variant)
  bool include_accum_sram = true;  // Table II reports both with/without
  double clock_ghz = 1.0;
};

struct SynthesisEstimate {
  double power_mw = 0.0;
  double area_mm2 = 0.0;
  // Component breakdown:
  double accum_sram_power_mw = 0.0;
  double accum_sram_area_mm2 = 0.0;
  double weight_sram_area_mm2 = 0.0;
  double logic_power_mw = 0.0;
  double logic_area_mm2 = 0.0;
  double accum_sram_mb = 0.0;
};

/// Technology constants (16 nm, 1.0 GHz nominal). Defaults are calibrated so
/// the four Table II rows are reproduced; they are exposed so ablations can
/// explore other design points.
struct AsicTech {
  double sram_mm2_per_mb = 1.4725;       // accumulation/weight SRAM density
  double sram_leak_mw_per_mb = 5.0321;   // leakage (static) power
  double sram_dyn_pj_per_access = 2.28842;  // 64-bit read-modify-write
  double logic_static_mw_per_pipe = 0.991322;  // clock tree + idle pipeline
  double logic_dyn_mw_per_pipe = 0.85487;      // at 100% MAC activity, 1 GHz
  double logic_area_mm2_per_pipe_2d = 5.1245e-3;
  double logic_area_mm2_per_pipe_3d = 7.843e-3;
};

/// Estimate power/area for a JIGSAW configuration.
SynthesisEstimate estimate_asic(const AsicConfig& config,
                                const AsicTech& tech = AsicTech{});

/// Energy (joules) to grid M samples with the given configuration: power x
/// (M + pipeline_depth) cycles at the configured clock. For the 3D variant
/// the stream is replayed per slice (paper: (M+15)*Nz, or (M+15)*Wz when
/// z-binned).
double gridding_energy_j(const AsicConfig& config, long long m,
                         bool z_binned = false,
                         const AsicTech& tech = AsicTech{});

/// Pipeline latency in cycles (paper: 12 for 2D, 15 for 3D Slice).
int pipeline_depth(bool three_d);

/// Total gridding cycles for M samples (paper Sec. VI.A):
///   2D:                M + 12
///   3D unsorted:       (M + 15) * Nz
///   3D z-binned:       (M + 15) * Wz
long long gridding_cycles(const AsicConfig& config, long long m,
                          bool z_binned = false);

}  // namespace jigsaw::energy
