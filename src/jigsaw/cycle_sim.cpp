#include "jigsaw/cycle_sim.hpp"

#include <cmath>

#include "core/window.hpp"
#include "obs/obs.hpp"

namespace jigsaw::sim {

namespace dp = core::datapath;

namespace {

/// Push one run's activity counters into the global registry. Each run_*
/// resets stats_ on entry, so the final struct is exactly this run's work.
void publish_sim_stats(const SimStats& s) {
  if constexpr (!obs::kEnabled) {
    (void)s;
    return;
  }
  auto add = [](const char* name, long long v) {
    if (v > 0) obs::add(name, static_cast<std::uint64_t>(v));
  };
  obs::add("sim.runs", 1);
  add("sim.samples_streamed", s.samples_streamed);
  add("sim.gridding_cycles", s.gridding_cycles);
  add("sim.readout_cycles", s.readout_cycles);
  add("sim.selects", s.selects);
  add("sim.lut_reads", s.lut_reads);
  add("sim.weight_combines", s.weight_combines);
  add("sim.macs", s.macs);
  add("sim.accum_writes", s.accum_writes);
  add("sim.saturations", s.saturations);
  add("sim.soft_error_flips", s.soft_error_flips);
}

}  // namespace

CycleSim::CycleSim(std::int64_t base_n, const core::GridderOptions& options,
                   bool three_d, HardwareLimits limits)
    : n_(base_n), options_(options), three_d_(three_d) {
  const double gd = options.sigma * static_cast<double>(base_n);
  g_ = static_cast<std::int64_t>(std::llround(gd));
  JIGSAW_REQUIRE(std::fabs(gd - static_cast<double>(g_)) < 1e-9,
                 "sigma * N must be an integer");
  JIGSAW_REQUIRE(g_ <= limits.max_grid_n,
                 "target grid " << g_ << " exceeds the accumulation SRAM ("
                                << limits.max_grid_n << "^2 points)");
  JIGSAW_REQUIRE(options.width >= 1 && options.width <= limits.max_width,
                 "interpolation window width out of hardware range");
  JIGSAW_REQUIRE(options.tile >= 1 && options.tile <= limits.max_tile,
                 "virtual tile dimension out of hardware range");
  JIGSAW_REQUIRE((options.tile & (options.tile - 1)) == 0,
                 "tile dimension must be a power of two");
  JIGSAW_REQUIRE(options.width <= options.tile,
                 "window must fit in a virtual tile");
  JIGSAW_REQUIRE(g_ % options.tile == 0, "tile must divide the target grid");
  JIGSAW_REQUIRE(
      options.table_oversampling >= 1 &&
          options.table_oversampling <= limits.max_table_oversampling &&
          (options.table_oversampling & (options.table_oversampling - 1)) == 0,
      "table oversampling factor out of hardware range");

  kernel_ = kernels::make_kernel(options.kernel, options.width, options.sigma);
  lut_ = std::make_unique<kernels::KernelLut>(*kernel_,
                                              options.table_oversampling);
  JIGSAW_REQUIRE(static_cast<std::int32_t>(lut_->entries()) <=
                     limits.max_weight_entries,
                 "weight LUT (" << lut_->entries()
                                << " entries) exceeds the weight SRAM");
  ntiles_ = g_ / options.tile;
  int log2_l = 0;
  while ((1 << log2_l) < options.table_oversampling) ++log2_l;
  select_cfg_ = dp::SelectConfig{
      options.width, options.tile, ntiles_, log2_l,
      static_cast<std::int32_t>(lut_->entries()) - 1};
  stats_.pipeline_depth = three_d ? 15 : 12;
  stats_.clock_ghz = 1.0;  // synthesized clock (paper Sec. V)
}

double CycleSim::required_bandwidth_bytes_per_s() const {
  return 16.0 * stats_.clock_ghz * 1e9;  // 128-bit beat per cycle
}

void CycleSim::broadcast_2d(std::int64_t usx_q, std::int64_t usy_q,
                            fixed::CData32 value,
                            const fixed::CWeight16* z_weight) {
  const std::int64_t t = options_.tile;
  const std::int64_t tile_count = ntiles_ * ntiles_;
  // All T^2 pipelines perform a select on every broadcast sample.
  stats_.selects += t * t;
  for (std::int64_t cy = 0; cy < t; ++cy) {
    const dp::ColumnSelect sy = dp::select_column(usy_q, cy, select_cfg_);
    for (std::int64_t cx = 0; cx < t; ++cx) {
      const dp::ColumnSelect sx = dp::select_column(usx_q, cx, select_cfg_);
      if (!sy.affected || !sx.affected) continue;
      // Weight lookup: one read per dimension through the dual-ported SRAM.
      const fixed::CWeight16 wy{lut_->entry_fixed(sy.lut_index),
                                fixed::Weight16{}};
      const fixed::CWeight16 wx{lut_->entry_fixed(sx.lut_index),
                                fixed::Weight16{}};
      stats_.lut_reads += 2;
      dp::CWeight32 wt;
      if (z_weight != nullptr) {
        // 3D Slice: combine (z, y) first, then x — the same order as
        // core::JigsawGridder<3>.
        wt = dp::combine_weights(dp::combine_weights(*z_weight, wy), wx);
        stats_.weight_combines += 2;
      } else {
        wt = dp::combine_weights(wy, wx);
        stats_.weight_combines += 1;
      }
      const fixed::CData32 contrib = dp::interpolate(wt, value);
      stats_.macs += 1;
      const std::int64_t col = cy * t + cx;
      const std::int64_t tile_addr = sy.tile * ntiles_ + sx.tile;
      auto& word =
          dice_[static_cast<std::size_t>(col * tile_count + tile_addr)];
      stats_.saturations += dp::accumulate(word, contrib);
      // Soft-error campaign hook: possibly flip one bit of the word just
      // written (inactive and draw-free at the default rate of 0).
      soft_error_.corrupt(word);
      stats_.accum_writes += 1;
    }
  }
}

void CycleSim::run_2d(const core::SampleSet<2>& in, core::Grid<2>& out) {
  JIGSAW_OBS_SPAN(span, "sim.run_2d");
  JIGSAW_REQUIRE(!three_d_, "run_2d on a 3D-variant simulator");
  JIGSAW_REQUIRE(out.size() == g_, "output grid size mismatch");
  const int w = options_.width;
  const std::int64_t t = options_.tile;
  const std::int64_t tile_count = ntiles_ * ntiles_;
  dice_.assign(static_cast<std::size_t>(t * t * tile_count), fixed::CData32{});
  stats_ = SimStats{};
  stats_.pipeline_depth = 12;
  soft_error_ = robustness::SoftErrorInjector(options_.soft_error);

  scale_log2_ = options_.fixed_scale_log2 != INT_MIN
                    ? options_.fixed_scale_log2
                    : dp::auto_scale_log2(in.values);
  const double scale = std::ldexp(1.0, scale_log2_);

  const auto m = static_cast<std::int64_t>(in.size());
  const std::int64_t half_shift =
      static_cast<std::int64_t>(w) << (dp::kCoordFracBits - 1);
  for (std::int64_t j = 0; j < m; ++j) {
    // One 128-bit bus beat: coordinates + complex value.
    ++stats_.samples_streamed;
    const double uy =
        core::grid_coord(in.coords[static_cast<std::size_t>(j)][0], g_);
    const double ux =
        core::grid_coord(in.coords[static_cast<std::size_t>(j)][1], g_);
    const std::int64_t usy_q = dp::quantize_coord(uy) + half_shift;
    const std::int64_t usx_q = dp::quantize_coord(ux) + half_shift;
    const fixed::CData32 value = fixed::CData32::from_c64(
        in.values[static_cast<std::size_t>(j)] * scale);
    broadcast_2d(usx_q, usy_q, value, nullptr);
  }

  // Stall-free streaming: exactly M + depth cycles.
  stats_.gridding_cycles = (m == 0) ? 0 : m + stats_.pipeline_depth;
  stats_.readout_cycles = (g_ * g_ + 1) / 2;  // two 64-bit points per cycle
  stats_.soft_error_flips = static_cast<long long>(soft_error_.flips());

  // Read the dice out, tile by tile, into the row-major grid.
  const double descale = 1.0 / scale;
  for (std::int64_t y = 0; y < g_; ++y) {
    for (std::int64_t x = 0; x < g_; ++x) {
      const std::int64_t col = (y % t) * t + (x % t);
      const std::int64_t tile_addr = (y / t) * ntiles_ + (x / t);
      out[y * g_ + x] =
          dice_[static_cast<std::size_t>(col * tile_count + tile_addr)]
              .to_c64() *
          descale;
    }
  }
  publish_sim_stats(stats_);
}

void CycleSim::run_2d_forward(const core::Grid<2>& in,
                              core::SampleSet<2>& out) {
  JIGSAW_OBS_SPAN(span, "sim.run_2d_forward");
  JIGSAW_REQUIRE(!three_d_, "run_2d_forward on a 3D-variant simulator");
  JIGSAW_REQUIRE(in.size() == g_, "input grid size mismatch");
  JIGSAW_REQUIRE(out.coords.size() == out.values.size(),
                 "sample set coords/values mismatch");
  const int w = options_.width;
  const std::int64_t t = options_.tile;
  const std::int64_t tile_count = ntiles_ * ntiles_;
  stats_ = SimStats{};
  stats_.pipeline_depth = 12;

  // Stream the grid into the per-pipeline accumulation SRAMs (two 64-bit
  // points per 128-bit beat), quantizing on ingest.
  std::vector<c64> grid_vals(in.data(), in.data() + in.total());
  scale_log2_ = options_.fixed_scale_log2 != INT_MIN
                    ? options_.fixed_scale_log2
                    : dp::auto_scale_log2(grid_vals);
  const double scale = std::ldexp(1.0, scale_log2_);
  dice_.assign(static_cast<std::size_t>(t * t * tile_count),
               fixed::CData32{});
  for (std::int64_t y = 0; y < g_; ++y) {
    for (std::int64_t x = 0; x < g_; ++x) {
      const std::int64_t col = (y % t) * t + (x % t);
      const std::int64_t tile_addr = (y / t) * ntiles_ + (x / t);
      dice_[static_cast<std::size_t>(col * tile_count + tile_addr)] =
          fixed::CData32::from_c64(in[y * g_ + x] * scale);
    }
  }
  stats_.readout_cycles += (g_ * g_ + 1) / 2;  // stream-in beats

  const auto m = static_cast<std::int64_t>(out.size());
  const std::int64_t half_shift =
      static_cast<std::int64_t>(w) << (dp::kCoordFracBits - 1);
  const double descale = 1.0 / scale;
  std::int64_t streamed = 0;
  for (std::int64_t j = 0; j < m; ++j) {
    ++streamed;
    const double uy =
        core::grid_coord(out.coords[static_cast<std::size_t>(j)][0], g_);
    const double ux =
        core::grid_coord(out.coords[static_cast<std::size_t>(j)][1], g_);
    const std::int64_t usy_q = dp::quantize_coord(uy) + half_shift;
    const std::int64_t usx_q = dp::quantize_coord(ux) + half_shift;

    stats_.selects += t * t;
    fixed::CData32 acc{};
    for (std::int64_t cy = 0; cy < t; ++cy) {
      const dp::ColumnSelect sy = dp::select_column(usy_q, cy, select_cfg_);
      for (std::int64_t cx = 0; cx < t; ++cx) {
        const dp::ColumnSelect sx = dp::select_column(usx_q, cx, select_cfg_);
        if (!sy.affected || !sx.affected) continue;
        const fixed::CWeight16 wy{lut_->entry_fixed(sy.lut_index),
                                  fixed::Weight16{}};
        const fixed::CWeight16 wx{lut_->entry_fixed(sx.lut_index),
                                  fixed::Weight16{}};
        stats_.lut_reads += 2;
        const dp::CWeight32 wt = dp::combine_weights(wy, wx);
        stats_.weight_combines += 1;
        const std::int64_t col = cy * t + cx;
        const std::int64_t tile_addr = sy.tile * ntiles_ + sx.tile;
        stats_.saturations += dp::accumulate(
            acc, dp::interpolate(
                     wt, dice_[static_cast<std::size_t>(col * tile_count +
                                                        tile_addr)]));
        stats_.macs += 1;
        stats_.accum_writes += 1;
      }
    }
    out.values[static_cast<std::size_t>(j)] = acc.to_c64() * descale;
  }
  stats_.samples_streamed = streamed;
  stats_.gridding_cycles =
      (streamed == 0) ? 0 : streamed + stats_.pipeline_depth;
  publish_sim_stats(stats_);
}

void CycleSim::run_3d(const core::SampleSet<3>& in, core::Grid<3>& out,
                      bool z_binned) {
  JIGSAW_OBS_SPAN(span, "sim.run_3d");
  JIGSAW_REQUIRE(three_d_, "run_3d on a 2D-variant simulator");
  JIGSAW_REQUIRE(out.size() == g_, "output grid size mismatch");
  const int w = options_.width;
  const std::int64_t t = options_.tile;
  const std::int64_t tile_count = ntiles_ * ntiles_;
  stats_ = SimStats{};
  stats_.pipeline_depth = 15;
  soft_error_ = robustness::SoftErrorInjector(options_.soft_error);

  scale_log2_ = options_.fixed_scale_log2 != INT_MIN
                    ? options_.fixed_scale_log2
                    : dp::auto_scale_log2(in.values);
  const double scale = std::ldexp(1.0, scale_log2_);
  const double descale = 1.0 / scale;

  const auto m = static_cast<std::int64_t>(in.size());
  const std::int64_t half_shift =
      static_cast<std::int64_t>(w) << (dp::kCoordFracBits - 1);

  // Precompute per-sample quantized coordinates and values (host-side DMA
  // buffer contents).
  std::vector<std::int64_t> usz(static_cast<std::size_t>(m));
  std::vector<std::int64_t> usy(static_cast<std::size_t>(m));
  std::vector<std::int64_t> usx(static_cast<std::size_t>(m));
  std::vector<fixed::CData32> val(static_cast<std::size_t>(m));
  for (std::int64_t j = 0; j < m; ++j) {
    const auto& cj = in.coords[static_cast<std::size_t>(j)];
    usz[static_cast<std::size_t>(j)] =
        dp::quantize_coord(core::grid_coord(cj[0], g_)) + half_shift;
    usy[static_cast<std::size_t>(j)] =
        dp::quantize_coord(core::grid_coord(cj[1], g_)) + half_shift;
    usx[static_cast<std::size_t>(j)] =
        dp::quantize_coord(core::grid_coord(cj[2], g_)) + half_shift;
    val[static_cast<std::size_t>(j)] = fixed::CData32::from_c64(
        in.values[static_cast<std::size_t>(j)] * scale);
  }

  // The z dimension is selected against the absolute slice index: a select
  // configuration with one grid-spanning tile reproduces the distance /
  // LUT-address arithmetic bit-for-bit (T=G, ntiles=1).
  dp::SelectConfig zcfg = select_cfg_;
  zcfg.tile = g_;
  zcfg.ntiles = 1;

  // Optional host-side z-binning: sample indices per slice.
  std::vector<std::vector<std::int32_t>> zbins;
  if (z_binned) {
    zbins.assign(static_cast<std::size_t>(g_), {});
    for (std::int64_t j = 0; j < m; ++j) {
      for (std::int64_t z = 0; z < g_; ++z) {
        const dp::ColumnSelect sz =
            dp::select_column(usz[static_cast<std::size_t>(j)], z, zcfg);
        if (sz.affected) {
          zbins[static_cast<std::size_t>(z)].push_back(
              static_cast<std::int32_t>(j));
        }
      }
    }
  }

  for (std::int64_t z = 0; z < g_; ++z) {
    dice_.assign(static_cast<std::size_t>(t * t * tile_count),
                 fixed::CData32{});
    std::int64_t streamed = 0;
    auto process = [&](std::int64_t j) {
      ++streamed;
      const dp::ColumnSelect sz =
          dp::select_column(usz[static_cast<std::size_t>(j)], z, zcfg);
      if (!sz.affected) return;
      const fixed::CWeight16 wz{lut_->entry_fixed(sz.lut_index),
                                fixed::Weight16{}};
      ++stats_.lut_reads;
      broadcast_2d(usx[static_cast<std::size_t>(j)],
                   usy[static_cast<std::size_t>(j)],
                   val[static_cast<std::size_t>(j)], &wz);
    };
    if (z_binned) {
      for (const std::int32_t j : zbins[static_cast<std::size_t>(z)]) {
        process(j);
      }
    } else {
      for (std::int64_t j = 0; j < m; ++j) process(j);
    }
    stats_.samples_streamed += streamed;
    if (streamed > 0) {
      stats_.gridding_cycles += streamed + stats_.pipeline_depth;
    }

    // Slice readout into the 3D grid.
    for (std::int64_t y = 0; y < g_; ++y) {
      for (std::int64_t x = 0; x < g_; ++x) {
        const std::int64_t col = (y % t) * t + (x % t);
        const std::int64_t tile_addr = (y / t) * ntiles_ + (x / t);
        out[(z * g_ + y) * g_ + x] =
            dice_[static_cast<std::size_t>(col * tile_count + tile_addr)]
                .to_c64() *
            descale;
      }
    }
    stats_.readout_cycles += (g_ * g_ + 1) / 2;
  }
  stats_.soft_error_flips = static_cast<long long>(soft_error_.flips());
  publish_sim_stats(stats_);
}

}  // namespace jigsaw::sim
