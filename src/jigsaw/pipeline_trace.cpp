#include "jigsaw/pipeline_trace.hpp"

namespace jigsaw::sim {

PipelineTraceResult trace_pipeline(long long m, const StageDepths& depths,
                                   long long stall_every,
                                   bool keep_snapshots) {
  JIGSAW_REQUIRE(m >= 0, "negative sample count");
  JIGSAW_REQUIRE(depths.select >= 1 && depths.weight_lookup >= 1 &&
                     depths.interpolate >= 1 && depths.accumulate >= 1,
                 "every stage needs >= 1 register");

  // One flat shift register: position p holds the sample whose age is p
  // cycles; stage boundaries partition the positions.
  const int depth = depths.total();
  std::vector<long long> regs(static_cast<std::size_t>(depth), -1);

  PipelineTraceResult result;
  long long issued = 0;
  long long since_stall = 0;

  auto occupied = [&] {
    for (long long v : regs) {
      if (v >= 0) return true;
    }
    return false;
  };

  long long cycle = 0;
  while (issued < m || occupied()) {
    // Shift: the last register retires.
    const long long retiring = regs[static_cast<std::size_t>(depth - 1)];
    for (int p = depth - 1; p > 0; --p) {
      regs[static_cast<std::size_t>(p)] = regs[static_cast<std::size_t>(p - 1)];
    }
    // Issue (or bubble) into select stage.
    long long entering = -1;
    if (issued < m) {
      const bool stall =
          stall_every > 0 && since_stall == stall_every;
      if (stall) {
        since_stall = 0;  // DMA bubble: nothing enters this cycle
      } else {
        entering = issued++;
        ++since_stall;
      }
    }
    regs[0] = entering;

    ++cycle;
    if (retiring >= 0) {
      ++result.retired;
      if (result.first_retire_cycle < 0) result.first_retire_cycle = cycle;
    } else if (result.first_retire_cycle >= 0 &&
               (issued < m || occupied())) {
      ++result.bubbles;
    }

    if (keep_snapshots) {
      CycleSnapshot snap;
      snap.cycle = cycle;
      auto slice = [&](int begin, int count) {
        return std::vector<long long>(
            regs.begin() + begin, regs.begin() + begin + count);
      };
      int off = 0;
      snap.select = slice(off, depths.select);
      off += depths.select;
      snap.weight_lookup = slice(off, depths.weight_lookup);
      off += depths.weight_lookup;
      snap.interpolate = slice(off, depths.interpolate);
      off += depths.interpolate;
      snap.accumulate = slice(off, depths.accumulate);
      snap.retired = retiring;
      result.cycles.push_back(std::move(snap));
    }
  }
  result.total_cycles = cycle;
  return result;
}

}  // namespace jigsaw::sim
