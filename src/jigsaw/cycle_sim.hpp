// Cycle-level simulator of the JIGSAW streaming accelerator (paper Sec. IV).
//
// Models the microarchitecture of Fig. 5: T^2 identical 32-bit fixed-point
// pipelines logically arranged as a 2D grid, each owning one column of the
// dice. Non-uniform samples arrive over a 128-bit bus, one per cycle, and
// are broadcast to all pipelines; each pipeline runs the four-stage
// select / weight-lookup / interpolate / accumulate datapath of
// core/jigsaw_datapath.hpp. The design is stall-free by construction, so
// gridding an M-sample stream takes exactly M + depth cycles (depth 12 for
// 2D, 15 for 3D Slice); after the stream completes, the grid is read out at
// two 64-bit points per cycle.
//
// Two variants, as in the paper:
//   * 2D        — grids a full 2D target in one pass.
//   * 3D Slice  — iterates over Nz 2D slices; the full unsorted stream is
//     replayed per slice ((M+15)*Nz cycles), or, when the host pre-bins
//     samples by slice, each sample is streamed only to the Wz slices its
//     window touches ((M+15)*Wz cycles).
//
// The arithmetic is the shared datapath, so results are bit-exact with
// core::JigsawGridder (asserted in tests).
#pragma once

#include <cstdint>
#include <vector>

#include "core/grid.hpp"
#include "core/gridder.hpp"
#include "core/jigsaw_datapath.hpp"
#include "core/sample_set.hpp"
#include "kernels/lut.hpp"
#include "robustness/soft_error.hpp"

namespace jigsaw::sim {

/// Hardware resource limits (paper Table I / Sec. IV).
struct HardwareLimits {
  std::int64_t max_grid_n = 1024;      // accumulation SRAM holds 1024^2 points
  std::int32_t max_weight_entries = 256;  // per-pipeline weight SRAM
  int max_width = 8;
  int max_table_oversampling = 64;
  int max_tile = 8;
};

/// Activity counters and timing of one simulated run.
struct SimStats {
  long long samples_streamed = 0;   // bus beats carrying samples
  long long gridding_cycles = 0;    // M + depth (per slice, summed)
  long long readout_cycles = 0;     // grid_points / 2 (128-bit bus)
  long long stall_cycles = 0;       // always 0 — asserted, not assumed
  long long selects = 0;            // per-pipeline select operations
  long long lut_reads = 0;
  long long weight_combines = 0;
  long long macs = 0;               // interpolation multiplies
  long long accum_writes = 0;
  long long saturations = 0;
  long long soft_error_flips = 0;   // injected accumulation-SRAM bit flips
  int pipeline_depth = 0;
  double clock_ghz = 1.0;

  double gridding_seconds() const {
    return static_cast<double>(gridding_cycles) / (clock_ghz * 1e9);
  }
  double total_seconds() const {
    return static_cast<double>(gridding_cycles + readout_cycles) /
           (clock_ghz * 1e9);
  }
};

class CycleSim {
 public:
  /// Same construction parameters as the core gridders: base grid size N and
  /// a GridderOptions (kind is ignored). `three_d` selects the 3D Slice
  /// variant. Enforces the hardware limits of Table I.
  CycleSim(std::int64_t base_n, const core::GridderOptions& options,
           bool three_d, HardwareLimits limits = HardwareLimits{});

  std::int64_t grid_size() const { return g_; }
  const SimStats& stats() const { return stats_; }
  int scale_log2() const { return scale_log2_; }

  /// 2D gridding run: stream `in` once, then read the grid out into `out`
  /// (side G). Requires a 2D-variant simulator.
  void run_2d(const core::SampleSet<2>& in, core::Grid<2>& out);

  /// 3D Slice gridding run. When `z_binned` is set, the host pre-sorts the
  /// samples by slice and streams each sample only to the slices its
  /// Wz-window touches. Requires a 3D-variant simulator.
  void run_3d(const core::SampleSet<3>& in, core::Grid<3>& out, bool z_binned);

  /// Forward (re-gridding) run for the forward NuFFT: the grid is streamed
  /// into the accumulation SRAM, then one sample is produced per cycle by
  /// gathering its W^2 windowed contributions through the same select /
  /// weight-lookup / interpolate datapath. Bit-exact with
  /// core::JigsawGridder::forward (tested). Timing: grid stream-in
  /// (grid_points/2 beats) + M + depth cycles.
  void run_2d_forward(const core::Grid<2>& in, core::SampleSet<2>& out);

  /// Raw fixed-point dice contents after run_2d (bit-exactness tests).
  const std::vector<fixed::CData32>& dice() const { return dice_; }

  /// Required host-to-device bandwidth (bytes/s) to sustain one sample per
  /// cycle: 128 bits per beat at the configured clock (~16 GB/s at 1 GHz,
  /// within the paper's quoted DDR4-class ~20 GB/s).
  double required_bandwidth_bytes_per_s() const;

 private:
  /// Broadcast one (possibly z-weighted) sample to all pipelines.
  void broadcast_2d(std::int64_t usx_q, std::int64_t usy_q,
                    fixed::CData32 value, const fixed::CWeight16* z_weight);

  std::int64_t n_;
  std::int64_t g_;
  core::GridderOptions options_;
  bool three_d_;
  std::unique_ptr<kernels::Kernel> kernel_;
  std::unique_ptr<kernels::KernelLut> lut_;
  core::datapath::SelectConfig select_cfg_;
  std::int64_t ntiles_;
  std::vector<fixed::CData32> dice_;  // per-pipeline accumulation SRAM
  SimStats stats_;
  // Soft-error campaign hook on the accumulation SRAM (GridderOptions
  // .soft_error; inactive at the default rate of 0).
  robustness::SoftErrorInjector soft_error_;
  int scale_log2_ = 0;
};

}  // namespace jigsaw::sim
