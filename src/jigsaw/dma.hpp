// Host <-> JIGSAW DMA stream model (paper Sec. IV "System Integration").
//
// Input data is transmitted over a DMA stream, one 128-bit non-uniform
// sample record per accelerator cycle; at the synthesized 1.0 GHz clock
// this requires 16 GB/s — within DDR4-class (~20 GB/s) bandwidth, so the
// pipelines never starve. This model quantifies that claim: given a link
// bandwidth it computes the sustainable sample rate, the stall cycles the
// pipelines would suffer below the break-even bandwidth, and the
// end-to-end latency of the full offload (stream-in, gridding drain,
// stream-out) including the zero-gap turnaround the paper highlights.
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace jigsaw::sim {

struct DmaConfig {
  double link_bandwidth_bytes_per_s = 20e9;  // DDR4-class
  double clock_ghz = 1.0;
  int sample_record_bytes = 16;   // 128-bit: coordinates + complex value
  int grid_point_bytes = 8;       // 64-bit complex grid point
  int grid_points_per_beat = 2;   // two points per 128-bit beat
  double turnaround_cycles = 0.0; // gap between in-stream end and out-stream
                                  // start (0 for JIGSAW: fully provisioned)
};

struct DmaTimeline {
  double stream_in_seconds = 0.0;
  double compute_drain_seconds = 0.0;  // pipeline depth after last sample
  double stream_out_seconds = 0.0;
  long long stall_cycles = 0;          // pipeline idle cycles waiting on data

  double total_seconds() const {
    return stream_in_seconds + compute_drain_seconds + stream_out_seconds;
  }
};

/// Bandwidth needed to sustain one sample per cycle.
inline double break_even_bandwidth(const DmaConfig& cfg) {
  return static_cast<double>(cfg.sample_record_bytes) * cfg.clock_ghz * 1e9;
}

/// True when the link keeps the pipelines stall-free.
inline bool stall_free(const DmaConfig& cfg) {
  return cfg.link_bandwidth_bytes_per_s >= break_even_bandwidth(cfg);
}

/// End-to-end offload timeline for gridding M samples onto a G^2 grid.
inline DmaTimeline offload_timeline(const DmaConfig& cfg, long long m,
                                    long long grid_points,
                                    int pipeline_depth) {
  JIGSAW_REQUIRE(m >= 0 && grid_points >= 0, "negative workload");
  JIGSAW_REQUIRE(cfg.link_bandwidth_bytes_per_s > 0, "bandwidth must be > 0");
  DmaTimeline t;
  const double cycle_s = 1.0 / (cfg.clock_ghz * 1e9);

  // Stream-in: limited by the slower of the link and the 1-sample/cycle
  // ingest port.
  const double link_in =
      static_cast<double>(m) * cfg.sample_record_bytes /
      cfg.link_bandwidth_bytes_per_s;
  const double port_in = static_cast<double>(m) * cycle_s;
  t.stream_in_seconds = link_in > port_in ? link_in : port_in;
  t.stall_cycles = static_cast<long long>(
      (t.stream_in_seconds - port_in) / cycle_s + 0.5);

  t.compute_drain_seconds =
      (static_cast<double>(pipeline_depth) + cfg.turnaround_cycles) * cycle_s;

  const double link_out =
      static_cast<double>(grid_points) * cfg.grid_point_bytes /
      cfg.link_bandwidth_bytes_per_s;
  const double port_out = static_cast<double>(grid_points) /
                          cfg.grid_points_per_beat * cycle_s;
  t.stream_out_seconds = link_out > port_out ? link_out : port_out;
  return t;
}

}  // namespace jigsaw::sim
