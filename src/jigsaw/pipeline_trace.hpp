// Stage-accurate pipeline occupancy model (paper Fig. 5 / Sec. IV).
//
// CycleSim models timing with the paper-validated closed form (M + depth
// cycles); this companion model walks the actual stage registers cycle by
// cycle to *demonstrate* that the closed form follows from the
// microarchitecture: a new sample enters select every cycle, each stage
// hands its latch to the next with no back-pressure, and the accumulate
// stage retires one sample per cycle after the pipeline fills. Stage
// depths: select 4, weight-lookup 3, interpolate 3, accumulate 2 (= 12 for
// 2D); the 3D Slice variant deepens select and lookup by 1 each, plus one
// extra interpolate cycle (= 15).
//
// The trace records, for every cycle, which sample id occupies each stage
// (-1 = bubble), so tests can assert fill/drain behaviour, full-throughput
// steady state, and the absence of structural hazards.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace jigsaw::sim {

struct StageDepths {
  int select = 4;
  int weight_lookup = 3;
  int interpolate = 3;
  int accumulate = 2;

  int total() const {
    return select + weight_lookup + interpolate + accumulate;
  }

  static StageDepths for_2d() { return {4, 3, 3, 2}; }
  static StageDepths for_3d_slice() { return {5, 4, 4, 2}; }
};

/// One cycle of the trace: the sample id resident in each stage register
/// (position 0 = just entered the stage), and the id retired this cycle.
struct CycleSnapshot {
  long long cycle = 0;
  std::vector<long long> select;
  std::vector<long long> weight_lookup;
  std::vector<long long> interpolate;
  std::vector<long long> accumulate;
  long long retired = -1;  // sample id completing accumulation, -1 if none
};

struct PipelineTraceResult {
  std::vector<CycleSnapshot> cycles;
  long long total_cycles = 0;
  long long retired = 0;
  long long first_retire_cycle = -1;  // == depth for a full stream
  long long bubbles = 0;              // idle accumulate slots after fill
};

/// Simulate streaming `m` samples (ids 0..m-1), one per cycle, with an
/// optional per-sample stall pattern (`stall_every` > 0 inserts a bubble
/// after every stall_every-th sample — modeling an underprovisioned DMA
/// link; 0 = stall-free as in the paper).
PipelineTraceResult trace_pipeline(long long m, const StageDepths& depths,
                                   long long stall_every = 0,
                                   bool keep_snapshots = true);

}  // namespace jigsaw::sim
