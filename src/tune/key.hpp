// Geometry key for the autotuning subsystem.
//
// A TuneKey names an equivalence class of gridding problems: everything the
// engine-selection decision depends on (grid size, sample count, kernel
// width, oversampling, dimensionality, coil count, thread budget) and
// nothing it doesn't — deliberately NOT the trajectory hash the serve
// scheduler keys its plan pool on, so one wisdom entry covers every
// trajectory of the same shape. The hash is the same FNV-1a the serve
// layer uses for its plan keys (see serve/engine.cpp), applied to a packed
// canonical encoding of the fields.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "core/gridder.hpp"

namespace jigsaw::tune {

struct TuneKey {
  int dims = 2;            // 1, 2 or 3
  std::int64_t n = 128;    // base grid side N (oversampled side is sigma*N)
  std::int64_t m = 0;      // non-uniform sample count M
  int width = 6;           // interpolation kernel width W
  double sigma = 2.0;      // grid oversampling factor
  int coils = 1;
  unsigned threads = 1;    // thread budget the tuned config may use

  auto operator<=>(const TuneKey&) const = default;

  /// FNV-1a over the packed canonical field encoding.
  std::uint64_t hash() const;

  /// hash() as 16 lowercase hex digits — the "key" field of a wisdom entry.
  std::string hex() const;

  /// Human-readable form, e.g. "2d/n128/m65536/w6/s2/c1/t4".
  std::string label() const;

  /// Build a key from a gridding configuration plus the geometry the
  /// options struct does not carry.
  static TuneKey of(int dims, std::int64_t n, std::int64_t m,
                    const core::GridderOptions& options, int coils,
                    unsigned threads);
};

std::uint64_t fnv1a(const void* data, std::size_t len);

}  // namespace jigsaw::tune
