#include "tune/cost_model.hpp"

#include <cmath>
#include <limits>

namespace jigsaw::tune {
namespace {

double pow_d(double base, int d) {
  double r = 1.0;
  for (int i = 0; i < d; ++i) r *= base;
  return r;
}

std::int64_t oversampled_side(const TuneKey& key) {
  return std::llround(key.sigma * static_cast<double>(key.n));
}

}  // namespace

bool config_constructible(core::GridderKind kind, const TuneKey& key,
                          int tile) {
  const std::int64_t g = oversampled_side(key);
  if (g < key.width) return false;  // gridder_base precondition
  switch (kind) {
    case core::GridderKind::SliceDice:
      // slice_dice_gridder: T >= W and T | G.
      return tile >= key.width && tile >= 1 && g % tile == 0;
    case core::GridderKind::Binning: {
      // binning_gridder: B | G, G > W, and enough tiles that a window
      // never wraps onto the same tile twice.
      if (tile < 1 || g % tile != 0 || g <= key.width) return false;
      return g / tile >= (key.width - 1) / tile + 2;
    }
    case core::GridderKind::OutputDriven:
      return g > key.width;
    default:
      return true;  // serial/sparse: tile-free, base precondition only
  }
}

double cost_model_cost(core::GridderKind kind, const TuneKey& key, int tile) {
  const double m = static_cast<double>(key.m);
  const double w = static_cast<double>(key.width);
  const double g = std::llround(key.sigma * static_cast<double>(key.n));
  const double p = static_cast<double>(key.threads < 1 ? 1 : key.threads);
  const double wd = pow_d(w, key.dims);

  switch (kind) {
    case core::GridderKind::Serial:
      return m * wd;
    case core::GridderKind::SliceDice:
      // Two-part coordinate decomposition per sample plus the parallel
      // window walk; ~5% bookkeeping overhead keeps serial the winner on a
      // one-thread budget, where it genuinely is.
      return m * key.dims + m * wd * 1.05 / p;
    case core::GridderKind::Binning: {
      const double dup =
          pow_d((static_cast<double>(tile) + w) / static_cast<double>(tile),
                key.dims);
      return m + m * wd * dup / p;
    }
    case core::GridderKind::Sparse:
      // CSR setup costs ~3x one application and amortizes over plan reuse
      // (assume 8 executions per plan, the batch/CG usage pattern).
      return m * wd * (1.0 + 3.0 / 8.0);
    case core::GridderKind::OutputDriven:
      return m * pow_d(g, key.dims) / p;
    case core::GridderKind::Jigsaw:
    case core::GridderKind::FloatSerial:
    case core::GridderKind::Auto:
      // Approximate-arithmetic engines and the sentinel are never picked by
      // the model: they change numerics, not just speed.
      return std::numeric_limits<double>::infinity();
  }
  return std::numeric_limits<double>::infinity();
}

CostModelChoice cost_model_decide(const TuneKey& key) {
  const core::GridderKind kinds[] = {
      core::GridderKind::Serial, core::GridderKind::SliceDice,
      core::GridderKind::Binning, core::GridderKind::Sparse};
  const int tiles[] = {4, 8, 16, 32};
  const unsigned threads = key.threads < 1 ? 1 : key.threads;

  // Serial is the unconditional fallback: tile-free and constructible
  // wherever anything is, so a geometry no tiled engine fits (e.g. an
  // oversampled side none of the candidate tiles divides) still resolves
  // instead of hard-failing at plan construction.
  CostModelChoice best;
  best.kind = core::GridderKind::Serial;
  best.tile = 8;  // informational; serial ignores it
  best.threads = threads;
  double best_cost = cost_model_cost(best.kind, key, best.tile);
  for (const auto kind : kinds) {
    if (kind == core::GridderKind::Serial) continue;
    for (const int tile : tiles) {
      if (!config_constructible(kind, key, tile)) continue;
      const double cost = cost_model_cost(kind, key, tile);
      if (cost < best_cost) {
        best_cost = cost;
        best.kind = kind;
        best.tile = tile;
        best.threads = threads;
      }
      // Tile size only enters the binning estimate; the first
      // constructible tile suffices for slice-and-dice, and sparse is
      // tile-free entirely.
      if (kind != core::GridderKind::Binning) break;
    }
  }
  return best;
}

}  // namespace jigsaw::tune
