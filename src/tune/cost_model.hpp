// Analytic cost model — the trial-free fallback for cold geometry keys.
//
// When calibration trials are disabled (serve daemons that must not burn
// dispatcher time, --no-trials offline runs) or impossible (dims the trial
// harness does not cover), the tuner falls back to closed-form work
// estimates derived from the same interpolation/boundary-check counts the
// obs layer validates against the engines (see docs/tuning.md for the
// formulas and test_obs_counters for the counter oracles):
//
//   serial         M * W^d                      (single-threaded by design)
//   slice-dice     M*d split + M * W^d / P      (paper Sec. III; no presort)
//   binning        M presort + dup * M * W^d / P,  dup = ((T + W) / T)^d
//   sparse         M * W^d * (1 + setup/reuse)  (CSR setup amortized)
//   output-driven  M * G^d / P                  (the Sec. II-C strawman)
//
// P = thread budget, T = tile size, G = sigma*N. The estimates are relative
// (arbitrary unit): only their order matters.
#pragma once

#include "core/gridder.hpp"
#include "tune/key.hpp"

namespace jigsaw::tune {

/// True when engine `kind` with tile size `tile` can actually be
/// constructed for the key's oversampled grid G = round(sigma * N) —
/// mirrors the constructor JIGSAW_REQUIREs of each engine (T >= W for
/// slice-and-dice, tile | G, the binning wrap limit). Both the trial
/// candidate list and the cost model filter through this so Auto never
/// hands back a configuration that throws at plan-construction time on
/// the REAL geometry (trials run on a capped one).
bool config_constructible(core::GridderKind kind, const TuneKey& key,
                          int tile);

/// Relative cost of running engine `kind` (tile size `tile` where it
/// applies) on geometry `key` with `key.threads` threads.
double cost_model_cost(core::GridderKind kind, const TuneKey& key, int tile);

struct CostModelChoice {
  core::GridderKind kind = core::GridderKind::SliceDice;
  int tile = 8;
  unsigned threads = 1;
};

/// Cheapest (engine, tile, threads) configuration under the model.
CostModelChoice cost_model_decide(const TuneKey& key);

}  // namespace jigsaw::tune
