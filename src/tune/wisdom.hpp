// Persistent wisdom store for autotuning decisions (FFTW-wisdom-style).
//
// One JSON document per file:
//
//   {
//     "kind": "jigsaw-wisdom",
//     "schema_version": 1,
//     "entries": [
//       {"key": "<16 hex digits of TuneKey::hash()>",
//        "dims": 2, "n": 64, "m": 32768, "width": 6, "sigma": 2,
//        "coils": 1, "threads": 2,
//        "engine": "slice-and-dice", "simd": false, "tile": 8,
//        "exec_threads": 2, "trial_ms": 1.37, "source": "trial"}, ...
//     ]
//   }
//
// The schema lives in scripts/wisdom_schema.json and is validated by
// scripts/validate_bench.py. Robustness contract:
//   * load() never throws on bad content — an unparseable / wrong-kind /
//     wrong-version file reports corrupt=true and leaves the store empty
//     (the tuner re-tunes and the next save() overwrites the wreck);
//     individually damaged entries (bad engine name, key/field mismatch)
//     are skipped and counted, keeping the intact ones.
//   * save() is an atomic merge-and-rewrite: re-read the on-disk document,
//     overlay the in-memory entries (local wins per key), write
//     <path>.tmp.<pid>, then rename(2) over the destination — a concurrent
//     reader sees either the old or the new document, never a torn one,
//     and concurrent tuners of DIFFERENT keys do not drop each other's
//     entries. I/O failure throws.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/gridder.hpp"
#include "tune/key.hpp"

namespace jigsaw::tune {

inline constexpr int kWisdomSchemaVersion = 1;

struct WisdomEntry {
  TuneKey key;
  core::GridderKind kind = core::GridderKind::SliceDice;
  bool simd = false;          // SIMD variant of the engine won the trials.
                              // Replaying such an entry on a host without
                              // vector units still works: the micro-kernel
                              // dispatch falls back to its scalar table.
  int tile = 8;
  unsigned exec_threads = 1;  // thread count the winning config ran with
  double trial_ms = 0.0;      // winning calibration time (best rep)
};

class WisdomStore {
 public:
  struct LoadResult {
    bool file_present = false;
    bool corrupt = false;       // document-level damage: nothing loaded
    std::size_t entries = 0;    // entries accepted
    std::size_t skipped = 0;    // entries individually rejected
  };

  /// Replace the in-memory contents with the document at `path`.
  LoadResult load(const std::string& path);

  /// Atomic merge-and-rewrite of `path`: on-disk entries for keys this
  /// store does not hold are preserved. Throws std::runtime_error on I/O
  /// failure ("wisdom path not writable: ...").
  void save(const std::string& path) const;

  void put(const WisdomEntry& entry) { entries_[entry.key] = entry; }
  const WisdomEntry* find(const TuneKey& key) const {
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }
  std::size_t size() const { return entries_.size(); }
  const std::map<TuneKey, WisdomEntry>& entries() const { return entries_; }

  /// $JIGSAW_WISDOM, else ~/.jigsaw_wisdom.json, else ./.jigsaw_wisdom.json.
  static std::string default_path();

 private:
  std::map<TuneKey, WisdomEntry> entries_;
};

}  // namespace jigsaw::tune
