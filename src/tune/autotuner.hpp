// Autotuner: geometry-keyed engine selection with persistent wisdom.
//
// Given a TuneKey (the geometry equivalence class) the tuner resolves
// GridderKind::Auto to a concrete (engine, tile, threads) configuration,
// in priority order:
//
//   1. in-process memo / loaded wisdom  -> tune.hits, zero work
//   2. calibration trials (when enabled) -> tune.misses + tune.trials:
//      short timed adjoint runs of every candidate config on a capped,
//      deterministic synthetic problem of the key's shape, each validated
//      against the serial oracle grid (relative L2 within `tolerance`);
//      the fastest correct config wins, is memoized, and — when a wisdom
//      path is configured — persisted via WisdomStore's atomic rewrite
//   3. the analytic cost model (trials disabled / untrialable dims)
//      -> tune.misses + tune.cost_model; memoized but NOT persisted, so a
//      later trial-enabled process still gets to measure
//
// Concurrency: decide() has plan-cache-style once semantics — concurrent
// queries for the same cold key block on a condition variable while exactly
// one caller runs the trials; everyone then returns the same decision
// (asserted by test_tune's 8-thread suite). Trials run outside the lock.
//
// Every outcome is mirrored to obs counters under tune.* and to an
// OBS-OFF-safe TunerStats the tests assert against.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "core/gridder.hpp"
#include "tune/key.hpp"
#include "tune/wisdom.hpp"

namespace jigsaw::tune {

struct TunerConfig {
  std::string wisdom_path;      // "" = in-memory only (no persistence)
  bool enable_trials = true;    // false = cost-model fallback for cold keys
  double trial_seconds = 0.03;  // per-candidate timing budget
  int trial_reps = 3;           // per-candidate repetitions (best-of)
  double tolerance = 1e-9;      // max relative L2 deviation vs serial oracle
};

enum class DecisionSource { kWisdom, kTrial, kCostModel };
const char* to_string(DecisionSource s);

struct TuneDecision {
  core::GridderKind kind = core::GridderKind::SliceDice;
  bool simd = false;      // winning config uses the SIMD engine variant
  int tile = 8;
  unsigned threads = 1;
  double trial_ms = 0.0;  // winning candidate's best rep (0 for cost model)
  DecisionSource source = DecisionSource::kCostModel;
};

/// Point-in-time totals (monotonic), available with JIGSAW_OBS=OFF; each is
/// mirrored to the obs counter named in the comment.
struct TunerStats {
  std::uint64_t hits = 0;           // tune.hits   (memo or wisdom)
  std::uint64_t misses = 0;         // tune.misses (cold keys)
  std::uint64_t sessions = 0;       // tune.sessions (trial sessions run)
  std::uint64_t trials = 0;         // tune.trials (candidate configs timed)
  std::uint64_t rejected = 0;       // tune.rejected (failed oracle check)
  std::uint64_t cost_model = 0;     // tune.cost_model (model fallbacks)
  std::uint64_t wisdom_entries = 0; // entries loaded from the wisdom file
  std::uint64_t wisdom_corrupt = 0; // tune.wisdom_corrupt (docs + entries)
  std::uint64_t wisdom_saves = 0;   // tune.wisdom_saves
};

class Autotuner {
 public:
  /// Loads the wisdom file (when configured). A corrupt file is recovered
  /// from silently (counted in stats().wisdom_corrupt); an UNWRITABLE
  /// wisdom path with trials enabled throws std::runtime_error immediately
  /// ("wisdom path not writable: ...") — failing before trial time is
  /// spent, not after.
  explicit Autotuner(TunerConfig config = {});

  Autotuner(const Autotuner&) = delete;
  Autotuner& operator=(const Autotuner&) = delete;

  /// Resolve `key` to a concrete configuration. Thread-safe; a cold key is
  /// tuned exactly once per process. `base` supplies the fields trials must
  /// respect (kernel type, width, sigma, table oversampling).
  TuneDecision decide(const TuneKey& key, const core::GridderOptions& base);

  /// decide() + apply(): `base` with kind/tile/threads substituted.
  core::GridderOptions tuned_options(const TuneKey& key,
                                     const core::GridderOptions& base);

  static core::GridderOptions apply(const TuneDecision& decision,
                                    core::GridderOptions base);

  TunerStats stats() const;
  const TunerConfig& config() const { return config_; }

 private:
  template <int D>
  TuneDecision run_trials(const TuneKey& key,
                          const core::GridderOptions& base);
  TuneDecision tune_cold(const TuneKey& key,
                         const core::GridderOptions& base);

  const TunerConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<TuneKey, TuneDecision> memo_;
  std::set<TuneKey> in_progress_;
  WisdomStore wisdom_;
  TunerStats stats_;
};

}  // namespace jigsaw::tune
