#include "tune/wisdom.hpp"

#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace jigsaw::tune {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader — just enough for wisdom documents
// (objects, arrays, strings without exotic escapes, numbers, true/false/
// null). Any syntax violation throws; the loader maps that to corrupt=true.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object } type =
      Type::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue* get(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("wisdom json: " + std::string(what) +
                             " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  JsonValue value() {
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::String;
        v.str = string();
        return v;
      }
      case 't': return literal("true", JsonValue::Type::Bool, true);
      case 'f': return literal("false", JsonValue::Type::Bool, false);
      case 'n': return literal("null", JsonValue::Type::Null, false);
      default: return number();
    }
  }

  JsonValue literal(const char* word, JsonValue::Type type, bool b) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) fail("bad literal");
    pos_ += len;
    JsonValue v;
    v.type = type;
    v.b = b;
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.type = JsonValue::Type::Number;
    try {
      v.num = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: fail("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      const std::string key = string();
      expect(':');
      v.obj.emplace(key, value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected , or }");
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected , or ]");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Fetch an integral field; returns false when missing, non-numeric, or not
/// an exact integer.
bool get_i64(const JsonValue& obj, const std::string& key, std::int64_t* out) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr || v->type != JsonValue::Type::Number) return false;
  const double d = v->num;
  if (d != std::floor(d) || std::fabs(d) > 9.0e15) return false;
  *out = static_cast<std::int64_t>(d);
  return true;
}

bool get_f64(const JsonValue& obj, const std::string& key, double* out) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr || v->type != JsonValue::Type::Number) return false;
  *out = v->num;
  return true;
}

bool get_str(const JsonValue& obj, const std::string& key, std::string* out) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr || v->type != JsonValue::Type::String) return false;
  *out = v->str;
  return true;
}

bool get_bool(const JsonValue& obj, const std::string& key, bool* out) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr || v->type != JsonValue::Type::Bool) return false;
  *out = v->b;
  return true;
}

/// One wisdom entry from its JSON object. Returns false (skip, keep the
/// rest of the file) on any missing/mistyped field, unknown engine name, or
/// a stored key that does not match the hash of the stored fields.
bool parse_entry(const JsonValue& e, WisdomEntry* out) {
  if (e.type != JsonValue::Type::Object) return false;
  std::int64_t dims = 0, n = 0, m = 0, width = 0, coils = 0, threads = 0;
  std::int64_t tile = 0, exec_threads = 0;
  double sigma = 0.0, trial_ms = 0.0;
  std::string key_hex, engine;
  if (!get_i64(e, "dims", &dims) || !get_i64(e, "n", &n) ||
      !get_i64(e, "m", &m) || !get_i64(e, "width", &width) ||
      !get_f64(e, "sigma", &sigma) || !get_i64(e, "coils", &coils) ||
      !get_i64(e, "threads", &threads) || !get_i64(e, "tile", &tile) ||
      !get_i64(e, "exec_threads", &exec_threads) ||
      !get_str(e, "key", &key_hex) || !get_str(e, "engine", &engine)) {
    return false;
  }
  get_f64(e, "trial_ms", &trial_ms);  // informational; optional
  if (dims < 1 || dims > 3 || n < 2 || m < 1 || width < 1 || coils < 1 ||
      threads < 1 || tile < 1 || exec_threads < 1 || sigma <= 1.0) {
    return false;
  }
  WisdomEntry entry;
  entry.key.dims = static_cast<int>(dims);
  entry.key.n = n;
  entry.key.m = m;
  entry.key.width = static_cast<int>(width);
  entry.key.sigma = sigma;
  entry.key.coils = static_cast<int>(coils);
  entry.key.threads = static_cast<unsigned>(threads);
  try {
    entry.kind = core::parse_gridder_kind(engine);
  } catch (const std::invalid_argument&) {
    return false;
  }
  if (entry.kind == core::GridderKind::Auto) return false;  // never a decision
  // Optional "simd" flag (absent in pre-SIMD files -> false). A true flag on
  // an engine without a vectorized twin is a hand-edit/corruption: skip it.
  get_bool(e, "simd", &entry.simd);
  if (entry.simd && !core::gridder_kind_has_simd(entry.kind)) return false;
  entry.tile = static_cast<int>(tile);
  entry.exec_threads = static_cast<unsigned>(exec_threads);
  entry.trial_ms = trial_ms;
  // The stored hex is a checksum of the fields: a mismatch means the entry
  // was hand-edited or torn — drop it rather than serving a wrong decision.
  if (key_hex != entry.key.hex()) return false;
  *out = entry;
  return true;
}

}  // namespace

WisdomStore::LoadResult WisdomStore::load(const std::string& path) {
  entries_.clear();
  LoadResult result;
  std::ifstream f(path, std::ios::binary);
  if (!f) return result;  // absent file: empty store, not corrupt
  result.file_present = true;
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();

  JsonValue doc;
  try {
    doc = JsonParser(text).parse();
  } catch (const std::exception&) {
    result.corrupt = true;
    return result;
  }
  std::string kind;
  std::int64_t version = 0;
  const JsonValue* entries = doc.get("entries");
  if (doc.type != JsonValue::Type::Object ||
      !get_str(doc, "kind", &kind) || kind != "jigsaw-wisdom" ||
      !get_i64(doc, "schema_version", &version) ||
      version != kWisdomSchemaVersion || entries == nullptr ||
      entries->type != JsonValue::Type::Array) {
    result.corrupt = true;
    return result;
  }
  for (const JsonValue& e : entries->arr) {
    WisdomEntry entry;
    if (parse_entry(e, &entry)) {
      entries_[entry.key] = entry;
      ++result.entries;
    } else {
      ++result.skipped;
    }
  }
  return result;
}

void WisdomStore::save(const std::string& path) const {
  // Merge-on-write: other processes sharing this wisdom file hold only
  // their own entries in memory, so rewriting from ours alone would drop
  // every key they tuned since we loaded. Re-read the current document and
  // overlay the local entries (local decisions win on key conflicts).
  // There is still a read->rename window between two simultaneous savers,
  // but losing an update now requires both to tune the SAME key inside it,
  // not merely different keys.
  std::map<TuneKey, WisdomEntry> merged;
  {
    WisdomStore disk;
    disk.load(path);  // absent/corrupt -> empty: nothing worth keeping
    merged = std::move(disk.entries_);
  }
  for (const auto& [key, entry] : entries_) merged[key] = entry;

  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("wisdom path not writable: " + path);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"kind\": \"jigsaw-wisdom\",\n");
  std::fprintf(f, "  \"schema_version\": %d,\n", kWisdomSchemaVersion);
  std::fprintf(f, "  \"entries\": [\n");
  std::size_t i = 0;
  for (const auto& [key, e] : merged) {
    std::fprintf(
        f,
        "    {\"key\": \"%s\", \"dims\": %d, \"n\": %lld, \"m\": %lld, "
        "\"width\": %d, \"sigma\": %.17g, \"coils\": %d, \"threads\": %u, "
        "\"engine\": \"%s\", \"simd\": %s, \"tile\": %d, "
        "\"exec_threads\": %u, "
        "\"trial_ms\": %.6g, \"source\": \"trial\"}%s\n",
        key.hex().c_str(), key.dims, static_cast<long long>(key.n),
        static_cast<long long>(key.m), key.width, key.sigma, key.coils,
        key.threads, core::to_string(e.kind).c_str(),
        e.simd ? "true" : "false", e.tile, e.exec_threads,
        e.trial_ms, ++i == merged.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  const bool write_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!write_ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("wisdom path not writable: " + path);
  }
}

std::string WisdomStore::default_path() {
  if (const char* env = std::getenv("JIGSAW_WISDOM");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  if (const char* home = std::getenv("HOME");
      home != nullptr && home[0] != '\0') {
    return std::string(home) + "/.jigsaw_wisdom.json";
  }
  return ".jigsaw_wisdom.json";
}

}  // namespace jigsaw::tune
