#include "tune/key.hpp"

#include <cstdio>

namespace jigsaw::tune {

std::uint64_t fnv1a(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t TuneKey::hash() const {
  // Packed canonical encoding: fixed-width integers plus the raw double, so
  // the hash is stable across processes on one platform (the same contract
  // the serve plan key makes — wisdom files never leave the machine class
  // they were tuned on).
  struct {
    std::int64_t dims, n, m, width, coils, threads;
    double sigma;
  } packed{dims, n, m, width, coils, static_cast<std::int64_t>(threads),
           sigma};
  return fnv1a(&packed, sizeof packed);
}

std::string TuneKey::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash()));
  return buf;
}

std::string TuneKey::label() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%dd/n%lld/m%lld/w%d/s%g/c%d/t%u", dims,
                static_cast<long long>(n), static_cast<long long>(m), width,
                sigma, coils, threads);
  return buf;
}

TuneKey TuneKey::of(int dims, std::int64_t n, std::int64_t m,
                    const core::GridderOptions& options, int coils,
                    unsigned threads) {
  TuneKey key;
  key.dims = dims;
  key.n = n;
  key.m = m;
  key.width = options.width;
  key.sigma = options.sigma;
  key.coils = coils;
  key.threads = threads;
  return key;
}

}  // namespace jigsaw::tune
