#include "tune/autotuner.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "tune/cost_model.hpp"
#include "common/timer.hpp"
#include "core/grid.hpp"
#include "core/sample_set.hpp"
#include "kernels/simd/simd.hpp"
#include "obs/obs.hpp"

namespace jigsaw::tune {
namespace {

// Calibration problems are representative, not full-size: trial cost must be
// amortizable by a single real reconstruction. The caps keep a 2D trial
// session in the tens of milliseconds.
constexpr std::int64_t kTrialMaxSamples = 32768;
constexpr std::int64_t kTrialMaxN = 128;
// Sparse (CSR) setup materializes M*W^d weights; skip the candidate when
// that table alone would dwarf the trial problem.
constexpr double kSparseWeightCap = 2.0e6;

struct Candidate {
  core::GridderKind kind;
  int tile;
  unsigned threads;
  bool simd = false;
};

std::vector<Candidate> candidate_list(const TuneKey& key,
                                      const TuneKey& trial_key,
                                      int base_tile, bool simd_variants) {
  // A candidate must be constructible at the REAL geometry — that is what
  // the caller builds after the decision, and what wisdom persists — AND at
  // the capped trial geometry we actually time. Checking only the trial
  // grid (e.g. N capped to 128, G=256) would let a tile win that the real
  // grid (say N=130, G=260) rejects at plan construction.
  const auto ok = [&](core::GridderKind kind, int tile) {
    return config_constructible(kind, key, tile) &&
           config_constructible(kind, trial_key, tile);
  };
  std::vector<Candidate> out;
  // Every scalar engine with a vectorized twin gets that twin as a
  // first-class candidate (same tile/threads) when the host has an active
  // SIMD ISA — the trial decides per geometry whether vectorization wins.
  const auto push = [&](core::GridderKind kind, int tile, unsigned t) {
    out.push_back({kind, tile, t, false});
    if (simd_variants && core::gridder_kind_has_simd(kind)) {
      out.push_back({kind, tile, t, true});
    }
  };
  push(core::GridderKind::Serial, base_tile, 1);
  std::vector<unsigned> thread_variants{1};
  if (key.threads > 1) thread_variants.push_back(key.threads);
  for (const unsigned t : thread_variants) {
    for (const int tile : {4, 8, 16}) {
      if (!ok(core::GridderKind::SliceDice, tile)) continue;
      push(core::GridderKind::SliceDice, tile, t);
    }
    for (const int tile : {8, 16}) {
      if (!ok(core::GridderKind::Binning, tile)) continue;
      push(core::GridderKind::Binning, tile, t);
    }
  }
  const double weights =
      static_cast<double>(std::min(key.m, kTrialMaxSamples)) *
      std::pow(static_cast<double>(key.width), key.dims);
  if (weights <= kSparseWeightCap) {
    out.push_back({core::GridderKind::Sparse, base_tile, 1, false});
  }
  // OutputDriven is deliberately absent: O(M * G^d) makes it the Sec. II-C
  // strawman, never a winner, and its trial alone would cost more than the
  // whole session. Jigsaw/FloatSerial are excluded because Auto must not
  // change numerics (see cost_model.cpp).
  return out;
}

template <int D>
double grid_rel_l2(const core::Grid<D>& got, const core::Grid<D>& want) {
  double num = 0.0;
  double den = 0.0;
  for (std::int64_t i = 0; i < want.total(); ++i) {
    num += std::norm(got[i] - want[i]);
    den += std::norm(want[i]);
  }
  return den == 0.0 ? std::sqrt(num) : std::sqrt(num / den);
}

/// Writability preflight. WisdomStore::save writes <path>.tmp.<pid> and
/// rename(2)s it over <path>, so the CONTAINING DIRECTORY must be writable
/// in every case — a writable file inside a read-only directory still
/// cannot be saved. Catches read-only stores before any trial time is
/// spent (and before the CLI has gridded anything).
bool path_writable(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : path.substr(0, slash));
  if (::access(dir.c_str(), W_OK) != 0) return false;
  // An existing read-only file is somebody else's: refuse to clobber it
  // even though rename(2) technically could.
  return ::access(path.c_str(), F_OK) != 0 ||
         ::access(path.c_str(), W_OK) == 0;
}

}  // namespace

const char* to_string(DecisionSource s) {
  switch (s) {
    case DecisionSource::kWisdom: return "wisdom";
    case DecisionSource::kTrial: return "trial";
    case DecisionSource::kCostModel: return "cost-model";
  }
  return "?";
}

Autotuner::Autotuner(TunerConfig config) : config_(std::move(config)) {
  if (config_.wisdom_path.empty()) return;
  const auto loaded = wisdom_.load(config_.wisdom_path);
  stats_.wisdom_entries = loaded.entries;
  if (loaded.corrupt || loaded.skipped > 0) {
    const std::uint64_t bad =
        static_cast<std::uint64_t>(loaded.skipped) + (loaded.corrupt ? 1 : 0);
    stats_.wisdom_corrupt = bad;
    obs::add("tune.wisdom_corrupt", bad);
  }
  if (config_.enable_trials && !path_writable(config_.wisdom_path)) {
    throw std::runtime_error("wisdom path not writable: " +
                             config_.wisdom_path);
  }
}

core::GridderOptions Autotuner::apply(const TuneDecision& decision,
                                      core::GridderOptions base) {
  base.kind = decision.kind;
  base.simd = decision.simd;
  base.tile = decision.tile;
  base.threads = decision.threads;
  return base;
}

core::GridderOptions Autotuner::tuned_options(
    const TuneKey& key, const core::GridderOptions& base) {
  return apply(decide(key, base), base);
}

TunerStats Autotuner::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

TuneDecision Autotuner::decide(const TuneKey& key,
                               const core::GridderOptions& base) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (const auto it = memo_.find(key); it != memo_.end()) {
        ++stats_.hits;
        obs::add("tune.hits", 1);
        return it->second;
      }
      if (const WisdomEntry* e = wisdom_.find(key); e != nullptr) {
        TuneDecision d;
        d.kind = e->kind;
        d.simd = e->simd;
        d.tile = e->tile;
        d.threads = e->exec_threads;
        d.trial_ms = e->trial_ms;
        d.source = DecisionSource::kWisdom;
        memo_[key] = d;
        ++stats_.hits;
        obs::add("tune.hits", 1);
        return d;
      }
      if (in_progress_.count(key) == 0) break;
      cv_.wait(lock);  // another thread is tuning this key; reuse its result
    }
    in_progress_.insert(key);
    ++stats_.misses;
    obs::add("tune.misses", 1);
  }

  TuneDecision decision;
  try {
    decision = tune_cold(key, base);  // trials run without the lock held
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    in_progress_.erase(key);
    cv_.notify_all();
    throw;
  }

  std::unique_lock<std::mutex> lock(mu_);
  memo_[key] = decision;
  if (decision.source == DecisionSource::kTrial &&
      !config_.wisdom_path.empty()) {
    WisdomEntry entry;
    entry.key = key;
    entry.kind = decision.kind;
    entry.simd = decision.simd;
    entry.tile = decision.tile;
    entry.exec_threads = decision.threads;
    entry.trial_ms = decision.trial_ms;
    wisdom_.put(entry);
    try {
      wisdom_.save(config_.wisdom_path);
      ++stats_.wisdom_saves;
      obs::add("tune.wisdom_saves", 1);
    } catch (...) {
      in_progress_.erase(key);
      cv_.notify_all();
      throw;
    }
  }
  in_progress_.erase(key);
  cv_.notify_all();
  return decision;
}

TuneDecision Autotuner::tune_cold(const TuneKey& key,
                                  const core::GridderOptions& base) {
  if (config_.enable_trials) {
    try {
      switch (key.dims) {
        case 1: return run_trials<1>(key, base);
        case 2: return run_trials<2>(key, base);
        case 3: return run_trials<3>(key, base);
        default: break;  // untrialable dims: fall through to the model
      }
    } catch (const std::exception&) {
      // A trial harness failure (engine rejected the geometry, allocation
      // failure on an oversized candidate) must not sink the request — the
      // model always has an answer.
    }
  }
  const CostModelChoice choice = cost_model_decide(key);
  TuneDecision d;
  d.kind = choice.kind;
  d.tile = choice.tile;
  d.threads = choice.threads;
  d.trial_ms = 0.0;
  d.source = DecisionSource::kCostModel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cost_model;
  }
  obs::add("tune.cost_model", 1);
  return d;
}

template <int D>
TuneDecision Autotuner::run_trials(const TuneKey& key,
                                   const core::GridderOptions& base) {
  const std::int64_t n = std::min(key.n, kTrialMaxN);
  const std::int64_t m = std::max<std::int64_t>(
      1, std::min(key.m, kTrialMaxSamples));
  TuneKey trial_key = key;  // the geometry the trials actually construct
  trial_key.n = n;
  trial_key.m = m;

  // Deterministic synthetic problem: seeded by the key, so every process
  // that tunes a given geometry times the exact same workload.
  Rng rng(key.hash());
  core::SampleSet<D> samples;
  samples.coords.resize(static_cast<std::size_t>(m));
  samples.values.resize(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    auto& c = samples.coords[static_cast<std::size_t>(i)];
    for (int d = 0; d < D; ++d) {
      c[static_cast<std::size_t>(d)] = rng.uniform(-0.5, 0.5);
    }
    samples.values[static_cast<std::size_t>(i)] =
        c64{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  }

  core::GridderOptions trial_base = base;
  trial_base.width = key.width;
  trial_base.sigma = key.sigma;
  trial_base.sanitize = robustness::SanitizePolicy::None;
  trial_base.soft_error = {};

  // Serial oracle: reference grid every candidate must reproduce.
  core::GridderOptions oracle_options = trial_base;
  oracle_options.kind = core::GridderKind::Serial;
  oracle_options.threads = 1;
  auto oracle = core::make_gridder<D>(n, oracle_options);
  core::Grid<D> reference(oracle->grid_size());
  oracle->adjoint(samples, reference);

  std::uint64_t timed = 0;
  std::uint64_t rejected = 0;
  TuneDecision best;
  double best_s = 1e300;
  // SIMD twins are only worth timing when the dispatcher resolved a vector
  // ISA; exact_weights has no LUT to vectorize, so its trials stay scalar.
  const bool simd_variants =
      kernels::simd::active() != kernels::simd::Isa::Scalar &&
      !trial_base.exact_weights;

  core::Grid<D> grid(oracle->grid_size());
  for (const Candidate& cand :
       candidate_list(key, trial_key, base.tile, simd_variants)) {
    core::GridderOptions options = trial_base;
    options.kind = cand.kind;
    options.simd = cand.simd;
    options.tile = cand.tile;
    options.threads = cand.threads;
    std::unique_ptr<core::Gridder<D>> gridder;
    try {
      gridder = core::make_gridder<D>(n, options);
      gridder->adjoint(samples, grid);
    } catch (const std::exception&) {
      ++rejected;
      continue;  // a candidate the engine rejects is not a winner
    }
    if (grid_rel_l2<D>(grid, reference) > config_.tolerance) {
      ++rejected;
      continue;
    }
    const double s = time_best([&] { gridder->adjoint(samples, grid); },
                               config_.trial_seconds, config_.trial_reps);
    ++timed;
    if (s < best_s) {
      best_s = s;
      best.kind = cand.kind;
      best.simd = cand.simd;
      best.tile = cand.tile;
      best.threads = cand.threads;
    }
  }
  if (timed == 0) {
    throw std::runtime_error("autotuner: no candidate passed validation");
  }
  best.trial_ms = best_s * 1e3;
  best.source = DecisionSource::kTrial;

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sessions;
    stats_.trials += timed;
    stats_.rejected += rejected;
  }
  obs::add("tune.sessions", 1);
  obs::add("tune.trials", timed);
  if (rejected > 0) obs::add("tune.rejected", rejected);
  return best;
}

template TuneDecision Autotuner::run_trials<1>(const TuneKey&,
                                               const core::GridderOptions&);
template TuneDecision Autotuner::run_trials<2>(const TuneKey&,
                                               const core::GridderOptions&);
template TuneDecision Autotuner::run_trials<3>(const TuneKey&,
                                               const core::GridderOptions&);

}  // namespace jigsaw::tune
