#include "kernels/simd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

namespace jigsaw::kernels::simd {

// Every per-ISA translation unit defines its accessor unconditionally; on
// the wrong architecture it returns nullptr ("not compiled in").
namespace detail {
const KernelTable* scalar_table();
const KernelTable* avx2_table();
const KernelTable* avx512_table();
const KernelTable* neon_table();
}  // namespace detail

namespace {

constexpr const char* kModeNames = "auto, scalar, avx2, avx512, neon";

const KernelTable* table_of(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return detail::scalar_table();
    case Isa::Avx2: return detail::avx2_table();
    case Isa::Avx512: return detail::avx512_table();
    case Isa::Neon: return detail::neon_table();
  }
  return nullptr;
}

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return true;
    case Isa::Avx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0;
#else
      return false;
#endif
    case Isa::Avx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
#else
      return false;
#endif
    case Isa::Neon:
      // NEON is baseline on aarch64; compiled(Neon) is false elsewhere.
      return compiled(Isa::Neon);
  }
  return false;
}

Isa detect_best() {
  for (const Isa isa : {Isa::Avx512, Isa::Avx2, Isa::Neon}) {
    if (compiled(isa) && cpu_supports(isa)) return isa;
  }
  return Isa::Scalar;
}

Isa parse_mode(const std::string& mode) {
  if (mode == "scalar") return Isa::Scalar;
  if (mode == "avx2") return Isa::Avx2;
  if (mode == "avx512") return Isa::Avx512;
  if (mode == "neon") return Isa::Neon;
  throw std::invalid_argument("unknown simd mode '" + mode +
                              "', valid: " + std::string(kModeNames));
}

Isa resolve_mode(const std::string& mode) {
  if (mode.empty() || mode == "auto") return detect_best();
  const Isa isa = parse_mode(mode);
  if (!supported(isa)) {
    throw std::invalid_argument("simd mode '" + mode +
                                "' not supported on this host, supported: " +
                                supported_names());
  }
  return isa;
}

// -1 = not yet resolved. force() wins over $JIGSAW_SIMD wins over detection.
std::atomic<int> g_active{-1};

}  // namespace

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
    case Isa::Neon: return "neon";
  }
  return "?";
}

bool compiled(Isa isa) { return table_of(isa) != nullptr; }

bool supported(Isa isa) { return compiled(isa) && cpu_supports(isa); }

std::string supported_names() {
  std::string out;
  for (const Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Avx512, Isa::Neon}) {
    if (!supported(isa)) continue;
    if (!out.empty()) out += ", ";
    out += to_string(isa);
  }
  return out;
}

Isa active() {
  const int cur = g_active.load(std::memory_order_acquire);
  if (cur >= 0) return static_cast<Isa>(cur);
  const char* env = std::getenv("JIGSAW_SIMD");
  const Isa resolved = resolve_mode(env == nullptr ? std::string() : env);
  int expected = -1;
  g_active.compare_exchange_strong(expected, static_cast<int>(resolved),
                                   std::memory_order_acq_rel);
  return static_cast<Isa>(g_active.load(std::memory_order_acquire));
}

void force(const std::string& mode) {
  g_active.store(static_cast<int>(resolve_mode(mode)),
                 std::memory_order_release);
}

const KernelTable& table() { return table(active()); }

const KernelTable& table(Isa isa) {
  const KernelTable* t = table_of(isa);
  if (t == nullptr || !cpu_supports(isa)) {
    throw std::invalid_argument(
        std::string("simd mode '") + to_string(isa) +
        "' not supported on this host, supported: " + supported_names());
  }
  return *t;
}

LutView lut_view(const KernelLut& lut) {
  LutView v;
  v.table = lut.data();
  v.scale = static_cast<double>(lut.oversampling());
  v.last = static_cast<std::int32_t>(lut.entries()) - 1;
  return v;
}

}  // namespace jigsaw::kernels::simd
