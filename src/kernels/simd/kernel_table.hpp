// SIMD gridding micro-kernels: the per-ISA primitive set behind the
// vectorized engine variants (serial-simd, slice-dice-simd, binning-simd).
//
// The engines stay in charge of window arithmetic, tiling, and counters;
// the micro-kernels only do the flat inner work: gathering Kaiser-Bessel
// LUT weights for a 1-D window, complex axpy/dot over a contiguous window
// row, and the output-driven boundary-check/accumulate over a staged bin.
//
// Numeric contract: LUT *indices* are computed with exactly KernelLut's
// truncation-based rounding, so every weight is bit-identical to the scalar
// engines'; only accumulation order and FMA contraction may differ. Engines
// therefore agree with their scalar twins to rel-L2 well below the 1e-9
// differential-test bound, but not bit-for-bit (see docs/benchmarking.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace jigsaw::kernels::simd {

/// Lane-capacity contract for weight buffers: lut_weights() stores full
/// vectors, so the destination must have room for `w` rounded up to this
/// many lanes (the engines' stack buffers are sized for it). Lanes past
/// `w` hold well-defined but meaningless weights.
inline constexpr int kWeightLanes = 8;

inline constexpr int weight_capacity(int w) {
  return (w + kWeightLanes - 1) / kWeightLanes * kWeightLanes;
}

/// Read-only gather view of a KernelLut (see simd::lut_view()).
struct LutView {
  const double* table = nullptr;  // W*L/2 entries covering [0, W/2)
  double scale = 0.0;             // L: index = trunc(|dist| * L + 0.5)
  std::int32_t last = 0;          // entries - 1 (out-of-support clamp)
};

/// Structure-of-arrays staging buffer for one bin of samples (binning
/// engine). Per dimension the sample's fractional grid coordinate u and its
/// integer window start g0 — stored as double, which is exact for any
/// realistic grid size — plus the complex value split into planes so the
/// accumulate vectorizes across samples.
struct BinSoa {
  std::vector<double> u[3];
  std::vector<double> g0[3];
  std::vector<double> re, im;

  std::size_t size() const { return re.size(); }

  void clear() {
    for (auto& v : u) v.clear();
    for (auto& v : g0) v.clear();
    re.clear();
    im.clear();
  }
};

/// One ISA's micro-kernel set. Obtained via simd::table(); never constructed
/// outside the per-ISA translation units.
struct KernelTable {
  const char* name;

  /// wt[o] = LUT weight at signed distance (g0 + o) - u for o in [0, w).
  /// Stores weight_capacity(w) lanes — see the capacity contract above.
  void (*lut_weights)(const LutView& lut, double u, std::int64_t g0, int w,
                      double* wt);

  /// out[o] += wt[o] * f for o in [0, w). Exact-length stores: `out` is a
  /// window row of live grid memory.
  void (*axpy)(c64* out, const double* wt, int w, c64 f);

  /// Returns the window row's weighted sum: sum of wt[o] * in[o], o in
  /// [0, w). Exact-length loads.
  c64 (*dot)(const c64* in, const double* wt, int w);

  /// Fused adjoint window: scatter f times the separable W^dims weight
  /// stencil for the sample at grid coordinate u (dims components, slowest
  /// dimension first, window starts g0) into the G^dims grid `out`. Handles
  /// torus wrap-around internally (wrapped rows fall back to scalar indexed
  /// stores with the same gathered weights). One call per sample.
  void (*scatter)(const LutView& lut, int dims, const double* u,
                  const std::int64_t* g0, std::int64_t g, int w, c64 f,
                  c64* out);

  /// Fused forward window: returns the W^dims weighted sum of `in` around
  /// the sample at u. Same conventions as scatter.
  c64 (*gather)(const LutView& lut, int dims, const double* u,
                const std::int64_t* g0, std::int64_t g, int w, const c64* in);

  /// Output-driven accumulate of grid point p (dims components) against a
  /// staged bin: fold p - g0 onto the torus per dimension, reject samples
  /// whose offset falls outside the window, multiply the per-dimension LUT
  /// weights of the rest into the accumulator. Boundary and LUT-index
  /// arithmetic are bit-identical to BinningGridder's scalar loop. Adds the
  /// accepted-sample count to *interp and returns the accumulated value.
  c64 (*bin_point)(const BinSoa& soa, const LutView& lut, int dims,
                   const std::int64_t* p, std::int64_t g, int w,
                   std::uint64_t* interp);
};

}  // namespace jigsaw::kernels::simd
