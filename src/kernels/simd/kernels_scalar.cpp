// Portable scalar micro-kernels — the fallback every host can run, and the
// reference the vectorized tables are differentially tested against. The
// arithmetic (LUT index rounding, boundary folding) is kept line-for-line
// equivalent to the scalar engines so a forced-scalar dispatch is exact.
#include "kernels/simd/kernel_table.hpp"

namespace jigsaw::kernels::simd {
namespace {

inline double lut_entry(const LutView& lut, double dist) {
  const double a = dist < 0.0 ? -dist : dist;
  std::int32_t i = static_cast<std::int32_t>(a * lut.scale + 0.5);
  if (i > lut.last) i = lut.last;
  return lut.table[i];
}

void lut_weights(const LutView& lut, double u, std::int64_t g0, int w,
                 double* wt) {
  const double base = static_cast<double>(g0) - u;
  const int cap = weight_capacity(w);
  for (int o = 0; o < cap; ++o) {
    wt[o] = lut_entry(lut, base + static_cast<double>(o));
  }
}

void axpy(c64* out, const double* wt, int w, c64 f) {
  for (int o = 0; o < w; ++o) out[o] += wt[o] * f;
}

c64 dot(const c64* in, const double* wt, int w) {
  c64 acc{};
  for (int o = 0; o < w; ++o) acc += wt[o] * in[o];
  return acc;
}

c64 bin_point(const BinSoa& soa, const LutView& lut, int dims,
              const std::int64_t* p, std::int64_t g, int w,
              std::uint64_t* interp) {
  const double gd = static_cast<double>(g);
  const double wd = static_cast<double>(w);
  const std::size_t m = soa.size();
  double acc_re = 0.0;
  double acc_im = 0.0;
  std::uint64_t hits = 0;
  for (std::size_t j = 0; j < m; ++j) {
    double wt = 1.0;
    bool inside = true;
    for (int d = 0; d < dims; ++d) {
      const double g0 = soa.g0[static_cast<std::size_t>(d)][j];
      // pos_mod(p - g0, g) in the double domain: the raw offset lies in
      // (-g, 2g) (window starts reach at most one period off the grid), so
      // one fold per side lands in [0, g) — exact integer arithmetic.
      double o = static_cast<double>(p[d]) - g0;
      if (o < 0.0) o += gd;
      if (o >= gd) o -= gd;
      if (o >= wd) {
        inside = false;
        break;
      }
      wt *= lut_entry(lut, (g0 + o) - soa.u[static_cast<std::size_t>(d)][j]);
    }
    if (!inside) continue;
    acc_re += wt * soa.re[j];
    acc_im += wt * soa.im[j];
    ++hits;
  }
  *interp += hits;
  return {acc_re, acc_im};
}

#include "kernels/simd/window_body.inc"

constexpr KernelTable kTable{"scalar", lut_weights, axpy, dot,
                             scatter, gather, bin_point};

}  // namespace

namespace detail {
const KernelTable* scalar_table() { return &kTable; }
}  // namespace detail

}  // namespace jigsaw::kernels::simd
