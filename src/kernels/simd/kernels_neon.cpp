// NEON micro-kernels for aarch64 (2 doubles / 1 complex per vector).
//
// NEON has no gather, so the LUT index path stays scalar (it is already
// bit-identical to the engines); the win is the complex axpy/dot FMA and
// the two-sample-wide boundary fold in bin_point. Same rel-L2 contract as
// the x86 tables.
#if defined(__aarch64__)

#include <arm_neon.h>

#include "kernels/simd/kernel_table.hpp"

namespace jigsaw::kernels::simd {
namespace {

inline double lut_entry(const LutView& lut, double dist) {
  const double a = dist < 0.0 ? -dist : dist;
  std::int32_t i = static_cast<std::int32_t>(a * lut.scale + 0.5);
  if (i > lut.last) i = lut.last;
  return lut.table[i];
}

void lut_weights(const LutView& lut, double u, std::int64_t g0, int w,
                 double* wt) {
  const double base = static_cast<double>(g0) - u;
  const int cap = weight_capacity(w);
  for (int o = 0; o < cap; ++o) {
    wt[o] = lut_entry(lut, base + static_cast<double>(o));
  }
}

void axpy(c64* out, const double* wt, int w, c64 f) {
  auto* o = reinterpret_cast<double*>(out);
  const float64x2_t fv = {f.real(), f.imag()};
  for (int k = 0; k < w; ++k) {
    float64x2_t acc = vld1q_f64(o + 2 * k);
    acc = vfmaq_n_f64(acc, fv, wt[k]);
    vst1q_f64(o + 2 * k, acc);
  }
}

c64 dot(const c64* in, const double* wt, int w) {
  const auto* p = reinterpret_cast<const double*>(in);
  float64x2_t acc = vdupq_n_f64(0.0);
  for (int k = 0; k < w; ++k) {
    acc = vfmaq_n_f64(acc, vld1q_f64(p + 2 * k), wt[k]);
  }
  return {vgetq_lane_f64(acc, 0), vgetq_lane_f64(acc, 1)};
}

c64 bin_point(const BinSoa& soa, const LutView& lut, int dims,
              const std::int64_t* p, std::int64_t g, int w,
              std::uint64_t* interp) {
  const double gd = static_cast<double>(g);
  const double wd = static_cast<double>(w);
  const float64x2_t gv = vdupq_n_f64(gd);
  const float64x2_t wv = vdupq_n_f64(wd);
  const std::size_t m = soa.size();
  float64x2_t acc_re = vdupq_n_f64(0.0);
  float64x2_t acc_im = vdupq_n_f64(0.0);
  std::uint64_t hits = 0;
  std::size_t j = 0;
  for (; j + 2 <= m; j += 2) {
    uint64x2_t mask = vdupq_n_u64(~0ULL);
    float64x2_t wt = vdupq_n_f64(1.0);
    for (int d = 0; d < dims; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      const float64x2_t g0 = vld1q_f64(soa.g0[ds].data() + j);
      // pos_mod(p - g0, g): raw offset in (-g, 2g), one fold per side.
      float64x2_t o =
          vsubq_f64(vdupq_n_f64(static_cast<double>(p[d])), g0);
      const uint64x2_t neg = vcltzq_f64(o);
      o = vbslq_f64(neg, vaddq_f64(o, gv), o);
      const uint64x2_t hi = vcgeq_f64(o, gv);
      o = vbslq_f64(hi, vsubq_f64(o, gv), o);
      mask = vandq_u64(mask, vcltq_f64(o, wv));
      const float64x2_t dist =
          vsubq_f64(vaddq_f64(g0, o), vld1q_f64(soa.u[ds].data() + j));
      // No gather on NEON: look the two lanes up scalar.
      const float64x2_t wd2 = {lut_entry(lut, vgetq_lane_f64(dist, 0)),
                               lut_entry(lut, vgetq_lane_f64(dist, 1))};
      wt = vmulq_f64(wt, wd2);
    }
    wt = vreinterpretq_f64_u64(
        vandq_u64(vreinterpretq_u64_f64(wt), mask));
    acc_re = vfmaq_f64(acc_re, wt, vld1q_f64(soa.re.data() + j));
    acc_im = vfmaq_f64(acc_im, wt, vld1q_f64(soa.im.data() + j));
    hits += (vgetq_lane_u64(mask, 0) != 0 ? 1 : 0) +
            (vgetq_lane_u64(mask, 1) != 0 ? 1 : 0);
  }
  double re = vgetq_lane_f64(acc_re, 0) + vgetq_lane_f64(acc_re, 1);
  double im = vgetq_lane_f64(acc_im, 0) + vgetq_lane_f64(acc_im, 1);
  for (; j < m; ++j) {
    double wt = 1.0;
    bool inside = true;
    for (int d = 0; d < dims; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      const double g0 = soa.g0[ds][j];
      double o = static_cast<double>(p[d]) - g0;
      if (o < 0.0) o += gd;
      if (o >= gd) o -= gd;
      if (o >= wd) {
        inside = false;
        break;
      }
      wt *= lut_entry(lut, (g0 + o) - soa.u[ds][j]);
    }
    if (!inside) continue;
    re += wt * soa.re[j];
    im += wt * soa.im[j];
    ++hits;
  }
  *interp += hits;
  return {re, im};
}

#include "kernels/simd/window_body.inc"

constexpr KernelTable kTable{"neon", lut_weights, axpy, dot,
                             scatter, gather, bin_point};

}  // namespace

namespace detail {
const KernelTable* neon_table() { return &kTable; }
}  // namespace detail

}  // namespace jigsaw::kernels::simd

#else  // non-aarch64: not compiled in

#include "kernels/simd/kernel_table.hpp"

namespace jigsaw::kernels::simd::detail {
const KernelTable* neon_table() { return nullptr; }
}  // namespace jigsaw::kernels::simd::detail

#endif
