// AVX2 + FMA micro-kernels (4 doubles / 2 complex per vector).
//
// LUT indices keep KernelLut's exact rounding — |dist| * L + 0.5 with the
// multiply and add as separate ops (truncating convert, double-domain clamp
// commutes with the truncation because the clamp bound is an integer) — so
// gathered weights are bit-identical to the scalar engines. FMA is used
// only in the accumulations, where the rel-L2 contract applies.
#if defined(__x86_64__) || defined(__i386__)

// GCC builds the unmasked gather intrinsics on _mm256_undefined_pd(), which
// -W(maybe-)uninitialized flags at every inline site (GCC PR105593).
// Nothing is actually read uninitialized.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

#include <immintrin.h>

#include "kernels/simd/kernel_table.hpp"

namespace jigsaw::kernels::simd {
namespace {

inline __m256d abs_pd(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

/// Gather 4 LUT weights for 4 signed distances.
inline __m256d gather4(const LutView& lut, __m256d dist) {
  const __m256d t = _mm256_add_pd(
      _mm256_mul_pd(abs_pd(dist), _mm256_set1_pd(lut.scale)),
      _mm256_set1_pd(0.5));
  const __m256d clamped =
      _mm256_min_pd(t, _mm256_set1_pd(static_cast<double>(lut.last)));
  const __m128i idx = _mm256_cvttpd_epi32(clamped);
  return _mm256_i32gather_pd(lut.table, idx, 8);
}

void lut_weights(const LutView& lut, double u, std::int64_t g0, int w,
                 double* wt) {
  // (g0 - u) + o is exact for every lane (all quantities are multiples of
  // ulp(u) with small magnitude), hence identical to the scalar
  // (g0 + o) - u.
  const __m256d base = _mm256_add_pd(
      _mm256_set1_pd(static_cast<double>(g0) - u),
      _mm256_setr_pd(0.0, 1.0, 2.0, 3.0));
  for (int o = 0; o < w; o += 4) {
    const __m256d dist =
        _mm256_add_pd(base, _mm256_set1_pd(static_cast<double>(o)));
    _mm256_storeu_pd(wt + o, gather4(lut, dist));  // capacity contract
  }
}

/// [wt[k], wt[k], wt[k+1], wt[k+1]] — weights duplicated across re/im.
inline __m256d dup2(const double* wt) {
  return _mm256_permute4x64_pd(_mm256_castpd128_pd256(_mm_loadu_pd(wt)),
                               0x50);
}

void axpy(c64* out, const double* wt, int w, c64 f) {
  auto* o = reinterpret_cast<double*>(out);
  const __m256d fv = _mm256_setr_pd(f.real(), f.imag(), f.real(), f.imag());
  int k = 0;
  for (; k + 2 <= w; k += 2) {
    __m256d acc = _mm256_loadu_pd(o + 2 * k);
    acc = _mm256_fmadd_pd(dup2(wt + k), fv, acc);
    _mm256_storeu_pd(o + 2 * k, acc);
  }
  if (k < w) {  // odd tail: one complex, exact-length 128-bit ops
    __m128d acc = _mm_loadu_pd(o + 2 * k);
    acc = _mm_fmadd_pd(_mm_set1_pd(wt[k]), _mm256_castpd256_pd128(fv), acc);
    _mm_storeu_pd(o + 2 * k, acc);
  }
}

c64 dot(const c64* in, const double* wt, int w) {
  const auto* p = reinterpret_cast<const double*>(in);
  __m256d acc = _mm256_setzero_pd();
  int k = 0;
  for (; k + 2 <= w; k += 2) {
    acc = _mm256_fmadd_pd(dup2(wt + k), _mm256_loadu_pd(p + 2 * k), acc);
  }
  __m128d lo = _mm_add_pd(_mm256_castpd256_pd128(acc),
                          _mm256_extractf128_pd(acc, 1));
  if (k < w) {
    lo = _mm_fmadd_pd(_mm_set1_pd(wt[k]), _mm_loadu_pd(p + 2 * k), lo);
  }
  double buf[2];
  _mm_storeu_pd(buf, lo);
  return {buf[0], buf[1]};
}

c64 bin_point(const BinSoa& soa, const LutView& lut, int dims,
              const std::int64_t* p, std::int64_t g, int w,
              std::uint64_t* interp) {
  const std::size_t m = soa.size();
  const __m256d gv = _mm256_set1_pd(static_cast<double>(g));
  const __m256d wv = _mm256_set1_pd(static_cast<double>(w));
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc_re = zero;
  __m256d acc_im = zero;
  std::uint64_t hits = 0;
  std::size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    __m256d mask = _mm256_cmp_pd(zero, zero, _CMP_EQ_OQ);  // all lanes on
    __m256d wt = _mm256_set1_pd(1.0);
    for (int d = 0; d < dims; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      const __m256d g0 = _mm256_loadu_pd(soa.g0[ds].data() + j);
      // pos_mod(p - g0, g): raw offset in (-g, 2g), one fold per side.
      __m256d o = _mm256_sub_pd(_mm256_set1_pd(static_cast<double>(p[d])),
                                g0);
      const __m256d neg = _mm256_cmp_pd(o, zero, _CMP_LT_OQ);
      o = _mm256_add_pd(o, _mm256_and_pd(neg, gv));
      const __m256d hi = _mm256_cmp_pd(o, gv, _CMP_GE_OQ);
      o = _mm256_sub_pd(o, _mm256_and_pd(hi, gv));
      mask = _mm256_and_pd(mask, _mm256_cmp_pd(o, wv, _CMP_LT_OQ));
      // Rejected lanes still gather (their index clamps into the table);
      // the mask zeroes their weight before accumulation.
      const __m256d dist = _mm256_sub_pd(
          _mm256_add_pd(g0, o), _mm256_loadu_pd(soa.u[ds].data() + j));
      wt = _mm256_mul_pd(wt, gather4(lut, dist));
    }
    wt = _mm256_and_pd(wt, mask);
    acc_re = _mm256_fmadd_pd(wt, _mm256_loadu_pd(soa.re.data() + j), acc_re);
    acc_im = _mm256_fmadd_pd(wt, _mm256_loadu_pd(soa.im.data() + j), acc_im);
    hits += static_cast<unsigned>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(mask))));
  }
  double rbuf[4];
  double ibuf[4];
  _mm256_storeu_pd(rbuf, acc_re);
  _mm256_storeu_pd(ibuf, acc_im);
  double re = ((rbuf[0] + rbuf[1]) + (rbuf[2] + rbuf[3]));
  double im = ((ibuf[0] + ibuf[1]) + (ibuf[2] + ibuf[3]));
  // Scalar tail: same arithmetic as the scalar table.
  const double gd = static_cast<double>(g);
  const double wd = static_cast<double>(w);
  for (; j < m; ++j) {
    double wt = 1.0;
    bool inside = true;
    for (int d = 0; d < dims; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      const double g0 = soa.g0[ds][j];
      double o = static_cast<double>(p[d]) - g0;
      if (o < 0.0) o += gd;
      if (o >= gd) o -= gd;
      if (o >= wd) {
        inside = false;
        break;
      }
      const double dist = (g0 + o) - soa.u[ds][j];
      const double a = dist < 0.0 ? -dist : dist;
      std::int32_t i = static_cast<std::int32_t>(a * lut.scale + 0.5);
      if (i > lut.last) i = lut.last;
      wt *= lut.table[i];
    }
    if (!inside) continue;
    re += wt * soa.re[j];
    im += wt * soa.im[j];
    ++hits;
  }
  *interp += hits;
  return {re, im};
}

#include "kernels/simd/window_body.inc"

constexpr KernelTable kTable{"avx2", lut_weights, axpy, dot,
                             scatter, gather, bin_point};

}  // namespace

namespace detail {
const KernelTable* avx2_table() { return &kTable; }
}  // namespace detail

}  // namespace jigsaw::kernels::simd

#else  // non-x86: not compiled in

#include "kernels/simd/kernel_table.hpp"

namespace jigsaw::kernels::simd::detail {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace jigsaw::kernels::simd::detail

#endif
