// AVX-512 micro-kernels (8 doubles / 4 complex per vector; F+DQ+VL).
//
// Same numeric contract as the AVX2 table: bit-identical LUT weights
// (separate mul/add before the truncating convert, integer clamp bound),
// FMA only in the accumulations. Tails use mask registers instead of the
// AVX2 table's 128-bit fixups.
#if defined(__x86_64__) || defined(__i386__)

// GCC builds the unmasked AVX-512 intrinsics on _mm512_undefined_pd(),
// which -Wmaybe-uninitialized flags at every inline site (GCC PR105593).
// Nothing is actually read uninitialized.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

#include <immintrin.h>

#include "kernels/simd/kernel_table.hpp"

namespace jigsaw::kernels::simd {
namespace {

/// Gather 8 LUT weights for 8 signed distances.
inline __m512d gather8(const LutView& lut, __m512d dist) {
  const __m512d t = _mm512_add_pd(
      _mm512_mul_pd(_mm512_abs_pd(dist), _mm512_set1_pd(lut.scale)),
      _mm512_set1_pd(0.5));
  const __m512d clamped =
      _mm512_min_pd(t, _mm512_set1_pd(static_cast<double>(lut.last)));
  const __m256i idx = _mm512_cvttpd_epi32(clamped);
  return _mm512_i32gather_pd(idx, lut.table, 8);
}

void lut_weights(const LutView& lut, double u, std::int64_t g0, int w,
                 double* wt) {
  const __m512d base = _mm512_add_pd(
      _mm512_set1_pd(static_cast<double>(g0) - u),
      _mm512_setr_pd(0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0));
  for (int o = 0; o < w; o += 8) {
    const __m512d dist =
        _mm512_add_pd(base, _mm512_set1_pd(static_cast<double>(o)));
    _mm512_storeu_pd(wt + o, gather8(lut, dist));  // capacity contract
  }
}

/// Duplicate 4 weights across re/im lanes: [w0,w0,w1,w1,w2,w2,w3,w3].
inline __m512d dup4(__m256d wts) {
  const __m512i idx = _mm512_setr_epi64(0, 0, 1, 1, 2, 2, 3, 3);
  // zext (not cast): the permute only reads lanes 0..3, and a defined upper
  // half keeps -Wmaybe-uninitialized quiet.
  return _mm512_permutexvar_pd(idx, _mm512_zextpd256_pd512(wts));
}

void axpy(c64* out, const double* wt, int w, c64 f) {
  auto* o = reinterpret_cast<double*>(out);
  const double fpair[2] = {f.real(), f.imag()};
  const __m512d fv = _mm512_broadcast_f64x2(_mm_loadu_pd(fpair));
  int k = 0;
  for (; k + 4 <= w; k += 4) {
    __m512d acc = _mm512_loadu_pd(o + 2 * k);
    acc = _mm512_fmadd_pd(dup4(_mm256_loadu_pd(wt + k)), fv, acc);
    _mm512_storeu_pd(o + 2 * k, acc);
  }
  const int rem = w - k;  // 0..3 complex values
  if (rem > 0) {
    const auto wmask = static_cast<__mmask8>((1u << rem) - 1u);
    const auto cmask = static_cast<__mmask8>((1u << (2 * rem)) - 1u);
    // maskz weight load: dead lanes contribute exact zeros, and the masked
    // store never touches grid memory past the window row.
    const __m512d wv = dup4(_mm256_maskz_loadu_pd(wmask, wt + k));
    __m512d acc = _mm512_maskz_loadu_pd(cmask, o + 2 * k);
    acc = _mm512_fmadd_pd(wv, fv, acc);
    _mm512_mask_storeu_pd(o + 2 * k, cmask, acc);
  }
}

c64 dot(const c64* in, const double* wt, int w) {
  const auto* p = reinterpret_cast<const double*>(in);
  __m512d acc = _mm512_setzero_pd();
  int k = 0;
  for (; k + 4 <= w; k += 4) {
    acc = _mm512_fmadd_pd(dup4(_mm256_loadu_pd(wt + k)),
                          _mm512_loadu_pd(p + 2 * k), acc);
  }
  const int rem = w - k;
  if (rem > 0) {
    const auto wmask = static_cast<__mmask8>((1u << rem) - 1u);
    const auto cmask = static_cast<__mmask8>((1u << (2 * rem)) - 1u);
    acc = _mm512_fmadd_pd(dup4(_mm256_maskz_loadu_pd(wmask, wt + k)),
                          _mm512_maskz_loadu_pd(cmask, p + 2 * k), acc);
  }
  // Pairwise reduce keeping re/im lanes separate.
  __m256d lo = _mm256_add_pd(_mm512_castpd512_pd256(acc),
                             _mm512_extractf64x4_pd(acc, 1));
  __m128d v = _mm_add_pd(_mm256_castpd256_pd128(lo),
                         _mm256_extractf128_pd(lo, 1));
  double buf[2];
  _mm_storeu_pd(buf, v);
  return {buf[0], buf[1]};
}

c64 bin_point(const BinSoa& soa, const LutView& lut, int dims,
              const std::int64_t* p, std::int64_t g, int w,
              std::uint64_t* interp) {
  const std::size_t m = soa.size();
  const __m512d gv = _mm512_set1_pd(static_cast<double>(g));
  const __m512d wv = _mm512_set1_pd(static_cast<double>(w));
  const __m512d zero = _mm512_setzero_pd();
  __m512d acc_re = zero;
  __m512d acc_im = zero;
  std::uint64_t hits = 0;
  std::size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    __mmask8 mask = 0xFF;
    __m512d wt = _mm512_set1_pd(1.0);
    for (int d = 0; d < dims; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      const __m512d g0 = _mm512_loadu_pd(soa.g0[ds].data() + j);
      __m512d o = _mm512_sub_pd(_mm512_set1_pd(static_cast<double>(p[d])),
                                g0);
      const __mmask8 neg = _mm512_cmp_pd_mask(o, zero, _CMP_LT_OQ);
      o = _mm512_mask_add_pd(o, neg, o, gv);
      const __mmask8 hi = _mm512_cmp_pd_mask(o, gv, _CMP_GE_OQ);
      o = _mm512_mask_sub_pd(o, hi, o, gv);
      mask &= _mm512_cmp_pd_mask(o, wv, _CMP_LT_OQ);
      const __m512d dist = _mm512_sub_pd(
          _mm512_add_pd(g0, o), _mm512_loadu_pd(soa.u[ds].data() + j));
      wt = _mm512_mul_pd(wt, gather8(lut, dist));
    }
    wt = _mm512_maskz_mov_pd(mask, wt);
    acc_re =
        _mm512_fmadd_pd(wt, _mm512_loadu_pd(soa.re.data() + j), acc_re);
    acc_im =
        _mm512_fmadd_pd(wt, _mm512_loadu_pd(soa.im.data() + j), acc_im);
    hits += static_cast<unsigned>(__builtin_popcount(mask));
  }
  double rbuf[8];
  double ibuf[8];
  _mm512_storeu_pd(rbuf, acc_re);
  _mm512_storeu_pd(ibuf, acc_im);
  double re = 0.0;
  double im = 0.0;
  for (int i = 0; i < 8; ++i) {
    re += rbuf[i];
    im += ibuf[i];
  }
  const double gd = static_cast<double>(g);
  const double wd = static_cast<double>(w);
  for (; j < m; ++j) {
    double wt = 1.0;
    bool inside = true;
    for (int d = 0; d < dims; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      const double g0 = soa.g0[ds][j];
      double o = static_cast<double>(p[d]) - g0;
      if (o < 0.0) o += gd;
      if (o >= gd) o -= gd;
      if (o >= wd) {
        inside = false;
        break;
      }
      const double dist = (g0 + o) - soa.u[ds][j];
      const double a = dist < 0.0 ? -dist : dist;
      std::int32_t i = static_cast<std::int32_t>(a * lut.scale + 0.5);
      if (i > lut.last) i = lut.last;
      wt *= lut.table[i];
    }
    if (!inside) continue;
    re += wt * soa.re[j];
    im += wt * soa.im[j];
    ++hits;
  }
  *interp += hits;
  return {re, im};
}

#include "kernels/simd/window_body.inc"

constexpr KernelTable kTable{"avx512", lut_weights, axpy, dot,
                             scatter, gather, bin_point};

}  // namespace

namespace detail {
const KernelTable* avx512_table() { return &kTable; }
}  // namespace detail

}  // namespace jigsaw::kernels::simd

#else  // non-x86: not compiled in

#include "kernels/simd/kernel_table.hpp"

namespace jigsaw::kernels::simd::detail {
const KernelTable* avx512_table() { return nullptr; }
}  // namespace jigsaw::kernels::simd::detail

#endif
