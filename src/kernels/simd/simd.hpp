// Runtime ISA dispatch for the SIMD gridding micro-kernels.
//
// The per-ISA translation units (kernels_avx2.cpp, kernels_avx512.cpp,
// kernels_neon.cpp) are compiled with the matching -m flags; the rest of the
// tree stays at the baseline architecture and reaches vector code only
// through the function-pointer table returned by table(). The active ISA is
// resolved once, at first use: the best compiled-in ISA this CPU supports,
// overridable with the JIGSAW_SIMD environment variable or force() (the
// CLI's --simd flag). Accepted modes: auto|scalar|avx2|avx512|neon.
//
// The scalar table is always available, so a wisdom entry that recorded a
// SIMD engine variant still executes (at scalar speed) on a host without
// vector units.
#pragma once

#include <string>

#include "kernels/lut.hpp"
#include "kernels/simd/kernel_table.hpp"

namespace jigsaw::kernels::simd {

enum class Isa { Scalar = 0, Avx2, Avx512, Neon };

const char* to_string(Isa isa);

/// A translation unit for this ISA exists in the binary (architecture
/// match); says nothing about the CPU.
bool compiled(Isa isa);

/// Compiled in AND executable on this CPU.
bool supported(Isa isa);

/// Comma-separated list of the ISAs usable on this host, e.g.
/// "scalar, avx2, avx512".
std::string supported_names();

/// The ISA the micro-kernels currently dispatch to. Resolution order:
/// force() override, then $JIGSAW_SIMD, then best-supported detection.
Isa active();

/// Override the active ISA. "auto" (or "") re-runs detection; otherwise one
/// of scalar|avx2|avx512|neon. Throws std::invalid_argument with a one-line
/// diagnostic for an unknown mode ("unknown simd mode '<m>', valid: ...")
/// or a mode this host cannot execute ("simd mode '<m>' not supported on
/// this host, supported: ..."). Call at startup, before gridding threads
/// exist.
void force(const std::string& mode);

/// Micro-kernel table of the active ISA.
const KernelTable& table();

/// Table of a specific ISA (tests force cross-ISA comparisons with this).
/// Throws std::invalid_argument when the ISA is not usable on this host.
const KernelTable& table(Isa isa);

/// Gather view of a KernelLut for the vectorized weight path.
LutView lut_view(const KernelLut& lut);

}  // namespace jigsaw::kernels::simd
