#include "kernels/kernel.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "kernels/bessel.hpp"

namespace jigsaw::kernels {

namespace {
constexpr double kPi = std::numbers::pi;

double sinc(double x) {
  if (std::fabs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}
}  // namespace

std::string to_string(KernelType t) {
  switch (t) {
    case KernelType::KaiserBessel: return "kaiser-bessel";
    case KernelType::Gaussian: return "gaussian";
    case KernelType::BSpline: return "bspline";
    case KernelType::Triangle: return "triangle";
    case KernelType::Sinc: return "sinc-hann";
  }
  return "unknown";
}

double beatty_beta(int width, double sigma) {
  JIGSAW_REQUIRE(width >= 1, "kernel width must be >= 1");
  JIGSAW_REQUIRE(sigma > 1.0, "oversampling factor must be > 1");
  const double w = static_cast<double>(width);
  const double arg = (w / sigma) * (w / sigma) * (sigma - 0.5) * (sigma - 0.5)
                     - 0.8;
  JIGSAW_REQUIRE(arg > 0.0, "Beatty beta undefined for W=" << width
                                << ", sigma=" << sigma);
  return kPi * std::sqrt(arg);
}

double Kernel::fourier_numeric(double nu, int steps) const {
  // Trapezoid rule over the (even) support; integrand is even * cos.
  const double half = width_ / 2.0;
  const double h = half / steps;
  double sum = 0.5 * (evaluate(0.0) + evaluate(half) *
                                          std::cos(2.0 * kPi * nu * half));
  for (int i = 1; i < steps; ++i) {
    const double t = i * h;
    sum += evaluate(t) * std::cos(2.0 * kPi * nu * t);
  }
  return 2.0 * h * sum;
}

namespace {

class KaiserBesselKernel final : public Kernel {
 public:
  KaiserBesselKernel(int width, double sigma)
      : Kernel(width), beta_(beatty_beta(width, sigma)),
        inv_i0_beta_(1.0 / bessel_i0(beta_)) {}

  double evaluate(double t) const override {
    const double half = width_ / 2.0;
    const double u = t / half;
    const double arg = 1.0 - u * u;
    if (arg < 0.0) return 0.0;
    return bessel_i0(beta_ * std::sqrt(arg)) * inv_i0_beta_;
  }

  double fourier(double nu) const override {
    // FT of the KB window (e.g. Jackson et al. 1991):
    //   A(nu) = W / I0(beta) * sinh(sqrt(beta^2 - (pi W nu)^2)) / sqrt(...)
    // with the sqrt turning imaginary (sinh -> sin) past the mainlobe.
    const double w = static_cast<double>(width_);
    const double x = kPi * w * nu;
    const double d = beta_ * beta_ - x * x;
    double shape;
    if (d > 1e-12) {
      const double s = std::sqrt(d);
      shape = std::sinh(s) / s;
    } else if (d < -1e-12) {
      const double s = std::sqrt(-d);
      shape = std::sin(s) / s;
    } else {
      shape = 1.0;
    }
    return w * inv_i0_beta_ * shape;
  }

  KernelType type() const override { return KernelType::KaiserBessel; }
  double beta() const { return beta_; }

 private:
  double beta_;
  double inv_i0_beta_;
};

class GaussianKernel final : public Kernel {
 public:
  GaussianKernel(int width, double sigma) : Kernel(width) {
    // Dutt-Rokhlin style spread: tau = (W / (2 sigma)) * (1 / pi) * ...
    // We use the practical choice s = W/6 so the window decays to
    // e^{-4.5} ~ 0.011 at the truncation edge; the analytic FT below is for
    // the untruncated Gaussian (truncation error ~1%, validated in tests
    // against fourier_numeric()).
    (void)sigma;
    s_ = static_cast<double>(width) / 6.0;
  }

  double evaluate(double t) const override {
    if (std::fabs(t) > width_ / 2.0) return 0.0;
    return std::exp(-t * t / (2.0 * s_ * s_));
  }

  double fourier(double nu) const override {
    return std::sqrt(2.0 * kPi) * s_ *
           std::exp(-2.0 * kPi * kPi * s_ * s_ * nu * nu);
  }

  KernelType type() const override { return KernelType::Gaussian; }

 private:
  double s_;
};

class BSplineKernel final : public Kernel {
 public:
  explicit BSplineKernel(int width) : Kernel(width) {}

  double evaluate(double t) const override {
    // Cubic B-spline B3 has support [-2, 2]; rescale x = 4 t / W.
    const double x = std::fabs(4.0 * t / static_cast<double>(width_));
    if (x >= 2.0) return 0.0;
    if (x < 1.0) return (4.0 - 6.0 * x * x + 3.0 * x * x * x) / 6.0;
    const double d = 2.0 - x;
    return d * d * d / 6.0;
  }

  double fourier(double nu) const override {
    // FT of B3(x) is sinc^4(f); with t = (W/4) x the scale factor is W/4.
    const double f = nu * static_cast<double>(width_) / 4.0;
    const double s = sinc(f);
    return (static_cast<double>(width_) / 4.0) * s * s * s * s;
  }

  KernelType type() const override { return KernelType::BSpline; }
};

class SincHannKernel final : public Kernel {
 public:
  explicit SincHannKernel(int width) : Kernel(width) {}

  double evaluate(double t) const override {
    const double half = static_cast<double>(width_) / 2.0;
    if (std::fabs(t) > half) return 0.0;
    const double hann = 0.5 * (1.0 + std::cos(kPi * t / half));
    return sinc(t) * hann;
  }

  double fourier(double nu) const override {
    // No convenient closed form; the apodization profile is computed once
    // per plan, so quadrature is cheap and exact enough (validated against
    // fourier_numeric by construction).
    return fourier_numeric(nu);
  }

  KernelType type() const override { return KernelType::Sinc; }
};

class TriangleKernel final : public Kernel {
 public:
  explicit TriangleKernel(int width) : Kernel(width) {}

  double evaluate(double t) const override {
    const double u = std::fabs(2.0 * t / static_cast<double>(width_));
    return u >= 1.0 ? 0.0 : 1.0 - u;
  }

  double fourier(double nu) const override {
    const double f = nu * static_cast<double>(width_) / 2.0;
    const double s = sinc(f);
    return (static_cast<double>(width_) / 2.0) * s * s;
  }

  KernelType type() const override { return KernelType::Triangle; }
};

}  // namespace

std::unique_ptr<Kernel> make_kernel(KernelType type, int width, double sigma) {
  JIGSAW_REQUIRE(width >= 1 && width <= 64, "kernel width out of range");
  switch (type) {
    case KernelType::KaiserBessel:
      return std::make_unique<KaiserBesselKernel>(width, sigma);
    case KernelType::Gaussian:
      return std::make_unique<GaussianKernel>(width, sigma);
    case KernelType::BSpline:
      return std::make_unique<BSplineKernel>(width);
    case KernelType::Triangle:
      return std::make_unique<TriangleKernel>(width);
    case KernelType::Sinc:
      return std::make_unique<SincHannKernel>(width);
  }
  throw std::invalid_argument("jigsaw: unknown kernel type");
}

}  // namespace jigsaw::kernels
