#include "kernels/bessel.hpp"

#include <cmath>
#include <numbers>

namespace jigsaw::kernels {

double bessel_i0(double x) {
  const double ax = std::fabs(x);
  if (ax < 20.0) {
    // I0(x) = sum_{k>=0} (x^2/4)^k / (k!)^2
    const double q = ax * ax / 4.0;
    double term = 1.0;
    double sum = 1.0;
    for (int k = 1; k < 80; ++k) {
      term *= q / (static_cast<double>(k) * static_cast<double>(k));
      sum += term;
      if (term < sum * 1e-17) break;
    }
    return sum;
  }
  // Asymptotic: I0(x) ~ e^x / sqrt(2 pi x) * (1 + 1/(8x) + 9/(128 x^2) + ...)
  const double inv = 1.0 / ax;
  const double series =
      1.0 + inv * (0.125 + inv * (0.0703125 + inv * 0.0732421875));
  return std::exp(ax) / std::sqrt(2.0 * std::numbers::pi * ax) * series;
}

double bessel_j1(double x) {
  // Abramowitz & Stegun 9.4.4 / 9.4.6 style rational fits (as popularized by
  // Numerical Recipes). Odd function: J1(-x) = -J1(x).
  const double ax = std::fabs(x);
  double result;
  if (ax < 8.0) {
    const double y = x * x;
    const double p1 =
        x *
        (72362614232.0 +
         y * (-7895059235.0 +
              y * (242396853.1 + y * (-2972611.439 +
                                      y * (15704.48260 + y * -30.16036606)))));
    const double p2 =
        144725228442.0 +
        y * (2300535178.0 +
             y * (18583304.74 + y * (99447.43394 + y * (376.9991397 + y))));
    return p1 / p2;
  }
  const double z = 8.0 / ax;
  const double y = z * z;
  const double xx = ax - 2.356194491;  // 3*pi/4
  const double p1 = 1.0 + y * (0.183105e-2 +
                               y * (-0.3516396496e-4 +
                                    y * (0.2457520174e-5 + y * -0.240337019e-6)));
  const double p2 =
      0.04687499995 +
      y * (-0.2002690873e-3 +
           y * (0.8449199096e-5 + y * (-0.88228987e-6 + y * 0.105787412e-6)));
  result = std::sqrt(0.636619772 / ax) *
           (std::cos(xx) * p1 - z * std::sin(xx) * p2);
  return x < 0.0 ? -result : result;
}

double jinc(double x) {
  const double ax = std::fabs(x);
  if (ax < 1e-8) return std::numbers::pi / 4.0;
  return bessel_j1(std::numbers::pi * ax) / (2.0 * ax);
}

}  // namespace jigsaw::kernels
