// Interpolation (gridding) window functions.
//
// A kernel is a real, even function supported on [-W/2, W/2]. Gridding
// convolves the non-uniform samples with the kernel on the oversampled grid;
// de-apodization divides the image by the kernel's continuous Fourier
// transform (Sec. II-B of the paper). The choice of windowing function is
// application specific (paper lists Kaiser-Bessel, Gaussian, B-spline, ...).
#pragma once

#include <memory>
#include <string>

namespace jigsaw::kernels {

enum class KernelType {
  KaiserBessel,  // the standard MRI gridding kernel [1]
  Gaussian,      // truncated Gaussian (Dutt-Rokhlin style)
  BSpline,       // cubic B-spline rescaled to width W
  Triangle,      // linear interpolation window
  Sinc,          // Hann-windowed sinc (older gridding literature)
};

std::string to_string(KernelType t);

/// Shape parameter selection for Kaiser-Bessel following Beatty et al. [1]:
///   beta = pi * sqrt((W/sigma)^2 * (sigma - 0.5)^2 - 0.8)
/// valid for any oversampling factor sigma in (1, 2].
double beatty_beta(int width, double sigma);

/// Abstract interpolation window.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Window width W in grid units (support is |t| <= W/2).
  int width() const { return width_; }

  /// Kernel value at signed distance t (grid units). Zero outside support.
  virtual double evaluate(double t) const = 0;

  /// Continuous Fourier transform A(nu) = Int ker(t) e^{2 pi i nu t} dt.
  /// Real because the kernel is real and even. `nu` is in cycles per grid
  /// unit; de-apodization evaluates this at k / (sigma * N).
  virtual double fourier(double nu) const = 0;

  /// Numerical-quadrature Fourier transform — test oracle for fourier().
  double fourier_numeric(double nu, int steps = 20000) const;

  virtual KernelType type() const = 0;

 protected:
  explicit Kernel(int width) : width_(width) {}
  int width_;
};

/// Factory. `sigma` feeds the Beatty beta for Kaiser-Bessel and the width
/// scaling of the Gaussian; other kernels ignore it.
std::unique_ptr<Kernel> make_kernel(KernelType type, int width, double sigma);

}  // namespace jigsaw::kernels
