// Bessel function implementations needed by the interpolation kernels and
// the analytic Shepp-Logan phantom:
//   I0 — modified Bessel, first kind, order 0 (Kaiser-Bessel window)
//   J1 — Bessel, first kind, order 1 (Fourier transform of an ellipse)
#pragma once

namespace jigsaw::kernels {

/// Modified Bessel function of the first kind, order zero.
/// Power series for |x| < 20 (double precision exact to ~1e-16 there),
/// asymptotic expansion beyond.
double bessel_i0(double x);

/// Bessel function of the first kind, order one.
/// Abramowitz & Stegun rational approximations (abs error < 1e-7) — ample
/// for phantom k-space synthesis.
double bessel_j1(double x);

/// jinc(x) = J1(pi*x) / (2*x), the radial Fourier profile of a unit disc;
/// jinc(0) = pi/4. Used by the analytic phantom.
double jinc(double x);

}  // namespace jigsaw::kernels
