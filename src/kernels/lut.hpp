// Precomputed interpolation weight look-up table (LUT).
//
// The paper constrains kernel granularity with a "table oversampling factor"
// L: there are W*L discrete weights per dimension and sample-to-grid
// distances are rounded to the nearest weight (Sec. II-B). Because the
// kernel is even, only W*L/2 entries covering [0, W/2) are stored — exactly
// the layout of JIGSAW's weight SRAM (256 entries = W=8 x L=64 / 2).
#pragma once

#include <cstdint>
#include <vector>

#include "fixed/fixed.hpp"
#include "kernels/kernel.hpp"

namespace jigsaw::kernels {

class KernelLut {
 public:
  /// Build a LUT for `kernel` with table oversampling factor `L`
  /// (power of two, per the hardware's truncation-based addressing).
  KernelLut(const Kernel& kernel, int L);

  int width() const { return width_; }
  int oversampling() const { return L_; }
  std::size_t entries() const { return table_.size(); }  // == W*L/2

  /// Table index for an absolute distance |d| in [0, W/2): nearest-weight
  /// rounding as in the paper. Out-of-support distances clamp to the last
  /// (near-zero) entry.
  std::int32_t index_of(double abs_dist) const {
    std::int32_t i = static_cast<std::int32_t>(
        abs_dist * static_cast<double>(L_) + 0.5);
    const std::int32_t last = static_cast<std::int32_t>(table_.size()) - 1;
    return i > last ? last : i;
  }

  /// Double-precision weight for a signed distance.
  double weight(double dist) const {
    return table_[static_cast<std::size_t>(
        index_of(dist < 0 ? -dist : dist))];
  }

  double entry(std::int32_t i) const {
    return table_[static_cast<std::size_t>(i)];
  }

  /// Raw table for the SIMD gather path (see kernels/simd/simd.hpp).
  const double* data() const { return table_.data(); }

  /// 16-bit Q1.15 quantized weight (JIGSAW datapath).
  fixed::Weight16 entry_fixed(std::int32_t i) const {
    return fixed_table_[static_cast<std::size_t>(i)];
  }
  fixed::Weight16 weight_fixed(double dist) const {
    return fixed_table_[static_cast<std::size_t>(
        index_of(dist < 0 ? -dist : dist))];
  }

  /// Worst-case absolute LUT quantization error vs the exact kernel,
  /// sampled on a fine grid (diagnostic / tests).
  double max_quantization_error(const Kernel& kernel, int probe_per_entry = 8)
      const;

 private:
  int width_;
  int L_;
  std::vector<double> table_;
  std::vector<fixed::Weight16> fixed_table_;
};

}  // namespace jigsaw::kernels
