#include "kernels/lut.hpp"

#include <cmath>

#include "common/error.hpp"

namespace jigsaw::kernels {

KernelLut::KernelLut(const Kernel& kernel, int L)
    : width_(kernel.width()), L_(L) {
  JIGSAW_REQUIRE(L >= 1, "table oversampling factor must be >= 1");
  JIGSAW_REQUIRE((L & (L - 1)) == 0,
                 "table oversampling factor must be a power of two, got " << L);
  const std::size_t n = static_cast<std::size_t>(width_) *
                        static_cast<std::size_t>(L) / 2;
  JIGSAW_REQUIRE(n >= 1, "LUT would be empty (W*L/2 == 0)");
  table_.resize(n);
  fixed_table_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(L);
    table_[i] = kernel.evaluate(t);
    fixed_table_[i] = fixed::Weight16::from_double(table_[i]);
  }
}

double KernelLut::max_quantization_error(const Kernel& kernel,
                                         int probe_per_entry) const {
  double worst = 0.0;
  const double half = width_ / 2.0;
  const int probes = static_cast<int>(table_.size()) * probe_per_entry;
  for (int i = 0; i < probes; ++i) {
    const double d = half * (static_cast<double>(i) + 0.5) /
                     static_cast<double>(probes);
    const double err = std::fabs(weight(d) - kernel.evaluate(d));
    if (err > worst) worst = err;
  }
  return worst;
}

}  // namespace jigsaw::kernels
