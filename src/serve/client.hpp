// ServeClient: a blocking client for jigsaw_serve / jigsaw_router.
//
// One client owns one connection to an endpoint — "unix:/path" (or a bare
// absolute path) or "host:port", parsed by serve/transport.hpp; the JSRV
// framed protocol is identical on either transport. recon() and statsz()
// are synchronous request/reply round-trips; raw-frame helpers exist for
// protocol tests (malformed bodies, oversized headers, mid-frame
// disconnects) and are not part of the stable surface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace jigsaw::serve {

class ServeClient {
 public:
  /// Connect to `endpoint_spec` (see parse_endpoint). Throws
  /// std::invalid_argument on a malformed spec, std::runtime_error on
  /// connection failure.
  explicit ServeClient(const std::string& endpoint_spec);
  explicit ServeClient(const Endpoint& endpoint);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Synchronous reconstruction round-trip.
  ReconReplyWire recon(const ReconRequestWire& request);

  /// Synchronous by-reference dataset reconstruction: the request names a
  /// JKSD file on the worker's filesystem; the reply image is the mean
  /// magnitude across the dataset's surviving chunks.
  ReconReplyWire recon_dataset(const DatasetRequestWire& request);

  /// Fetch the /statsz JSON snapshot.
  std::string statsz();

  // --- streaming sessions ---------------------------------------------
  /// Open a streaming session (synchronous). The reply's session_id keys
  /// every subsequent push/close; status != kOk means no session exists.
  SessionReplyWire open_session(const OpenSessionWire& request);
  /// Push one frame and block for its reply.
  FrameReplyWire push_frame(const PushFrameWire& request);
  /// Close a session; the reply carries the session's lifetime totals.
  SessionReplyWire close_session(const CloseSessionWire& request);

  /// Pipelined streaming: send a push without waiting for its reply, then
  /// collect replies (in submission order — frames of one session execute
  /// FIFO) with recv_frame_reply(). Used by the drain test to have frames
  /// in flight when SIGTERM lands.
  void send_push_frame(const PushFrameWire& request);
  FrameReplyWire recv_frame_reply();
  SessionReplyWire recv_session_reply();

  // --- protocol-test helpers ------------------------------------------
  /// Send a frame with an arbitrary body (may be malformed on purpose).
  void send_raw(MsgType type, const std::vector<std::uint8_t>& body);
  /// Send only a frame header advertising `body_len` bytes (never sent).
  void send_raw_header(std::uint32_t type, std::uint64_t body_len);
  /// Send arbitrary bytes mid-stream (e.g. part of an advertised body
  /// before disconnecting).
  void send_raw_bytes(const std::vector<std::uint8_t>& bytes);
  /// Half-close the write side: the server sees EOF after the bytes sent
  /// so far — the mid-frame-disconnect probe.
  void shutdown_write();
  /// Block until one reply frame arrives.
  ReconReplyWire recv_recon_reply();

  int fd() const { return fd_; }

 private:
  Frame recv_reply_frame();

  int fd_ = -1;
};

}  // namespace jigsaw::serve
