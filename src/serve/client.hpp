// ServeClient: a blocking Unix-domain-socket client for jigsaw_serve.
//
// One client owns one connection. recon() and statsz() are synchronous
// request/reply round-trips; raw-frame helpers exist for protocol tests
// (malformed bodies, oversized headers) and are not part of the stable
// surface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace jigsaw::serve {

class ServeClient {
 public:
  /// Connect to the daemon's socket. Throws std::runtime_error on failure.
  explicit ServeClient(const std::string& socket_path);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Synchronous reconstruction round-trip.
  ReconReplyWire recon(const ReconRequestWire& request);

  /// Fetch the /statsz JSON snapshot.
  std::string statsz();

  // --- protocol-test helpers ------------------------------------------
  /// Send a frame with an arbitrary body (may be malformed on purpose).
  void send_raw(MsgType type, const std::vector<std::uint8_t>& body);
  /// Send only a frame header advertising `body_len` bytes (never sent).
  void send_raw_header(std::uint32_t type, std::uint64_t body_len);
  /// Block until one reply frame arrives.
  ReconReplyWire recv_recon_reply();

  int fd() const { return fd_; }

 private:
  Frame recv_reply_frame();

  int fd_ = -1;
};

}  // namespace jigsaw::serve
