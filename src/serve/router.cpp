#include "serve/router.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/gridder.hpp"
#include "tune/key.hpp"

namespace jigsaw::serve {

namespace {

using Clock = std::chrono::steady_clock;

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

/// Milliseconds until `deadline`, clamped to [1, INT_MAX] — a caller that
/// already checked the deadline never hands a blocking call a zero budget.
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  if (left <= 0) return 1;
  return static_cast<int>(std::min<long long>(left, INT_MAX));
}

}  // namespace

struct Router::Worker {
  explicit Worker(const Endpoint& ep) : endpoint(ep), spec(to_string(ep)) {}

  const Endpoint endpoint;
  const std::string spec;
  std::atomic<bool> healthy{true};
  std::atomic<std::uint64_t> forwarded{0};
  std::atomic<std::uint64_t> replies{0};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> drain_rejects{0};

  std::mutex pool_mu;
  std::vector<int> pool;  // idle connected fds, most recently used last
};

/// One forwarded request's terminal state: either a worker's reply body to
/// relay verbatim, or a router-synthesized status.
struct Router::ForwardResult {
  bool relayed = false;
  std::vector<std::uint8_t> reply_body;  // when relayed
  Status status = Status::kError;        // when synthesized
  std::string message;
  std::uint64_t reroutes = 0;  // attempts beyond the first worker
  bool worker_lost = false;    // sticky sends: the home worker is presumed
                               // gone (its session state with it)
};

Router::Router(const RouterConfig& config) : config_(config) {
  if (config_.workers.empty()) {
    throw std::runtime_error("router: no workers configured");
  }
  for (const auto& spec : config_.workers) {
    workers_.push_back(std::make_unique<Worker>(parse_endpoint(spec)));
  }
  if (config_.listen.empty()) {
    throw std::runtime_error("router: no listen endpoint configured");
  }
  add_listener(parse_endpoint(config_.listen));
  if (config_.health_interval_ms > 0) {
    health_thread_ = std::thread([this] { health_loop(); });
  }
}

Router::~Router() {
  stop();
  stop_health();  // in case start() was never called (stop() is then a no-op)
  for (auto& w : workers_) close_pool(*w);
}

int Router::shutdown_how() const { return SHUT_RD; }

void Router::on_stop_accepting() { stop_health(); }

std::uint64_t Router::shard_hash(const ReconRequestWire& wire) {
  core::GridderOptions options;
  options.width = static_cast<int>(wire.kernel_width);
  options.sigma = wire.sigma;
  return tune::TuneKey::of(2, wire.n,
                           static_cast<std::int64_t>(wire.coords.size()),
                           options, static_cast<int>(wire.coils),
                           /*threads=*/1)
      .hash();
}

std::uint64_t Router::session_shard_hash(const OpenSessionWire& wire) {
  core::GridderOptions options;
  options.width = static_cast<int>(wire.kernel_width);
  options.sigma = wire.sigma;
  return tune::TuneKey::of(2, static_cast<std::int64_t>(wire.n),
                           /*m=*/0, options, static_cast<int>(wire.coils),
                           /*threads=*/1)
      .hash();
}

std::uint64_t Router::rendezvous_score(std::uint64_t key_hash,
                                       std::size_t index) {
  const std::uint64_t packed[2] = {key_hash,
                                   static_cast<std::uint64_t>(index)};
  return tune::fnv1a(packed, sizeof packed);
}

std::vector<std::size_t> Router::rank_workers(std::uint64_t key_hash) const {
  std::vector<std::size_t> order(workers_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [key_hash](std::size_t a, std::size_t b) {
              const auto sa = rendezvous_score(key_hash, a);
              const auto sb = rendezvous_score(key_hash, b);
              return sa != sb ? sa > sb : a < b;
            });
  return order;
}

int Router::take_pooled(Worker& w) {
  std::lock_guard<std::mutex> lk(w.pool_mu);
  if (w.pool.empty()) return -1;
  const int fd = w.pool.back();
  w.pool.pop_back();
  return fd;
}

void Router::give_back_connection(Worker& w, int fd) {
  if (w.healthy.load()) {
    std::lock_guard<std::mutex> lk(w.pool_mu);
    if (w.pool.size() < config_.max_pooled_connections) {
      w.pool.push_back(fd);
      return;
    }
  }
  close_quietly(fd);
}

void Router::close_pool(Worker& w) {
  std::vector<int> doomed;
  {
    std::lock_guard<std::mutex> lk(w.pool_mu);
    doomed.swap(w.pool);
  }
  for (const int fd : doomed) close_quietly(fd);
}

void Router::mark_unhealthy(Worker& w, const char* why) {
  if (w.healthy.exchange(false)) {
    std::fprintf(stderr, "router: worker %s marked unhealthy (%s)\n",
                 w.spec.c_str(), why);
  }
  // Pooled fds share the worker's fate: anything idle predates the failure.
  close_pool(w);
}

Router::ForwardResult Router::forward(const Frame& frame,
                                      const ReconRequestWire& wire) {
  ForwardResult out;
  const auto ranked = rank_workers(shard_hash(wire));

  // Healthy workers in rank order, then unhealthy ones as a last resort —
  // a request must not fail just because the health thread has not yet
  // noticed a recovery.
  std::vector<std::size_t> order;
  order.reserve(ranked.size());
  for (const bool want_healthy : {true, false}) {
    for (const std::size_t i : ranked) {
      if (workers_[i]->healthy.load() == want_healthy) order.push_back(i);
    }
  }

  const bool bounded = wire.deadline_ms > 0;
  const auto start = Clock::now();
  const auto client_deadline =
      start + std::chrono::milliseconds(
                  bounded ? static_cast<long long>(wire.deadline_ms) : 0);
  // The router waits slightly past the client's own deadline so a worker
  // that answers TIMEOUT itself gets its (authoritative) reply relayed.
  const auto wait_deadline =
      start + std::chrono::milliseconds(
                  bounded ? static_cast<long long>(wire.deadline_ms) +
                                config_.deadline_slack_ms
                          : static_cast<long long>(config_.forward_timeout_ms));

  const auto expired = [&](const char* when) {
    out.relayed = false;
    out.status = bounded ? Status::kTimeout : Status::kError;
    out.message = std::string("router: deadline expired ") + when;
    return out;
  };

  bool first_attempt = true;
  for (const std::size_t wi : order) {
    Worker& w = *workers_[wi];
    if (Clock::now() >= wait_deadline) return expired("before a worker");
    if (!first_attempt) ++out.reroutes;
    first_attempt = false;

    // Up to two tries against THIS worker: a pooled connection may be stale
    // (the worker restarted since it was pooled) — that is this router's
    // fault, not a reason to move the shard, so retry once with a fresh
    // connect before falling to the next-ranked worker.
    bool tried_fresh = false;
    bool next_worker = false;
    while (!next_worker) {
      int fd = take_pooled(w);
      const bool pooled = fd >= 0;
      if (!pooled) {
        tried_fresh = true;
        try {
          fd = connect_endpoint(w.endpoint, config_.connect_timeout_ms);
        } catch (const std::exception&) {
          ++w.failures;
          mark_unhealthy(w, "connect failed");
          next_worker = true;
          continue;
        }
      }

      try {
        send_frame(fd, frame.type, frame.body, remaining_ms(wait_deadline));
      } catch (const std::exception&) {
        close_quietly(fd);
        ++w.failures;
        if (pooled && !tried_fresh) continue;  // stale pooled fd
        mark_unhealthy(w, "send failed");
        next_worker = true;
        continue;
      }
      ++w.forwarded;

      Frame reply;
      bool got = false;
      try {
        got = recv_frame(fd, reply, config_.max_reply_bytes,
                         remaining_ms(wait_deadline));
      } catch (const RecvTimeout&) {
        // The worker consumed the request but has not answered: it may be
        // mid-execution (wedged or just slow) — NEVER retry, never hang.
        close_quietly(fd);
        ++w.failures;
        mark_unhealthy(w, "reply timed out");
        if (bounded && Clock::now() >= client_deadline) {
          return expired("waiting for a worker reply");
        }
        out.status = Status::kError;
        out.message = "router: worker " + w.spec + " did not reply in time";
        return out;
      } catch (const std::exception&) {
        // Mid-reply EOF or garbage: the request may have executed and the
        // reply is unrecoverable — terminal ERROR, same no-retry rule.
        close_quietly(fd);
        ++w.failures;
        mark_unhealthy(w, "reply stream broke");
        out.status = Status::kError;
        out.message =
            "router: worker " + w.spec + " connection broke mid-reply";
        return out;
      }
      if (!got) {
        // Clean EOF before any reply byte: the worker shut down without
        // consuming the request (drain teardown, exit) — safe to retry.
        close_quietly(fd);
        ++w.failures;
        if (pooled && !tried_fresh) continue;  // stale pooled fd
        mark_unhealthy(w, "closed before replying");
        next_worker = true;
        continue;
      }
      if (reply.type != MsgType::kReconReply) {
        close_quietly(fd);
        out.status = Status::kError;
        out.message = "router: worker " + w.spec +
                      " sent unexpected frame type " +
                      std::to_string(static_cast<std::uint32_t>(reply.type));
        return out;
      }

      // Peek at the status: a draining worker answers REJECTED to
      // everything it did not admit — that request belongs on the next
      // worker, which is what makes a rolling restart lossless.
      ReconReplyWire decoded;
      try {
        decoded = decode_recon_reply(reply.body.data(), reply.body.size());
      } catch (const std::exception&) {
        close_quietly(fd);
        out.status = Status::kError;
        out.message = "router: worker " + w.spec + " sent a malformed reply";
        return out;
      }
      if (decoded.status == Status::kRejected &&
          decoded.message.find("draining") != std::string::npos) {
        ++w.drain_rejects;
        close_quietly(fd);  // the worker is going away; never pool it
        mark_unhealthy(w, "draining");
        next_worker = true;
        continue;
      }

      ++w.replies;
      give_back_connection(w, fd);
      out.relayed = true;
      out.reply_body = std::move(reply.body);
      return out;
    }
  }

  out.status = Status::kRejected;
  out.message = "router: no healthy worker (" +
                std::to_string(workers_.size()) + " configured, all failed)";
  return out;
}

Router::ForwardResult Router::forward_open(const Frame& frame,
                                           const OpenSessionWire& wire,
                                           std::size_t* home) {
  ForwardResult out;
  const auto ranked = rank_workers(session_shard_hash(wire));
  std::vector<std::size_t> order;
  order.reserve(ranked.size());
  for (const bool want_healthy : {true, false}) {
    for (const std::size_t i : ranked) {
      if (workers_[i]->healthy.load() == want_healthy) order.push_back(i);
    }
  }

  const auto wait_deadline =
      Clock::now() +
      std::chrono::milliseconds(static_cast<long long>(
          config_.forward_timeout_ms));

  bool first_attempt = true;
  for (const std::size_t wi : order) {
    Worker& w = *workers_[wi];
    if (Clock::now() >= wait_deadline) {
      out.status = Status::kError;
      out.message = "router: deadline expired before a worker";
      return out;
    }
    if (!first_attempt) ++out.reroutes;
    first_attempt = false;

    bool tried_fresh = false;
    bool next_worker = false;
    while (!next_worker) {
      int fd = take_pooled(w);
      const bool pooled = fd >= 0;
      if (!pooled) {
        tried_fresh = true;
        try {
          fd = connect_endpoint(w.endpoint, config_.connect_timeout_ms);
        } catch (const std::exception&) {
          ++w.failures;
          mark_unhealthy(w, "connect failed");
          next_worker = true;
          continue;
        }
      }
      try {
        send_frame(fd, frame.type, frame.body, remaining_ms(wait_deadline));
      } catch (const std::exception&) {
        close_quietly(fd);
        ++w.failures;
        if (pooled && !tried_fresh) continue;  // stale pooled fd
        mark_unhealthy(w, "send failed");
        next_worker = true;
        continue;
      }
      ++w.forwarded;

      Frame reply;
      bool got = false;
      try {
        got = recv_frame(fd, reply, config_.max_reply_bytes,
                         remaining_ms(wait_deadline));
      } catch (const RecvTimeout&) {
        // The worker consumed the open and may have created the session —
        // NEVER retry (a second worker would create a duplicate).
        close_quietly(fd);
        ++w.failures;
        mark_unhealthy(w, "reply timed out");
        out.status = Status::kError;
        out.message = "router: worker " + w.spec + " did not reply in time";
        return out;
      } catch (const std::exception&) {
        close_quietly(fd);
        ++w.failures;
        mark_unhealthy(w, "reply stream broke");
        out.status = Status::kError;
        out.message =
            "router: worker " + w.spec + " connection broke mid-reply";
        return out;
      }
      if (!got) {
        // Clean EOF before any reply byte: the open was never consumed —
        // safe to retry.
        close_quietly(fd);
        ++w.failures;
        if (pooled && !tried_fresh) continue;  // stale pooled fd
        mark_unhealthy(w, "closed before replying");
        next_worker = true;
        continue;
      }
      if (reply.type != MsgType::kSessionReply) {
        close_quietly(fd);
        out.status = Status::kError;
        out.message = "router: worker " + w.spec +
                      " sent unexpected frame type " +
                      std::to_string(static_cast<std::uint32_t>(reply.type));
        return out;
      }
      SessionReplyWire decoded;
      try {
        decoded = decode_session_reply(reply.body.data(), reply.body.size());
      } catch (const std::exception&) {
        close_quietly(fd);
        out.status = Status::kError;
        out.message = "router: worker " + w.spec + " sent a malformed reply";
        return out;
      }
      if (decoded.status == Status::kRejected &&
          decoded.message.find("draining") != std::string::npos) {
        // A draining worker refuses new sessions: the open belongs on the
        // next-ranked worker, same spill rule as one-shot recon requests.
        ++w.drain_rejects;
        close_quietly(fd);
        mark_unhealthy(w, "draining");
        next_worker = true;
        continue;
      }

      ++w.replies;
      give_back_connection(w, fd);
      out.relayed = true;
      out.reply_body = std::move(reply.body);
      if (home != nullptr) *home = wi;
      return out;
    }
  }

  out.status = Status::kRejected;
  out.message = "router: no healthy worker (" +
                std::to_string(workers_.size()) + " configured, all failed)";
  return out;
}

Router::ForwardResult Router::forward_sticky(Worker& w, const Frame& frame,
                                             MsgType expect,
                                             std::uint64_t deadline_ms) {
  ForwardResult out;
  const bool bounded = deadline_ms > 0;
  const auto wait_deadline =
      Clock::now() +
      std::chrono::milliseconds(
          bounded ? static_cast<long long>(deadline_ms) +
                        config_.deadline_slack_ms
                  : static_cast<long long>(config_.forward_timeout_ms));

  // A pooled connection may be stale (the worker restarted since it was
  // pooled); retry once with a fresh connect. A restart also destroyed the
  // session, but the worker will answer REJECTED "unknown session" itself —
  // an honest, relayable reply.
  bool tried_fresh = false;
  for (;;) {
    int fd = take_pooled(w);
    const bool pooled = fd >= 0;
    if (!pooled) {
      tried_fresh = true;
      try {
        fd = connect_endpoint(w.endpoint, config_.connect_timeout_ms);
      } catch (const std::exception&) {
        ++w.failures;
        mark_unhealthy(w, "connect failed");
        out.status = Status::kError;
        out.message = "router: session worker " + w.spec + " unreachable";
        out.worker_lost = true;
        return out;
      }
    }
    try {
      send_frame(fd, frame.type, frame.body, remaining_ms(wait_deadline));
    } catch (const std::exception&) {
      close_quietly(fd);
      ++w.failures;
      if (pooled && !tried_fresh) continue;  // stale pooled fd
      mark_unhealthy(w, "send failed");
      out.status = Status::kError;
      out.message = "router: session worker " + w.spec + " lost";
      out.worker_lost = true;
      return out;
    }
    ++w.forwarded;

    Frame reply;
    bool got = false;
    try {
      got = recv_frame(fd, reply, config_.max_reply_bytes,
                       remaining_ms(wait_deadline));
    } catch (const RecvTimeout&) {
      // The worker consumed the frame and may be mid-solve; the session
      // may still be intact, so the pin survives — only this reply is
      // lost. NEVER retry.
      close_quietly(fd);
      ++w.failures;
      mark_unhealthy(w, "reply timed out");
      out.status = bounded ? Status::kTimeout : Status::kError;
      out.message =
          "router: session worker " + w.spec + " did not reply in time";
      return out;
    } catch (const std::exception&) {
      close_quietly(fd);
      ++w.failures;
      mark_unhealthy(w, "reply stream broke");
      out.status = Status::kError;
      out.message =
          "router: session worker " + w.spec + " connection broke mid-reply";
      out.worker_lost = true;
      return out;
    }
    if (!got) {
      close_quietly(fd);
      ++w.failures;
      if (pooled && !tried_fresh) continue;  // stale pooled fd
      mark_unhealthy(w, "closed before replying");
      out.status = Status::kError;
      out.message =
          "router: session worker " + w.spec + " closed before replying";
      out.worker_lost = true;
      return out;
    }
    if (reply.type != expect) {
      close_quietly(fd);
      out.status = Status::kError;
      out.message = "router: worker " + w.spec +
                    " sent unexpected frame type " +
                    std::to_string(static_cast<std::uint32_t>(reply.type));
      return out;
    }
    ++w.replies;
    give_back_connection(w, fd);
    out.relayed = true;
    out.reply_body = std::move(reply.body);
    return out;
  }
}

void Router::send_reply_locked(const std::shared_ptr<Connection>& conn,
                               const ReconReplyWire& reply) {
  const auto body = encode_recon_reply(reply);
  std::lock_guard<std::mutex> lk(conn->write_mu);
  send_frame(conn->fd, MsgType::kReconReply, body,
             config_.reply_write_timeout_ms);
}

void Router::count_terminal(const ForwardResult& result) {
  std::lock_guard<std::mutex> lk(counts_mu_);
  counts_.reroutes += result.reroutes;
  if (result.relayed) {
    ++counts_.relayed;
  } else if (result.status == Status::kTimeout) {
    ++counts_.timeouts;
  } else if (result.status == Status::kRejected) {
    ++counts_.rejected;
  } else {
    ++counts_.errors;
  }
}

bool Router::handle_session_frame(const std::shared_ptr<Connection>& conn,
                                  const Frame& frame) {
  // Shared helpers: write a router-synthesized session/frame reply. A send
  // failure closes the connection (return false from the handler).
  const auto send_session = [&](const SessionReplyWire& reply) {
    const auto body = encode_session_reply(reply);
    std::lock_guard<std::mutex> lk(conn->write_mu);
    send_frame(conn->fd, MsgType::kSessionReply, body,
               config_.reply_write_timeout_ms);
  };
  const auto send_frame_reply = [&](const FrameReplyWire& reply) {
    const auto body = encode_frame_reply(reply);
    std::lock_guard<std::mutex> lk(conn->write_mu);
    send_frame(conn->fd, MsgType::kFrameReply, body,
               config_.reply_write_timeout_ms);
  };
  const auto relay = [&](MsgType type, const std::vector<std::uint8_t>& body) {
    std::lock_guard<std::mutex> lk(conn->write_mu);
    send_frame(conn->fd, type, body, config_.reply_write_timeout_ms);
  };

  if (frame.type == MsgType::kOpenSession) {
    OpenSessionWire wire;
    try {
      wire = decode_open_session(frame.body.data(), frame.body.size());
    } catch (const std::exception& e) {
      // Recovering parse: the malformed body was fully consumed.
      {
        std::lock_guard<std::mutex> lk(counts_mu_);
        ++counts_.received;
        ++counts_.errors;
      }
      SessionReplyWire reply;
      reply.status = Status::kError;
      reply.message = e.what();
      try {
        send_session(reply);
        return true;
      } catch (const std::exception&) {
        return false;
      }
    }
    {
      std::lock_guard<std::mutex> lk(counts_mu_);
      ++counts_.received;
      ++counts_.session_opens;
    }
    std::size_t home = 0;
    ForwardResult result = forward_open(frame, wire, &home);
    count_terminal(result);
    try {
      if (result.relayed) {
        // Pin BEFORE relaying: the client may push its first frame the
        // instant it sees the open reply. forward_open already validated
        // the body, so this decode cannot throw.
        const SessionReplyWire decoded = decode_session_reply(
            result.reply_body.data(), result.reply_body.size());
        if (decoded.status == Status::kOk) {
          std::lock_guard<std::mutex> lk(sessions_mu_);
          session_workers_[decoded.session_id] = home;
        }
        relay(MsgType::kSessionReply, result.reply_body);
      } else {
        SessionReplyWire reply;
        reply.status = result.status;
        reply.client_tag = wire.client_tag;
        reply.message = std::move(result.message);
        send_session(reply);
      }
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }

  if (frame.type == MsgType::kPushFrame) {
    PushFrameWire wire;
    try {
      wire = decode_push_frame(frame.body.data(), frame.body.size());
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lk(counts_mu_);
        ++counts_.received;
        ++counts_.errors;
      }
      FrameReplyWire reply;
      reply.status = Status::kError;
      reply.message = e.what();
      try {
        send_frame_reply(reply);
        return true;
      } catch (const std::exception&) {
        return false;
      }
    }
    {
      std::lock_guard<std::mutex> lk(counts_mu_);
      ++counts_.received;
      ++counts_.session_frames;
    }
    std::size_t home = 0;
    bool pinned = false;
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      const auto it = session_workers_.find(wire.session_id);
      if (it != session_workers_.end()) {
        home = it->second;
        pinned = true;
      }
    }
    FrameReplyWire reply;
    reply.session_id = wire.session_id;
    reply.frame_index = wire.frame_index;
    reply.client_tag = wire.client_tag;
    if (!pinned) {
      {
        std::lock_guard<std::mutex> lk(counts_mu_);
        ++counts_.rejected;
      }
      reply.status = Status::kRejected;
      reply.message = "router: unknown session " +
                      std::to_string(wire.session_id);
      try {
        send_frame_reply(reply);
        return true;
      } catch (const std::exception&) {
        return false;
      }
    }
    ForwardResult result = forward_sticky(*workers_[home], frame,
                                          MsgType::kFrameReply,
                                          wire.deadline_ms);
    count_terminal(result);
    if (result.worker_lost) {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      session_workers_.erase(wire.session_id);
    }
    try {
      if (result.relayed) {
        relay(MsgType::kFrameReply, result.reply_body);
      } else {
        reply.status = result.status;
        reply.message = std::move(result.message);
        send_frame_reply(reply);
      }
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }

  // kCloseSession
  CloseSessionWire wire;
  try {
    wire = decode_close_session(frame.body.data(), frame.body.size());
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lk(counts_mu_);
      ++counts_.received;
      ++counts_.errors;
    }
    SessionReplyWire reply;
    reply.status = Status::kError;
    reply.message = e.what();
    try {
      send_session(reply);
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }
  {
    std::lock_guard<std::mutex> lk(counts_mu_);
    ++counts_.received;
    ++counts_.session_closes;
  }
  std::size_t home = 0;
  bool pinned = false;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    const auto it = session_workers_.find(wire.session_id);
    if (it != session_workers_.end()) {
      home = it->second;
      pinned = true;
    }
  }
  SessionReplyWire reply;
  reply.session_id = wire.session_id;
  reply.client_tag = wire.client_tag;
  if (!pinned) {
    {
      std::lock_guard<std::mutex> lk(counts_mu_);
      ++counts_.rejected;
    }
    reply.status = Status::kRejected;
    reply.message =
        "router: unknown session " + std::to_string(wire.session_id);
    try {
      send_session(reply);
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }
  ForwardResult result = forward_sticky(*workers_[home], frame,
                                        MsgType::kSessionReply,
                                        /*deadline_ms=*/0);
  count_terminal(result);
  {
    // The close ends the session from the router's view either way: a
    // lost reply leaves the worker to reap it, but no more frames route.
    std::lock_guard<std::mutex> lk(sessions_mu_);
    session_workers_.erase(wire.session_id);
  }
  try {
    if (result.relayed) {
      relay(MsgType::kSessionReply, result.reply_body);
    } else {
      reply.status = result.status;
      reply.message = std::move(result.message);
      send_session(reply);
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void Router::serve_connection(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Frame frame;
    try {
      if (!recv_frame(conn->fd, frame, config_.max_request_bytes)) {
        return;  // clean EOF
      }
    } catch (const FrameTooLarge& e) {
      // Same admission semantics as a worker: the body was never read, the
      // stream cannot be resynchronized — reply, count, close.
      {
        std::lock_guard<std::mutex> lk(counts_mu_);
        ++counts_.received;
        ++counts_.rejected;
      }
      ReconReplyWire reply;
      reply.status = Status::kRejected;
      reply.message = e.what();
      try {
        send_reply_locked(conn, reply);
      } catch (const std::exception&) {
      }
      return;
    } catch (const std::exception&) {
      return;  // bad magic / unknown type / truncation / peer I/O error
    }

    if (frame.type == MsgType::kStats) {
      {
        std::lock_guard<std::mutex> lk(counts_mu_);
        ++counts_.stats;
      }
      const std::string json = statsz_json();
      std::lock_guard<std::mutex> lk(conn->write_mu);
      try {
        send_frame(conn->fd, MsgType::kStatsReply,
                   reinterpret_cast<const std::uint8_t*>(json.data()),
                   json.size(), config_.reply_write_timeout_ms);
      } catch (const std::exception&) {
        return;
      }
      continue;
    }
    if (frame.type == MsgType::kOpenSession ||
        frame.type == MsgType::kPushFrame ||
        frame.type == MsgType::kCloseSession) {
      if (!handle_session_frame(conn, frame)) {
        ::shutdown(conn->fd, SHUT_RDWR);
        return;
      }
      continue;
    }
    if (frame.type == MsgType::kReconDataset) {
      // By-reference datasets name a file on one worker's filesystem; the
      // router cannot know which worker that is, so the request is
      // worker-direct by design. Reject politely, keep the connection.
      std::uint64_t tag = 0;
      try {
        tag = decode_dataset_request(frame.body.data(), frame.body.size())
                  .client_tag;
      } catch (const std::exception&) {
      }
      {
        std::lock_guard<std::mutex> lk(counts_mu_);
        ++counts_.received;
        ++counts_.rejected;
      }
      ReconReplyWire reply;
      reply.status = Status::kRejected;
      reply.client_tag = tag;
      reply.message =
          "dataset requests are worker-direct (the path is worker-local); "
          "connect to a worker endpoint";
      try {
        send_reply_locked(conn, reply);
      } catch (const std::exception&) {
        return;
      }
      continue;
    }
    if (frame.type != MsgType::kRecon) {
      return;  // a client sending reply types is not salvageable
    }

    ReconRequestWire wire;
    try {
      wire = decode_recon_request(frame.body.data(), frame.body.size());
    } catch (const std::exception& e) {
      // Recovering parse, exactly like a worker: the malformed body was
      // fully consumed, so the connection survives.
      {
        std::lock_guard<std::mutex> lk(counts_mu_);
        ++counts_.received;
        ++counts_.errors;
      }
      ReconReplyWire reply;
      reply.status = Status::kError;
      reply.message = e.what();
      try {
        send_reply_locked(conn, reply);
      } catch (const std::exception&) {
        return;
      }
      continue;
    }

    {
      std::lock_guard<std::mutex> lk(counts_mu_);
      ++counts_.received;
    }
    ForwardResult result = forward(frame, wire);
    {
      std::lock_guard<std::mutex> lk(counts_mu_);
      counts_.reroutes += result.reroutes;
      if (result.relayed) {
        ++counts_.relayed;
      } else if (result.status == Status::kTimeout) {
        ++counts_.timeouts;
      } else if (result.status == Status::kRejected) {
        ++counts_.rejected;
      } else {
        ++counts_.errors;
      }
    }

    try {
      if (result.relayed) {
        std::lock_guard<std::mutex> lk(conn->write_mu);
        send_frame(conn->fd, MsgType::kReconReply, result.reply_body,
                   config_.reply_write_timeout_ms);
      } else {
        ReconReplyWire reply;
        reply.status = result.status;
        reply.n = wire.n;
        reply.client_tag = wire.client_tag;
        reply.message = std::move(result.message);
        send_reply_locked(conn, reply);
      }
    } catch (const std::exception&) {
      // Peer gone or the reply write timed out mid-frame: unrecoverable
      // stream — unblock the reader so the connection retires.
      ::shutdown(conn->fd, SHUT_RDWR);
      return;
    }
  }
}

bool Router::ping_worker(Worker& w) {
  int fd = -1;
  try {
    fd = connect_endpoint(w.endpoint, config_.ping_timeout_ms);
    send_frame(fd, MsgType::kStats, nullptr, 0, config_.ping_timeout_ms);
    Frame reply;
    const bool got =
        recv_frame(fd, reply, 1u << 20, config_.ping_timeout_ms);
    close_quietly(fd);
    if (!got || reply.type != MsgType::kStatsReply) {
      mark_unhealthy(w, "ping got no stats reply");
      return false;
    }
  } catch (const std::exception&) {
    close_quietly(fd);
    mark_unhealthy(w, "ping failed");
    return false;
  }
  if (!w.healthy.exchange(true)) {
    std::fprintf(stderr, "router: worker %s re-admitted\n", w.spec.c_str());
  }
  return true;
}

void Router::health_loop() {
  std::unique_lock<std::mutex> lk(health_mu_);
  while (!health_stop_.load()) {
    health_cv_.wait_for(lk,
                        std::chrono::milliseconds(config_.health_interval_ms),
                        [&] { return health_stop_.load(); });
    if (health_stop_.load()) return;
    lk.unlock();
    for (auto& w : workers_) ping_worker(*w);
    lk.lock();
  }
}

void Router::stop_health() {
  if (!health_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(health_mu_);
    health_stop_.store(true);
  }
  health_cv_.notify_all();
  health_thread_.join();
}

RouterCounts Router::counts() const {
  RouterCounts out;
  {
    std::lock_guard<std::mutex> lk(counts_mu_);
    out = counts_;
  }
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    out.sessions_pinned = session_workers_.size();
  }
  out.workers.reserve(workers_.size());
  for (const auto& w : workers_) {
    WorkerSnapshot s;
    s.endpoint = w->spec;
    s.healthy = w->healthy.load();
    s.forwarded = w->forwarded.load();
    s.replies = w->replies.load();
    s.failures = w->failures.load();
    s.drain_rejects = w->drain_rejects.load();
    out.workers.push_back(std::move(s));
  }
  return out;
}

std::string Router::statsz_json() const {
  const RouterCounts c = counts();
  std::ostringstream os;
  os << "{\n";
  os << "  \"router\": true,\n";
  os << "  \"requests\": {\n";
  os << "    \"received\": " << c.received << ",\n";
  os << "    \"relayed\": " << c.relayed << ",\n";
  os << "    \"error\": " << c.errors << ",\n";
  os << "    \"timeout\": " << c.timeouts << ",\n";
  os << "    \"rejected\": " << c.rejected << ",\n";
  os << "    \"reroutes\": " << c.reroutes << ",\n";
  os << "    \"stats\": " << c.stats << "\n";
  os << "  },\n";
  os << "  \"sessions\": {\n";
  os << "    \"pinned\": " << c.sessions_pinned << ",\n";
  os << "    \"opens\": " << c.session_opens << ",\n";
  os << "    \"frames\": " << c.session_frames << ",\n";
  os << "    \"closes\": " << c.session_closes << "\n";
  os << "  },\n";
  os << "  \"workers\": [";
  for (std::size_t i = 0; i < c.workers.size(); ++i) {
    const WorkerSnapshot& w = c.workers[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"endpoint\": \"" << w.endpoint << "\",\n";
    os << "      \"healthy\": " << (w.healthy ? "true" : "false") << ",\n";
    os << "      \"forwarded\": " << w.forwarded << ",\n";
    os << "      \"replies\": " << w.replies << ",\n";
    os << "      \"failures\": " << w.failures << ",\n";
    os << "      \"drain_rejects\": " << w.drain_rejects << "\n";
    os << "    }";
  }
  os << (c.workers.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

}  // namespace jigsaw::serve
