// ServeSession: the in-process face of the reconstruction service.
//
// Wraps a ServeEngine with a future-based submit so tests and embedders get
// the full admission/batching/deadline pipeline without a socket. The wire
// server (ReconServer) and this class sit side by side on the same engine
// type, so every scheduler behavior a ctest verifies through ServeSession
// is the behavior a socket client sees.
#pragma once

#include <future>
#include <memory>
#include <utility>

#include "serve/engine.hpp"

namespace jigsaw::serve {

class ServeSession {
 public:
  explicit ServeSession(const ServeConfig& config = ServeConfig{})
      : engine_(config) {}

  /// Asynchronous submit. The future is satisfied exactly once — possibly
  /// before this call returns, for admission-time rejections.
  std::future<ReconOutcome> submit(ReconJob job) {
    auto promise = std::make_shared<std::promise<ReconOutcome>>();
    auto future = promise->get_future();
    engine_.submit(std::move(job), [promise](ReconOutcome outcome) {
      promise->set_value(std::move(outcome));
    });
    return future;
  }

  /// Blocking convenience: submit and wait.
  ReconOutcome recon(ReconJob job) { return submit(std::move(job)).get(); }

  /// Stop admission and wait for every in-flight job (idempotent).
  void drain() { engine_.drain(); }

  EngineCounts counts() const { return engine_.counts(); }
  std::string statsz_json() const { return engine_.statsz_json(); }
  ServeEngine& engine() { return engine_; }

 private:
  ServeEngine engine_;
};

}  // namespace jigsaw::serve
