// ServeEngine: the socket-free core of the reconstruction service.
//
// One engine owns
//   * a bounded admission queue — submit() either admits a job or completes
//     it immediately with REJECTED (queue full / limits / draining) or
//     TIMEOUT (deadline already passed at admission); backpressure is a
//     status code, never a blocking producer;
//   * a plan-aware scheduler — a single dispatcher thread repeatedly takes
//     the oldest queued job plus every queued job with the same geometry
//     key (grid size, gridder options, trajectory hash) up to max_batch and
//     processes them as one dispatch, so a burst of same-geometry requests
//     shares one resident NufftPlan/gridder lane set;
//   * an LRU pool of BatchedNufft plans keyed by geometry — the serve-layer
//     plan cache above fft::FftPlanCache. A same-geometry burst of N
//     requests builds exactly one plan (serve.plan_builds == distinct
//     geometries), the acceptance invariant of this subsystem;
//   * per-request deadline enforcement at every phase boundary (admission,
//     sanitize, execute, respond) via common/deadline.hpp.
//
// The per-request pipeline is: admission checks -> SampleSanitizer with the
// request's policy (a modified sample set leaves the batch and executes on
// its own plan, since its geometry changed) -> adjoint / CG recon /
// CG-SENSE -> completion callback with one of the five protocol statuses.
//
// Completion callbacks run on the dispatcher thread (or inline in submit()
// for requests that never reach the queue) and are invoked exactly once per
// submitted job. drain() stops admission and returns once every queued and
// in-flight job has completed — the graceful-shutdown half of SIGTERM
// handling; jobs submitted afterwards are REJECTED.
//
// The engine keeps its own per-status totals (EngineCounts, available even
// with JIGSAW_OBS=OFF) and mirrors them to obs counters/gauges under
// serve.* for the /statsz snapshot.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.hpp"
#include "core/batch.hpp"
#include "core/sample_set.hpp"
#include "serve/protocol.hpp"
#include "stream/frame_pipeline.hpp"
#include "tune/autotuner.hpp"

namespace jigsaw::serve {

struct ServeConfig {
  std::string socket_path;      // ReconServer: AF_UNIX socket file ("" = off)
  std::string listen;           // ReconServer: TCP "host:port" ("" = off);
                                // bind 127.0.0.1 unless another interface
                                // is named explicitly
  std::size_t max_queue = 64;   // admission queue capacity (jobs)
  std::size_t max_batch = 8;    // same-geometry jobs fused per dispatch
  std::size_t max_plans = 16;   // resident geometry plans (LRU-evicted)
  std::size_t max_request_samples = 1u << 21;  // per-request M cap
  std::size_t max_request_bytes = 256u << 20;  // frame-size admission cap
  unsigned exec_threads = 2;    // execution lanes per plan (batch/coil)
  std::int64_t max_n = 1024;    // largest accepted base grid side
  int max_iters = 64;           // largest accepted CG iteration count
  int max_coils = 32;
  double cg_tolerance = 1e-6;
  int default_sense_iters = 10;  // CG-SENSE depth when coils > 1, iters == 0
  int reply_write_timeout_ms = 5000;  // wall-clock bound per reply write; a
                                      // peer that stops reading is cut off
                                      // instead of stalling the dispatcher
                                      // (< 0 = unbounded)
  std::string wisdom_path;      // autotuner wisdom store ("" = in-memory)
  bool tune_trials = true;      // false: cost-model only for cold Auto keys
  std::size_t max_sessions = 8;  // concurrent streaming sessions
};

/// A parsed, validated-enough-to-try reconstruction job.
struct ReconJob {
  core::GridderOptions options;  // sanitize policy rides in options.sanitize
  std::int64_t n = 128;
  int iters = 0;   // 0 = adjoint only
  int coils = 1;   // >1 = CG-SENSE with synthetic birdcage maps
  Deadline deadline;
  core::SampleSet<2> samples;  // coils > 1: values holds coils blocks of m
  std::uint64_t client_tag = 0;
};

struct ReconOutcome {
  Status status = Status::kError;
  std::string message;
  std::int64_t n = 0;
  std::vector<c64> image;  // filled for kOk / kSanitizedPartial
  std::uint64_t sanitize_dropped = 0;
  std::uint64_t sanitize_repaired = 0;
  std::uint64_t client_tag = 0;
};

/// One frame of an open streaming session, headed for that session's
/// FramePipeline on the dispatcher thread.
struct StreamFrameJob {
  std::uint64_t session_id = 0;
  std::uint64_t frame_index = 0;
  std::uint64_t client_tag = 0;
  int coils = 1;  // cross-checked against the session's coil count
  Deadline deadline;
  std::vector<Coord<2>> coords;
  std::vector<c64> values;  // coils consecutive blocks of coords.size()
};

/// Completion record for one streamed frame (maps onto FrameReplyWire).
struct FrameOutcome {
  Status status = Status::kError;
  std::string message;
  std::int64_t n = 0;
  std::vector<c64> image;
  int iterations = 0;
  double residual = 0.0;
  bool warm_started = false;
  bool guard_tripped = false;
  bool plan_reused = false;
  std::uint64_t session_id = 0;
  std::uint64_t frame_index = 0;
  std::uint64_t client_tag = 0;
};

/// Completion record for open_session / close (maps onto SessionReplyWire).
struct SessionOutcome {
  Status status = Status::kError;
  std::string message;
  std::uint64_t session_id = 0;
  std::uint64_t client_tag = 0;
  std::uint64_t frames = 0;            // frames completed over the session
  std::uint64_t total_iterations = 0;  // CG iterations across those frames
};

/// Point-in-time totals. Monotonic counts on the left; queue_depth /
/// inflight are instantaneous gauges.
struct EngineCounts {
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t sanitized_partial = 0;
  std::uint64_t timeout = 0;
  std::uint64_t rejected = 0;
  std::uint64_t error = 0;
  std::uint64_t batches = 0;          // dispatches executed
  std::uint64_t batched_jobs = 0;     // jobs that rode a >= 2 job dispatch
  std::uint64_t plan_builds = 0;      // geometry-pool misses
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_evictions = 0;
  std::uint64_t tuned_plans = 0;      // plan builds that resolved engine=auto
  std::uint64_t sessions_opened = 0;  // streaming sessions (accepted opens)
  std::uint64_t sessions_closed = 0;
  std::uint64_t frames_submitted = 0;  // streamed frames entering submit_frame
  std::uint64_t frames_ok = 0;
  std::uint64_t frames_timeout = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t frames_error = 0;
  std::uint64_t warm_frames = 0;       // frames solved from a warm seed
  std::uint64_t guard_trips = 0;       // warm solves redone cold
  std::size_t queue_depth = 0;
  std::size_t inflight = 0;
  std::size_t active_sessions = 0;
  bool draining = false;

  std::uint64_t completed() const {
    return ok + sanitized_partial + timeout + rejected + error;
  }
  std::uint64_t frames_completed() const {
    return frames_ok + frames_timeout + frames_rejected + frames_error;
  }
};

class ServeEngine {
 public:
  using Callback = std::function<void(ReconOutcome)>;
  using FrameCallback = std::function<void(FrameOutcome)>;
  using SessionCallback = std::function<void(SessionOutcome)>;

  explicit ServeEngine(const ServeConfig& config);
  ~ServeEngine();  // drains, then joins the dispatcher

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Admit or immediately reject `job`. `done` is invoked exactly once —
  /// inline (from this call) for REJECTED/TIMEOUT-at-admission, from the
  /// dispatcher thread otherwise. Callbacks must not call back into the
  /// engine.
  void submit(ReconJob job, Callback done);

  /// Open a streaming session: allocate a session id and its FramePipeline
  /// shell (no plan is built until the first frame arrives, so this is
  /// cheap and synchronous). REJECTED when limits are violated or the
  /// engine is draining; the returned outcome carries the session id.
  SessionOutcome open_session(const OpenSessionWire& req);

  /// Admit one frame of an open session. Frames of a session execute in
  /// submission order on the dispatcher thread (warm-start needs the
  /// previous frame's image); `done` fires exactly once, inline for
  /// REJECTED/TIMEOUT-at-admission. Like submit(), admitted frames are
  /// always answered — drain() waits for them before returning.
  void submit_frame(StreamFrameJob job, FrameCallback done);

  /// Close a session. The close is a queue sentinel: frames admitted
  /// before it still complete (FIFO), frames pushed after it are REJECTED.
  /// `done` receives the session's lifetime totals.
  void submit_close(std::uint64_t session_id, std::uint64_t client_tag,
                    SessionCallback done);

  /// Record a request that terminated outside the engine (the socket layer
  /// refusing an oversized frame -> kRejected, a malformed body -> kError),
  /// so per-status totals cover every request the process saw.
  void count_external(Status status);

  /// Stop admitting, finish every queued + in-flight job, return when the
  /// engine is idle. Idempotent; subsequent submits are REJECTED.
  void drain();

  EngineCounts counts() const;
  const ServeConfig& config() const { return config_; }

  /// The engine's autotuner (resolves GridderKind::Auto at plan build).
  /// Shares the engine's wisdom store; safe to query concurrently.
  tune::Autotuner& tuner() { return *tuner_; }

  /// JSON snapshot of counts + obs counters/gauges (the /statsz body).
  std::string statsz_json() const;

 private:
  struct GeometryKey {
    std::int64_t n = 0;
    std::uint64_t options_sig = 0;
    std::uint64_t traj_hash = 0;
    std::size_t m = 0;
    auto operator<=>(const GeometryKey&) const = default;
  };

  // One open streaming session. `closed` is guarded by mu_; the pipeline
  // and lifetime totals are touched only by the dispatcher thread (every
  // frame/close of a session is processed there, serially).
  struct StreamSession {
    std::uint64_t id = 0;
    std::int64_t n = 0;
    int coils = 1;
    std::uint64_t frame_deadline_ms = 0;  // default when a push carries none
    std::unique_ptr<stream::FramePipeline> pipeline;
    std::uint64_t frames = 0;
    std::uint64_t total_iterations = 0;
    bool closed = false;
  };

  struct Pending {
    ReconJob job;
    Callback done;
    GeometryKey key;
    // Streaming extension: a Pending with `session` set is a frame (or,
    // with `close` set, the close sentinel) and dispatches solo — never
    // fused with recon jobs or with other sessions' frames.
    std::shared_ptr<StreamSession> session;
    bool close = false;
    StreamFrameJob frame;
    FrameCallback frame_done;
    SessionCallback close_done;
  };

  struct PlanEntry {
    std::shared_ptr<core::BatchedNufft<2>> plan;
    std::uint64_t last_used = 0;
  };

  void dispatcher_loop();
  void process_batch(std::vector<Pending> batch);
  void process_stream(Pending p);  // one frame or close sentinel
  void execute_adjoint_batch(
      const std::shared_ptr<core::BatchedNufft<2>>& plan,
      std::vector<Pending>& group);
  ReconOutcome execute_single(Pending& p,
                              const std::shared_ptr<core::BatchedNufft<2>>& plan);
  std::shared_ptr<core::BatchedNufft<2>> plan_for(const Pending& p);

  void finish(Pending& p, ReconOutcome outcome, bool was_inflight);
  void finish_frame(Pending& p, FrameOutcome outcome, bool was_inflight);
  void finish_close(Pending& p, SessionOutcome outcome, bool was_inflight);
  void publish_gauges();  // queue_depth / inflight / draining, under mu_

  static GeometryKey key_of(const ReconJob& job);

  const ServeConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // dispatcher wakeup
  std::condition_variable cv_idle_;   // drain() wakeup
  std::deque<Pending> queue_;
  std::size_t inflight_ = 0;
  bool draining_ = false;
  bool stop_ = false;
  EngineCounts counts_;

  // Plan pool: dispatcher-thread-only (no lock needed beyond the queue's).
  // Keyed on the ORIGINAL options signature (Auto included), so a burst of
  // engine=auto requests still resolves to one pooled plan; the tuner's
  // substitution happens inside plan_for() at construction time.
  std::map<GeometryKey, PlanEntry> plans_;
  std::uint64_t plan_tick_ = 0;
  std::unique_ptr<tune::Autotuner> tuner_;  // created in the constructor

  // Streaming sessions, keyed by id. Server-scoped (not per-connection):
  // the router pools worker connections, so a session must survive frames
  // arriving over different sockets. Map guarded by mu_.
  std::map<std::uint64_t, std::shared_ptr<StreamSession>> sessions_;
  std::uint64_t session_salt_ = 0;  // per-process high bits of session ids
  std::uint64_t session_seq_ = 0;

  std::thread dispatcher_;
};

}  // namespace jigsaw::serve
