// Wire protocol for the jigsaw_serve reconstruction daemon.
//
// Transport: a Unix-domain stream socket carrying length-prefixed frames.
// Every frame is a 16-byte header followed by `body_len` payload bytes:
//
//   u32 magic      0x4A535256 ("JSRV")
//   u32 type       MsgType
//   u64 body_len   payload bytes that follow
//
// Integers and doubles are host-endian: the socket never leaves the
// machine, so the protocol trades portability for zero-copy encode/decode
// of multi-megabyte sample payloads. docs/serving.md documents the framing
// and the per-field layout below.
//
// Request/reply bodies are encoded by the functions here; decode_* performs
// a *recovering* parse — every length, range and enum is validated and any
// violation raises ProtocolError, which the server maps to a Status::kError
// reply instead of tearing down the process. A frame whose advertised
// body_len exceeds the receiver's limit raises FrameTooLarge *before* the
// body is read, which the server maps to Status::kRejected (admission
// control, not a malformed client).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace jigsaw::serve {

inline constexpr std::uint32_t kMagic = 0x4A535256;  // "JSRV"
inline constexpr std::uint32_t kProtocolVersion = 1;

enum class MsgType : std::uint32_t {
  kRecon = 1,       // ReconRequestWire body
  kStats = 2,       // empty body; answered with kStatsReply
  kOpenSession = 3,   // OpenSessionWire body; answered with kSessionReply
  kPushFrame = 4,     // PushFrameWire body; answered with kFrameReply
  kCloseSession = 5,  // CloseSessionWire body; answered with kSessionReply
  kReconDataset = 6,  // DatasetRequestWire body; answered with kReconReply
  kReconReply = 101,
  kStatsReply = 102,  // UTF-8 JSON text body (the /statsz snapshot)
  kSessionReply = 103,  // SessionReplyWire body (open + close)
  kFrameReply = 104,    // FrameReplyWire body
};

/// Per-request terminal status, echoed in every recon reply and counted by
/// the serve.* per-status counters.
enum class Status : std::uint32_t {
  kOk = 0,
  kSanitizedPartial = 1,  // succeeded, but the sanitizer dropped/repaired
                          // samples first (response carries the detail)
  kTimeout = 2,           // deadline passed at a phase boundary
  kRejected = 3,          // admission control: queue full, oversized,
                          // limits exceeded, or server draining
  kError = 4,             // malformed request or reconstruction failure
};

const char* to_string(Status s);

class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("protocol: " + what) {}
};

/// A frame header advertised a body larger than the receiver allows. The
/// body has NOT been consumed; the connection cannot be resynchronized and
/// must be closed after the rejection reply.
class FrameTooLarge : public ProtocolError {
 public:
  FrameTooLarge(std::uint64_t advertised_bytes, std::uint64_t limit_bytes)
      : ProtocolError("frame body of " + std::to_string(advertised_bytes) +
                      " bytes exceeds limit of " +
                      std::to_string(limit_bytes)),
        advertised(advertised_bytes),
        limit(limit_bytes) {}
  std::uint64_t advertised;
  std::uint64_t limit;
};

/// Recon request body. Layout (in order):
///   u32 version, u32 engine, u32 n, u32 iters, u32 coils, u32 sanitize,
///   u32 kernel_width, u32 pad, f64 sigma, u64 deadline_ms, u64 client_tag,
///   u64 m, f64 coords[2*m], f64 values[2*m*coils]
/// Values are per-coil blocks of m complex samples (coil-major).
/// deadline_ms == 0 means unbounded.
/// High bit of ReconRequestWire::engine selects the SIMD variant of the
/// engine; the low bits remain a core::GridderKind. The wire layout is
/// unchanged (pre-SIMD servers reject flagged codes as unknown engines).
inline constexpr std::uint32_t kEngineSimdFlag = 0x80000000u;

struct ReconRequestWire {
  std::uint32_t engine = 3;   // core::GridderKind (3 = slice-dice),
                              // optionally OR-ed with kEngineSimdFlag
  std::uint32_t n = 128;      // base grid side
  std::uint32_t iters = 0;    // 0 = adjoint-only, >0 = CG iterations; with
                              // coils > 1 (where adjoint-only is undefined)
                              // 0 selects the server's default CG-SENSE
                              // depth (ServeConfig::default_sense_iters,
                              // 10) and the reply message reports it
  std::uint32_t coils = 1;    // >1 = CG-SENSE with server-side birdcage maps
  std::uint32_t sanitize = 0; // robustness::SanitizePolicy
  std::uint32_t kernel_width = 6;
  double sigma = 2.0;
  std::uint64_t deadline_ms = 0;
  std::uint64_t client_tag = 0;  // echoed verbatim in the reply
  std::vector<Coord<2>> coords;  // m
  std::vector<c64> values;       // m * coils
};

/// Recon reply body. Layout:
///   u32 status, u32 n, u64 client_tag, u64 sanitize_dropped,
///   u64 sanitize_repaired, u32 msg_len, u8 msg[msg_len],
///   u64 pixel_count, f64 image[2*pixel_count]
struct ReconReplyWire {
  Status status = Status::kError;
  std::uint32_t n = 0;
  std::uint64_t client_tag = 0;
  std::uint64_t sanitize_dropped = 0;
  std::uint64_t sanitize_repaired = 0;
  std::string message;
  std::vector<c64> image;  // n*n pixels when status is OK/SANITIZED_PARTIAL
};

std::vector<std::uint8_t> encode_recon_request(const ReconRequestWire& req);
ReconRequestWire decode_recon_request(const std::uint8_t* data,
                                      std::size_t len);

std::vector<std::uint8_t> encode_recon_reply(const ReconReplyWire& reply);
ReconReplyWire decode_recon_reply(const std::uint8_t* data, std::size_t len);

/// Dataset-by-reference recon request (kReconDataset). Instead of shipping
/// coords + samples inline, the client names a JKSD file on the *worker's*
/// filesystem (docs/datasets.md); the worker streams it through
/// data::recon_dataset and answers with a normal kReconReply whose image is
/// the mean magnitude across surviving chunks (imaginary parts zero) and
/// whose message summarizes ingest (chunks read/rejected, mean NRMSE).
/// Layout:
///   u32 version, u32 engine, u32 iters, u32 dcf, u32 path_len, u32 pad,
///   u64 deadline_ms, u64 client_tag, u8 path[path_len]
/// `dcf` is a data::DcfMode (0 none, 1 embedded, 2 pipe-menon). `iters`
/// follows kRecon semantics (0 = adjoint + RSS). Chunk-level corruption is
/// NOT an error — the reply is kOk as long as one chunk survived.
struct DatasetRequestWire {
  std::uint32_t engine = 3;  // core::GridderKind (| kEngineSimdFlag)
  std::uint32_t iters = 0;
  std::uint32_t dcf = 2;     // data::DcfMode, pipe-menon by default
  std::uint64_t deadline_ms = 0;
  std::uint64_t client_tag = 0;  // echoed verbatim in the reply
  std::string path;              // worker-local JKSD file
};

std::vector<std::uint8_t> encode_dataset_request(const DatasetRequestWire& req);
DatasetRequestWire decode_dataset_request(const std::uint8_t* data,
                                          std::size_t len);

// --- streaming sessions ---------------------------------------------------
//
// A session is the wire surface of one stream::FramePipeline living on one
// worker: open-session fixes the frame geometry class (grid, engine,
// kernel, coils, CG depth) and the warm-start policy; each push-frame
// carries one frame's trajectory + samples and is answered in order with
// the frame's image and solver stats; close-session tears the state down
// and reports session totals. Frames of one session execute FIFO on the
// worker's dispatcher (never fused with other jobs — the pipeline's
// warm-start state is inherently sequential). The router pins a session to
// the worker that answered its open (docs/streaming.md).

/// Open-session body. Layout:
///   u32 version, u32 engine, u32 n, u32 iters, u32 coils,
///   u32 kernel_width, u32 warm_start, u32 pad, f64 sigma,
///   f64 divergence_guard, u64 frame_deadline_ms, u64 client_tag
/// `iters` >= 1 (a session exists to iterate; adjoint-only streaming does
/// not need session state). frame_deadline_ms is the per-frame default
/// (0 = unbounded); push-frame may override per frame.
struct OpenSessionWire {
  std::uint32_t engine = 3;  // core::GridderKind (| kEngineSimdFlag)
  std::uint32_t n = 128;
  std::uint32_t iters = 10;
  std::uint32_t coils = 1;
  std::uint32_t kernel_width = 6;
  std::uint32_t warm_start = 1;  // 0/1
  double sigma = 2.0;
  double divergence_guard = 1.0;  // <= 0 disables the guard
  std::uint64_t frame_deadline_ms = 0;
  std::uint64_t client_tag = 0;
};

/// Reply to open-session AND close-session. Layout:
///   u32 status, u32 pad, u64 session_id, u64 client_tag, u64 frames,
///   u64 total_iterations, u32 msg_len, u8 msg[msg_len]
/// `frames` / `total_iterations` are session totals (close; zero on open).
struct SessionReplyWire {
  Status status = Status::kError;
  std::uint64_t session_id = 0;
  std::uint64_t client_tag = 0;
  std::uint64_t frames = 0;
  std::uint64_t total_iterations = 0;
  std::string message;
};

/// Push-frame body. Layout:
///   u32 version, u32 coils, u64 session_id, u64 frame_index,
///   u64 deadline_ms, u64 client_tag, u64 m, f64 coords[2*m],
///   f64 values[2*m*coils]
/// `coils` must repeat the session's coil count (it sizes the payload for
/// the recovering decode); deadline_ms == 0 uses the session default.
struct PushFrameWire {
  std::uint32_t coils = 1;
  std::uint64_t session_id = 0;
  std::uint64_t frame_index = 0;
  std::uint64_t deadline_ms = 0;
  std::uint64_t client_tag = 0;
  std::vector<Coord<2>> coords;
  std::vector<c64> values;  // m * coils, coil-major blocks
};

/// FrameReplyWire::flags bits.
inline constexpr std::uint32_t kFrameWarmFlag = 1u;        // warm-seeded
inline constexpr std::uint32_t kFrameGuardFlag = 2u;       // guard tripped
inline constexpr std::uint32_t kFramePlanReusedFlag = 4u;  // plan reused

/// Per-frame reply. Layout:
///   u32 status, u32 n, u32 iterations, u32 flags, u64 session_id,
///   u64 frame_index, u64 client_tag, f64 residual, u32 msg_len,
///   u8 msg[msg_len], u64 pixel_count, f64 image[2*pixel_count]
struct FrameReplyWire {
  Status status = Status::kError;
  std::uint32_t n = 0;
  std::uint32_t iterations = 0;
  std::uint32_t flags = 0;
  std::uint64_t session_id = 0;
  std::uint64_t frame_index = 0;
  std::uint64_t client_tag = 0;
  double residual = 0.0;
  std::string message;
  std::vector<c64> image;
};

/// Close-session body. Layout:
///   u32 version, u32 pad, u64 session_id, u64 client_tag
struct CloseSessionWire {
  std::uint64_t session_id = 0;
  std::uint64_t client_tag = 0;
};

std::vector<std::uint8_t> encode_open_session(const OpenSessionWire& req);
OpenSessionWire decode_open_session(const std::uint8_t* data,
                                    std::size_t len);

std::vector<std::uint8_t> encode_session_reply(const SessionReplyWire& reply);
SessionReplyWire decode_session_reply(const std::uint8_t* data,
                                      std::size_t len);

std::vector<std::uint8_t> encode_push_frame(const PushFrameWire& req);
PushFrameWire decode_push_frame(const std::uint8_t* data, std::size_t len);

std::vector<std::uint8_t> encode_frame_reply(const FrameReplyWire& reply);
FrameReplyWire decode_frame_reply(const std::uint8_t* data, std::size_t len);

std::vector<std::uint8_t> encode_close_session(const CloseSessionWire& req);
CloseSessionWire decode_close_session(const std::uint8_t* data,
                                      std::size_t len);

/// One received frame.
struct Frame {
  MsgType type = MsgType::kRecon;
  std::vector<std::uint8_t> body;
};

/// Write one frame (header + body), retrying on EINTR/partial writes.
/// Throws std::runtime_error on I/O failure (e.g. peer gone). When
/// timeout_ms >= 0, each of header and body must complete within that many
/// milliseconds of wall clock or the call throws — the frame is then only
/// partially written and the connection must be closed. timeout_ms < 0
/// blocks indefinitely (client side, where the server reads promptly).
void send_frame(int fd, MsgType type, const std::uint8_t* body,
                std::size_t len, int timeout_ms = -1);
inline void send_frame(int fd, MsgType type,
                       const std::vector<std::uint8_t>& body,
                       int timeout_ms = -1) {
  send_frame(fd, type, body.data(), body.size(), timeout_ms);
}

/// A bounded recv_frame ran out of wall clock. Distinct from ProtocolError:
/// the peer did nothing wrong, it is just too slow — the caller decides
/// whether that terminates the request (router: ERROR, never hang).
class RecvTimeout : public std::runtime_error {
 public:
  explicit RecvTimeout(int timeout_ms)
      : std::runtime_error("serve: recv timed out after " +
                           std::to_string(timeout_ms) + " ms") {}
};

/// Read one frame. Returns false on clean EOF before any header byte.
/// Throws ProtocolError on bad magic / unknown type / truncation and
/// FrameTooLarge when body_len > max_body (body unread — close afterwards).
/// When timeout_ms >= 0 the WHOLE frame must arrive within that many
/// milliseconds of wall clock or RecvTimeout is thrown (the stream may then
/// be mid-frame — unrecoverable, close the connection).
bool recv_frame(int fd, Frame& out, std::size_t max_body,
                int timeout_ms = -1);

}  // namespace jigsaw::serve
