#include "serve/engine.hpp"

#include <algorithm>
#include <cstring>
#include <random>
#include <sstream>

#include "core/recon.hpp"
#include "core/sense.hpp"
#include "obs/obs.hpp"
#include "robustness/sanitize.hpp"

namespace jigsaw::serve {

namespace {

std::uint64_t fnv1a(const void* data, std::size_t len,
                    std::uint64_t seed = 1469598103934665603ull) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

const char* status_counter(Status s) {
  switch (s) {
    case Status::kOk: return "serve.ok";
    case Status::kSanitizedPartial: return "serve.sanitized_partial";
    case Status::kTimeout: return "serve.timeout";
    case Status::kRejected: return "serve.rejected";
    case Status::kError: return "serve.error";
  }
  return "serve.error";
}

ReconOutcome make_outcome(Status status, std::string message,
                          std::int64_t n = 0) {
  ReconOutcome o;
  o.status = status;
  o.message = std::move(message);
  o.n = n;
  return o;
}

const char* frame_status_counter(Status s) {
  switch (s) {
    case Status::kOk: return "serve.frames_ok";
    case Status::kSanitizedPartial: return "serve.frames_ok";  // not emitted
    case Status::kTimeout: return "serve.frames_timeout";
    case Status::kRejected: return "serve.frames_rejected";
    case Status::kError: return "serve.frames_error";
  }
  return "serve.frames_error";
}

}  // namespace

ServeEngine::ServeEngine(const ServeConfig& config) : config_(config) {
  // Built before the dispatcher starts: an unwritable wisdom path must fail
  // engine construction (daemon startup), not the first auto request.
  tune::TunerConfig tuner_config;
  tuner_config.wisdom_path = config_.wisdom_path;
  tuner_config.enable_trials = config_.tune_trials;
  tuner_ = std::make_unique<tune::Autotuner>(std::move(tuner_config));
  // Session ids must differ across workers (the router relays ids between
  // processes), so the high bits carry per-process entropy and the low bits
  // a sequence number.
  session_salt_ = (static_cast<std::uint64_t>(std::random_device{}()) << 32);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

ServeEngine::~ServeEngine() {
  drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  dispatcher_.join();
}

ServeEngine::GeometryKey ServeEngine::key_of(const ReconJob& job) {
  GeometryKey key;
  key.n = job.n;
  key.m = job.samples.coords.size();
  // Coord<2> is a contiguous trivially-copyable array, so the coordinate
  // set hashes as one byte range. A 64-bit collision between two *queued*
  // geometries is vanishingly unlikely; m and n participating in the key
  // narrows it further.
  key.traj_hash = fnv1a(job.samples.coords.data(),
                        key.m * sizeof(Coord<2>));
  const auto& o = job.options;
  // An even count of int32 fields keeps sizeof == sum-of-members: the
  // struct is hashed as raw bytes, so a padding hole before the double
  // would feed indeterminate bytes into the key (pad stays 0).
  struct {
    std::int32_t kind, kernel, width, table, tile, exact, simd, pad;
    double sigma;
  } sig{static_cast<std::int32_t>(o.kind),
        static_cast<std::int32_t>(o.kernel),
        o.width,
        o.table_oversampling,
        o.tile,
        o.exact_weights ? 1 : 0,
        o.simd ? 1 : 0,
        0,
        o.sigma};
  static_assert(sizeof(sig) == 8 * sizeof(std::int32_t) + sizeof(double),
                "options signature must have no padding bytes");
  key.options_sig = fnv1a(&sig, sizeof sig);
  return key;
}

void ServeEngine::submit(ReconJob job, Callback done) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++counts_.submitted;
  }
  obs::add("serve.submitted", 1);

  Pending p;
  p.job = std::move(job);
  p.done = std::move(done);

  // Admission-control limits first: violations are REJECTED (a policy
  // decision), not ERROR (a malformed request).
  const auto& j = p.job;
  std::string reject;
  if (j.n < 2 || j.n > config_.max_n) {
    reject = "grid size " + std::to_string(j.n) + " outside [2, " +
             std::to_string(config_.max_n) + "]";
  } else if (j.samples.coords.empty()) {
    reject = "empty sample set";
  } else if (j.samples.coords.size() > config_.max_request_samples) {
    reject = "sample count " + std::to_string(j.samples.coords.size()) +
             " exceeds max_request_samples " +
             std::to_string(config_.max_request_samples);
  } else if (j.iters < 0 || j.iters > config_.max_iters) {
    reject = "iteration count outside [0, " +
             std::to_string(config_.max_iters) + "]";
  } else if (j.coils < 1 || j.coils > config_.max_coils) {
    reject = "coil count outside [1, " + std::to_string(config_.max_coils) +
             "]";
  } else if (j.coils > 1 &&
             j.options.sanitize != robustness::SanitizePolicy::None) {
    // The sanitizer operates on a coords/values pair of equal length;
    // multi-coil payloads carry coils blocks of values per coordinate set.
    reject = "sanitize policies are single-coil only";
  }
  if (!reject.empty()) {
    finish(p, make_outcome(Status::kRejected, std::move(reject)),
           /*was_inflight=*/false);
    return;
  }
  if (j.samples.values.size() !=
      j.samples.coords.size() * static_cast<std::size_t>(j.coils)) {
    finish(p,
           make_outcome(Status::kError,
                        "value count does not equal samples x coils"),
           /*was_inflight=*/false);
    return;
  }
  if (j.deadline.expired()) {
    finish(p,
           make_outcome(Status::kTimeout, "deadline expired at admission"),
           /*was_inflight=*/false);
    return;
  }

  p.key = key_of(p.job);
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (draining_ || stop_) {
      lk.unlock();
      finish(p, make_outcome(Status::kRejected, "server draining"),
             /*was_inflight=*/false);
      return;
    }
    if (queue_.size() >= config_.max_queue) {
      lk.unlock();
      finish(p,
             make_outcome(Status::kRejected,
                          "admission queue full (" +
                              std::to_string(config_.max_queue) + ")"),
             /*was_inflight=*/false);
      return;
    }
    queue_.push_back(std::move(p));
    publish_gauges();
  }
  cv_work_.notify_one();
}

SessionOutcome ServeEngine::open_session(const OpenSessionWire& req) {
  SessionOutcome out;
  out.client_tag = req.client_tag;

  // Decode the engine field exactly as the one-shot recon path does
  // (job_from_wire): low bits select the kind, the high bit requests SIMD.
  const bool simd = (req.engine & kEngineSimdFlag) != 0;
  const std::uint32_t engine_code = req.engine & ~kEngineSimdFlag;
  std::string error;
  if (engine_code > static_cast<std::uint32_t>(core::GridderKind::Auto)) {
    error = "unknown engine code " + std::to_string(engine_code);
  } else if (simd &&
             static_cast<core::GridderKind>(engine_code) !=
                 core::GridderKind::Auto &&
             !core::gridder_kind_has_simd(
                 static_cast<core::GridderKind>(engine_code))) {
    error = "engine '" +
            core::to_string(static_cast<core::GridderKind>(engine_code)) +
            "' has no SIMD variant";
  } else if (req.kernel_width < 2 || req.kernel_width > 16) {
    error = "kernel width " + std::to_string(req.kernel_width) +
            " outside [2, 16]";
  } else if (!(req.sigma >= 1.125 && req.sigma <= 4.0)) {
    error = "oversampling sigma outside [1.125, 4]";
  } else if (!(req.divergence_guard >= 0.0)) {  // !>= rejects NaN too
    error = "divergence guard must be >= 0 (0 disables the guard)";
  }
  if (!error.empty()) {
    out.status = Status::kError;
    out.message = std::move(error);
    return out;
  }

  std::string reject;
  if (req.n < 2 || static_cast<std::int64_t>(req.n) > config_.max_n) {
    reject = "grid size " + std::to_string(req.n) + " outside [2, " +
             std::to_string(config_.max_n) + "]";
  } else if (static_cast<int>(req.iters) > config_.max_iters) {
    reject = "iteration count outside [1, " +
             std::to_string(config_.max_iters) + "]";
  } else if (static_cast<int>(req.coils) > config_.max_coils) {
    reject = "coil count outside [1, " + std::to_string(config_.max_coils) +
             "]";
  }
  if (!reject.empty()) {
    out.status = Status::kRejected;
    out.message = std::move(reject);
    return out;
  }

  stream::PipelineConfig pc;
  pc.n = static_cast<std::int64_t>(req.n);
  pc.options.kind = static_cast<core::GridderKind>(engine_code);
  pc.options.simd = simd;
  pc.options.width = static_cast<int>(req.kernel_width);
  pc.options.sigma = req.sigma;
  pc.iters = static_cast<int>(req.iters);
  pc.tolerance = config_.cg_tolerance;
  pc.coils = static_cast<int>(req.coils);
  pc.warm_start = req.warm_start != 0;
  pc.divergence_guard = req.divergence_guard;

  auto session = std::make_shared<StreamSession>();
  session->n = pc.n;
  session->coils = pc.coils;
  session->frame_deadline_ms = req.frame_deadline_ms;
  try {
    // Cheap: coil maps for coils > 1, no plan until the first frame.
    session->pipeline = std::make_unique<stream::FramePipeline>(pc);
  } catch (const std::exception& e) {
    out.status = Status::kError;
    out.message = e.what();
    return out;
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (draining_ || stop_) {
      out.status = Status::kRejected;
      out.message = "server draining";
      return out;
    }
    if (sessions_.size() >= config_.max_sessions) {
      out.status = Status::kRejected;
      out.message = "session limit reached (" +
                    std::to_string(config_.max_sessions) + ")";
      return out;
    }
    session->id = session_salt_ | ++session_seq_;
    sessions_[session->id] = session;
    ++counts_.sessions_opened;
    publish_gauges();
  }
  obs::add("serve.sessions_opened", 1);
  out.status = Status::kOk;
  out.session_id = session->id;
  return out;
}

void ServeEngine::submit_frame(StreamFrameJob job, FrameCallback done) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++counts_.frames_submitted;
  }
  obs::add("serve.frames_submitted", 1);

  Pending p;
  p.frame = std::move(job);
  p.frame_done = std::move(done);

  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = sessions_.find(p.frame.session_id);
    if (it != sessions_.end() && !it->second->closed) session = it->second;
  }

  auto reject_frame = [&](Status status, std::string message) {
    FrameOutcome out;
    out.status = status;
    out.message = std::move(message);
    out.session_id = p.frame.session_id;
    out.frame_index = p.frame.frame_index;
    out.client_tag = p.frame.client_tag;
    finish_frame(p, std::move(out), /*was_inflight=*/false);
  };

  if (!session) {
    reject_frame(Status::kRejected,
                 "unknown or closed session " +
                     std::to_string(p.frame.session_id));
    return;
  }
  if (p.frame.coords.empty()) {
    reject_frame(Status::kError, "empty frame");
    return;
  }
  if (p.frame.coords.size() > config_.max_request_samples) {
    reject_frame(Status::kRejected,
                 "sample count " + std::to_string(p.frame.coords.size()) +
                     " exceeds max_request_samples " +
                     std::to_string(config_.max_request_samples));
    return;
  }
  if (p.frame.coils != session->coils) {
    reject_frame(Status::kError,
                 "frame carries " + std::to_string(p.frame.coils) +
                     " coils, session has " +
                     std::to_string(session->coils));
    return;
  }
  if (p.frame.values.size() !=
      p.frame.coords.size() * static_cast<std::size_t>(session->coils)) {
    reject_frame(Status::kError,
                 "value count does not equal samples x coils");
    return;
  }
  // A push with no deadline of its own inherits the session's default.
  if (!p.frame.deadline.bounded() && session->frame_deadline_ms > 0) {
    p.frame.deadline = Deadline::after_ms(
        static_cast<std::int64_t>(session->frame_deadline_ms));
  }
  if (p.frame.deadline.expired()) {
    reject_frame(Status::kTimeout, "deadline expired at admission");
    return;
  }

  {
    std::unique_lock<std::mutex> lk(mu_);
    if (draining_ || stop_ || session->closed) {
      lk.unlock();
      reject_frame(Status::kRejected, session->closed
                                          ? "session closed"
                                          : "server draining");
      return;
    }
    if (queue_.size() >= config_.max_queue) {
      lk.unlock();
      reject_frame(Status::kRejected,
                   "admission queue full (" +
                       std::to_string(config_.max_queue) + ")");
      return;
    }
    p.session = session;
    queue_.push_back(std::move(p));
    publish_gauges();
  }
  cv_work_.notify_one();
}

void ServeEngine::submit_close(std::uint64_t session_id,
                               std::uint64_t client_tag,
                               SessionCallback done) {
  Pending p;
  p.close = true;
  p.frame.session_id = session_id;
  p.frame.client_tag = client_tag;
  p.close_done = std::move(done);

  std::string reject = "unknown or closed session " +
                       std::to_string(session_id);
  {
    std::unique_lock<std::mutex> lk(mu_);
    const auto it = sessions_.find(session_id);
    if (it != sessions_.end() && !it->second->closed) {
      if (draining_ || stop_) {
        reject = "server draining";
      } else if (queue_.size() >= config_.max_queue) {
        reject = "admission queue full (" +
                 std::to_string(config_.max_queue) + ")";
      } else {
        // Mark closed NOW, under the lock: pushes that arrive after the
        // close are rejected, frames already queued still complete (the
        // sentinel sits behind them in FIFO order).
        it->second->closed = true;
        p.session = it->second;
        queue_.push_back(std::move(p));
        publish_gauges();
        lk.unlock();
        cv_work_.notify_one();
        return;
      }
    }
  }
  SessionOutcome out;
  out.status = Status::kRejected;
  out.message = std::move(reject);
  out.session_id = session_id;
  out.client_tag = client_tag;
  finish_close(p, std::move(out), /*was_inflight=*/false);
}

void ServeEngine::count_external(Status status) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++counts_.submitted;
    switch (status) {
      case Status::kOk: ++counts_.ok; break;
      case Status::kSanitizedPartial: ++counts_.sanitized_partial; break;
      case Status::kTimeout: ++counts_.timeout; break;
      case Status::kRejected: ++counts_.rejected; break;
      case Status::kError: ++counts_.error; break;
    }
  }
  obs::add("serve.submitted", 1);
  obs::add(status_counter(status), 1);
}

void ServeEngine::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  draining_ = true;
  publish_gauges();
  cv_work_.notify_all();
  cv_idle_.wait(lk, [&] { return queue_.empty() && inflight_ == 0; });
}

void ServeEngine::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      // Session jobs (frames / close sentinels) dispatch solo: ordering
      // within a session is the warm-start contract, and their plan lives
      // in the session's pipeline, not the shared pool.
      if (queue_.front().session != nullptr) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        inflight_ += 1;
        publish_gauges();
      } else {
        // Plan-aware grouping: the oldest job anchors the dispatch; every
        // queued non-session job with the same geometry key rides along
        // (FIFO order preserved within the group), up to max_batch.
        const GeometryKey key = queue_.front().key;
        for (auto it = queue_.begin();
             it != queue_.end() && batch.size() < config_.max_batch;) {
          if (it->session == nullptr && it->key == key) {
            batch.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
        inflight_ += batch.size();
        publish_gauges();
      }
    }
    if (batch.size() == 1 && batch.front().session != nullptr) {
      process_stream(std::move(batch.front()));
    } else {
      process_batch(std::move(batch));
    }
  }
}

void ServeEngine::process_stream(Pending p) {
  const std::shared_ptr<StreamSession> session = p.session;

  if (p.close) {
    SessionOutcome out;
    out.status = Status::kOk;
    out.session_id = session->id;
    out.client_tag = p.frame.client_tag;
    {
      std::lock_guard<std::mutex> lk(mu_);
      out.frames = session->frames;
      out.total_iterations = session->total_iterations;
      sessions_.erase(session->id);
      ++counts_.sessions_closed;
      publish_gauges();
    }
    obs::add("serve.sessions_closed", 1);
    finish_close(p, std::move(out), /*was_inflight=*/true);
    return;
  }

  FrameOutcome out;
  out.session_id = session->id;
  out.frame_index = p.frame.frame_index;
  out.client_tag = p.frame.client_tag;
  out.n = session->n;
  if (p.frame.deadline.expired()) {
    out.status = Status::kTimeout;
    out.message = "deadline expired in queue";
    finish_frame(p, std::move(out), /*was_inflight=*/true);
    return;
  }
  try {
    stream::FrameResult r = session->pipeline->recon_frame(
        p.frame.coords, p.frame.values, p.frame.deadline);
    out.status = Status::kOk;
    out.image = std::move(r.image);
    out.iterations = r.iterations;
    out.residual = r.residual;
    out.warm_started = r.warm_started;
    out.guard_tripped = r.guard_tripped;
    out.plan_reused = r.plan_reused;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++session->frames;
      session->total_iterations += static_cast<std::uint64_t>(r.iterations);
      if (r.warm_started && !r.guard_tripped) ++counts_.warm_frames;
      if (r.guard_tripped) ++counts_.guard_trips;
    }
    if (r.warm_started && !r.guard_tripped) obs::add("serve.warm_frames", 1);
    if (r.guard_tripped) obs::add("serve.guard_trips", 1);
  } catch (const DeadlineExceeded& e) {
    out.status = Status::kTimeout;
    out.message = e.what();
  } catch (const std::exception& e) {
    out.status = Status::kError;
    out.message = e.what();
  }
  finish_frame(p, std::move(out), /*was_inflight=*/true);
}

void ServeEngine::process_batch(std::vector<Pending> batch) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++counts_.batches;
    if (batch.size() >= 2) counts_.batched_jobs += batch.size();
  }
  obs::add("serve.batches", 1);
  if (batch.size() >= 2) {
    obs::add("serve.batched_jobs", static_cast<std::uint64_t>(batch.size()));
  }
  obs::set_gauge("serve.batch_occupancy", static_cast<double>(batch.size()));

  // Phase boundary 1: deadline at dispatch.
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (p.job.deadline.expired()) {
      finish(p, make_outcome(Status::kTimeout, "deadline expired in queue"),
             /*was_inflight=*/true);
    } else {
      live.push_back(std::move(p));
    }
  }

  // Phase boundary 2: per-request sanitize. A pass that modifies the sample
  // set changes the geometry, so the job leaves the fused group and
  // executes on its own (pooled) plan.
  std::vector<Pending> fused;
  std::vector<std::pair<Pending, ReconOutcome>> solo;  // outcome = partial
  for (auto& p : live) {
    using robustness::SanitizePolicy;
    const SanitizePolicy policy = p.job.options.sanitize;
    ReconOutcome partial;  // carries sanitize counts into the final status
    if (policy != SanitizePolicy::None) {
      try {
        auto outcome = robustness::sanitize<2>(p.job.samples, policy, 1);
        if (outcome.report.modified()) {
          partial.sanitize_dropped = outcome.report.dropped;
          partial.sanitize_repaired = outcome.report.repaired;
          p.job.samples = std::move(outcome.samples);
          p.key = key_of(p.job);
          if (p.job.samples.coords.empty()) {
            finish(p,
                   make_outcome(Status::kError,
                                "sanitizer dropped every sample"),
                   /*was_inflight=*/true);
            continue;
          }
          solo.emplace_back(std::move(p), std::move(partial));
          continue;
        }
      } catch (const std::exception& e) {  // Strict policy: first defect
        finish(p, make_outcome(Status::kError, e.what()),
               /*was_inflight=*/true);
        continue;
      }
    }
    // Multi-coil and iterative jobs execute per-request even when fused
    // into the dispatch (they still share the pooled plan).
    if (p.job.coils > 1 || p.job.iters > 0) {
      solo.emplace_back(std::move(p), std::move(partial));
    } else {
      fused.push_back(std::move(p));
    }
  }

  if (!fused.empty()) {
    std::shared_ptr<core::BatchedNufft<2>> plan;
    try {
      plan = plan_for(fused.front());
    } catch (const std::exception& e) {
      for (auto& p : fused) {
        finish(p, make_outcome(Status::kError, e.what()),
               /*was_inflight=*/true);
      }
      fused.clear();
    }
    if (!fused.empty()) execute_adjoint_batch(plan, fused);
  }

  for (auto& [p, partial] : solo) {
    ReconOutcome outcome;
    try {
      auto plan = plan_for(p);
      outcome = execute_single(p, plan);
    } catch (const DeadlineExceeded& e) {
      outcome = make_outcome(Status::kTimeout, e.what());
    } catch (const std::exception& e) {
      outcome = make_outcome(Status::kError, e.what());
    }
    if (outcome.status == Status::kOk &&
        (partial.sanitize_dropped > 0 || partial.sanitize_repaired > 0)) {
      outcome.status = Status::kSanitizedPartial;
      outcome.sanitize_dropped = partial.sanitize_dropped;
      outcome.sanitize_repaired = partial.sanitize_repaired;
    }
    finish(p, std::move(outcome), /*was_inflight=*/true);
  }
}

void ServeEngine::execute_adjoint_batch(
    const std::shared_ptr<core::BatchedNufft<2>>& plan,
    std::vector<Pending>& group) {
  // Backstop deadline: the most patient member's. Members that expire
  // mid-batch get their own post-execution check below; once even the
  // latest deadline passes, the whole dispatch aborts at the next frame
  // boundary and the survivors report TIMEOUT.
  auto max_remaining = Deadline::Clock::duration::zero();
  bool all_bounded = true;
  for (const auto& p : group) {
    const auto rem = p.job.deadline.remaining();
    if (rem == Deadline::Clock::duration::max()) all_bounded = false;
    max_remaining = std::max(max_remaining, rem);
  }
  const Deadline backstop =
      all_bounded ? Deadline::after(max_remaining) : Deadline::never();

  std::vector<std::vector<c64>> frames;
  frames.reserve(group.size());
  for (auto& p : group) frames.push_back(std::move(p.job.samples.values));

  std::vector<std::vector<c64>> images;
  try {
    images = plan->adjoint(frames, nullptr, backstop);
  } catch (const DeadlineExceeded& e) {
    for (auto& p : group) {
      finish(p, make_outcome(Status::kTimeout, e.what()),
             /*was_inflight=*/true);
    }
    return;
  } catch (const std::exception& e) {
    for (auto& p : group) {
      finish(p, make_outcome(Status::kError, e.what()),
             /*was_inflight=*/true);
    }
    return;
  }

  for (std::size_t i = 0; i < group.size(); ++i) {
    Pending& p = group[i];
    if (p.job.deadline.expired()) {
      finish(p,
             make_outcome(Status::kTimeout, "deadline expired during batch"),
             /*was_inflight=*/true);
      continue;
    }
    ReconOutcome outcome = make_outcome(Status::kOk, "", p.job.n);
    outcome.image = std::move(images[i]);
    finish(p, std::move(outcome), /*was_inflight=*/true);
  }
}

ReconOutcome ServeEngine::execute_single(
    Pending& p, const std::shared_ptr<core::BatchedNufft<2>>& plan) {
  ReconJob& job = p.job;
  job.deadline.check("serve.execute");
  std::vector<c64> image;
  std::string note;
  if (job.coils > 1) {
    // Multi-coil: synthetic birdcage maps (the calibration-free convention
    // the CLI uses); values arrive as coils consecutive blocks of m.
    const auto maps =
        core::make_birdcage_maps(job.n, job.coils);
    const std::size_t m = job.samples.coords.size();
    std::vector<std::vector<c64>> y(static_cast<std::size_t>(job.coils));
    for (int c = 0; c < job.coils; ++c) {
      const auto* first = job.samples.values.data() +
                          static_cast<std::size_t>(c) * m;
      y[static_cast<std::size_t>(c)].assign(first, first + m);
    }
    // Adjoint-only (iters == 0) is undefined for CG-SENSE; the wire
    // contract (protocol.hpp, docs/serving.md) documents that iters == 0
    // selects the configured default depth, surfaced in the reply message.
    const int iters =
        job.iters > 0 ? job.iters : config_.default_sense_iters;
    if (job.iters == 0) {
      note = "cg_sense iters=" + std::to_string(iters) + " (default)";
    }
    image = core::cg_sense(plan->plan(), maps, y, iters,
                           config_.cg_tolerance, nullptr,
                           /*coil_threads=*/1, job.deadline);
  } else if (job.iters > 0) {
    image = core::iterative_recon<2>(plan->plan(), job.samples.values,
                                     job.iters, config_.cg_tolerance,
                                     /*use_toeplitz=*/false, nullptr,
                                     job.deadline);
  } else {
    image = plan->plan().adjoint(job.samples.values, nullptr, job.deadline);
  }
  // Phase boundary: respond. Work that finished past its deadline still
  // reports TIMEOUT — the client has long stopped waiting.
  job.deadline.check("serve.respond");
  ReconOutcome outcome = make_outcome(Status::kOk, std::move(note), job.n);
  outcome.image = std::move(image);
  return outcome;
}

std::shared_ptr<core::BatchedNufft<2>> ServeEngine::plan_for(
    const Pending& p) {
  const auto it = plans_.find(p.key);
  if (it != plans_.end()) {
    it->second.last_used = ++plan_tick_;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++counts_.plan_hits;
    }
    obs::add("serve.plan_hits", 1);
    return it->second.plan;
  }

  // The resident plan is geometry-only: per-request policies (sanitize,
  // soft-error injection) run as pipeline stages before it, and intra-
  // transform threading stays at 1 — parallelism comes from the lanes.
  core::GridderOptions options = p.job.options;
  options.sanitize = robustness::SanitizePolicy::None;
  options.soft_error = {};
  options.threads = 1;
  if (options.kind == core::GridderKind::Auto) {
    // Resolve Auto against the shared tuner. The tune key uses a 1-thread
    // budget: intra-transform threading stays off in the pool (parallelism
    // comes from the lanes), so the tuned engine must win single-threaded.
    const tune::TuneKey tkey = tune::TuneKey::of(
        2, p.job.n, static_cast<std::int64_t>(p.key.m), options,
        /*coils=*/1, /*threads=*/1);
    options = tuner_->tuned_options(tkey, options);
    options.threads = 1;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++counts_.tuned_plans;
    }
    obs::add("serve.tuned_plans", 1);
  }
  auto plan = std::make_shared<core::BatchedNufft<2>>(
      p.job.n, p.job.samples.coords, options,
      std::max(1u, config_.exec_threads));
  plans_[p.key] = PlanEntry{plan, ++plan_tick_};
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++counts_.plan_builds;
  }
  obs::add("serve.plan_builds", 1);

  while (plans_.size() > config_.max_plans) {
    auto lru = plans_.begin();
    for (auto cand = plans_.begin(); cand != plans_.end(); ++cand) {
      if (cand->second.last_used < lru->second.last_used) lru = cand;
    }
    plans_.erase(lru);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++counts_.plan_evictions;
    }
    obs::add("serve.plan_evictions", 1);
  }
  return plan;
}

void ServeEngine::finish(Pending& p, ReconOutcome outcome, bool was_inflight) {
  outcome.client_tag = p.job.client_tag;
  if (outcome.n == 0) outcome.n = p.job.n;
  const Status status = outcome.status;
  // Count BEFORE completing: a caller that observes its reply must already
  // see itself in the per-status totals.
  obs::add(status_counter(status), 1);
  {
    std::lock_guard<std::mutex> lk(mu_);
    switch (status) {
      case Status::kOk: ++counts_.ok; break;
      case Status::kSanitizedPartial: ++counts_.sanitized_partial; break;
      case Status::kTimeout: ++counts_.timeout; break;
      case Status::kRejected: ++counts_.rejected; break;
      case Status::kError: ++counts_.error; break;
    }
  }
  if (p.done) p.done(std::move(outcome));
  // Retire from inflight only AFTER the callback: drain() must not return
  // (and the server must not tear down connections) while a reply is still
  // being written.
  if (was_inflight) {
    std::lock_guard<std::mutex> lk(mu_);
    --inflight_;
    publish_gauges();
    if (queue_.empty() && inflight_ == 0) cv_idle_.notify_all();
  }
}

void ServeEngine::finish_frame(Pending& p, FrameOutcome outcome,
                               bool was_inflight) {
  const Status status = outcome.status;
  // Same ordering contract as finish(): count before the callback, retire
  // from inflight only after it — drain() must not return while a frame
  // reply is still being written.
  obs::add(frame_status_counter(status), 1);
  {
    std::lock_guard<std::mutex> lk(mu_);
    switch (status) {
      case Status::kOk:
      case Status::kSanitizedPartial: ++counts_.frames_ok; break;
      case Status::kTimeout: ++counts_.frames_timeout; break;
      case Status::kRejected: ++counts_.frames_rejected; break;
      case Status::kError: ++counts_.frames_error; break;
    }
  }
  if (p.frame_done) p.frame_done(std::move(outcome));
  if (was_inflight) {
    std::lock_guard<std::mutex> lk(mu_);
    --inflight_;
    publish_gauges();
    if (queue_.empty() && inflight_ == 0) cv_idle_.notify_all();
  }
}

void ServeEngine::finish_close(Pending& p, SessionOutcome outcome,
                               bool was_inflight) {
  if (p.close_done) p.close_done(std::move(outcome));
  if (was_inflight) {
    std::lock_guard<std::mutex> lk(mu_);
    --inflight_;
    publish_gauges();
    if (queue_.empty() && inflight_ == 0) cv_idle_.notify_all();
  }
}

void ServeEngine::publish_gauges() {
  counts_.queue_depth = queue_.size();
  counts_.inflight = inflight_;
  counts_.active_sessions = sessions_.size();
  counts_.draining = draining_;
  obs::set_gauge("serve.queue_depth", static_cast<double>(queue_.size()));
  obs::set_gauge("serve.inflight", static_cast<double>(inflight_));
  obs::set_gauge("serve.active_sessions",
                 static_cast<double>(sessions_.size()));
  obs::set_gauge("serve.draining", draining_ ? 1.0 : 0.0);
}

EngineCounts ServeEngine::counts() const {
  std::lock_guard<std::mutex> lk(mu_);
  EngineCounts c = counts_;
  c.queue_depth = queue_.size();
  c.inflight = inflight_;
  c.active_sessions = sessions_.size();
  c.draining = draining_;
  return c;
}

std::string ServeEngine::statsz_json() const {
  const EngineCounts c = counts();
  std::ostringstream os;
  os << "{\n";
  os << "  \"queue_depth\": " << c.queue_depth << ",\n";
  os << "  \"inflight\": " << c.inflight << ",\n";
  os << "  \"draining\": " << (c.draining ? "true" : "false") << ",\n";
  os << "  \"requests\": {\n";
  os << "    \"submitted\": " << c.submitted << ",\n";
  os << "    \"ok\": " << c.ok << ",\n";
  os << "    \"sanitized_partial\": " << c.sanitized_partial << ",\n";
  os << "    \"timeout\": " << c.timeout << ",\n";
  os << "    \"rejected\": " << c.rejected << ",\n";
  os << "    \"error\": " << c.error << "\n";
  os << "  },\n";
  os << "  \"scheduler\": {\n";
  os << "    \"batches\": " << c.batches << ",\n";
  os << "    \"batched_jobs\": " << c.batched_jobs << ",\n";
  os << "    \"plan_builds\": " << c.plan_builds << ",\n";
  os << "    \"plan_hits\": " << c.plan_hits << ",\n";
  os << "    \"plan_evictions\": " << c.plan_evictions << ",\n";
  os << "    \"tuned_plans\": " << c.tuned_plans << "\n";
  os << "  },\n";
  os << "  \"sessions\": {\n";
  os << "    \"active\": " << c.active_sessions << ",\n";
  os << "    \"opened\": " << c.sessions_opened << ",\n";
  os << "    \"closed\": " << c.sessions_closed << ",\n";
  os << "    \"frames_submitted\": " << c.frames_submitted << ",\n";
  os << "    \"frames_ok\": " << c.frames_ok << ",\n";
  os << "    \"frames_timeout\": " << c.frames_timeout << ",\n";
  os << "    \"frames_rejected\": " << c.frames_rejected << ",\n";
  os << "    \"frames_error\": " << c.frames_error << ",\n";
  os << "    \"warm_frames\": " << c.warm_frames << ",\n";
  os << "    \"guard_trips\": " << c.guard_trips << "\n";
  os << "  },\n";
  // The obs CounterRegistry snapshot (empty maps under JIGSAW_OBS=OFF).
  const obs::Snapshot snap = obs::snapshot();
  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";
  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n";
  os << "}\n";
  return os.str();
}

}  // namespace jigsaw::serve
