// Transport layer shared by the reconstruction daemon and the router tier.
//
// Three pieces, each usable on its own:
//
//   * Endpoint — one parsed service address. Every tool accepts the same
//     two spellings through parse_endpoint():
//         unix:/path/to.sock   (or a bare absolute path, for compatibility
//                               with the original --socket flag)
//         host:port            (TCP; host is a name or numeric address,
//                               port 0 asks the kernel for an ephemeral
//                               port — the bound endpoint reports it)
//     A malformed spec throws std::invalid_argument with a one-line
//     diagnostic naming both accepted forms.
//
//   * Listener / connect_endpoint — bind-listen and connect for either
//     address family. TCP listeners default to loopback when the host is
//     "localhost"/"127.0.0.1" (the documented security posture: nothing
//     binds a public interface unless the operator writes its address
//     explicitly). TCP sockets get TCP_NODELAY — frames are written as one
//     header+body pair and latency matters more than segment count.
//
//   * FrameServer — the accept-loop + connection-lifecycle skeleton the
//     ReconServer grew in PR 4, factored out so the router reuses it
//     verbatim: connections are reaped as they end (a reader that sees EOF
//     retires itself, the accept loop joins exited threads), accept()
//     failures back off and retry, and stop() is a graceful drain —
//     stop accepting, let the subclass finish outstanding work
//     (on_stop_accepting), then shut down remaining connections with the
//     subclass's chosen direction and join every thread. The Connection's
//     fd closes when its last shared_ptr drops, so a reply callback racing
//     connection teardown can never write a reused descriptor.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jigsaw::serve {

struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;        // kUnix: filesystem path of the socket
  std::string host;        // kTcp: hostname or numeric address
  std::uint16_t port = 0;  // kTcp: 0 = ephemeral (listen only)

  bool is_tcp() const { return kind == Kind::kTcp; }
};

/// Parse "unix:/path", a bare absolute path, or "host:port". Throws
/// std::invalid_argument with a one-line diagnostic on anything else.
Endpoint parse_endpoint(const std::string& spec);

/// Canonical spelling: "unix:/path" or "host:port".
std::string to_string(const Endpoint& ep);

/// Connect a stream socket to `ep`. timeout_ms bounds the TCP connect
/// handshake (< 0 = OS default). Throws std::runtime_error on failure.
int connect_endpoint(const Endpoint& ep, int timeout_ms = -1);

/// A bound, listening stream socket for either address family. The
/// destructor closes the fd and unlinks a Unix socket file. For TCP with
/// port 0, bound() carries the kernel-assigned port.
class Listener {
 public:
  explicit Listener(const Endpoint& ep);  // throws std::runtime_error
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&&) = delete;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int fd() const { return fd_; }
  const Endpoint& bound() const { return bound_; }

 private:
  int fd_ = -1;
  Endpoint bound_;
};

/// Accept-loop + connection-lifecycle base. Subclasses add listeners in
/// their constructor, implement serve_connection() (one call per accepted
/// connection, on a dedicated reader thread), and may override
/// on_stop_accepting() to drain outstanding work between "no new
/// connections" and "shut down the remaining ones".
class FrameServer {
 public:
  virtual ~FrameServer();  // subclasses must have called stop() (or never
                           // started); the base stops again defensively

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Spawn the accept loop over every added listener. Call once.
  void start();

  /// Graceful drain: stop accepting, on_stop_accepting(), shut down
  /// remaining connections (shutdown_how()), join every thread. Idempotent.
  void stop();

  /// The endpoints actually bound — TCP entries carry the real port even
  /// when the spec asked for port 0.
  std::vector<Endpoint> bound_endpoints() const;

 protected:
  FrameServer() = default;

  // The connection's fd closes when the last shared_ptr drops — i.e. only
  // once the reader thread has exited AND no completion callback that might
  // still write a reply holds a reference.
  struct Connection {
    ~Connection();  // closes fd
    int fd = -1;
    std::mutex write_mu;  // reader + any callback thread both reply
  };

  /// Bind and listen before start(). Throws std::runtime_error on failure.
  void add_listener(const Endpoint& ep);

  /// Read frames until EOF/error; runs on the connection's reader thread.
  virtual void serve_connection(const std::shared_ptr<Connection>& conn) = 0;

  /// Runs in stop() after the accept loop is joined and before connections
  /// are shut down. ReconServer drains its engine here so every admitted
  /// job's reply is written over a still-open connection.
  virtual void on_stop_accepting() {}

  /// How stop() shuts down lingering connections: SHUT_RDWR for a server
  /// whose replies were all written in on_stop_accepting(); the router uses
  /// SHUT_RD so an in-flight forward can still write its reply.
  virtual int shutdown_how() const;

  bool stopping() const { return stopping_.load(); }

 private:
  void accept_loop();
  void retire_connection(const Connection* conn);
  void reap_finished();

  std::vector<Listener> listeners_;

  mutable std::mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;       // live connections
  std::map<const Connection*, std::thread> reader_threads_;  // live readers
  std::vector<std::thread> finished_threads_;  // exited readers, un-joined

  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace jigsaw::serve
