#include "serve/server.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace jigsaw::serve {

namespace {

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

ReconJob job_from_wire(const ReconRequestWire& wire) {
  const bool simd = (wire.engine & kEngineSimdFlag) != 0;
  const std::uint32_t engine_code = wire.engine & ~kEngineSimdFlag;
  if (engine_code > static_cast<std::uint32_t>(core::GridderKind::Auto)) {
    throw ProtocolError("unknown engine code " + std::to_string(engine_code));
  }
  const auto kind = static_cast<core::GridderKind>(engine_code);
  if (simd && kind != core::GridderKind::Auto &&
      !core::gridder_kind_has_simd(kind)) {
    throw ProtocolError("engine '" + core::to_string(kind) +
                        "' has no SIMD variant");
  }
  if (wire.sanitize >
      static_cast<std::uint32_t>(robustness::SanitizePolicy::Clamp)) {
    throw ProtocolError("unknown sanitize code " +
                        std::to_string(wire.sanitize));
  }
  if (wire.kernel_width < 2 || wire.kernel_width > 16) {
    throw ProtocolError("kernel width " + std::to_string(wire.kernel_width) +
                        " outside [2, 16]");
  }
  if (!(wire.sigma >= 1.125 && wire.sigma <= 4.0)) {  // !>= rejects NaN too
    throw ProtocolError("oversampling sigma outside [1.125, 4]");
  }
  if (wire.values.size() !=
      wire.coords.size() * static_cast<std::size_t>(wire.coils)) {
    throw ProtocolError("value count does not equal samples x coils");
  }
  ReconJob job;
  job.options.kind = kind;
  job.options.simd = simd;
  job.options.width = static_cast<int>(wire.kernel_width);
  job.options.sigma = wire.sigma;
  job.options.sanitize =
      static_cast<robustness::SanitizePolicy>(wire.sanitize);
  job.n = wire.n;
  job.iters = static_cast<int>(wire.iters);
  job.coils = static_cast<int>(wire.coils);
  job.deadline = wire.deadline_ms > 0
                     ? Deadline::after_ms(
                           static_cast<std::int64_t>(wire.deadline_ms))
                     : Deadline::never();
  job.samples.coords = wire.coords;
  job.samples.values = wire.values;
  job.client_tag = wire.client_tag;
  return job;
}

ReconServer::ReconServer(const ServeConfig& config)
    : config_(config), engine_(config) {
  if (config_.socket_path.empty()) {
    throw std::runtime_error("serve: socket_path is empty");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("serve: socket path too long: " +
                             config_.socket_path);
  }
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof addr.sun_path - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("serve: socket() failed: ") +
                             std::strerror(errno));
  }
  ::unlink(config_.socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    const int err = errno;
    close_quietly(listen_fd_);
    throw std::runtime_error("serve: bind(" + config_.socket_path +
                             ") failed: " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    close_quietly(listen_fd_);
    ::unlink(config_.socket_path.c_str());
    throw std::runtime_error(std::string("serve: listen() failed: ") +
                             std::strerror(err));
  }
}

ReconServer::~ReconServer() {
  stop();
  close_quietly(listen_fd_);
  ::unlink(config_.socket_path.c_str());
}

void ReconServer::start() {
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ReconServer::Connection::~Connection() { close_quietly(fd); }

void ReconServer::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true);

  // 1. Stop accepting; existing connections may still submit until their
  //    reader sees the draining rejections.
  accept_thread_.join();

  // 2. Complete every admitted job (replies go out through the callbacks).
  engine_.drain();

  // 3. Unblock every connection reader and join. SHUT_RDWR makes a blocked
  //    recv return 0 (EOF), so readers exit their frame loop cleanly,
  //    retire themselves, and land in finished_threads_. Loop until every
  //    reader — live or already self-retired — has been joined.
  for (;;) {
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RDWR);
      for (auto& [conn, t] : reader_threads_) to_join.push_back(std::move(t));
      reader_threads_.clear();
      for (auto& t : finished_threads_) to_join.push_back(std::move(t));
      finished_threads_.clear();
    }
    if (to_join.empty()) break;
    for (auto& t : to_join) t.join();
  }
  // Readers erased themselves from conns_ as they retired; dropping any
  // leftovers releases the server's references (fds close with the last
  // shared_ptr).
  std::lock_guard<std::mutex> lk(conn_mu_);
  conns_.clear();
}

void ReconServer::retire_connection(const Connection* conn) {
  std::lock_guard<std::mutex> lk(conn_mu_);
  const auto it = reader_threads_.find(conn);
  if (it != reader_threads_.end()) {
    finished_threads_.push_back(std::move(it->second));
    reader_threads_.erase(it);
  }
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [conn](const std::shared_ptr<Connection>& c) {
                                return c.get() == conn;
                              }),
               conns_.end());
}

void ReconServer::reap_finished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    done.swap(finished_threads_);
  }
  for (auto& t : done) t.join();
}

void ReconServer::accept_loop() {
  while (!stopping_.load()) {
    reap_finished();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);  // 100 ms: prompt shutdown
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Transient exhaustion (EMFILE/ENFILE/ENOMEM/...): the pending
      // connection stays in the backlog and poll() would report it ready
      // again immediately, so back off briefly instead of spinning — and
      // keep accepting; retiring connections frees descriptors.
      std::fprintf(stderr, "jigsaw_serve: accept failed: %s\n",
                   std::strerror(errno));
      ::poll(nullptr, 0, 100);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lk(conn_mu_);
    if (stopping_.load()) break;  // ~Connection closes fd
    conns_.push_back(conn);
    reader_threads_.emplace(conn.get(), std::thread([this, conn] {
                              serve_connection(conn);
                              retire_connection(conn.get());
                            }));
  }
}

void ReconServer::send_reply_locked(const std::shared_ptr<Connection>& conn,
                                    const ReconReplyWire& reply) {
  const auto body = encode_recon_reply(reply);
  std::lock_guard<std::mutex> lk(conn->write_mu);
  send_frame(conn->fd, MsgType::kReconReply, body,
             config_.reply_write_timeout_ms);
}

void ReconServer::serve_connection(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Frame frame;
    try {
      if (!recv_frame(conn->fd, frame, config_.max_request_bytes)) {
        return;  // clean EOF
      }
    } catch (const FrameTooLarge& e) {
      // Admission control at the socket: the body was never read, so the
      // stream cannot be resynchronized — reply, count, close.
      engine_.count_external(Status::kRejected);
      ReconReplyWire reply;
      reply.status = Status::kRejected;
      reply.message = e.what();
      try {
        send_reply_locked(conn, reply);
      } catch (const std::exception&) {
      }
      return;
    } catch (const std::exception&) {
      return;  // bad magic / unknown type / truncation / peer I/O error
    }

    if (frame.type == MsgType::kStats) {
      const std::string json = engine_.statsz_json();
      std::lock_guard<std::mutex> lk(conn->write_mu);
      try {
        send_frame(conn->fd, MsgType::kStatsReply,
                   reinterpret_cast<const std::uint8_t*>(json.data()),
                   json.size(), config_.reply_write_timeout_ms);
      } catch (const std::exception&) {
        return;
      }
      continue;
    }
    if (frame.type != MsgType::kRecon) {
      return;  // a client sending reply types is not salvageable
    }

    ReconJob job;
    try {
      const ReconRequestWire wire =
          decode_recon_request(frame.body.data(), frame.body.size());
      job = job_from_wire(wire);
    } catch (const std::exception& e) {
      // Recovering parse: the malformed body was fully consumed, so the
      // connection survives. ERROR is terminal for this request only.
      engine_.count_external(Status::kError);
      ReconReplyWire reply;
      reply.status = Status::kError;
      reply.message = e.what();
      try {
        send_reply_locked(conn, reply);
      } catch (const std::exception&) {
        return;
      }
      continue;
    }

    engine_.submit(std::move(job), [this, conn](ReconOutcome outcome) {
      ReconReplyWire reply;
      reply.status = outcome.status;
      reply.n = static_cast<std::uint32_t>(outcome.n);
      reply.client_tag = outcome.client_tag;
      reply.sanitize_dropped = outcome.sanitize_dropped;
      reply.sanitize_repaired = outcome.sanitize_repaired;
      reply.message = std::move(outcome.message);
      reply.image = std::move(outcome.image);
      try {
        send_reply_locked(conn, reply);
      } catch (const std::exception&) {
        // Peer gone or reply write timed out mid-frame: the request still
        // completed and the counters already account for it, but the
        // stream is unrecoverable. Shut the socket down so the reader
        // unblocks, exits, and retires the connection.
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    });
  }
}

}  // namespace jigsaw::serve
