#include "serve/server.hpp"

#include <sys/socket.h>

#include <chrono>
#include <stdexcept>

#include "data/driver.hpp"

namespace jigsaw::serve {

ReconJob job_from_wire(const ReconRequestWire& wire) {
  const bool simd = (wire.engine & kEngineSimdFlag) != 0;
  const std::uint32_t engine_code = wire.engine & ~kEngineSimdFlag;
  if (engine_code > static_cast<std::uint32_t>(core::GridderKind::Auto)) {
    throw ProtocolError("unknown engine code " + std::to_string(engine_code));
  }
  const auto kind = static_cast<core::GridderKind>(engine_code);
  if (simd && kind != core::GridderKind::Auto &&
      !core::gridder_kind_has_simd(kind)) {
    throw ProtocolError("engine '" + core::to_string(kind) +
                        "' has no SIMD variant");
  }
  if (wire.sanitize >
      static_cast<std::uint32_t>(robustness::SanitizePolicy::Clamp)) {
    throw ProtocolError("unknown sanitize code " +
                        std::to_string(wire.sanitize));
  }
  if (wire.kernel_width < 2 || wire.kernel_width > 16) {
    throw ProtocolError("kernel width " + std::to_string(wire.kernel_width) +
                        " outside [2, 16]");
  }
  if (!(wire.sigma >= 1.125 && wire.sigma <= 4.0)) {  // !>= rejects NaN too
    throw ProtocolError("oversampling sigma outside [1.125, 4]");
  }
  if (wire.values.size() !=
      wire.coords.size() * static_cast<std::size_t>(wire.coils)) {
    throw ProtocolError("value count does not equal samples x coils");
  }
  ReconJob job;
  job.options.kind = kind;
  job.options.simd = simd;
  job.options.width = static_cast<int>(wire.kernel_width);
  job.options.sigma = wire.sigma;
  job.options.sanitize =
      static_cast<robustness::SanitizePolicy>(wire.sanitize);
  job.n = wire.n;
  job.iters = static_cast<int>(wire.iters);
  job.coils = static_cast<int>(wire.coils);
  job.deadline = wire.deadline_ms > 0
                     ? Deadline::after_ms(
                           static_cast<std::int64_t>(wire.deadline_ms))
                     : Deadline::never();
  job.samples.coords = wire.coords;
  job.samples.values = wire.values;
  job.client_tag = wire.client_tag;
  return job;
}

StreamFrameJob frame_job_from_wire(PushFrameWire&& wire) {
  StreamFrameJob job;
  job.session_id = wire.session_id;
  job.frame_index = wire.frame_index;
  job.client_tag = wire.client_tag;
  job.coils = static_cast<int>(wire.coils);
  job.deadline = wire.deadline_ms > 0
                     ? Deadline::after_ms(
                           static_cast<std::int64_t>(wire.deadline_ms))
                     : Deadline::never();
  job.coords = std::move(wire.coords);
  job.values = std::move(wire.values);
  return job;
}

ReconServer::ReconServer(const ServeConfig& config)
    : config_(config), engine_(config) {
  if (config_.socket_path.empty() && config_.listen.empty()) {
    throw std::runtime_error(
        "serve: no endpoint configured (need socket_path and/or listen)");
  }
  if (!config_.socket_path.empty()) {
    Endpoint ep;
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = config_.socket_path;
    add_listener(ep);
  }
  if (!config_.listen.empty()) {
    const Endpoint ep = parse_endpoint(config_.listen);
    if (!ep.is_tcp()) {
      throw std::runtime_error("serve: listen endpoint '" + config_.listen +
                               "' is not host:port (use socket_path for "
                               "AF_UNIX)");
    }
    add_listener(ep);
  }
}

ReconServer::~ReconServer() { stop(); }

int ReconServer::shutdown_how() const { return SHUT_RD; }

void ReconServer::send_reply_locked(const std::shared_ptr<Connection>& conn,
                                    const ReconReplyWire& reply) {
  const auto body = encode_recon_reply(reply);
  std::lock_guard<std::mutex> lk(conn->write_mu);
  send_frame(conn->fd, MsgType::kReconReply, body,
             config_.reply_write_timeout_ms);
}

void ReconServer::send_session_reply_locked(
    const std::shared_ptr<Connection>& conn, const SessionReplyWire& reply) {
  const auto body = encode_session_reply(reply);
  std::lock_guard<std::mutex> lk(conn->write_mu);
  send_frame(conn->fd, MsgType::kSessionReply, body,
             config_.reply_write_timeout_ms);
}

void ReconServer::send_frame_reply_locked(
    const std::shared_ptr<Connection>& conn, const FrameReplyWire& reply) {
  const auto body = encode_frame_reply(reply);
  std::lock_guard<std::mutex> lk(conn->write_mu);
  send_frame(conn->fd, MsgType::kFrameReply, body,
             config_.reply_write_timeout_ms);
}

bool ReconServer::handle_stream_frame(const std::shared_ptr<Connection>& conn,
                                      const Frame& frame) {
  if (frame.type == MsgType::kOpenSession) {
    SessionReplyWire reply;
    try {
      const OpenSessionWire wire =
          decode_open_session(frame.body.data(), frame.body.size());
      const SessionOutcome outcome = engine_.open_session(wire);
      reply.status = outcome.status;
      reply.session_id = outcome.session_id;
      reply.client_tag = outcome.client_tag;
      reply.message = outcome.message;
    } catch (const std::exception& e) {
      // Recovering parse: the malformed body was fully consumed.
      reply.status = Status::kError;
      reply.message = e.what();
    }
    try {
      send_session_reply_locked(conn, reply);
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }

  if (frame.type == MsgType::kCloseSession) {
    CloseSessionWire wire;
    try {
      wire = decode_close_session(frame.body.data(), frame.body.size());
    } catch (const std::exception& e) {
      SessionReplyWire reply;
      reply.status = Status::kError;
      reply.message = e.what();
      try {
        send_session_reply_locked(conn, reply);
        return true;
      } catch (const std::exception&) {
        return false;
      }
    }
    engine_.submit_close(
        wire.session_id, wire.client_tag, [this, conn](SessionOutcome o) {
          SessionReplyWire reply;
          reply.status = o.status;
          reply.session_id = o.session_id;
          reply.client_tag = o.client_tag;
          reply.frames = o.frames;
          reply.total_iterations = o.total_iterations;
          reply.message = std::move(o.message);
          try {
            send_session_reply_locked(conn, reply);
          } catch (const std::exception&) {
            ::shutdown(conn->fd, SHUT_RDWR);
          }
        });
    return true;
  }

  // kPushFrame
  StreamFrameJob job;
  try {
    PushFrameWire wire =
        decode_push_frame(frame.body.data(), frame.body.size());
    job = frame_job_from_wire(std::move(wire));
  } catch (const std::exception& e) {
    FrameReplyWire reply;
    reply.status = Status::kError;
    reply.message = e.what();
    try {
      send_frame_reply_locked(conn, reply);
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }
  engine_.submit_frame(std::move(job), [this, conn](FrameOutcome o) {
    FrameReplyWire reply;
    reply.status = o.status;
    reply.n = static_cast<std::uint32_t>(o.n);
    reply.iterations = static_cast<std::uint32_t>(o.iterations);
    reply.flags = (o.warm_started ? kFrameWarmFlag : 0u) |
                  (o.guard_tripped ? kFrameGuardFlag : 0u) |
                  (o.plan_reused ? kFramePlanReusedFlag : 0u);
    reply.session_id = o.session_id;
    reply.frame_index = o.frame_index;
    reply.client_tag = o.client_tag;
    reply.residual = o.residual;
    reply.message = std::move(o.message);
    reply.image = std::move(o.image);
    try {
      send_frame_reply_locked(conn, reply);
    } catch (const std::exception&) {
      // The frame still completed and is counted; the stream is
      // unrecoverable, so unblock and retire the reader.
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  });
  return true;
}

bool ReconServer::handle_dataset_request(
    const std::shared_ptr<Connection>& conn, const Frame& frame) {
  ReconReplyWire reply;
  reply.status = Status::kError;
  try {
    const DatasetRequestWire wire =
        decode_dataset_request(frame.body.data(), frame.body.size());
    reply.client_tag = wire.client_tag;
    const bool simd = (wire.engine & kEngineSimdFlag) != 0;
    const std::uint32_t engine_code = wire.engine & ~kEngineSimdFlag;
    if (engine_code > static_cast<std::uint32_t>(core::GridderKind::Auto)) {
      throw ProtocolError("unknown engine code " +
                          std::to_string(engine_code));
    }
    const auto kind = static_cast<core::GridderKind>(engine_code);
    if (simd && kind != core::GridderKind::Auto &&
        !core::gridder_kind_has_simd(kind)) {
      throw ProtocolError("engine '" + core::to_string(kind) +
                          "' has no SIMD variant");
    }
    data::ReconDatasetOptions opt;
    opt.gridding.kind = kind;
    opt.gridding.simd = simd;
    opt.dcf = static_cast<data::DcfMode>(wire.dcf);
    opt.iters = static_cast<int>(wire.iters);

    const auto start = std::chrono::steady_clock::now();
    const auto result = data::recon_dataset(wire.path, opt);
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();

    const auto n = static_cast<std::size_t>(result.info.n);
    std::vector<double> mean(n * n, 0.0);
    for (const auto& c : result.chunks) {
      for (std::size_t i = 0; i < mean.size(); ++i) mean[i] += c.image[i];
    }
    reply.image.resize(mean.size());
    for (std::size_t i = 0; i < mean.size(); ++i) {
      reply.image[i] =
          c64(mean[i] / static_cast<double>(result.chunks.size()), 0.0);
    }
    reply.n = static_cast<std::uint32_t>(result.info.n);
    reply.message =
        "dataset: " + std::to_string(result.report.chunks_read) +
        " chunks read, " + std::to_string(result.report.rejects.size()) +
        " rejected, mean NRMSE " + std::to_string(result.mean_nrmse);
    if (wire.deadline_ms > 0 &&
        static_cast<std::uint64_t>(elapsed_ms) > wire.deadline_ms) {
      // Phase-boundary deadline check (the recon is not interruptible
      // mid-chunk): the work completed but too late to be useful.
      reply.status = Status::kTimeout;
      reply.image.clear();
    } else {
      reply.status = Status::kOk;
    }
  } catch (const std::exception& e) {
    // Bad body, unreadable file header, or no surviving chunk — terminal
    // for this request only; the body was fully consumed either way.
    reply.status = Status::kError;
    reply.message = e.what();
    reply.image.clear();
  }
  engine_.count_external(reply.status);
  try {
    send_reply_locked(conn, reply);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

void ReconServer::serve_connection(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Frame frame;
    try {
      if (!recv_frame(conn->fd, frame, config_.max_request_bytes)) {
        return;  // clean EOF
      }
    } catch (const FrameTooLarge& e) {
      // Admission control at the socket: the body was never read, so the
      // stream cannot be resynchronized — reply, count, close.
      engine_.count_external(Status::kRejected);
      ReconReplyWire reply;
      reply.status = Status::kRejected;
      reply.message = e.what();
      try {
        send_reply_locked(conn, reply);
      } catch (const std::exception&) {
      }
      return;
    } catch (const std::exception&) {
      return;  // bad magic / unknown type / truncation / peer I/O error
    }

    if (frame.type == MsgType::kStats) {
      const std::string json = engine_.statsz_json();
      std::lock_guard<std::mutex> lk(conn->write_mu);
      try {
        send_frame(conn->fd, MsgType::kStatsReply,
                   reinterpret_cast<const std::uint8_t*>(json.data()),
                   json.size(), config_.reply_write_timeout_ms);
      } catch (const std::exception&) {
        return;
      }
      continue;
    }
    if (frame.type == MsgType::kOpenSession ||
        frame.type == MsgType::kPushFrame ||
        frame.type == MsgType::kCloseSession) {
      if (!handle_stream_frame(conn, frame)) return;
      continue;
    }
    if (frame.type == MsgType::kReconDataset) {
      if (!handle_dataset_request(conn, frame)) return;
      continue;
    }
    if (frame.type != MsgType::kRecon) {
      return;  // a client sending reply types is not salvageable
    }

    ReconJob job;
    try {
      const ReconRequestWire wire =
          decode_recon_request(frame.body.data(), frame.body.size());
      job = job_from_wire(wire);
    } catch (const std::exception& e) {
      // Recovering parse: the malformed body was fully consumed, so the
      // connection survives. ERROR is terminal for this request only.
      engine_.count_external(Status::kError);
      ReconReplyWire reply;
      reply.status = Status::kError;
      reply.message = e.what();
      try {
        send_reply_locked(conn, reply);
      } catch (const std::exception&) {
        return;
      }
      continue;
    }

    engine_.submit(std::move(job), [this, conn](ReconOutcome outcome) {
      ReconReplyWire reply;
      reply.status = outcome.status;
      reply.n = static_cast<std::uint32_t>(outcome.n);
      reply.client_tag = outcome.client_tag;
      reply.sanitize_dropped = outcome.sanitize_dropped;
      reply.sanitize_repaired = outcome.sanitize_repaired;
      reply.message = std::move(outcome.message);
      reply.image = std::move(outcome.image);
      try {
        send_reply_locked(conn, reply);
      } catch (const std::exception&) {
        // Peer gone or reply write timed out mid-frame: the request still
        // completed and the counters already account for it, but the
        // stream is unrecoverable. Shut the socket down so the reader
        // unblocks, exits, and retires the connection.
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    });
  }
}

}  // namespace jigsaw::serve
