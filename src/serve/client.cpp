#include "serve/client.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace jigsaw::serve {

namespace {
// Replies are images (16 bytes/pixel): 1 GiB covers n = 8192 and the
// decoder's own sanity ceilings apply first.
constexpr std::size_t kMaxReplyBody = 1ull << 30;
}  // namespace

ServeClient::ServeClient(const std::string& endpoint_spec)
    : ServeClient(parse_endpoint(endpoint_spec)) {}

ServeClient::ServeClient(const Endpoint& endpoint)
    : fd_(connect_endpoint(endpoint)) {}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Frame ServeClient::recv_reply_frame() {
  Frame frame;
  if (!recv_frame(fd_, frame, kMaxReplyBody)) {
    throw std::runtime_error("serve: server closed the connection");
  }
  return frame;
}

ReconReplyWire ServeClient::recon(const ReconRequestWire& request) {
  send_frame(fd_, MsgType::kRecon, encode_recon_request(request));
  return recv_recon_reply();
}

ReconReplyWire ServeClient::recon_dataset(const DatasetRequestWire& request) {
  send_frame(fd_, MsgType::kReconDataset, encode_dataset_request(request));
  return recv_recon_reply();
}

ReconReplyWire ServeClient::recv_recon_reply() {
  const Frame frame = recv_reply_frame();
  if (frame.type != MsgType::kReconReply) {
    throw ProtocolError("expected recon reply, got type " +
                        std::to_string(static_cast<std::uint32_t>(frame.type)));
  }
  return decode_recon_reply(frame.body.data(), frame.body.size());
}

SessionReplyWire ServeClient::open_session(const OpenSessionWire& request) {
  send_frame(fd_, MsgType::kOpenSession, encode_open_session(request));
  return recv_session_reply();
}

FrameReplyWire ServeClient::push_frame(const PushFrameWire& request) {
  send_push_frame(request);
  return recv_frame_reply();
}

SessionReplyWire ServeClient::close_session(const CloseSessionWire& request) {
  send_frame(fd_, MsgType::kCloseSession, encode_close_session(request));
  return recv_session_reply();
}

void ServeClient::send_push_frame(const PushFrameWire& request) {
  send_frame(fd_, MsgType::kPushFrame, encode_push_frame(request));
}

FrameReplyWire ServeClient::recv_frame_reply() {
  const Frame frame = recv_reply_frame();
  if (frame.type != MsgType::kFrameReply) {
    throw ProtocolError("expected frame reply, got type " +
                        std::to_string(static_cast<std::uint32_t>(frame.type)));
  }
  return decode_frame_reply(frame.body.data(), frame.body.size());
}

SessionReplyWire ServeClient::recv_session_reply() {
  const Frame frame = recv_reply_frame();
  if (frame.type != MsgType::kSessionReply) {
    throw ProtocolError("expected session reply, got type " +
                        std::to_string(static_cast<std::uint32_t>(frame.type)));
  }
  return decode_session_reply(frame.body.data(), frame.body.size());
}

std::string ServeClient::statsz() {
  send_frame(fd_, MsgType::kStats, nullptr, 0);
  const Frame frame = recv_reply_frame();
  if (frame.type != MsgType::kStatsReply) {
    throw ProtocolError("expected stats reply, got type " +
                        std::to_string(static_cast<std::uint32_t>(frame.type)));
  }
  return std::string(reinterpret_cast<const char*>(frame.body.data()),
                     frame.body.size());
}

void ServeClient::send_raw(MsgType type, const std::vector<std::uint8_t>& body) {
  send_frame(fd_, type, body);
}

void ServeClient::send_raw_header(std::uint32_t type, std::uint64_t body_len) {
  std::uint8_t header[16];
  const std::uint32_t magic = kMagic;
  std::memcpy(header + 0, &magic, 4);
  std::memcpy(header + 4, &type, 4);
  std::memcpy(header + 8, &body_len, 8);
  send_raw_bytes({header, header + sizeof header});
}

void ServeClient::send_raw_bytes(const std::vector<std::uint8_t>& bytes) {
  const std::uint8_t* p = bytes.data();
  std::size_t len = bytes.size();
  while (len > 0) {
    const ssize_t w = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: send failed: ") +
                               std::strerror(errno));
    }
    p += w;
    len -= static_cast<std::size_t>(w);
  }
}

void ServeClient::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

}  // namespace jigsaw::serve
