#include "serve/client.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace jigsaw::serve {

namespace {
// Replies are images (16 bytes/pixel): 1 GiB covers n = 8192 and the
// decoder's own sanity ceilings apply first.
constexpr std::size_t kMaxReplyBody = 1ull << 30;
}  // namespace

ServeClient::ServeClient(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("serve: socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("serve: socket() failed: ") +
                             std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve: connect(" + socket_path +
                             ") failed: " + std::strerror(err));
  }
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Frame ServeClient::recv_reply_frame() {
  Frame frame;
  if (!recv_frame(fd_, frame, kMaxReplyBody)) {
    throw std::runtime_error("serve: server closed the connection");
  }
  return frame;
}

ReconReplyWire ServeClient::recon(const ReconRequestWire& request) {
  send_frame(fd_, MsgType::kRecon, encode_recon_request(request));
  return recv_recon_reply();
}

ReconReplyWire ServeClient::recv_recon_reply() {
  const Frame frame = recv_reply_frame();
  if (frame.type != MsgType::kReconReply) {
    throw ProtocolError("expected recon reply, got type " +
                        std::to_string(static_cast<std::uint32_t>(frame.type)));
  }
  return decode_recon_reply(frame.body.data(), frame.body.size());
}

std::string ServeClient::statsz() {
  send_frame(fd_, MsgType::kStats, nullptr, 0);
  const Frame frame = recv_reply_frame();
  if (frame.type != MsgType::kStatsReply) {
    throw ProtocolError("expected stats reply, got type " +
                        std::to_string(static_cast<std::uint32_t>(frame.type)));
  }
  return std::string(reinterpret_cast<const char*>(frame.body.data()),
                     frame.body.size());
}

void ServeClient::send_raw(MsgType type, const std::vector<std::uint8_t>& body) {
  send_frame(fd_, type, body);
}

void ServeClient::send_raw_header(std::uint32_t type, std::uint64_t body_len) {
  std::uint8_t header[16];
  const std::uint32_t magic = kMagic;
  std::memcpy(header + 0, &magic, 4);
  std::memcpy(header + 4, &type, 4);
  std::memcpy(header + 8, &body_len, 8);
  const std::uint8_t* p = header;
  std::size_t len = sizeof header;
  while (len > 0) {
    const ssize_t w = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: send failed: ") +
                               std::strerror(errno));
    }
    p += w;
    len -= static_cast<std::size_t>(w);
  }
}

}  // namespace jigsaw::serve
