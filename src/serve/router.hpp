// Router: the geometry-sharded front tier of the reconstruction service.
//
// One router listens on its own endpoint (Unix or TCP — same JSRV frames
// as the workers) and forwards each recon request to one worker out of a
// configured pool, chosen by RENDEZVOUS (highest-random-weight) hashing of
// the request's geometry: the shard key is the same FNV-1a `TuneKey` hash
// the autotuner uses ({dims, N, M, W, sigma, coils, threads=1} — see
// src/tune/key.hpp), so every request of one geometry equivalence class
// lands on the same worker and that worker's FFT plan pool and wisdom stay
// hot for "its" geometries. Rendezvous hashing gives the spill property
// for free: when a worker is unhealthy its keys fall to the next-ranked
// worker, and only its keys — the rest of the fleet's assignment is
// untouched; when it recovers, exactly those keys come back.
//
// Forwarding is store-and-forward per request on the client connection's
// reader thread: decode enough of the body to compute the shard key,
// then relay the original frame bytes verbatim (deadline and client_tag
// ride along unmodified) over a pooled worker connection, and wait for the
// reply with a wall-clock bound derived from the request's own deadline
// (`deadline_ms` + slack, or forward_timeout_ms when unbounded) — a dead
// or wedged worker can never hang a client past its deadline.
//
// Failure policy (at-most-once execution is NOT required — reconstruction
// is pure compute — but surprising retries are, so the rules are narrow):
//   * connect/send failure            -> the worker never saw a complete
//     frame: mark it unhealthy, RETRY on the next-ranked worker;
//   * REJECTED reply saying draining  -> the worker is being rolled (its
//     SIGTERM drain answers everything it admitted, then refuses): mark
//     unhealthy, RETRY — this is what makes a rolling drain lose nothing;
//   * clean EOF before any reply byte -> the worker shut down without
//     consuming the request (drain teardown or exit): RETRY;
//   * timeout or mid-reply EOF        -> the request may be mid-execution
//     on a wedged worker: reply ERROR (or TIMEOUT if the request's own
//     deadline has passed), never retry, never hang;
//   * every ranked worker exhausted   -> REJECTED "no healthy worker".
//
// A health thread pings every worker each health_interval_ms (connect +
// stats round-trip, ping_timeout_ms bound). Failures mark the worker
// unhealthy and close its pooled connections; a successful ping re-admits
// it. Stats requests to the router answer with the ROUTER's own JSON
// (shard table, per-worker health and counts) — operators query workers
// directly for engine internals.
//
// stop() is the graceful-drain path SIGTERM triggers in jigsaw_router:
// stop accepting, then half-close client connections (SHUT_RD) so each
// reader finishes its in-flight forward, writes the reply, and exits.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace jigsaw::serve {

struct RouterConfig {
  std::string listen;                // endpoint spec (unix:/path | host:port)
  std::vector<std::string> workers;  // worker endpoint specs, >= 1
  std::size_t max_request_bytes = 256u << 20;
  std::size_t max_reply_bytes = 1ull << 30;
  int reply_write_timeout_ms = 5000;  // bound per client reply write
  int connect_timeout_ms = 1000;      // bound per worker connect
  int forward_timeout_ms = 30000;     // reply wait for deadline-less requests
  int deadline_slack_ms = 250;        // reply wait past the request deadline
  int health_interval_ms = 250;       // worker ping period (<= 0 disables)
  int ping_timeout_ms = 1000;         // bound per health round-trip
  std::size_t max_pooled_connections = 8;  // idle sockets kept per worker
};

/// Point-in-time per-worker state for stats and tests.
struct WorkerSnapshot {
  std::string endpoint;
  bool healthy = true;
  std::uint64_t forwarded = 0;      // frames fully sent to this worker
  std::uint64_t replies = 0;        // replies relayed from this worker
  std::uint64_t failures = 0;       // connect/send/recv/timeout failures
  std::uint64_t drain_rejects = 0;  // REJECTED-draining replies (rerouted)
};

/// Router totals. Every recon request the router received terminates in
/// exactly one bucket: relayed (a worker's reply was forwarded verbatim)
/// or one of the router-generated statuses — after a drain,
/// received == relayed + errors + timeouts + rejected.
struct RouterCounts {
  std::uint64_t received = 0;   // recon requests decoded
  std::uint64_t relayed = 0;    // worker replies forwarded to clients
  std::uint64_t errors = 0;     // router-generated ERROR (worker died or
                                // wedged mid-request, malformed body — the
                                // same recovering-parse semantics a worker
                                // gives a direct client)
  std::uint64_t timeouts = 0;   // router-generated TIMEOUT (deadline passed)
  std::uint64_t rejected = 0;   // router-generated REJECTED (oversized
                                // frame, no healthy worker)
  std::uint64_t reroutes = 0;   // retries on a next-ranked worker
  std::uint64_t stats = 0;      // stats round-trips answered
  std::uint64_t session_opens = 0;   // open-session requests decoded
  std::uint64_t session_frames = 0;  // push-frame requests decoded
  std::uint64_t session_closes = 0;  // close-session requests decoded
  std::size_t sessions_pinned = 0;   // live session -> worker pins
  std::vector<WorkerSnapshot> workers;

  std::uint64_t completed() const {
    return relayed + errors + timeouts + rejected;
  }
};

class Router : public FrameServer {
 public:
  /// Binds the listen endpoint and resolves the worker specs. Throws
  /// std::invalid_argument on malformed endpoints, std::runtime_error on
  /// bind failure or an empty worker list.
  explicit Router(const RouterConfig& config);
  ~Router() override;  // stop(), if still running

  RouterCounts counts() const;
  std::string statsz_json() const;

  /// The shard key for a decoded request — exposed so tests can predict
  /// placement. Matches tune::TuneKey::of(2, n, m, {width, sigma}, coils,
  /// 1).hash().
  static std::uint64_t shard_hash(const ReconRequestWire& wire);

  /// The shard key for a streaming session, from its open parameters.
  /// m = 0: frame sample counts are unknown at open time, so the key is
  /// geometry-only — sessions of one (n, width, sigma, coils) class share
  /// a home worker, keeping its plans warm across sessions.
  static std::uint64_t session_shard_hash(const OpenSessionWire& wire);

  /// Rendezvous rank of worker `index` for `key_hash` (highest wins).
  static std::uint64_t rendezvous_score(std::uint64_t key_hash,
                                        std::size_t index);

 protected:
  void serve_connection(const std::shared_ptr<Connection>& conn) override;
  /// Stops the health pinger — workers being shut down around the same
  /// time must not be spammed with doomed pings.
  void on_stop_accepting() override;
  /// SHUT_RD: readers finish the in-flight forward and still write the
  /// reply before seeing EOF — the router's half of a graceful drain.
  int shutdown_how() const override;

 private:
  struct Worker;
  struct ForwardResult;

  std::vector<std::size_t> rank_workers(std::uint64_t key_hash) const;
  ForwardResult forward(const Frame& frame, const ReconRequestWire& wire);
  // Open-session forward: same retry/spill rules as forward() — an open
  // that never reached a worker (or hit a draining one) moves to the
  // next-ranked worker; `home` receives the worker index that answered.
  ForwardResult forward_open(const Frame& frame, const OpenSessionWire& wire,
                             std::size_t* home);
  // Sticky forward for push/close: the session's pipeline state lives on
  // its home worker, so these NEVER fail over — any worker loss is
  // terminal for the session.
  ForwardResult forward_sticky(Worker& w, const Frame& frame, MsgType expect,
                               std::uint64_t deadline_ms);
  // One streaming message (open/push/close) end to end; returns false
  // when the connection must close.
  bool handle_session_frame(const std::shared_ptr<Connection>& conn,
                            const Frame& frame);
  void count_terminal(const ForwardResult& result);  // shared bucket logic
  void health_loop();
  void stop_health();                 // idempotent; also run by stop()
  bool ping_worker(Worker& w);
  void mark_unhealthy(Worker& w, const char* why);
  int take_pooled(Worker& w);         // idle pooled fd, or -1
  void give_back_connection(Worker& w, int fd);
  void close_pool(Worker& w);

  void send_reply_locked(const std::shared_ptr<Connection>& conn,
                         const ReconReplyWire& reply);

  const RouterConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;

  mutable std::mutex counts_mu_;
  RouterCounts counts_;

  // Session stickiness: session_id -> home worker index, pinned when an
  // open reply with status OK is relayed, unpinned on close (or when the
  // home worker is lost mid-session).
  mutable std::mutex sessions_mu_;
  std::map<std::uint64_t, std::size_t> session_workers_;

  std::thread health_thread_;
  std::atomic<bool> health_stop_{false};
  std::mutex health_mu_;               // cv wait for prompt shutdown
  std::condition_variable health_cv_;
};

}  // namespace jigsaw::serve
