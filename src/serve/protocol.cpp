#include "serve/protocol.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

namespace jigsaw::serve {

namespace {

// Sanity ceiling for decode: no legitimate request/reply body reaches this
// (the server applies its own, much smaller, admission limits first).
constexpr std::uint64_t kAbsoluteMaxElements = 1ull << 28;

class Writer {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}

  std::uint32_t u32(const char* field) {
    std::uint32_t v;
    raw(&v, sizeof v, field);
    return v;
  }
  std::uint64_t u64(const char* field) {
    std::uint64_t v;
    raw(&v, sizeof v, field);
    return v;
  }
  double f64(const char* field) {
    double v;
    raw(&v, sizeof v, field);
    return v;
  }
  void raw(void* out, std::size_t n, const char* field) {
    if (len_ - pos_ < n) {
      throw ProtocolError(std::string("truncated body reading '") + field +
                          "' (need " + std::to_string(n) + " bytes, have " +
                          std::to_string(len_ - pos_) + ")");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }
  void expect_consumed() const {
    if (pos_ != len_) {
      throw ProtocolError("trailing garbage: " + std::to_string(len_ - pos_) +
                          " unconsumed bytes");
    }
  }
  std::size_t remaining() const { return len_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

/// Write exactly `len` bytes. `timeout_ms < 0` blocks indefinitely;
/// otherwise the WHOLE write must finish within `timeout_ms` of wall clock
/// (a per-send timeout would let a drip-feeding peer stall the caller
/// forever). On timeout the stream is left mid-frame — unrecoverable, the
/// caller must close the connection.
void write_all(int fd, const void* data, std::size_t len, int timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not a process signal.
    const int flags = MSG_NOSIGNAL | (timeout_ms >= 0 ? MSG_DONTWAIT : 0);
    const ssize_t w = ::send(fd, p, len, flags);
    if (w > 0) {
      p += w;
      len -= static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && timeout_ms >= 0 &&
        (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      const std::int64_t left = timeout_ms - elapsed_ms;
      if (left <= 0) {
        throw std::runtime_error("serve: send timed out after " +
                                 std::to_string(timeout_ms) + " ms (" +
                                 std::to_string(len) + " bytes unwritten)");
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int r =
          ::poll(&pfd, 1, static_cast<int>(std::min<std::int64_t>(left, 100)));
      if (r < 0 && errno != EINTR) {
        throw std::runtime_error(std::string("serve: poll failed: ") +
                                 std::strerror(errno));
      }
      continue;
    }
    throw std::runtime_error(std::string("serve: send failed: ") +
                             std::strerror(errno));
  }
}

/// Read exactly `len` bytes. Returns false on EOF with zero bytes read when
/// `eof_ok`; EOF mid-read always throws (truncated frame). When a deadline
/// is given, every wait is bounded by the time remaining to it and running
/// out raises RecvTimeout (timeout_ms only labels the message).
bool read_all(int fd, void* data, std::size_t len, bool eof_ok,
              const std::chrono::steady_clock::time_point* deadline = nullptr,
              int timeout_ms = -1) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    if (deadline != nullptr) {
      const auto left_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              *deadline - std::chrono::steady_clock::now())
              .count();
      if (left_ms <= 0) throw RecvTimeout(timeout_ms);
      pollfd pfd{fd, POLLIN, 0};
      const int ready = ::poll(
          &pfd, 1, static_cast<int>(std::min<std::int64_t>(left_ms, 100)));
      if (ready < 0 && errno != EINTR) {
        throw std::runtime_error(std::string("serve: poll failed: ") +
                                 std::strerror(errno));
      }
      if (ready <= 0) continue;  // re-check the deadline, then recv
    }
    const ssize_t r = ::recv(fd, p + got, len - got,
                             deadline != nullptr ? MSG_DONTWAIT : 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (deadline != nullptr && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        continue;  // poll raced a consumer; wait again
      }
      if (got == 0 && eof_ok && errno == ECONNRESET) {
        // A peer that closes with unread inbound data resets the
        // connection (a draining server whose reader retired without
        // consuming our request does exactly this). At frame start, with
        // zero bytes received, no reply ever existed — the same situation
        // as a clean close before replying, so report EOF and let the
        // caller take its retry path instead of a terminal stream error.
        return false;
      }
      throw std::runtime_error(std::string("serve: recv failed: ") +
                               std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw ProtocolError("connection closed mid-frame (" +
                          std::to_string(got) + "/" + std::to_string(len) +
                          " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kSanitizedPartial: return "SANITIZED_PARTIAL";
    case Status::kTimeout: return "TIMEOUT";
    case Status::kRejected: return "REJECTED";
    case Status::kError: return "ERROR";
  }
  return "UNKNOWN";
}

std::vector<std::uint8_t> encode_recon_request(const ReconRequestWire& req) {
  Writer w;
  w.u32(kProtocolVersion);
  w.u32(req.engine);
  w.u32(req.n);
  w.u32(req.iters);
  w.u32(req.coils);
  w.u32(req.sanitize);
  w.u32(req.kernel_width);
  w.u32(0);  // pad to 8-byte alignment of the doubles that follow
  w.f64(req.sigma);
  w.u64(req.deadline_ms);
  w.u64(req.client_tag);
  w.u64(req.coords.size());
  for (const auto& c : req.coords) {
    w.f64(c[0]);
    w.f64(c[1]);
  }
  for (const auto& v : req.values) {
    w.f64(v.real());
    w.f64(v.imag());
  }
  return w.take();
}

ReconRequestWire decode_recon_request(const std::uint8_t* data,
                                      std::size_t len) {
  Reader r(data, len);
  const std::uint32_t version = r.u32("version");
  if (version != kProtocolVersion) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version));
  }
  ReconRequestWire req;
  req.engine = r.u32("engine");
  req.n = r.u32("n");
  req.iters = r.u32("iters");
  req.coils = r.u32("coils");
  req.sanitize = r.u32("sanitize");
  req.kernel_width = r.u32("kernel_width");
  r.u32("pad");
  req.sigma = r.f64("sigma");
  req.deadline_ms = r.u64("deadline_ms");
  req.client_tag = r.u64("client_tag");
  const std::uint64_t m = r.u64("m");
  if (req.coils == 0) throw ProtocolError("coils must be >= 1");
  if (m == 0) throw ProtocolError("empty sample set");
  if (m > kAbsoluteMaxElements || req.coils > 1024 ||
      m * req.coils > kAbsoluteMaxElements) {
    throw ProtocolError("sample count " + std::to_string(m) + " x " +
                        std::to_string(req.coils) + " coils implausibly large");
  }
  // Preflight BEFORE allocating: the claimed counts must match the payload
  // bytes actually present, or a tiny body advertising a huge m would make
  // the receiver allocate gigabytes just to throw on the first read.
  const std::uint64_t payload =
      m * sizeof(double) * 2 + m * req.coils * sizeof(double) * 2;
  if (payload != r.remaining()) {
    throw ProtocolError("body carries " + std::to_string(r.remaining()) +
                        " payload bytes, expected " + std::to_string(payload) +
                        " for " + std::to_string(m) + " samples x " +
                        std::to_string(req.coils) + " coils");
  }
  req.coords.resize(static_cast<std::size_t>(m));
  for (auto& c : req.coords) {
    c[0] = r.f64("coord");
    c[1] = r.f64("coord");
  }
  req.values.resize(static_cast<std::size_t>(m * req.coils));
  for (auto& v : req.values) {
    const double re = r.f64("value");
    const double im = r.f64("value");
    v = c64(re, im);
  }
  r.expect_consumed();
  return req;
}

std::vector<std::uint8_t> encode_recon_reply(const ReconReplyWire& reply) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(reply.status));
  w.u32(reply.n);
  w.u64(reply.client_tag);
  w.u64(reply.sanitize_dropped);
  w.u64(reply.sanitize_repaired);
  w.u32(static_cast<std::uint32_t>(reply.message.size()));
  w.raw(reply.message.data(), reply.message.size());
  w.u64(reply.image.size());
  for (const auto& v : reply.image) {
    w.f64(v.real());
    w.f64(v.imag());
  }
  return w.take();
}

ReconReplyWire decode_recon_reply(const std::uint8_t* data, std::size_t len) {
  Reader r(data, len);
  ReconReplyWire reply;
  const std::uint32_t status = r.u32("status");
  if (status > static_cast<std::uint32_t>(Status::kError)) {
    throw ProtocolError("unknown status code " + std::to_string(status));
  }
  reply.status = static_cast<Status>(status);
  reply.n = r.u32("n");
  reply.client_tag = r.u64("client_tag");
  reply.sanitize_dropped = r.u64("sanitize_dropped");
  reply.sanitize_repaired = r.u64("sanitize_repaired");
  const std::uint32_t msg_len = r.u32("msg_len");
  if (msg_len > (1u << 20)) throw ProtocolError("message implausibly long");
  reply.message.resize(msg_len);
  if (msg_len > 0) r.raw(reply.message.data(), msg_len, "message");
  const std::uint64_t pixels = r.u64("pixel_count");
  if (pixels > kAbsoluteMaxElements) {
    throw ProtocolError("pixel count implausibly large");
  }
  if (pixels * sizeof(double) * 2 != r.remaining()) {
    throw ProtocolError("body carries " + std::to_string(r.remaining()) +
                        " image bytes, expected " +
                        std::to_string(pixels * sizeof(double) * 2) + " for " +
                        std::to_string(pixels) + " pixels");
  }
  reply.image.resize(static_cast<std::size_t>(pixels));
  for (auto& v : reply.image) {
    const double re = r.f64("pixel");
    const double im = r.f64("pixel");
    v = c64(re, im);
  }
  r.expect_consumed();
  return reply;
}

std::vector<std::uint8_t> encode_dataset_request(const DatasetRequestWire& req) {
  Writer w;
  w.u32(kProtocolVersion);
  w.u32(req.engine);
  w.u32(req.iters);
  w.u32(req.dcf);
  w.u32(static_cast<std::uint32_t>(req.path.size()));
  w.u32(0);  // pad to 8-byte alignment of the u64s that follow
  w.u64(req.deadline_ms);
  w.u64(req.client_tag);
  w.raw(req.path.data(), req.path.size());
  return w.take();
}

DatasetRequestWire decode_dataset_request(const std::uint8_t* data,
                                          std::size_t len) {
  Reader r(data, len);
  const std::uint32_t version = r.u32("version");
  if (version != kProtocolVersion) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version));
  }
  DatasetRequestWire req;
  req.engine = r.u32("engine");
  req.iters = r.u32("iters");
  req.dcf = r.u32("dcf");
  const std::uint32_t path_len = r.u32("path_len");
  r.u32("pad");
  req.deadline_ms = r.u64("deadline_ms");
  req.client_tag = r.u64("client_tag");
  if (req.dcf > 2) {
    throw ProtocolError("unknown dcf mode " + std::to_string(req.dcf));
  }
  if (path_len == 0) throw ProtocolError("empty dataset path");
  if (path_len > 4096) throw ProtocolError("dataset path implausibly long");
  if (path_len != r.remaining()) {
    throw ProtocolError("body carries " + std::to_string(r.remaining()) +
                        " path bytes, expected " + std::to_string(path_len));
  }
  req.path.resize(path_len);
  r.raw(req.path.data(), path_len, "path");
  if (req.path.find('\0') != std::string::npos) {
    throw ProtocolError("dataset path contains NUL");
  }
  r.expect_consumed();
  return req;
}

std::vector<std::uint8_t> encode_open_session(const OpenSessionWire& req) {
  Writer w;
  w.u32(kProtocolVersion);
  w.u32(req.engine);
  w.u32(req.n);
  w.u32(req.iters);
  w.u32(req.coils);
  w.u32(req.kernel_width);
  w.u32(req.warm_start);
  w.u32(0);  // pad to 8-byte alignment of the doubles that follow
  w.f64(req.sigma);
  w.f64(req.divergence_guard);
  w.u64(req.frame_deadline_ms);
  w.u64(req.client_tag);
  return w.take();
}

OpenSessionWire decode_open_session(const std::uint8_t* data,
                                    std::size_t len) {
  Reader r(data, len);
  const std::uint32_t version = r.u32("version");
  if (version != kProtocolVersion) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version));
  }
  OpenSessionWire req;
  req.engine = r.u32("engine");
  req.n = r.u32("n");
  req.iters = r.u32("iters");
  req.coils = r.u32("coils");
  req.kernel_width = r.u32("kernel_width");
  req.warm_start = r.u32("warm_start");
  r.u32("pad");
  req.sigma = r.f64("sigma");
  req.divergence_guard = r.f64("divergence_guard");
  req.frame_deadline_ms = r.u64("frame_deadline_ms");
  req.client_tag = r.u64("client_tag");
  if (req.iters == 0) throw ProtocolError("session iters must be >= 1");
  if (req.coils == 0 || req.coils > 1024) {
    throw ProtocolError("session coils outside [1, 1024]");
  }
  if (req.warm_start > 1) {
    throw ProtocolError("warm_start must be 0 or 1");
  }
  r.expect_consumed();
  return req;
}

std::vector<std::uint8_t> encode_session_reply(const SessionReplyWire& reply) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(reply.status));
  w.u32(0);  // pad
  w.u64(reply.session_id);
  w.u64(reply.client_tag);
  w.u64(reply.frames);
  w.u64(reply.total_iterations);
  w.u32(static_cast<std::uint32_t>(reply.message.size()));
  w.raw(reply.message.data(), reply.message.size());
  return w.take();
}

SessionReplyWire decode_session_reply(const std::uint8_t* data,
                                      std::size_t len) {
  Reader r(data, len);
  SessionReplyWire reply;
  const std::uint32_t status = r.u32("status");
  if (status > static_cast<std::uint32_t>(Status::kError)) {
    throw ProtocolError("unknown status code " + std::to_string(status));
  }
  reply.status = static_cast<Status>(status);
  r.u32("pad");
  reply.session_id = r.u64("session_id");
  reply.client_tag = r.u64("client_tag");
  reply.frames = r.u64("frames");
  reply.total_iterations = r.u64("total_iterations");
  const std::uint32_t msg_len = r.u32("msg_len");
  if (msg_len > (1u << 20)) throw ProtocolError("message implausibly long");
  reply.message.resize(msg_len);
  if (msg_len > 0) r.raw(reply.message.data(), msg_len, "message");
  r.expect_consumed();
  return reply;
}

std::vector<std::uint8_t> encode_push_frame(const PushFrameWire& req) {
  Writer w;
  w.u32(kProtocolVersion);
  w.u32(req.coils);
  w.u64(req.session_id);
  w.u64(req.frame_index);
  w.u64(req.deadline_ms);
  w.u64(req.client_tag);
  w.u64(req.coords.size());
  for (const auto& c : req.coords) {
    w.f64(c[0]);
    w.f64(c[1]);
  }
  for (const auto& v : req.values) {
    w.f64(v.real());
    w.f64(v.imag());
  }
  return w.take();
}

PushFrameWire decode_push_frame(const std::uint8_t* data, std::size_t len) {
  Reader r(data, len);
  const std::uint32_t version = r.u32("version");
  if (version != kProtocolVersion) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version));
  }
  PushFrameWire req;
  req.coils = r.u32("coils");
  req.session_id = r.u64("session_id");
  req.frame_index = r.u64("frame_index");
  req.deadline_ms = r.u64("deadline_ms");
  req.client_tag = r.u64("client_tag");
  const std::uint64_t m = r.u64("m");
  if (req.coils == 0) throw ProtocolError("coils must be >= 1");
  if (m == 0) throw ProtocolError("empty frame");
  if (m > kAbsoluteMaxElements || req.coils > 1024 ||
      m * req.coils > kAbsoluteMaxElements) {
    throw ProtocolError("frame sample count " + std::to_string(m) + " x " +
                        std::to_string(req.coils) +
                        " coils implausibly large");
  }
  // Preflight BEFORE allocating — same defense as decode_recon_request.
  const std::uint64_t payload =
      m * sizeof(double) * 2 + m * req.coils * sizeof(double) * 2;
  if (payload != r.remaining()) {
    throw ProtocolError("body carries " + std::to_string(r.remaining()) +
                        " payload bytes, expected " + std::to_string(payload) +
                        " for " + std::to_string(m) + " samples x " +
                        std::to_string(req.coils) + " coils");
  }
  req.coords.resize(static_cast<std::size_t>(m));
  for (auto& c : req.coords) {
    c[0] = r.f64("coord");
    c[1] = r.f64("coord");
  }
  req.values.resize(static_cast<std::size_t>(m * req.coils));
  for (auto& v : req.values) {
    const double re = r.f64("value");
    const double im = r.f64("value");
    v = c64(re, im);
  }
  r.expect_consumed();
  return req;
}

std::vector<std::uint8_t> encode_frame_reply(const FrameReplyWire& reply) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(reply.status));
  w.u32(reply.n);
  w.u32(reply.iterations);
  w.u32(reply.flags);
  w.u64(reply.session_id);
  w.u64(reply.frame_index);
  w.u64(reply.client_tag);
  w.f64(reply.residual);
  w.u32(static_cast<std::uint32_t>(reply.message.size()));
  w.raw(reply.message.data(), reply.message.size());
  w.u64(reply.image.size());
  for (const auto& v : reply.image) {
    w.f64(v.real());
    w.f64(v.imag());
  }
  return w.take();
}

FrameReplyWire decode_frame_reply(const std::uint8_t* data, std::size_t len) {
  Reader r(data, len);
  FrameReplyWire reply;
  const std::uint32_t status = r.u32("status");
  if (status > static_cast<std::uint32_t>(Status::kError)) {
    throw ProtocolError("unknown status code " + std::to_string(status));
  }
  reply.status = static_cast<Status>(status);
  reply.n = r.u32("n");
  reply.iterations = r.u32("iterations");
  reply.flags = r.u32("flags");
  reply.session_id = r.u64("session_id");
  reply.frame_index = r.u64("frame_index");
  reply.client_tag = r.u64("client_tag");
  reply.residual = r.f64("residual");
  const std::uint32_t msg_len = r.u32("msg_len");
  if (msg_len > (1u << 20)) throw ProtocolError("message implausibly long");
  reply.message.resize(msg_len);
  if (msg_len > 0) r.raw(reply.message.data(), msg_len, "message");
  const std::uint64_t pixels = r.u64("pixel_count");
  if (pixels > kAbsoluteMaxElements) {
    throw ProtocolError("pixel count implausibly large");
  }
  if (pixels * sizeof(double) * 2 != r.remaining()) {
    throw ProtocolError("body carries " + std::to_string(r.remaining()) +
                        " image bytes, expected " +
                        std::to_string(pixels * sizeof(double) * 2) + " for " +
                        std::to_string(pixels) + " pixels");
  }
  reply.image.resize(static_cast<std::size_t>(pixels));
  for (auto& v : reply.image) {
    const double re = r.f64("pixel");
    const double im = r.f64("pixel");
    v = c64(re, im);
  }
  r.expect_consumed();
  return reply;
}

std::vector<std::uint8_t> encode_close_session(const CloseSessionWire& req) {
  Writer w;
  w.u32(kProtocolVersion);
  w.u32(0);  // pad
  w.u64(req.session_id);
  w.u64(req.client_tag);
  return w.take();
}

CloseSessionWire decode_close_session(const std::uint8_t* data,
                                      std::size_t len) {
  Reader r(data, len);
  const std::uint32_t version = r.u32("version");
  if (version != kProtocolVersion) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version));
  }
  CloseSessionWire req;
  r.u32("pad");
  req.session_id = r.u64("session_id");
  req.client_tag = r.u64("client_tag");
  r.expect_consumed();
  return req;
}

void send_frame(int fd, MsgType type, const std::uint8_t* body,
                std::size_t len, int timeout_ms) {
  std::uint8_t header[16];
  const std::uint32_t magic = kMagic;
  const auto type_u32 = static_cast<std::uint32_t>(type);
  const auto body_len = static_cast<std::uint64_t>(len);
  std::memcpy(header + 0, &magic, 4);
  std::memcpy(header + 4, &type_u32, 4);
  std::memcpy(header + 8, &body_len, 8);
  write_all(fd, header, sizeof header, timeout_ms);
  if (len > 0) write_all(fd, body, len, timeout_ms);
}

bool recv_frame(int fd, Frame& out, std::size_t max_body, int timeout_ms) {
  std::chrono::steady_clock::time_point deadline_storage;
  const std::chrono::steady_clock::time_point* deadline = nullptr;
  if (timeout_ms >= 0) {
    deadline_storage = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
    deadline = &deadline_storage;
  }
  std::uint8_t header[16];
  if (!read_all(fd, header, sizeof header, /*eof_ok=*/true, deadline,
                timeout_ms)) {
    return false;
  }
  std::uint32_t magic, type_u32;
  std::uint64_t body_len;
  std::memcpy(&magic, header + 0, 4);
  std::memcpy(&type_u32, header + 4, 4);
  std::memcpy(&body_len, header + 8, 8);
  if (magic != kMagic) {
    throw ProtocolError("bad magic 0x" + std::to_string(magic));
  }
  switch (static_cast<MsgType>(type_u32)) {
    case MsgType::kRecon:
    case MsgType::kStats:
    case MsgType::kOpenSession:
    case MsgType::kPushFrame:
    case MsgType::kCloseSession:
    case MsgType::kReconDataset:
    case MsgType::kReconReply:
    case MsgType::kStatsReply:
    case MsgType::kSessionReply:
    case MsgType::kFrameReply:
      break;
    default:
      throw ProtocolError("unknown message type " + std::to_string(type_u32));
  }
  if (body_len > max_body) throw FrameTooLarge(body_len, max_body);
  out.type = static_cast<MsgType>(type_u32);
  out.body.resize(static_cast<std::size_t>(body_len));
  if (body_len > 0) {
    read_all(fd, out.body.data(), out.body.size(), /*eof_ok=*/false, deadline,
             timeout_ms);
  }
  return true;
}

}  // namespace jigsaw::serve
