// ReconServer: the Unix-domain-socket front of the reconstruction service.
//
// One server owns a listening socket and a ServeEngine. start() spawns an
// accept loop (100 ms poll so shutdown is prompt); each connection gets a
// reader thread that parses frames and submits jobs. Completion callbacks
// run on the engine's dispatcher thread and write replies under the
// connection's write mutex, so a client may pipeline requests — replies
// carry the request's client_tag for matching and may arrive out of order
// across geometries (FIFO within one geometry group).
//
// Error mapping at the socket layer:
//   * frame body over max_request_bytes  -> REJECTED reply, connection
//     closed (the oversized body was never read; the stream cannot be
//     resynchronized);
//   * body that fails the recovering decode -> ERROR reply, connection
//     kept (the bad body was fully consumed);
//   * bad magic / unknown type / truncated frame -> connection closed.
//
// Connections are reaped as they end, not at shutdown: a reader that sees
// EOF (or a fatal framing/write error) retires itself — the server drops
// its references, the fd closes once the last in-flight reply callback
// releases the connection, and the accept loop joins the exited thread on
// its next pass. A long-running daemon serving one-connection-per-request
// clients therefore holds O(live connections) fds/threads, not O(total).
// accept() failures (EMFILE under fd pressure, ENOMEM, ...) back off and
// retry; the accept loop never exits while the server is running.
//
// Reply writes are bounded by ServeConfig::reply_write_timeout_ms so a
// client that stops reading cannot stall the dispatcher thread (or a
// drain) indefinitely: on timeout the partially-written connection is shut
// down and the request is still counted as completed.
//
// stop() is the graceful-drain path SIGTERM triggers in jigsaw_serve:
// stop accepting, drain the engine (every admitted job completes), then
// shut down remaining connections and join their threads.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "serve/protocol.hpp"

namespace jigsaw::serve {

/// Validate a decoded wire request and convert it to an engine job.
/// Throws ProtocolError on out-of-enum engine / sanitize codes.
ReconJob job_from_wire(const ReconRequestWire& wire);

class ReconServer {
 public:
  /// Binds and listens on config.socket_path (an existing socket file is
  /// replaced). Throws std::runtime_error on bind/listen failure.
  explicit ReconServer(const ServeConfig& config);
  ~ReconServer();  // stop(), if still running

  ReconServer(const ReconServer&) = delete;
  ReconServer& operator=(const ReconServer&) = delete;

  /// Spawn the accept loop. Call once.
  void start();

  /// Graceful drain: stop accepting, complete every admitted job, close
  /// connections, join every thread. Idempotent.
  void stop();

  ServeEngine& engine() { return engine_; }
  const std::string& socket_path() const { return config_.socket_path; }

 private:
  // The connection's fd closes when the last shared_ptr drops — i.e. only
  // once the reader thread has exited AND no engine callback that might
  // still write a reply holds a reference. Nobody closes fd directly, so a
  // reused descriptor number can never be written by a stale callback.
  struct Connection {
    ~Connection();  // closes fd
    int fd = -1;
    std::mutex write_mu;  // dispatcher + reader threads both reply
  };

  void accept_loop();
  void serve_connection(const std::shared_ptr<Connection>& conn);
  void send_reply_locked(const std::shared_ptr<Connection>& conn,
                         const ReconReplyWire& reply);

  /// Reader-thread epilogue: drop the server's references to `conn` and
  /// move the reader's own thread handle to finished_threads_ for joining
  /// by the accept loop (or stop()).
  void retire_connection(const Connection* conn);

  /// Join and discard every thread in finished_threads_.
  void reap_finished();

  const ServeConfig config_;
  ServeEngine engine_;
  int listen_fd_ = -1;

  std::mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;       // live connections
  std::map<const Connection*, std::thread> reader_threads_;  // live readers
  std::vector<std::thread> finished_threads_;  // exited readers, un-joined

  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace jigsaw::serve
