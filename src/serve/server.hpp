// ReconServer: the socket front of the reconstruction service.
//
// One server owns its listening sockets and a ServeEngine. It listens on a
// Unix-domain socket (ServeConfig::socket_path), a TCP endpoint
// (ServeConfig::listen, "host:port" — bind 127.0.0.1 unless the operator
// names another interface explicitly), or both at once; the JSRV framed
// protocol is identical on either transport. The accept loop, connection
// reaping, and graceful stop() live in the shared FrameServer base
// (serve/transport.hpp) — the router tier reuses the same skeleton.
//
// Each connection gets a reader thread that parses frames and submits jobs.
// Completion callbacks run on the engine's dispatcher thread and write
// replies under the connection's write mutex, so a client may pipeline
// requests — replies carry the request's client_tag for matching and may
// arrive out of order across geometries (FIFO within one geometry group).
//
// Error mapping at the socket layer:
//   * frame body over max_request_bytes  -> REJECTED reply, connection
//     closed (the oversized body was never read; the stream cannot be
//     resynchronized);
//   * body that fails the recovering decode -> ERROR reply, connection
//     kept (the bad body was fully consumed);
//   * bad magic / unknown type / truncated frame -> connection closed.
//
// Reply writes are bounded by ServeConfig::reply_write_timeout_ms so a
// client that stops reading cannot stall the dispatcher thread (or a
// drain) indefinitely.
//
// stop() is the graceful-drain path SIGTERM triggers in jigsaw_serve:
// stop accepting, drain the engine (every admitted job completes), then
// shut down remaining connections and join their threads.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace jigsaw::serve {

/// Validate a decoded wire request and convert it to an engine job.
/// Throws ProtocolError on out-of-enum engine / sanitize codes.
ReconJob job_from_wire(const ReconRequestWire& wire);

/// Convert a decoded push-frame body to an engine streaming job (the
/// session-level cross-checks — coils, sample caps — run in submit_frame).
StreamFrameJob frame_job_from_wire(PushFrameWire&& wire);

class ReconServer : public FrameServer {
 public:
  /// Binds and listens on config.socket_path (AF_UNIX, an existing socket
  /// file is replaced) and/or config.listen (TCP). At least one must be
  /// set. Throws std::runtime_error on bind/listen failure.
  explicit ReconServer(const ServeConfig& config);
  ~ReconServer() override;  // stop(), if still running

  ServeEngine& engine() { return engine_; }
  const std::string& socket_path() const { return config_.socket_path; }

 protected:
  void serve_connection(const std::shared_ptr<Connection>& conn) override;
  void on_stop_accepting() override { engine_.drain(); }
  // SHUT_RD, not SHUT_RDWR: by the time stop() tears down connections the
  // engine is drained, so the only writes left are reader threads answering
  // post-drain requests with REJECTED "draining". Cutting the write side
  // could truncate such a reply mid-frame — the router would see a broken
  // reply stream (terminal ERROR, no spill) instead of the rejection that
  // sends the request to a healthy worker. Read-side shutdown still makes
  // every blocked reader see EOF and retire; the pending reply writes are
  // bounded by reply_write_timeout_ms, so the join cannot hang.
  int shutdown_how() const override;

 private:
  void send_reply_locked(const std::shared_ptr<Connection>& conn,
                         const ReconReplyWire& reply);
  void send_session_reply_locked(const std::shared_ptr<Connection>& conn,
                                 const SessionReplyWire& reply);
  void send_frame_reply_locked(const std::shared_ptr<Connection>& conn,
                               const FrameReplyWire& reply);
  // One iteration of serve_connection's loop for the streaming message
  // types; returns false when the connection must close.
  bool handle_stream_frame(const std::shared_ptr<Connection>& conn,
                           const Frame& frame);
  // kReconDataset: recon a worker-local JKSD file by reference and answer
  // with a kReconReply. Runs on the connection's reader thread (the file
  // streams through bounded memory; one in flight per connection). Returns
  // false when the connection must close.
  bool handle_dataset_request(const std::shared_ptr<Connection>& conn,
                              const Frame& frame);

  const ServeConfig config_;
  ServeEngine engine_;
};

}  // namespace jigsaw::serve
