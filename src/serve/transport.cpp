#include "serve/transport.hpp"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace jigsaw::serve {

namespace {

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

[[noreturn]] void bad_endpoint(const std::string& spec,
                               const std::string& why) {
  throw std::invalid_argument("bad endpoint '" + spec + "': " + why +
                              " (expected unix:/path or host:port)");
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best effort: a filesystem socket (or an exotic stack) just ignores it.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("serve: socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  return addr;
}

struct ResolvedAddr {
  sockaddr_storage addr{};
  socklen_t len = 0;
  int family = AF_INET;
};

ResolvedAddr resolve_tcp(const Endpoint& ep) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(ep.port);
  const int rc = ::getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0 || res == nullptr) {
    throw std::runtime_error("serve: cannot resolve '" + ep.host +
                             "': " + ::gai_strerror(rc));
  }
  ResolvedAddr out;
  std::memcpy(&out.addr, res->ai_addr, res->ai_addrlen);
  out.len = static_cast<socklen_t>(res->ai_addrlen);
  out.family = res->ai_family;
  ::freeaddrinfo(res);
  return out;
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.empty()) bad_endpoint(spec, "empty spec");
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) bad_endpoint(spec, "empty unix socket path");
    return ep;
  }
  if (spec.front() == '/') {  // bare path: the original --socket spelling
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec;
    return ep;
  }
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) {
    bad_endpoint(spec, "no ':' separating host and port");
  }
  ep.kind = Endpoint::Kind::kTcp;
  ep.host = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  if (ep.host.empty()) bad_endpoint(spec, "empty host");
  if (port_str.empty()) bad_endpoint(spec, "empty port");
  long port = 0;
  for (const char c : port_str) {
    if (c < '0' || c > '9') {
      bad_endpoint(spec, "port '" + port_str + "' is not a number");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) bad_endpoint(spec, "port out of range [0, 65535]");
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

std::string to_string(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) return "unix:" + ep.path;
  return ep.host + ":" + std::to_string(ep.port);
}

int connect_endpoint(const Endpoint& ep, int timeout_ms) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_addr(ep.path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("serve: socket() failed: ") +
                               std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      const int err = errno;
      close_quietly(fd);
      throw std::runtime_error("serve: connect(" + to_string(ep) +
                               ") failed: " + std::strerror(err));
    }
    return fd;
  }

  const ResolvedAddr dst = resolve_tcp(ep);
  const int fd = ::socket(dst.family, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve: socket() failed: ") +
                             std::strerror(errno));
  }
  set_nodelay(fd);
  if (timeout_ms < 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&dst.addr),
                  dst.len) != 0) {
      const int err = errno;
      close_quietly(fd);
      throw std::runtime_error("serve: connect(" + to_string(ep) +
                               ") failed: " + std::strerror(err));
    }
    return fd;
  }
  // Bounded handshake: non-blocking connect + poll, then back to blocking.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&dst.addr),
                     dst.len);
  if (rc != 0 && errno != EINPROGRESS) {
    const int err = errno;
    close_quietly(fd);
    throw std::runtime_error("serve: connect(" + to_string(ep) +
                             ") failed: " + std::strerror(err));
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    int err = 0;
    socklen_t err_len = sizeof err;
    if (ready > 0) {
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    }
    if (ready <= 0 || err != 0) {
      close_quietly(fd);
      throw std::runtime_error(
          "serve: connect(" + to_string(ep) + ") " +
          (ready <= 0 ? "timed out after " + std::to_string(timeout_ms) + " ms"
                      : std::string("failed: ") + std::strerror(err)));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return fd;
}

Listener::Listener(const Endpoint& ep) : bound_(ep) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_addr(ep.path);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw std::runtime_error(std::string("serve: socket() failed: ") +
                               std::strerror(errno));
    }
    ::unlink(ep.path.c_str());  // replace a stale socket file
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      const int err = errno;
      close_quietly(fd_);
      fd_ = -1;
      throw std::runtime_error("serve: bind(" + to_string(ep) +
                               ") failed: " + std::strerror(err));
    }
  } else {
    const ResolvedAddr dst = resolve_tcp(ep);
    fd_ = ::socket(dst.family, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw std::runtime_error(std::string("serve: socket() failed: ") +
                               std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&dst.addr),
               dst.len) != 0) {
      const int err = errno;
      close_quietly(fd_);
      fd_ = -1;
      throw std::runtime_error("serve: bind(" + to_string(ep) +
                               ") failed: " + std::strerror(err));
    }
    // Report the kernel-assigned port when the spec asked for port 0.
    sockaddr_storage actual{};
    socklen_t len = sizeof actual;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      if (actual.ss_family == AF_INET) {
        bound_.port = ntohs(
            reinterpret_cast<const sockaddr_in*>(&actual)->sin_port);
      } else if (actual.ss_family == AF_INET6) {
        bound_.port = ntohs(
            reinterpret_cast<const sockaddr_in6*>(&actual)->sin6_port);
      }
    }
  }
  if (::listen(fd_, 64) != 0) {
    const int err = errno;
    close_quietly(fd_);
    fd_ = -1;
    if (ep.kind == Endpoint::Kind::kUnix) ::unlink(ep.path.c_str());
    throw std::runtime_error(std::string("serve: listen() failed: ") +
                             std::strerror(err));
  }
}

Listener::~Listener() {
  close_quietly(fd_);
  if (fd_ >= 0 && bound_.kind == Endpoint::Kind::kUnix) {
    ::unlink(bound_.path.c_str());
  }
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), bound_(std::move(other.bound_)) {
  other.fd_ = -1;
}

FrameServer::Connection::~Connection() { close_quietly(fd); }

FrameServer::~FrameServer() {
  // Subclasses stop() in their own destructor while their vtable is still
  // live; by the time this runs there is nothing left to do unless the
  // server was never started.
  stop();
}

void FrameServer::add_listener(const Endpoint& ep) {
  listeners_.emplace_back(ep);
}

std::vector<Endpoint> FrameServer::bound_endpoints() const {
  std::vector<Endpoint> out;
  out.reserve(listeners_.size());
  for (const auto& l : listeners_) out.push_back(l.bound());
  return out;
}

int FrameServer::shutdown_how() const { return SHUT_RDWR; }

void FrameServer::start() {
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void FrameServer::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true);

  // 1. Stop accepting; existing connections may still submit work until
  //    their reader sees the shutdown below.
  accept_thread_.join();

  // 2. Let the subclass finish outstanding work while the connections that
  //    expect replies are still open.
  on_stop_accepting();

  // 3. Unblock every connection reader and join. shutdown() makes a blocked
  //    recv return 0 (EOF), so readers exit their frame loop cleanly,
  //    retire themselves, and land in finished_threads_. Loop until every
  //    reader — live or already self-retired — has been joined.
  for (;;) {
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      for (const auto& conn : conns_) ::shutdown(conn->fd, shutdown_how());
      for (auto& [conn, t] : reader_threads_) to_join.push_back(std::move(t));
      reader_threads_.clear();
      for (auto& t : finished_threads_) to_join.push_back(std::move(t));
      finished_threads_.clear();
    }
    if (to_join.empty()) break;
    for (auto& t : to_join) t.join();
  }
  // Readers erased themselves from conns_ as they retired; dropping any
  // leftovers releases the server's references (fds close with the last
  // shared_ptr).
  std::lock_guard<std::mutex> lk(conn_mu_);
  conns_.clear();
}

void FrameServer::retire_connection(const Connection* conn) {
  std::lock_guard<std::mutex> lk(conn_mu_);
  const auto it = reader_threads_.find(conn);
  if (it != reader_threads_.end()) {
    finished_threads_.push_back(std::move(it->second));
    reader_threads_.erase(it);
  }
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [conn](const std::shared_ptr<Connection>& c) {
                                return c.get() == conn;
                              }),
               conns_.end());
}

void FrameServer::reap_finished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    done.swap(finished_threads_);
  }
  for (auto& t : done) t.join();
}

void FrameServer::accept_loop() {
  std::vector<pollfd> pfds;
  pfds.reserve(listeners_.size());
  for (const auto& l : listeners_) pfds.push_back({l.fd(), POLLIN, 0});
  while (!stopping_.load()) {
    reap_finished();
    for (auto& p : pfds) p.revents = 0;
    const int ready =
        ::poll(pfds.data(), pfds.size(), 100);  // 100 ms: prompt shutdown
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    for (const auto& p : pfds) {
      if ((p.revents & POLLIN) == 0) continue;
      const int fd = ::accept(p.fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        // Transient exhaustion (EMFILE/ENFILE/ENOMEM/...): the pending
        // connection stays in the backlog and poll() would report it ready
        // again immediately, so back off briefly instead of spinning — and
        // keep accepting; retiring connections frees descriptors.
        std::fprintf(stderr, "serve: accept failed: %s\n",
                     std::strerror(errno));
        ::poll(nullptr, 0, 100);
        continue;
      }
      set_nodelay(fd);
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      std::lock_guard<std::mutex> lk(conn_mu_);
      if (stopping_.load()) return;  // ~Connection closes fd
      conns_.push_back(conn);
      reader_threads_.emplace(conn.get(), std::thread([this, conn] {
                                serve_connection(conn);
                                retire_connection(conn.get());
                              }));
    }
  }
}

}  // namespace jigsaw::serve
