#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "fft/plan_cache.hpp"
#include "obs/obs.hpp"

namespace jigsaw::fft {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Bit-reversal permutation table for length n = 2^log2n.
std::vector<std::uint32_t> make_bitrev(std::size_t n) {
  std::vector<std::uint32_t> rev(n);
  std::uint32_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t r = 0;
    for (std::uint32_t b = 0; b < log2n; ++b) {
      r |= ((i >> b) & 1u) << (log2n - 1 - b);
    }
    rev[i] = r;
  }
  return rev;
}

/// Forward-direction twiddles for every stage, flattened: for stage with
/// half-size m there are m entries e^{-i*pi*j/m}.
std::vector<c64> make_twiddles(std::size_t n) {
  std::vector<c64> tw;
  for (std::size_t m = 1; m < n; m *= 2) {
    for (std::size_t j = 0; j < m; ++j) {
      const double ang = -kTwoPi * static_cast<double>(j) /
                         static_cast<double>(2 * m);
      tw.emplace_back(std::cos(ang), std::sin(ang));
    }
  }
  return tw;
}

/// In-place radix-2 over bit-reversed input.
void radix2_core(c64* a, std::size_t n, const std::vector<std::uint32_t>& rev,
                 const std::vector<c64>& tw, Direction dir) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t r = rev[i];
    if (i < r) std::swap(a[i], a[r]);
  }
  std::size_t tw_base = 0;
  for (std::size_t m = 1; m < n; m *= 2) {
    for (std::size_t k = 0; k < n; k += 2 * m) {
      for (std::size_t j = 0; j < m; ++j) {
        c64 w = tw[tw_base + j];
        if (dir == Direction::Inverse) w = std::conj(w);
        const c64 t = w * a[k + j + m];
        const c64 u = a[k + j];
        a[k + j] = u + t;
        a[k + j + m] = u - t;
      }
    }
    tw_base += m;
  }
}

}  // namespace

struct Fft1D::Impl {
  // Radix-2 path (n power of two):
  std::vector<std::uint32_t> bitrev;
  std::vector<c64> twiddles;

  // Bluestein path (arbitrary n): convolution length m = next_pow2(2n-1).
  std::size_t bluestein_m = 0;
  std::vector<std::uint32_t> m_bitrev;
  std::vector<c64> m_twiddles;
  std::vector<c64> chirp;       // b[k] = e^{-i*pi*k^2/n} (forward direction)
  std::vector<c64> chirp_fft;   // FFT_m of the chirp filter e^{+i*pi*k^2/n}
};

// NOTE: Bluestein executes borrow convolution scratch from the global
// ScratchPool per call, so every plan — radix-2 and Bluestein alike — is
// safe for concurrent execute() on distinct buffers. This is what allows
// FftPlanCache to hand one shared plan to many coil lanes. All oversampled
// grid sizes used by the NuFFT (sigma*N with sigma=2 and power-of-two N)
// hit the radix-2 path; Bluestein exists for odd/irregular sizes (e.g.
// sigma=1.5).

Fft1D::Fft1D(std::size_t n) : n_(n), impl_(std::make_unique<Impl>()) {
  JIGSAW_REQUIRE(n >= 1, "FFT length must be >= 1, got " << n);
  if (is_pow2(n)) {
    impl_->bitrev = make_bitrev(n);
    impl_->twiddles = make_twiddles(n);
    return;
  }
  // Bluestein setup.
  const std::size_t m = next_pow2(2 * n - 1);
  impl_->bluestein_m = m;
  impl_->m_bitrev = make_bitrev(m);
  impl_->m_twiddles = make_twiddles(m);
  impl_->chirp.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Use k^2 mod 2n to avoid precision loss for large k.
    const std::uint64_t k2 = (static_cast<std::uint64_t>(k) * k) % (2 * n);
    const double ang = -std::numbers::pi * static_cast<double>(k2) /
                       static_cast<double>(n);
    impl_->chirp[k] = c64(std::cos(ang), std::sin(ang));
  }
  impl_->chirp_fft.assign(m, c64{});
  impl_->chirp_fft[0] = std::conj(impl_->chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    impl_->chirp_fft[k] = std::conj(impl_->chirp[k]);
    impl_->chirp_fft[m - k] = std::conj(impl_->chirp[k]);
  }
  radix2_core(impl_->chirp_fft.data(), m, impl_->m_bitrev, impl_->m_twiddles,
              Direction::Forward);
}

Fft1D::~Fft1D() = default;
Fft1D::Fft1D(Fft1D&&) noexcept = default;
Fft1D& Fft1D::operator=(Fft1D&&) noexcept = default;

void Fft1D::execute(c64* data, Direction dir) const {
  if (n_ == 1) return;
  if (impl_->bluestein_m == 0) {
    radix2_core(data, n_, impl_->bitrev, impl_->twiddles, dir);
    return;
  }
  // Bluestein: X[k] = conj(b[k]) * IFFT( FFT(a.*b) .* FFT(filter) ) with
  // b[k] = chirp. For the inverse direction conjugate the chirps.
  const std::size_t m = impl_->bluestein_m;
  ScratchLease lease(m);
  auto& work = lease.buffer();
  std::fill(work.begin(), work.end(), c64{});
  for (std::size_t k = 0; k < n_; ++k) {
    const c64 b =
        dir == Direction::Forward ? impl_->chirp[k] : std::conj(impl_->chirp[k]);
    work[k] = data[k] * b;
  }
  radix2_core(work.data(), m, impl_->m_bitrev, impl_->m_twiddles,
              Direction::Forward);
  if (dir == Direction::Forward) {
    for (std::size_t k = 0; k < m; ++k) work[k] *= impl_->chirp_fft[k];
  } else {
    // FFT of the conjugated filter equals conj(chirp_fft) reversed; using
    // the identity FFT(conj(x))[k] = conj(FFT(x)[(m-k) mod m]).
    // Multiply pointwise with that sequence.
    // Save a precomputed array by computing on the fly.
    std::vector<c64>& tmp = work;  // alias for clarity
    c64 first = std::conj(impl_->chirp_fft[0]);
    c64 saved = tmp[0] * first;
    for (std::size_t k = 1; k <= m / 2; ++k) {
      const c64 fk = std::conj(impl_->chirp_fft[m - k]);
      const c64 fmk = std::conj(impl_->chirp_fft[k]);
      const c64 a = tmp[k] * fk;
      const c64 b = tmp[m - k] * fmk;
      tmp[k] = a;
      tmp[m - k] = b;
    }
    tmp[0] = saved;
  }
  radix2_core(work.data(), m, impl_->m_bitrev, impl_->m_twiddles,
              Direction::Inverse);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n_; ++k) {
    const c64 b =
        dir == Direction::Forward ? impl_->chirp[k] : std::conj(impl_->chirp[k]);
    data[k] = work[k] * inv_m * b;
  }
}

void Fft1D::execute_strided(c64* data, std::size_t stride, Direction dir,
                            c64* scratch) const {
  if (stride == 1) {
    execute(data, dir);
    return;
  }
  for (std::size_t i = 0; i < n_; ++i) scratch[i] = data[i * stride];
  execute(scratch, dir);
  for (std::size_t i = 0; i < n_; ++i) data[i * stride] = scratch[i];
}

FftNd::FftNd(std::vector<std::size_t> dims) : dims_(std::move(dims)) {
  JIGSAW_REQUIRE(!dims_.empty(), "FftNd needs at least one dimension");
  total_ = 1;
  for (std::size_t d : dims_) {
    JIGSAW_REQUIRE(d >= 1, "FFT dimension must be >= 1");
    total_ *= d;
  }
  for (std::size_t d : dims_) {
    std::shared_ptr<Fft1D> plan;
    for (std::size_t j = 0; j < plans_.size(); ++j) {
      if (plans_[j]->size() == d) {
        plan = plans_[j];
        break;
      }
    }
    if (!plan) plan = std::make_shared<Fft1D>(d);
    plans_.push_back(std::move(plan));
  }
}

bool FftNd::parallelizable() const {
  for (std::size_t d : dims_) {
    if (!is_pow2(d)) return false;
  }
  return true;
}

void FftNd::execute(c64* data, Direction dir, unsigned threads) const {
  obs::add("fft.execs", 1);
  obs::Span obs_span("fft.execute");
  const std::size_t ndim = dims_.size();
  const bool parallel = threads > 1 && parallelizable();
  std::vector<c64> scratch;
  // For each dimension, transform every 1-D line along that dimension.
  for (std::size_t axis = 0; axis < ndim; ++axis) {
    const std::size_t n = dims_[axis];
    if (n == 1) continue;
    std::size_t stride = 1;
    for (std::size_t a = axis + 1; a < ndim; ++a) stride *= dims_[a];
    const std::size_t block = stride * n;  // elements spanned by one line set
    const std::size_t lines = total_ / n;
    if (parallel) {
      ThreadPool pool(threads);
      pool.parallel_for(
          static_cast<std::int64_t>(lines),
          [&](std::int64_t begin, std::int64_t end, unsigned) {
            std::vector<c64> local(n);
            for (std::int64_t line = begin; line < end; ++line) {
              const std::size_t base =
                  (static_cast<std::size_t>(line) / stride) * block;
              const std::size_t off =
                  static_cast<std::size_t>(line) % stride;
              plans_[axis]->execute_strided(data + base + off, stride, dir,
                                            local.data());
            }
          });
      continue;
    }
    if (scratch.size() < n) scratch.resize(n);
    for (std::size_t base = 0; base < total_; base += block) {
      for (std::size_t off = 0; off < stride; ++off) {
        plans_[axis]->execute_strided(data + base + off, stride, dir,
                                      scratch.data());
      }
    }
  }
}

void dft_reference(const c64* in, c64* out, std::size_t n, Direction dir) {
  const double sign = dir == Direction::Forward ? -1.0 : 1.0;
  for (std::size_t k = 0; k < n; ++k) {
    c64 acc{};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * kTwoPi * static_cast<double>(j) *
                         static_cast<double>(k) / static_cast<double>(n);
      acc += in[j] * c64(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
}

namespace {
void shift_axis(c64* data, const std::vector<std::size_t>& dims,
                std::size_t axis, std::size_t amount) {
  const std::size_t n = dims[axis];
  if (n == 1 || amount == 0) return;
  std::size_t stride = 1;
  for (std::size_t a = axis + 1; a < dims.size(); ++a) stride *= dims[a];
  std::size_t total = 1;
  for (std::size_t d : dims) total *= d;
  const std::size_t block = stride * n;
  std::vector<c64> line(n);
  for (std::size_t base = 0; base < total; base += block) {
    for (std::size_t off = 0; off < stride; ++off) {
      c64* p = data + base + off;
      for (std::size_t i = 0; i < n; ++i) line[i] = p[i * stride];
      for (std::size_t i = 0; i < n; ++i) {
        p[((i + amount) % n) * stride] = line[i];
      }
    }
  }
}
}  // namespace

void fftshift(c64* data, const std::vector<std::size_t>& dims) {
  for (std::size_t axis = 0; axis < dims.size(); ++axis) {
    shift_axis(data, dims, axis, dims[axis] / 2);
  }
}

void ifftshift(c64* data, const std::vector<std::size_t>& dims) {
  for (std::size_t axis = 0; axis < dims.size(); ++axis) {
    shift_axis(data, dims, axis, dims[axis] - dims[axis] / 2);
  }
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace jigsaw::fft
