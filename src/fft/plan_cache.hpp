// Process-wide FFT plan and scratch-buffer caches.
//
// Planning an FftNd costs twiddle/bit-reversal table construction per
// distinct length — cheap once, wasteful when every NufftPlan, Toeplitz
// operator and coil lane re-plans the same (sigma*N)^d geometry. The cache
// hands out shared immutable plans keyed by the dimension vector, so any
// number of transform objects (and any number of threads) reuse one table
// set. FftNd::execute is const and carries no per-plan mutable state, so a
// shared plan is safe for concurrent execution on distinct buffers.
//
// The scratch pool complements it: hot paths that need a temporary c64
// buffer (Bluestein convolution scratch, Toeplitz embedding grids,
// per-coil work grids) borrow from a bounded freelist instead of hitting
// the allocator per call.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "fft/fft.hpp"

namespace jigsaw::fft {

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  // == number of plans constructed
};

/// Thread-safe cache of FftNd plans keyed by their dimension vector.
/// Planning happens under the cache lock, so two threads racing on the same
/// key never build the plan twice; the loser of the race blocks briefly and
/// receives the winner's plan.
class FftPlanCache {
 public:
  /// Shared plan for `dims` (row-major, last dimension fastest).
  std::shared_ptr<const FftNd> get(const std::vector<std::size_t>& dims);

  /// Convenience: shared plan for a `dim`-dimensional cube of side `side`.
  std::shared_ptr<const FftNd> get_cube(int dim, std::size_t side);

  PlanCacheStats stats() const;
  std::size_t size() const;

  /// Drop every cached plan (outstanding shared_ptrs stay valid).
  void clear();

  /// Process-wide instance used by NufftPlan / ToeplitzOperator.
  static FftPlanCache& global();

 private:
  mutable std::mutex mu_;
  std::map<std::vector<std::size_t>, std::shared_ptr<const FftNd>> plans_;
  PlanCacheStats stats_;
};

/// Thread-safe freelist of c64 scratch buffers. acquire() returns a buffer
/// of capacity >= `size` (contents unspecified); release() returns it for
/// reuse. The pool retains at most kMaxRetained buffers — excess releases
/// simply deallocate, bounding the cache footprint.
class ScratchPool {
 public:
  static constexpr std::size_t kMaxRetained = 32;

  std::vector<c64> acquire(std::size_t size);
  void release(std::vector<c64> buffer);

  /// Buffers currently parked in the freelist (diagnostic).
  std::size_t retained() const;

  static ScratchPool& global();

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<c64>> free_;
};

/// RAII lease on a ScratchPool buffer, resized to exactly `size` elements
/// (values unspecified — callers that need zeros clear it themselves).
class ScratchLease {
 public:
  explicit ScratchLease(std::size_t size,
                        ScratchPool& pool = ScratchPool::global())
      : pool_(&pool), buffer_(pool.acquire(size)) {
    buffer_.resize(size);
  }
  ~ScratchLease() { pool_->release(std::move(buffer_)); }

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  c64* data() { return buffer_.data(); }
  std::size_t size() const { return buffer_.size(); }
  std::vector<c64>& buffer() { return buffer_; }

 private:
  ScratchPool* pool_;
  std::vector<c64> buffer_;
};

}  // namespace jigsaw::fft
