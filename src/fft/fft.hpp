// Self-contained complex FFT library (no external dependency).
//
// Supports any transform length: power-of-two lengths use an iterative
// radix-2 Cooley-Tukey kernel with precomputed twiddles; all other lengths
// fall back to Bluestein's chirp-z algorithm built on a power-of-two FFT.
//
// Conventions:
//   Forward : X[k] = sum_n x[n] e^{-2*pi*i*n*k/N}   (unnormalized)
//   Inverse : x[n] = sum_k X[k] e^{+2*pi*i*n*k/N}   (unnormalized)
// A round trip Forward then Inverse multiplies the signal by N.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace jigsaw::fft {

enum class Direction { Forward, Inverse };

/// One-dimensional complex-to-complex FFT plan of fixed length.
/// Plans are immutable after construction and safe to share across threads
/// for concurrent execute() calls on distinct buffers.
class Fft1D {
 public:
  explicit Fft1D(std::size_t n);
  ~Fft1D();
  Fft1D(Fft1D&&) noexcept;
  Fft1D& operator=(Fft1D&&) noexcept;
  Fft1D(const Fft1D&) = delete;
  Fft1D& operator=(const Fft1D&) = delete;

  std::size_t size() const { return n_; }

  /// In-place transform of `data[0..n)`.
  void execute(c64* data, Direction dir) const;

  /// Strided in-place transform: element i lives at data[i * stride].
  /// Uses the provided scratch buffer (length >= n).
  void execute_strided(c64* data, std::size_t stride, Direction dir,
                       c64* scratch) const;

 private:
  struct Impl;
  std::size_t n_;
  std::unique_ptr<Impl> impl_;
};

/// Multi-dimensional complex FFT via the row-column method. Data is row-major
/// with the last dimension fastest.
class FftNd {
 public:
  explicit FftNd(std::vector<std::size_t> dims);

  const std::vector<std::size_t>& dims() const { return dims_; }
  std::size_t total_size() const { return total_; }

  /// In-place transform of `data[0..total_size())`.
  /// `threads > 1` splits the independent 1-D lines of each axis across a
  /// thread pool (power-of-two lengths only — Bluestein lengths fall back
  /// to serial execution of the lines). The paper's conclusion makes the
  /// FFT the post-JIGSAW bottleneck; this is the library's corresponding
  /// knob. Regardless of `threads`, execute() is const and thread-safe:
  /// concurrent calls on one plan with distinct buffers are allowed (the
  /// coil-parallel reconstruction path relies on this).
  void execute(c64* data, Direction dir, unsigned threads = 1) const;

  /// True when every dimension takes the radix-2 (thread-safe) path.
  bool parallelizable() const;

 private:
  std::vector<std::size_t> dims_;
  std::size_t total_;
  std::vector<std::shared_ptr<Fft1D>> plans_;  // one per dim (shared when equal)
};

/// Direct O(N^2) DFT used as a test oracle.
void dft_reference(const c64* in, c64* out, std::size_t n, Direction dir);

/// Swap halves in every dimension (centers DC). For odd n the split is
/// ceil/floor as in numpy.fft.fftshift.
void fftshift(c64* data, const std::vector<std::size_t>& dims);
void ifftshift(c64* data, const std::vector<std::size_t>& dims);

/// True when n is a power of two (n >= 1).
constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

}  // namespace jigsaw::fft
