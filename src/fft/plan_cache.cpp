#include "fft/plan_cache.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace jigsaw::fft {

std::shared_ptr<const FftNd> FftPlanCache::get(
    const std::vector<std::size_t>& dims) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(dims);
  if (it != plans_.end()) {
    ++stats_.hits;
    obs::add("fftcache.hits", 1);
    return it->second;
  }
  ++stats_.misses;
  obs::add("fftcache.misses", 1);
  JIGSAW_OBS_SPAN(span, "fftcache.plan");
  auto plan = std::make_shared<const FftNd>(dims);
  plans_.emplace(dims, plan);
  return plan;
}

std::shared_ptr<const FftNd> FftPlanCache::get_cube(int dim,
                                                    std::size_t side) {
  return get(std::vector<std::size_t>(static_cast<std::size_t>(dim), side));
}

PlanCacheStats FftPlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t FftPlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

void FftPlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  stats_ = PlanCacheStats{};
}

FftPlanCache& FftPlanCache::global() {
  static FftPlanCache cache;
  return cache;
}

std::vector<c64> ScratchPool::acquire(std::size_t size) {
  obs::add("scratch.acquires", 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Best fit: smallest parked buffer with sufficient capacity; otherwise
    // the largest one (resize grows it once and it stays big).
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].capacity() < size) continue;
      if (best == free_.size() ||
          free_[i].capacity() < free_[best].capacity()) {
        best = i;
      }
    }
    if (best == free_.size() && !free_.empty()) {
      best = 0;
      for (std::size_t i = 1; i < free_.size(); ++i) {
        if (free_[i].capacity() > free_[best].capacity()) best = i;
      }
    }
    if (best < free_.size()) {
      std::vector<c64> out = std::move(free_[best]);
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
      obs::add("scratch.reuses", 1);
      return out;
    }
  }
  std::vector<c64> out;
  out.reserve(size);
  return out;
}

void ScratchPool::release(std::vector<c64> buffer) {
  if (buffer.capacity() == 0) return;
  obs::add("scratch.releases", 1);
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() >= kMaxRetained) return;  // let it deallocate
  free_.push_back(std::move(buffer));
}

std::size_t ScratchPool::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

ScratchPool& ScratchPool::global() {
  static ScratchPool pool;
  return pool;
}

}  // namespace jigsaw::fft
