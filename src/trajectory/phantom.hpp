// Analytic Shepp-Logan phantom.
//
// Substitute for the liver MRI dataset of Otazo et al. [25] used in the
// paper (see DESIGN.md §1): every ellipse has a closed-form 2D Fourier
// transform (a scaled jinc), so non-uniform k-space data can be synthesized
// *exactly* at arbitrary trajectory coordinates and reconstructions can be
// scored against exact ground truth — no data files required.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace jigsaw::trajectory {

/// One phantom ellipse. Geometry in FOV units (image support is the unit
/// square [-0.5, 0.5)^2).
struct Ellipse {
  double intensity;  // additive intensity rho
  double a, b;       // semi-axes
  double x0, y0;     // center
  double theta;      // rotation (radians, CCW)
};

/// The standard (modified-contrast) Shepp-Logan ellipse set, rescaled to fit
/// the [-0.5, 0.5)^2 FOV.
std::vector<Ellipse> shepp_logan();

/// Rasterize the phantom on an n x n pixel grid (row-major, y fastest last
/// dim = x). Pixel (ix, iy) is sampled at ((ix - n/2) / n, (iy - n/2) / n).
std::vector<double> rasterize(const std::vector<Ellipse>& ellipses, int n);

/// Exact continuous Fourier transform of the phantom at k-space location
/// (kx, ky) in cycles/FOV:
///   F(k) = sum_e rho a b * J1(2 pi s)/s * exp(-2 pi i (kx x0 + ky y0))
/// with s = |diag(a,b) * R(-theta) k|.
c64 kspace_sample(const std::vector<Ellipse>& ellipses, double kx, double ky);

/// Evaluate k-space at every coordinate of a trajectory (coords in
/// normalized torus units, scaled by n to cycles/FOV).
std::vector<c64> kspace_samples(const std::vector<Ellipse>& ellipses,
                                const std::vector<Coord<2>>& coords, int n);

}  // namespace jigsaw::trajectory
