#include "trajectory/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace jigsaw::trajectory {

namespace {
constexpr double kPi = std::numbers::pi;

/// Fold a coordinate into [-0.5, 0.5).
double fold(double v) {
  v -= std::floor(v + 0.5);
  // Guard against -0.5 landing exactly on the upper edge after rounding.
  if (v >= 0.5) v -= 1.0;
  if (v < -0.5) v += 1.0;
  return v;
}
}  // namespace

std::string to_string(TrajectoryType t) {
  switch (t) {
    case TrajectoryType::Radial: return "radial";
    case TrajectoryType::Spiral: return "spiral";
    case TrajectoryType::Rosette: return "rosette";
    case TrajectoryType::Random: return "random";
    case TrajectoryType::Cartesian: return "cartesian";
    case TrajectoryType::GoldenRadial: return "golden-radial";
    case TrajectoryType::VdSpiral: return "vd-spiral";
    case TrajectoryType::Propeller: return "propeller";
  }
  return "unknown";
}

std::vector<Coord<2>> radial_2d(int spokes, int samples_per_spoke,
                                bool golden_angle) {
  JIGSAW_REQUIRE(spokes >= 1 && samples_per_spoke >= 2,
                 "radial trajectory needs >=1 spoke, >=2 samples each");
  std::vector<Coord<2>> out;
  out.reserve(static_cast<std::size_t>(spokes) * samples_per_spoke);
  const double golden = kPi * (3.0 - std::sqrt(5.0));
  for (int s = 0; s < spokes; ++s) {
    const double theta = golden_angle
                             ? static_cast<double>(s) * golden
                             : kPi * static_cast<double>(s) /
                                   static_cast<double>(spokes);
    const double cx = std::cos(theta), cy = std::sin(theta);
    for (int i = 0; i < samples_per_spoke; ++i) {
      // radius in [-0.5, 0.5), excluding the exact +0.5 edge
      const double r = -0.5 + static_cast<double>(i) /
                                  static_cast<double>(samples_per_spoke);
      out.push_back({fold(r * cx), fold(r * cy)});
    }
  }
  return out;
}

std::vector<Coord<2>> spiral_2d(int interleaves, int samples_per_interleave,
                                double turns) {
  JIGSAW_REQUIRE(interleaves >= 1 && samples_per_interleave >= 2,
                 "spiral trajectory needs >=1 interleaf, >=2 samples");
  std::vector<Coord<2>> out;
  out.reserve(static_cast<std::size_t>(interleaves) * samples_per_interleave);
  for (int il = 0; il < interleaves; ++il) {
    const double rot = 2.0 * kPi * static_cast<double>(il) /
                       static_cast<double>(interleaves);
    for (int i = 0; i < samples_per_interleave; ++i) {
      const double t = static_cast<double>(i) /
                       static_cast<double>(samples_per_interleave);
      const double r = 0.5 * t * (1.0 - 1e-9);
      const double ang = 2.0 * kPi * turns * t + rot;
      out.push_back({fold(r * std::cos(ang)), fold(r * std::sin(ang))});
    }
  }
  return out;
}

std::vector<Coord<2>> vd_spiral_2d(int interleaves, int samples_per_interleave,
                                   double turns, double alpha) {
  JIGSAW_REQUIRE(interleaves >= 1 && samples_per_interleave >= 2,
                 "vd-spiral needs >=1 interleaf, >=2 samples");
  JIGSAW_REQUIRE(alpha > 0.0, "vd-spiral density exponent must be > 0");
  std::vector<Coord<2>> out;
  out.reserve(static_cast<std::size_t>(interleaves) * samples_per_interleave);
  for (int il = 0; il < interleaves; ++il) {
    const double rot = 2.0 * kPi * static_cast<double>(il) /
                       static_cast<double>(interleaves);
    for (int i = 0; i < samples_per_interleave; ++i) {
      const double t = static_cast<double>(i) /
                       static_cast<double>(samples_per_interleave);
      // alpha > 1: r grows slowly at first, so equal-arc-index samples pile
      // up near the center — denser low-frequency coverage.
      const double r = 0.5 * std::pow(t, alpha) * (1.0 - 1e-9);
      const double ang = 2.0 * kPi * turns * t + rot;
      out.push_back({fold(r * std::cos(ang)), fold(r * std::sin(ang))});
    }
  }
  return out;
}

std::vector<Coord<2>> rosette_2d(int samples, double w1, double w2) {
  JIGSAW_REQUIRE(samples >= 2, "rosette needs >= 2 samples");
  std::vector<Coord<2>> out;
  out.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const double t = 2.0 * kPi * static_cast<double>(i) /
                     static_cast<double>(samples);
    const double r = 0.4999 * std::fabs(std::sin(w1 * t));
    const double ang = w2 * t;
    out.push_back({fold(r * std::cos(ang)), fold(r * std::sin(ang))});
  }
  return out;
}

std::vector<Coord<2>> propeller_2d(int blades, int lines_per_blade,
                                   int samples_per_line, double blade_width) {
  JIGSAW_REQUIRE(blades >= 1 && lines_per_blade >= 1 && samples_per_line >= 2,
                 "propeller needs >=1 blade, >=1 line, >=2 samples per line");
  JIGSAW_REQUIRE(blade_width > 0.0 && blade_width < 1.0,
                 "propeller blade width must be in (0, 1) torus units");
  std::vector<Coord<2>> out;
  out.reserve(static_cast<std::size_t>(blades) * lines_per_blade *
              samples_per_line);
  for (int b = 0; b < blades; ++b) {
    const double theta = kPi * static_cast<double>(b) /
                         static_cast<double>(blades);
    const double cx = std::cos(theta), sx = std::sin(theta);
    for (int l = 0; l < lines_per_blade; ++l) {
      // Line offset across the blade, symmetric about the center line.
      const double off =
          lines_per_blade == 1
              ? 0.0
              : blade_width * (static_cast<double>(l) /
                                   static_cast<double>(lines_per_blade - 1) -
                               0.5);
      for (int i = 0; i < samples_per_line; ++i) {
        // Readout position in [-0.5, 0.5), excluding the exact +0.5 edge.
        const double r = -0.5 + static_cast<double>(i) /
                                    static_cast<double>(samples_per_line);
        // Blade frame: r along the readout, off across it; rotate by theta.
        out.push_back({fold(r * cx - off * sx), fold(r * sx + off * cx)});
      }
    }
  }
  return out;
}

std::vector<Coord<2>> random_2d(std::int64_t m, std::uint64_t seed) {
  JIGSAW_REQUIRE(m >= 1, "need at least one sample");
  Rng rng(seed);
  std::vector<Coord<2>> out(static_cast<std::size_t>(m));
  for (auto& c : out) {
    c = {rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)};
  }
  return out;
}

std::vector<Coord<3>> random_3d(std::int64_t m, std::uint64_t seed) {
  JIGSAW_REQUIRE(m >= 1, "need at least one sample");
  Rng rng(seed ^ 0x33445566ULL);
  std::vector<Coord<3>> out(static_cast<std::size_t>(m));
  for (auto& c : out) {
    c = {rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5),
         rng.uniform(-0.5, 0.5)};
  }
  return out;
}

std::vector<Coord<2>> cartesian_2d(int n, double jitter, std::uint64_t seed) {
  JIGSAW_REQUIRE(n >= 1, "grid side must be >= 1");
  Rng rng(seed ^ 0xabcdef12ULL);
  std::vector<Coord<2>> out;
  out.reserve(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      double cx = (static_cast<double>(x) - n / 2) / static_cast<double>(n);
      double cy = (static_cast<double>(y) - n / 2) / static_cast<double>(n);
      if (jitter > 0.0) {
        cx += rng.uniform(-jitter, jitter) / static_cast<double>(n);
        cy += rng.uniform(-jitter, jitter) / static_cast<double>(n);
      }
      out.push_back({fold(cx), fold(cy)});
    }
  }
  return out;
}

std::vector<Coord<3>> stack_of_stars_3d(int spokes, int samples_per_spoke,
                                        int nz) {
  JIGSAW_REQUIRE(nz >= 1, "need >= 1 kz partition");
  const auto star = radial_2d(spokes, samples_per_spoke);
  std::vector<Coord<3>> out;
  out.reserve(star.size() * static_cast<std::size_t>(nz));
  for (int z = 0; z < nz; ++z) {
    const double kz =
        (static_cast<double>(z) - nz / 2) / static_cast<double>(nz);
    for (const auto& s : star) out.push_back({s[0], s[1], fold(kz)});
  }
  return out;
}

std::vector<Coord<2>> make_2d(TrajectoryType type, std::int64_t m,
                              std::uint64_t seed) {
  JIGSAW_REQUIRE(m >= 4, "need at least 4 samples");
  switch (type) {
    case TrajectoryType::Radial: {
      // Choose spokes ~ samples_per_spoke for a square-ish trajectory.
      const int per = static_cast<int>(std::sqrt(static_cast<double>(m)));
      const int spokes = static_cast<int>((m + per - 1) / per);
      return radial_2d(spokes, per, /*golden_angle=*/false);
    }
    case TrajectoryType::Spiral: {
      const int per = static_cast<int>(std::sqrt(static_cast<double>(m) * 8));
      const int il = static_cast<int>((m + per - 1) / per);
      return spiral_2d(il, per);
    }
    case TrajectoryType::Rosette:
      return rosette_2d(static_cast<int>(m));
    case TrajectoryType::Random:
      return random_2d(m, seed);
    case TrajectoryType::Cartesian: {
      const int n = static_cast<int>(std::sqrt(static_cast<double>(m)));
      return cartesian_2d(n, 0.0, seed);
    }
    case TrajectoryType::GoldenRadial: {
      const int per = static_cast<int>(std::sqrt(static_cast<double>(m)));
      const int spokes = static_cast<int>((m + per - 1) / per);
      return radial_2d(spokes, per, /*golden_angle=*/true);
    }
    case TrajectoryType::VdSpiral: {
      const int per = static_cast<int>(std::sqrt(static_cast<double>(m) * 8));
      const int il = static_cast<int>((m + per - 1) / per);
      return vd_spiral_2d(il, per);
    }
    case TrajectoryType::Propeller: {
      // Square-ish readout lines, a fixed 8-line blade, blades to cover m.
      const int per = static_cast<int>(std::sqrt(static_cast<double>(m)));
      const int lines = 8;
      const int blades = static_cast<int>(
          std::max<std::int64_t>(1, (m + per * lines - 1) / (per * lines)));
      return propeller_2d(blades, lines, per);
    }
  }
  throw std::invalid_argument("jigsaw: unknown trajectory type");
}

std::vector<double> radial_density_weights(
    const std::vector<Coord<2>>& coords) {
  // Ramp filter |k| with the small-|k| plateau: w = max(|k|, 1/(2*pi*M_r))
  // where M_r approximates the ring count. Normalized to mean 1.
  std::vector<double> w(coords.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const double r = std::sqrt(coords[i][0] * coords[i][0] +
                               coords[i][1] * coords[i][1]);
    w[i] = std::max(r, 1e-4);
    sum += w[i];
  }
  const double scale = static_cast<double>(coords.size()) / sum;
  for (auto& v : w) v *= scale;
  return w;
}

}  // namespace jigsaw::trajectory
