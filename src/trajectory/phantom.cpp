#include "trajectory/phantom.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "kernels/bessel.hpp"

namespace jigsaw::trajectory {

namespace {
constexpr double kPi = std::numbers::pi;
// The classical phantom is defined on [-1, 1]^2; scale into our [-0.5, 0.5)
// FOV with a small margin.
constexpr double kScale = 0.48;
}  // namespace

std::vector<Ellipse> shepp_logan() {
  // Modified (Toft) contrast values for visibility; geometry per Shepp-Logan.
  // Columns: intensity, a, b, x0, y0, theta(deg).
  const double deg = kPi / 180.0;
  std::vector<Ellipse> e = {
      {1.00, 0.6900, 0.9200, 0.00, 0.0000, 0.0},
      {-0.80, 0.6624, 0.8740, 0.00, -0.0184, 0.0},
      {-0.20, 0.1100, 0.3100, 0.22, 0.0000, -18.0 * deg},
      {-0.20, 0.1600, 0.4100, -0.22, 0.0000, 18.0 * deg},
      {0.10, 0.2100, 0.2500, 0.00, 0.3500, 0.0},
      {0.10, 0.0460, 0.0460, 0.00, 0.1000, 0.0},
      {0.10, 0.0460, 0.0460, 0.00, -0.1000, 0.0},
      {0.10, 0.0460, 0.0230, -0.08, -0.6050, 0.0},
      {0.10, 0.0230, 0.0230, 0.00, -0.6060, 0.0},
      {0.10, 0.0230, 0.0460, 0.06, -0.6050, 0.0},
  };
  for (auto& el : e) {
    el.a *= kScale;
    el.b *= kScale;
    el.x0 *= kScale;
    el.y0 *= kScale;
  }
  // Convert theta from "deg" placeholder: already scaled above via deg.
  return e;
}

std::vector<double> rasterize(const std::vector<Ellipse>& ellipses, int n) {
  JIGSAW_REQUIRE(n >= 1, "raster size must be >= 1");
  std::vector<double> img(static_cast<std::size_t>(n) * n, 0.0);
  for (int iy = 0; iy < n; ++iy) {
    const double y = (static_cast<double>(iy) - n / 2) / static_cast<double>(n);
    for (int ix = 0; ix < n; ++ix) {
      const double x =
          (static_cast<double>(ix) - n / 2) / static_cast<double>(n);
      double v = 0.0;
      for (const auto& e : ellipses) {
        const double ct = std::cos(e.theta), st = std::sin(e.theta);
        const double dx = x - e.x0, dy = y - e.y0;
        const double xr = ct * dx + st * dy;
        const double yr = -st * dx + ct * dy;
        const double q = (xr / e.a) * (xr / e.a) + (yr / e.b) * (yr / e.b);
        if (q <= 1.0) v += e.intensity;
      }
      img[static_cast<std::size_t>(iy) * n + ix] = v;
    }
  }
  return img;
}

c64 kspace_sample(const std::vector<Ellipse>& ellipses, double kx, double ky) {
  c64 acc{};
  for (const auto& e : ellipses) {
    const double ct = std::cos(e.theta), st = std::sin(e.theta);
    // Rotate k into the ellipse frame, then scale by the semi-axes.
    const double kxr = ct * kx + st * ky;
    const double kyr = -st * kx + ct * ky;
    const double s =
        std::sqrt(e.a * kxr * e.a * kxr + e.b * kyr * e.b * kyr);
    double shape;
    if (s < 1e-10) {
      shape = kPi;  // lim J1(2 pi s)/s = pi
    } else {
      shape = kernels::bessel_j1(2.0 * kPi * s) / s;
    }
    const double mag = e.intensity * e.a * e.b * shape;
    const double phase = -2.0 * kPi * (kx * e.x0 + ky * e.y0);
    acc += c64(mag * std::cos(phase), mag * std::sin(phase));
  }
  return acc;
}

std::vector<c64> kspace_samples(const std::vector<Ellipse>& ellipses,
                                const std::vector<Coord<2>>& coords, int n) {
  // Coordinate convention: component 0 is the row (y) dimension of the
  // reconstructed image (slowest-varying in the row-major layout),
  // component 1 the column (x) dimension.
  std::vector<c64> out(coords.size());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    out[i] = kspace_sample(ellipses, coords[i][1] * n, coords[i][0] * n);
  }
  return out;
}

}  // namespace jigsaw::trajectory
