// Non-uniform k-space sampling trajectory generators.
//
// Coordinates are produced in normalized torus units: each component lies in
// [-0.5, 0.5), where +/-0.5 is the Nyquist edge of an N-point grid (multiply
// by N to get cycles/FOV). All generators are deterministic for a given
// parameter set / seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace jigsaw::trajectory {

enum class TrajectoryType {
  Radial,        // equally angulated spokes through k-space center
  Spiral,        // Archimedean interleaved spiral
  Rosette,       // rosette petals (oscillating radius)
  Random,        // i.i.d. uniform on the torus
  Cartesian,     // on-grid points, optionally jittered
  GoldenRadial,  // radial with golden-angle (pi*(3-sqrt 5)) increments —
                 // the dynamic-MRI acquisition every sliding window of
                 // consecutive spokes covers k-space near-uniformly
  VdSpiral,      // variable-density spiral: center-weighted radius law
  Propeller,     // PROPELLER blades: rotated strips of parallel Cartesian
                 // readout lines, every blade crossing the k-space center
};

std::string to_string(TrajectoryType t);

/// 2D radial: `spokes` diameters, `samples_per_spoke` points each, golden- or
/// uniform-angle increments. Radius spans [-0.5, 0.5).
std::vector<Coord<2>> radial_2d(int spokes, int samples_per_spoke,
                                bool golden_angle = false);

/// 2D Archimedean spiral with `interleaves` rotated copies.
std::vector<Coord<2>> spiral_2d(int interleaves, int samples_per_interleave,
                                double turns = 16.0);

/// 2D variable-density spiral: radius follows r(t) = 0.5 * t^alpha along
/// each interleaf, so alpha > 1 concentrates samples near the k-space
/// center (where MRI signal energy lives) and thins the periphery — the
/// standard VD sampling law. alpha = 1 degenerates to the Archimedean
/// spiral's linear radius.
std::vector<Coord<2>> vd_spiral_2d(int interleaves, int samples_per_interleave,
                                   double turns = 16.0, double alpha = 2.0);

/// 2D rosette: r(t) = 0.5 |sin(w1 t)|, angle w2 t.
std::vector<Coord<2>> rosette_2d(int samples, double w1 = 3.0,
                                 double w2 = 5.0);

/// 2D PROPELLER: `blades` rectangular strips of `lines_per_blade` parallel
/// Cartesian readout lines (`samples_per_line` points each, spanning the
/// full [-0.5, 0.5) readout), blade b rotated by b*pi/blades. Every blade
/// covers the low-frequency center — the self-navigation property PROPELLER
/// acquisitions exploit. `blade_width` is the strip's full extent across
/// the lines in torus units.
std::vector<Coord<2>> propeller_2d(int blades, int lines_per_blade,
                                   int samples_per_line,
                                   double blade_width = 0.125);

/// i.i.d. uniform samples on the d-torus.
std::vector<Coord<2>> random_2d(std::int64_t m, std::uint64_t seed);
std::vector<Coord<3>> random_3d(std::int64_t m, std::uint64_t seed);

/// On-grid Cartesian points of an n x n grid, optionally jittered by
/// `jitter` grid cells (jitter = 0 gives exactly uniform sampling; useful
/// for validating gridding against plain FFT results).
std::vector<Coord<2>> cartesian_2d(int n, double jitter, std::uint64_t seed);

/// 3D stack-of-stars: radial in (x, y) replicated across `nz` evenly spaced
/// kz partitions.
std::vector<Coord<3>> stack_of_stars_3d(int spokes, int samples_per_spoke,
                                        int nz);

/// Dispatch by enum; m is the requested total sample count (generators round
/// to their natural granularity, e.g. whole spokes).
std::vector<Coord<2>> make_2d(TrajectoryType type, std::int64_t m,
                              std::uint64_t seed = 42);

/// Analytic density-compensation weights for a radial trajectory (ramp |k|,
/// with the standard center-sample correction). `coords` must come from
/// radial_2d with the same geometry.
std::vector<double> radial_density_weights(const std::vector<Coord<2>>& coords);

}  // namespace jigsaw::trajectory
