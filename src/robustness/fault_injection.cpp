#include "robustness/fault_injection.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/sample_set.hpp"

namespace jigsaw::robustness {

std::string FaultReport::summary() const {
  std::ostringstream os;
  os << "inject: " << samples_dropped << " samples dropped";
  if (lines_dropped > 0) os << " (" << lines_dropped << " readout lines)";
  os << ", " << noise_spikes << " noise spikes, " << nonfinite_injected
     << " non-finite values, " << coords_perturbed << " coords off-torus\n";
  return os.str();
}

template <int D>
FaultReport inject(core::SampleSet<D>& s, const FaultSpec& spec) {
  JIGSAW_REQUIRE(s.coords.size() == s.values.size(),
                 "coords/values size mismatch: " << s.coords.size() << " vs "
                                                 << s.values.size());
  JIGSAW_REQUIRE(spec.drop_fraction >= 0.0 && spec.drop_fraction <= 1.0 &&
                     spec.noise_spike_fraction >= 0.0 &&
                     spec.noise_spike_fraction <= 1.0 &&
                     spec.nonfinite_fraction >= 0.0 &&
                     spec.nonfinite_fraction <= 1.0 &&
                     spec.out_of_range_fraction >= 0.0 &&
                     spec.out_of_range_fraction <= 1.0,
                 "fault fractions must lie in [0, 1]");
  FaultReport report;
  Rng rng(spec.seed);
  const std::size_t m = s.size();
  if (m == 0) return report;

  // (1) Coordinate perturbation: push one dimension off the torus.
  if (spec.out_of_range_fraction > 0.0) {
    for (std::size_t j = 0; j < m; ++j) {
      if (rng.uniform() >= spec.out_of_range_fraction) continue;
      const int d = static_cast<int>(rng.below(D));
      // Offset >= 1.0 so a torus coordinate is guaranteed to land outside
      // [-0.5, 0.5) — the classic off-by-one-period unit mix-up.
      const double offset = rng.uniform(1.0, 2.0);
      s.coords[j][static_cast<std::size_t>(d)] +=
          (rng() & 1) ? offset : -offset;
      ++report.coords_perturbed;
    }
  }

  // (2) Non-finite injection, cycling through the distinct poison patterns
  // an export glitch produces.
  if (spec.nonfinite_fraction > 0.0) {
    constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < m; ++j) {
      if (rng.uniform() >= spec.nonfinite_fraction) continue;
      switch (rng.below(4)) {
        case 0: s.values[j] = c64(kNan, s.values[j].imag()); break;
        case 1: s.values[j] = c64(s.values[j].real(), kNan); break;
        case 2: s.values[j] = c64(kInf, 0.0); break;
        default: s.values[j] = c64(0.0, -kInf); break;
      }
      ++report.nonfinite_injected;
    }
  }

  // (3) Impulse noise, scaled to the clean stream's peak component.
  if (spec.noise_spike_fraction > 0.0) {
    double peak = 0.0;
    for (const c64& v : s.values) {
      if (std::isfinite(v.real())) {
        peak = std::max(peak, std::fabs(v.real()));
      }
      if (std::isfinite(v.imag())) {
        peak = std::max(peak, std::fabs(v.imag()));
      }
    }
    if (peak == 0.0) peak = 1.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (rng.uniform() >= spec.noise_spike_fraction) continue;
      const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
      s.values[j] += spec.spike_magnitude * peak *
                     c64(std::cos(phi), std::sin(phi));
      ++report.noise_spikes;
    }
  }

  // (4) Dropped readouts: whole lines of `readout_length` samples, or
  // individual samples when no line structure is known.
  if (spec.drop_fraction > 0.0) {
    std::vector<char> keep(m, 1);
    if (spec.readout_length > 0) {
      const auto len = static_cast<std::size_t>(spec.readout_length);
      const std::size_t lines = (m + len - 1) / len;
      for (std::size_t line = 0; line < lines; ++line) {
        if (rng.uniform() >= spec.drop_fraction) continue;
        ++report.lines_dropped;
        const std::size_t begin = line * len;
        const std::size_t end = std::min(m, begin + len);
        for (std::size_t j = begin; j < end; ++j) keep[j] = 0;
      }
    } else {
      for (std::size_t j = 0; j < m; ++j) {
        if (rng.uniform() < spec.drop_fraction) keep[j] = 0;
      }
    }
    std::size_t w = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (keep[j] == 0) continue;
      s.coords[w] = s.coords[j];
      s.values[w] = s.values[j];
      ++w;
    }
    report.samples_dropped = m - w;
    s.coords.resize(w);
    s.values.resize(w);
  }

  return report;
}

template FaultReport inject<1>(core::SampleSet<1>&, const FaultSpec&);
template FaultReport inject<2>(core::SampleSet<2>&, const FaultSpec&);
template FaultReport inject<3>(core::SampleSet<3>&, const FaultSpec&);

}  // namespace jigsaw::robustness
