#include "robustness/sanitize.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/sample_set.hpp"

namespace jigsaw::robustness {

std::string to_string(SanitizePolicy p) {
  switch (p) {
    case SanitizePolicy::None: return "none";
    case SanitizePolicy::Strict: return "strict";
    case SanitizePolicy::Drop: return "drop";
    case SanitizePolicy::Clamp: return "clamp";
  }
  return "unknown";
}

SanitizePolicy parse_sanitize_policy(const std::string& s) {
  if (s == "none") return SanitizePolicy::None;
  if (s == "strict") return SanitizePolicy::Strict;
  if (s == "drop") return SanitizePolicy::Drop;
  if (s == "clamp") return SanitizePolicy::Clamp;
  throw std::invalid_argument("jigsaw: unknown sanitize policy: " + s +
                              " (expected none|strict|drop|clamp)");
}

std::string SanitizeReport::summary() const {
  std::ostringstream os;
  os << "sanitize (" << to_string(policy) << "): scanned " << scanned
     << " samples, " << defective_samples << " defective, " << kept
     << " kept";
  if (dropped > 0) os << ", " << dropped << " dropped";
  if (repaired > 0) os << ", " << repaired << " repaired";
  os << '\n';
  os << "  non-finite values:      " << nonfinite_values << '\n';
  os << "  non-finite coords:      " << nonfinite_coords << '\n';
  os << "  out-of-range coords:    " << out_of_range_coords << '\n';
  os << "  duplicate coords:       " << duplicate_coords;
  for (const auto& o : first_offenders) {
    os << "\n  offender: sample " << o.index << " (" << to_string(o.defect);
    if (o.dim >= 0) os << ", dim " << o.dim;
    os << ", value " << o.value << ")";
  }
  os << '\n';
  return os.str();
}

namespace {

// Per-sample defect bitmask.
constexpr unsigned kBadValue = 1u;   // NonFiniteValue
constexpr unsigned kBadCoord = 2u;   // NonFiniteCoord
constexpr unsigned kOutOfRange = 4u; // OutOfRangeCoord
constexpr unsigned kDuplicate = 8u;  // DuplicateCoord

/// Classify one sample against the non-duplicate defect classes; record the
/// first offending component per class in `off` (dim/value).
template <int D>
unsigned classify(const core::SampleSet<D>& s, std::size_t j, Offender* off) {
  unsigned mask = 0;
  const c64 v = s.values[j];
  if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
    mask |= kBadValue;
    if (off != nullptr) {
      off[0] = {j, DefectClass::NonFiniteValue, -1,
                std::isfinite(v.real()) ? v.imag() : v.real()};
    }
  }
  for (int d = 0; d < D; ++d) {
    const double c = s.coords[j][static_cast<std::size_t>(d)];
    if (!std::isfinite(c)) {
      if ((mask & kBadCoord) == 0 && off != nullptr) {
        off[1] = {j, DefectClass::NonFiniteCoord, d, c};
      }
      mask |= kBadCoord;
    } else if (!coord_in_range(c)) {
      if ((mask & kOutOfRange) == 0 && off != nullptr) {
        off[2] = {j, DefectClass::OutOfRangeCoord, d, c};
      }
      mask |= kOutOfRange;
    }
  }
  return mask;
}

/// Bitwise hash of a coordinate (NaNs compare equal to themselves here,
/// which is what exact-duplicate detection wants).
template <int D>
std::uint64_t coord_hash(const Coord<D>& c) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int d = 0; d < D; ++d) {
    std::uint64_t bits;
    static_assert(sizeof(double) == sizeof(bits));
    std::memcpy(&bits, &c[static_cast<std::size_t>(d)], sizeof(bits));
    h ^= bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

template <int D>
bool coord_bits_equal(const Coord<D>& a, const Coord<D>& b) {
  return std::memcmp(a.data(), b.data(), sizeof(double) * D) == 0;
}

/// Full scan: per-sample defect masks + aggregated report. The linear pass
/// is parallelized with ThreadPool::parallel_for (deterministic: fixed
/// chunking, per-chunk partials merged in chunk order); duplicate detection
/// hashes in parallel and resolves collisions with one sort.
template <int D>
SanitizeReport scan_masks(const core::SampleSet<D>& in, unsigned threads,
                          std::size_t max_offenders,
                          std::vector<unsigned char>* masks_out) {
  JIGSAW_REQUIRE(in.coords.size() == in.values.size(),
                 "coords/values size mismatch: " << in.coords.size() << " vs "
                                                 << in.values.size());
  const std::size_t m = in.size();
  SanitizeReport report;
  report.scanned = m;

  std::vector<unsigned char> masks(m, 0);
  std::vector<std::uint64_t> hashes(m);

  ThreadPool pool(threads == 0 ? 0 : threads);
  const unsigned nchunks = pool.thread_count();
  struct Partial {
    std::size_t bad_value = 0, bad_coord = 0, out_of_range = 0;
    std::vector<Offender> offenders;
  };
  std::vector<Partial> partials(nchunks);

  pool.parallel_for(
      static_cast<std::int64_t>(m),
      [&](std::int64_t begin, std::int64_t end, unsigned worker) {
        Partial& p = partials[worker];
        for (std::int64_t jj = begin; jj < end; ++jj) {
          const auto j = static_cast<std::size_t>(jj);
          Offender off[3];
          const unsigned mask = classify<D>(in, j, off);
          masks[j] = static_cast<unsigned char>(mask);
          hashes[j] = coord_hash<D>(in.coords[j]);
          if (mask == 0) continue;
          if (mask & kBadValue) ++p.bad_value;
          if (mask & kBadCoord) ++p.bad_coord;
          if (mask & kOutOfRange) ++p.out_of_range;
          if (p.offenders.size() < max_offenders) {
            if (mask & kBadValue) p.offenders.push_back(off[0]);
            if ((mask & kBadCoord) && p.offenders.size() < max_offenders) {
              p.offenders.push_back(off[1]);
            }
            if ((mask & kOutOfRange) && p.offenders.size() < max_offenders) {
              p.offenders.push_back(off[2]);
            }
          }
        }
      });

  for (const Partial& p : partials) {
    report.nonfinite_values += p.bad_value;
    report.nonfinite_coords += p.bad_coord;
    report.out_of_range_coords += p.out_of_range;
    for (const Offender& o : p.offenders) {
      if (report.first_offenders.size() < max_offenders) {
        report.first_offenders.push_back(o);
      }
    }
  }

  // Exact-duplicate detection: sort indices by hash, compare bitwise within
  // equal-hash runs. The smallest original index of each coordinate is the
  // kept occurrence.
  std::vector<std::uint32_t> order(m);
  for (std::size_t j = 0; j < m; ++j) {
    order[j] = static_cast<std::uint32_t>(j);
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (hashes[a] != hashes[b]) return hashes[a] < hashes[b];
              return a < b;
            });
  for (std::size_t i = 0; i < m;) {
    std::size_t e = i + 1;
    while (e < m && hashes[order[e]] == hashes[order[i]]) ++e;
    if (e - i > 1) {
      // Within a hash run, compare each member against the earliest
      // bit-identical coordinate (runs are tiny in practice).
      for (std::size_t a = i + 1; a < e; ++a) {
        for (std::size_t b = i; b < a; ++b) {
          if (coord_bits_equal<D>(in.coords[order[a]],
                                  in.coords[order[b]])) {
            masks[order[a]] |= kDuplicate;
            ++report.duplicate_coords;
            break;
          }
        }
      }
    }
    i = e;
  }
  if (report.duplicate_coords > 0 &&
      report.first_offenders.size() < max_offenders) {
    for (std::size_t j = 0;
         j < m && report.first_offenders.size() < max_offenders; ++j) {
      if (masks[j] & kDuplicate) {
        report.first_offenders.push_back(
            {j, DefectClass::DuplicateCoord, 0, in.coords[j][0]});
      }
    }
  }

  // Deterministic offender order: sort by sample index, then defect class.
  std::sort(report.first_offenders.begin(), report.first_offenders.end(),
            [](const Offender& a, const Offender& b) {
              if (a.index != b.index) return a.index < b.index;
              return static_cast<int>(a.defect) < static_cast<int>(b.defect);
            });
  if (report.first_offenders.size() > max_offenders) {
    report.first_offenders.resize(max_offenders);
  }

  for (std::size_t j = 0; j < m; ++j) {
    if (masks[j] != 0) ++report.defective_samples;
  }
  report.kept = m;
  if (masks_out != nullptr) *masks_out = std::move(masks);
  return report;
}

template <int D>
[[noreturn]] void throw_strict(const core::SampleSet<D>& in,
                               std::size_t index, const Offender& off) {
  std::ostringstream os;
  os << "jigsaw: sample " << index << " of " << in.size() << ": "
     << to_string(off.defect);
  if (off.dim >= 0) {
    os << " (dim " << off.dim << " = " << off.value
       << ", expected finite in [-0.5, 0.5))";
  } else {
    os << " (value component " << off.value << ")";
  }
  throw std::invalid_argument(os.str());
}

}  // namespace

template <int D>
SanitizeReport scan(const core::SampleSet<D>& in, unsigned threads,
                    std::size_t max_offenders) {
  return scan_masks<D>(in, threads, max_offenders, nullptr);
}

template <int D>
void require_valid(const core::SampleSet<D>& in) {
  JIGSAW_REQUIRE(in.coords.size() == in.values.size(),
                 "coords/values size mismatch: " << in.coords.size() << " vs "
                                                 << in.values.size());
  // Serial short-circuit scan: the error path wants the *first* offender,
  // and the happy path is a branch-predictable linear sweep.
  for (std::size_t j = 0; j < in.size(); ++j) {
    Offender off[3];
    const unsigned mask = classify<D>(in, j, off);
    if (mask == 0) continue;
    const Offender& first = (mask & kBadValue)   ? off[0]
                            : (mask & kBadCoord) ? off[1]
                                                 : off[2];
    throw_strict<D>(in, j, first);
  }
}

template <int D>
SanitizeOutcome<D> sanitize(const core::SampleSet<D>& in,
                            SanitizePolicy policy, unsigned threads,
                            std::size_t max_offenders) {
  SanitizeOutcome<D> out;
  if (policy == SanitizePolicy::None) {
    out.report.policy = policy;
    out.report.scanned = in.size();
    out.report.kept = in.size();
    return out;
  }
  if (policy == SanitizePolicy::Strict) {
    require_valid<D>(in);  // throws on the first hard defect
    out.report = scan<D>(in, threads, max_offenders);  // duplicate counts
    out.report.policy = policy;
    return out;
  }

  std::vector<unsigned char> masks;
  out.report = scan_masks<D>(in, threads, max_offenders, &masks);
  out.report.policy = policy;
  if (out.report.clean()) return out;  // nothing to do, no copy

  const std::size_t m = in.size();
  if (policy == SanitizePolicy::Drop) {
    out.samples.coords.reserve(m - out.report.defective_samples);
    out.samples.values.reserve(m - out.report.defective_samples);
    for (std::size_t j = 0; j < m; ++j) {
      if (masks[j] != 0) continue;
      out.samples.coords.push_back(in.coords[j]);
      out.samples.values.push_back(in.values[j]);
    }
    out.report.dropped = m - out.samples.size();
    out.report.kept = out.samples.size();
    return out;
  }

  // Clamp: wrap finite out-of-range coordinates, zero non-finite values and
  // coordinates; duplicates are counted but kept.
  out.samples = in;
  for (std::size_t j = 0; j < m; ++j) {
    const unsigned mask = masks[j];
    if ((mask & (kBadValue | kBadCoord | kOutOfRange)) == 0) continue;
    ++out.report.repaired;
    if (mask & kBadValue) out.samples.values[j] = c64{};
    for (int d = 0; d < D; ++d) {
      double& c = out.samples.coords[j][static_cast<std::size_t>(d)];
      if (!std::isfinite(c)) {
        c = 0.0;
      } else if (!coord_in_range(c)) {
        c = wrap_torus(c);
      }
    }
  }
  out.report.kept = m;
  return out;
}

template <int D>
std::size_t clamp_coords(std::vector<Coord<D>>& coords) {
  std::size_t changed = 0;
  for (auto& coord : coords) {
    bool touched = false;
    for (int d = 0; d < D; ++d) {
      double& c = coord[static_cast<std::size_t>(d)];
      if (std::isfinite(c) && coord_in_range(c)) continue;
      c = std::isfinite(c) ? wrap_torus(c) : 0.0;
      touched = true;
    }
    if (touched) ++changed;
  }
  return changed;
}

template SanitizeReport scan<1>(const core::SampleSet<1>&, unsigned,
                                std::size_t);
template SanitizeReport scan<2>(const core::SampleSet<2>&, unsigned,
                                std::size_t);
template SanitizeReport scan<3>(const core::SampleSet<3>&, unsigned,
                                std::size_t);
template SanitizeOutcome<1> sanitize<1>(const core::SampleSet<1>&,
                                        SanitizePolicy, unsigned, std::size_t);
template SanitizeOutcome<2> sanitize<2>(const core::SampleSet<2>&,
                                        SanitizePolicy, unsigned, std::size_t);
template SanitizeOutcome<3> sanitize<3>(const core::SampleSet<3>&,
                                        SanitizePolicy, unsigned, std::size_t);
template void require_valid<1>(const core::SampleSet<1>&);
template void require_valid<2>(const core::SampleSet<2>&);
template void require_valid<3>(const core::SampleSet<3>&);
template std::size_t clamp_coords<1>(std::vector<Coord<1>>&);
template std::size_t clamp_coords<2>(std::vector<Coord<2>>&);
template std::size_t clamp_coords<3>(std::vector<Coord<3>>&);

}  // namespace jigsaw::robustness
