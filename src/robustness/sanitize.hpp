// SampleSanitizer: one-pass defect scan and policy-driven repair for
// non-uniform sample sets (see docs/robustness.md).
//
// A 50M-sample acquisition must not abort because one exported row carries a
// NaN or an out-of-range coordinate. The sanitizer scans a SampleSet<D> in
// parallel (ThreadPool::parallel_for), classifies every sample against the
// defect taxonomy of defects.hpp, and applies one of three policies:
//
//   Strict — throw std::invalid_argument naming the first offender (sample
//            index, dimension, offending value). SampleSet<D>::validate() is
//            exactly this policy.
//   Drop   — remove defective samples (duplicates keep their first
//            occurrence) and return the survivors.
//   Clamp  — repair in place: wrap out-of-range coordinates onto the torus,
//            zero non-finite values/coordinates; duplicates are counted but
//            kept.
//
// Exact-duplicate coordinates are reported under every policy but are never
// a Strict error: legitimate trajectories repeat coordinates (every radial
// spoke passes through the k-space center), so duplicates are suspicious,
// not invalid.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "robustness/defects.hpp"

namespace jigsaw::core {
template <int D>
struct SampleSet;
}  // namespace jigsaw::core

namespace jigsaw::robustness {

enum class SanitizePolicy {
  None,    // pass-through: no scan, no copy, zero overhead
  Strict,  // throw on the first non-finite / out-of-range sample
  Drop,    // remove defective samples
  Clamp,   // repair defective samples in place
};

std::string to_string(SanitizePolicy p);
/// Parse "none" / "strict" / "drop" / "clamp"; throws std::invalid_argument.
SanitizePolicy parse_sanitize_policy(const std::string& s);

/// One recorded offender (the report keeps the first K in sample order).
struct Offender {
  std::size_t index = 0;  // sample index in the scanned set
  DefectClass defect = DefectClass::NonFiniteValue;
  int dim = -1;           // coordinate dimension, -1 for value defects
  double value = 0.0;     // offending component (coord or value part)
};

/// Outcome of one sanitization pass: per-defect-class counts plus the first
/// K offenders, printable by the CLI and examples.
struct SanitizeReport {
  SanitizePolicy policy = SanitizePolicy::None;
  std::size_t scanned = 0;
  std::size_t nonfinite_values = 0;    // samples with a NaN/Inf value part
  std::size_t nonfinite_coords = 0;    // samples with a NaN/Inf coordinate
  std::size_t out_of_range_coords = 0; // samples with a coord off the torus
  std::size_t duplicate_coords = 0;    // exact repeats of an earlier coord
  std::size_t defective_samples = 0;   // samples with >= 1 defect (classes
                                       // can overlap on one sample)
  std::size_t dropped = 0;             // samples removed (Drop)
  std::size_t repaired = 0;            // samples rewritten (Clamp)
  std::size_t kept = 0;                // samples surviving the pass
  std::vector<Offender> first_offenders;
  bool clean() const {
    return nonfinite_values == 0 && nonfinite_coords == 0 &&
           out_of_range_coords == 0 && duplicate_coords == 0;
  }
  /// Did the pass change the sample set (drop or rewrite anything)?
  bool modified() const { return dropped > 0 || repaired > 0; }

  /// Human-readable multi-line summary (one line per defect class plus a
  /// header), as printed by `jigsaw_cli recon --sanitize ...`.
  std::string summary() const;
};

template <int D>
struct SanitizeOutcome {
  SanitizeReport report;
  /// The surviving/repaired samples. Only meaningful when
  /// report.modified(); a clean input is never copied.
  core::SampleSet<D> samples;
};

/// Scan without modifying: count defects and record the first
/// `max_offenders` offenders. `threads` as in GridderOptions (0 = all
/// hardware threads, 1 = serial).
template <int D>
SanitizeReport scan(const core::SampleSet<D>& in, unsigned threads = 1,
                    std::size_t max_offenders = 8);

/// Scan and apply `policy`. Strict throws on the first non-finite /
/// out-of-range sample; Drop/Clamp return the repaired set in
/// `outcome.samples` when anything changed (check report.modified()).
template <int D>
SanitizeOutcome<D> sanitize(const core::SampleSet<D>& in,
                            SanitizePolicy policy, unsigned threads = 1,
                            std::size_t max_offenders = 8);

/// The Strict policy as a bare check: throw std::invalid_argument naming
/// the first non-finite or out-of-range sample (index, dimension, value).
/// SampleSet<D>::validate() routes here.
template <int D>
void require_valid(const core::SampleSet<D>& in);

/// Repair a coordinate array in place (Clamp semantics: wrap finite
/// components, zero non-finite ones). Returns the number of components
/// changed. Used by the forward (re-gridding) path, where samples are
/// output slots and can be repaired but never dropped.
template <int D>
std::size_t clamp_coords(std::vector<Coord<D>>& coords);

extern template SanitizeReport scan<1>(const core::SampleSet<1>&, unsigned,
                                       std::size_t);
extern template SanitizeReport scan<2>(const core::SampleSet<2>&, unsigned,
                                       std::size_t);
extern template SanitizeReport scan<3>(const core::SampleSet<3>&, unsigned,
                                       std::size_t);
extern template SanitizeOutcome<1> sanitize<1>(const core::SampleSet<1>&,
                                               SanitizePolicy, unsigned,
                                               std::size_t);
extern template SanitizeOutcome<2> sanitize<2>(const core::SampleSet<2>&,
                                               SanitizePolicy, unsigned,
                                               std::size_t);
extern template SanitizeOutcome<3> sanitize<3>(const core::SampleSet<3>&,
                                               SanitizePolicy, unsigned,
                                               std::size_t);
extern template void require_valid<1>(const core::SampleSet<1>&);
extern template void require_valid<2>(const core::SampleSet<2>&);
extern template void require_valid<3>(const core::SampleSet<3>&);
extern template std::size_t clamp_coords<1>(std::vector<Coord<1>>&);
extern template std::size_t clamp_coords<2>(std::vector<Coord<2>>&);
extern template std::size_t clamp_coords<3>(std::vector<Coord<3>>&);

}  // namespace jigsaw::robustness
