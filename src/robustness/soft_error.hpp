// Soft-error (bit-flip) model for the JIGSAW accumulation SRAM.
//
// The paper's whole pitch is that a 16/32-bit fixed-point datapath is "good
// enough" for clinical image quality; this hook asks how fragile that claim
// is when the accumulation SRAM takes single-event upsets. A seeded
// Bernoulli draw decides, per accumulator write, whether to flip one chosen
// bit in one component of the freshly written word. Both the functional
// JigsawGridder and the cycle-level CycleSim install the hook on their
// adjoint accumulation path, and bench/campaign_soft_error.cpp sweeps
// (flip rate x bit position) to map the datapath's resilience headroom the
// same way Fig. 9 maps its precision headroom.
//
// Note the two models consume their random streams in different write
// orders (window-order vs column-order), so their outputs are only
// bit-exact with each other when the injector is inactive.
#pragma once

#include <cstdint>
#include <type_traits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fixed/fixed.hpp"

namespace jigsaw::robustness {

/// Campaign point: flip `bit` in a `rate` fraction of accumulator writes.
/// rate == 0 disables the hook entirely (no Rng draws, bit-exact with the
/// clean datapath).
struct SoftErrorConfig {
  double rate = 0.0;       // per-write flip probability
  int bit = 12;            // bit position within the accumulator word
  std::uint64_t seed = 0x50f7e44ULL;
};

class SoftErrorInjector {
 public:
  SoftErrorInjector() = default;
  explicit SoftErrorInjector(const SoftErrorConfig& cfg)
      : rate_(cfg.rate), bit_(cfg.bit), rng_(cfg.seed),
        active_(cfg.rate > 0.0) {
    JIGSAW_REQUIRE(cfg.rate >= 0.0 && cfg.rate <= 1.0,
                   "soft-error rate must lie in [0, 1], got " << cfg.rate);
    JIGSAW_REQUIRE(cfg.bit >= 0 && cfg.bit < 64,
                   "soft-error bit position out of range: " << cfg.bit);
  }

  bool active() const { return active_; }
  std::uint64_t flips() const { return flips_; }

  /// Maybe corrupt a just-written accumulator word: one Bernoulli draw per
  /// write; on a hit, flip the configured bit in a randomly chosen
  /// component (real/imaginary), as an SEU strikes one physical cell.
  template <typename F>
  void corrupt(fixed::Complex<F>& word) {
    if (!active_) return;
    if (rng_.uniform() >= rate_) return;
    JIGSAW_REQUIRE(bit_ < F::bits, "soft-error bit " << bit_
                       << " exceeds the " << F::bits
                       << "-bit accumulator word");
    using S = typename F::storage;
    using U = std::make_unsigned_t<S>;
    const U mask = static_cast<U>(U{1} << bit_);
    F& component = (rng_() & 1) ? word.re : word.im;
    component =
        F::from_raw(static_cast<S>(static_cast<U>(component.raw()) ^ mask));
    ++flips_;
  }

 private:
  double rate_ = 0.0;
  int bit_ = 0;
  Rng rng_{};
  std::uint64_t flips_ = 0;
  bool active_ = false;
};

}  // namespace jigsaw::robustness
