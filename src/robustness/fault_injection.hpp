// Deterministic acquisition-failure model for sample sets.
//
// Real scanners degrade in a handful of stereotyped ways: whole readout
// lines vanish (gradient trips, motion-gated rejection), isolated samples
// pick up impulse noise (RF spikes), export pipelines emit NaN/Inf, and
// coordinate streams drift off the torus (unit mix-ups, miscalibration).
// The FaultInjector reproduces each mode under a seeded Rng so every
// gridder and the full recon pipeline can be exercised end-to-end under
// degradation — reproducibly, in tests, benchmarks and the CLI's
// `--drop-spokes/--noise-spikes/...` flag group.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace jigsaw::core {
template <int D>
struct SampleSet;
}  // namespace jigsaw::core

namespace jigsaw::robustness {

/// What to corrupt, expressed as per-unit probabilities. All modes are
/// independent Bernoulli draws from one seeded stream, so a given
/// (spec, sample set) pair always produces the same corruption.
struct FaultSpec {
  /// Fraction of readout lines (spokes/interleaves) removed outright.
  /// `readout_length` is the line granularity in samples; 0 drops
  /// individual samples instead of whole lines.
  double drop_fraction = 0.0;
  std::int64_t readout_length = 0;

  /// Fraction of values hit by impulse noise: value += magnitude * peak *
  /// e^{i phi} with random phase, where peak is the max |component| of the
  /// clean stream. Spikes are finite — the damage a sanitizer cannot
  /// detect, only the reconstruction can absorb.
  double noise_spike_fraction = 0.0;
  double spike_magnitude = 50.0;

  /// Fraction of values replaced by NaN/Inf (export glitches).
  double nonfinite_fraction = 0.0;

  /// Fraction of coordinates pushed off the [-0.5, 0.5) torus by a random
  /// offset of magnitude in [1.0, 2.0) on one dimension (a full-period
  /// shift, so an in-range coordinate is guaranteed to leave the torus).
  double out_of_range_fraction = 0.0;

  std::uint64_t seed = 1;
};

/// What actually happened (exact counts under the seeded draws).
struct FaultReport {
  std::size_t lines_dropped = 0;
  std::size_t samples_dropped = 0;
  std::size_t noise_spikes = 0;
  std::size_t nonfinite_injected = 0;
  std::size_t coords_perturbed = 0;

  bool any() const {
    return samples_dropped + noise_spikes + nonfinite_injected +
               coords_perturbed >
           0;
  }
  std::string summary() const;
};

/// Corrupt `s` in place per `spec`. Order: coordinate perturbation, then
/// non-finite injection, then noise spikes, then line/sample drops — so a
/// sample can carry several defects, as real failures overlap.
template <int D>
FaultReport inject(core::SampleSet<D>& s, const FaultSpec& spec);

extern template FaultReport inject<1>(core::SampleSet<1>&, const FaultSpec&);
extern template FaultReport inject<2>(core::SampleSet<2>&, const FaultSpec&);
extern template FaultReport inject<3>(core::SampleSet<3>&, const FaultSpec&);

}  // namespace jigsaw::robustness
