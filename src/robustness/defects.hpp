// Defect taxonomy for degraded non-uniform sample sets.
//
// Real acquisitions reach the reconstruction stack with predictable damage:
// scanner-export glitches produce NaN/Inf values, gradient miscalibration or
// unit mix-ups push coordinates off the [-0.5, 0.5) torus, and retransmitted
// readouts duplicate coordinates exactly. This header names those defect
// classes and provides the per-component predicates/repairs shared by the
// SampleSet validator and the SampleSanitizer — it deliberately depends on
// nothing but <cmath>/<string> so both can include it without coupling.
#pragma once

#include <cmath>
#include <string>

namespace jigsaw::robustness {

enum class DefectClass {
  NonFiniteValue,    // sample value with a NaN/Inf component
  NonFiniteCoord,    // coordinate with a NaN/Inf component
  OutOfRangeCoord,   // finite coordinate component outside [-0.5, 0.5)
  DuplicateCoord,    // exact bitwise duplicate of an earlier coordinate
};

inline std::string to_string(DefectClass d) {
  switch (d) {
    case DefectClass::NonFiniteValue: return "non-finite value";
    case DefectClass::NonFiniteCoord: return "non-finite coordinate";
    case DefectClass::OutOfRangeCoord: return "out-of-range coordinate";
    case DefectClass::DuplicateCoord: return "duplicate coordinate";
  }
  return "unknown defect";
}

/// Is a finite coordinate component on the torus?
inline bool coord_in_range(double v) { return v >= -0.5 && v < 0.5; }

/// Wrap a finite coordinate component onto the [-0.5, 0.5) torus (the Clamp
/// repair). Matches the fold used by the trajectory generators.
inline double wrap_torus(double v) {
  v -= std::floor(v + 0.5);
  if (v >= 0.5) v -= 1.0;   // FP guard: -0.5-eps folds to +0.5
  if (v < -0.5) v += 1.0;
  return v;
}

}  // namespace jigsaw::robustness
