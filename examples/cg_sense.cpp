// Multi-coil CG-SENSE reconstruction — the parallel-imaging, iterative
// workload the paper's introduction motivates (millions of NuFFTs per
// volume). Simulates an 8-coil undersampled radial acquisition of the
// phantom and reconstructs it with conjugate gradients on the SENSE normal
// equations, comparing coil counts and reporting how much of the runtime
// is spent inside the gridding engine.
#include <cstdio>

#include "common/pgm.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/metrics.hpp"
#include "core/sense.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

using namespace jigsaw;


int main() {
  const std::int64_t n = 64;
  // 2x undersampled radial acquisition (50 spokes where ~100 meet Nyquist).
  const auto coords = trajectory::radial_2d(50, 128);
  std::printf("CG-SENSE: %zu k-space samples (2x undersampled radial), "
              "%lldx%lld image\n\n",
              coords.size(), static_cast<long long>(n),
              static_cast<long long>(n));

  core::GridderOptions opt;  // slice-and-dice defaults
  core::NufftPlan<2> plan(n, coords, opt);

  // Ground truth and its per-coil acquisition.
  const auto truth_d =
      trajectory::rasterize(trajectory::shepp_logan(), static_cast<int>(n));
  std::vector<c64> truth(truth_d.size());
  for (std::size_t i = 0; i < truth.size(); ++i) truth[i] = truth_d[i];

  ConsoleTable table({"coils", "CG iters", "NRMSD", "time[s]",
                      "gridding share"});
  std::vector<c64> best;
  for (int coils : {1, 2, 4, 8}) {
    const auto maps = core::make_birdcage_maps(n, coils);
    const auto y = core::simulate_multicoil(plan, maps, truth);

    plan.gridder().reset_stats();
    Timer t;
    core::CgResult cg;
    const auto recon = core::cg_sense(plan, maps, y, 20, 1e-7, &cg);
    const double secs = t.seconds();
    const double grid_secs = plan.gridder().stats().grid_seconds;

    std::vector<double> mag(recon.size());
    for (std::size_t i = 0; i < recon.size(); ++i) mag[i] = std::abs(recon[i]);
    table.add_row({std::to_string(coils), std::to_string(cg.iterations),
                   ConsoleTable::fmt(core::nrmsd(mag, truth_d), 4),
                   ConsoleTable::fmt(secs, 2),
                   ConsoleTable::fmt(100.0 * grid_secs / secs, 1) + "%"});
    if (coils == 8) best = recon;
  }
  table.print();

  write_pgm("cg_sense_8coil.pgm", best, static_cast<int>(n),
            static_cast<int>(n));
  std::printf("\n8-coil reconstruction written to cg_sense_8coil.pgm\n");
  std::printf("note the gridding share: every CG iteration performs one "
              "forward and one adjoint NuFFT per coil — exactly the "
              "workload JIGSAW accelerates.\n");
  return 0;
}
