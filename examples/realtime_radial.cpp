// Real-time golden-angle radial MRI (paper ref [8], Frahm et al.) — the
// latency-sensitive workload of the paper's introduction, now on the
// streaming subsystem (src/stream/).
//
// A golden-angle acquisition delivers spokes continuously; each display
// frame reconstructs a sliding window of the most recent spokes. A
// stream::FramePipeline owns everything a stateless per-request recon
// cannot exploit: the previous frame's NUFFT plan (the window slid, so
// only the gridder's sample setup is rebuilt — the FFT stage comes from
// the shared plan cache) and the previous frame's image, which seeds each
// CG solve. On the slowly-moving dynamic phantom the warm seed cuts the
// iterations per frame by well over half at the same CG tolerance — the
// difference between missing and making a display deadline.
//
// The example runs the same frame sequence twice per engine (cold vs
// warm) and reports per-frame latency, iteration counts, and the JIGSAW
// ASIC's deterministic gridding latency for the same window.
#include <cstdio>
#include <vector>

#include "common/pgm.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "energy/asic_model.hpp"
#include "stream/frame_pipeline.hpp"
#include "stream/frame_source.hpp"

using namespace jigsaw;

int main() {
  const std::int64_t n = 96;
  stream::FrameWindow window;
  window.samples_per_spoke = 192;
  window.window_spokes = 55;  // sliding window (Fibonacci number)
  window.spokes_per_frame = 13;  // stride: ~1/4 of the window is new data
  const int frames = 8;

  const stream::FrameSource source(window, frames);
  const stream::DynamicPhantom phantom;  // beating intensity + slow motion

  std::printf("real-time golden-angle radial: %d-spoke window sliding by "
              "%d, %d frames, %lldx%lld image\n\n",
              window.window_spokes, window.spokes_per_frame, frames,
              static_cast<long long>(n), static_cast<long long>(n));

  ConsoleTable table(
      {"engine", "warm", "ms/frame", "frames/s", "CG iters", "plans built"});
  std::vector<c64> last_frame;
  for (auto kind : {core::GridderKind::Binning, core::GridderKind::SliceDice}) {
    for (const bool warm : {false, true}) {
      stream::PipelineConfig config;
      config.n = n;
      config.options.kind = kind;
      config.iters = 50;
      config.tolerance = 1e-4;
      config.warm_start = warm;

      stream::FramePipeline pipeline(config);
      Timer t;
      for (int f = 0; f < source.frames(); ++f) {
        const auto coords = source.frame_coords(f);
        const auto values = phantom.kspace_at(coords, source.frame_time(f),
                                              static_cast<int>(n));
        const stream::FrameResult r = pipeline.recon_frame(coords, values);
        if (warm && kind == core::GridderKind::SliceDice) {
          last_frame = r.image;
        }
      }
      const double per_frame = t.seconds() / source.frames();
      const stream::PipelineStats& stats = pipeline.stats();
      table.add_row({core::to_string(kind), warm ? "yes" : "no",
                     ConsoleTable::fmt(1e3 * per_frame, 1),
                     ConsoleTable::fmt(1.0 / per_frame, 1),
                     std::to_string(stats.total_iterations),
                     std::to_string(stats.plan_builds)});
    }
  }
  table.print();

  // What the accelerator would deliver per frame for the same window.
  energy::AsicConfig asic;
  asic.grid_n = static_cast<int>(2 * n);
  const double jigsaw_us =
      static_cast<double>(energy::gridding_cycles(
          asic, static_cast<long long>(source.samples_per_frame()))) /
      1e3;
  std::printf("\nJIGSAW gridding latency per frame: %.1f us (M+12 cycles) — "
              "the gridding stage vanishes from the budget; warm-started CG "
              "owns what remains.\n",
              jigsaw_us);
  write_pgm("realtime_last_frame.pgm", last_frame, static_cast<int>(n),
            static_cast<int>(n));
  std::printf("last warm frame written to realtime_last_frame.pgm\n");
  return 0;
}
