// Real-time golden-angle radial MRI (paper ref [8], Frahm et al.) — the
// latency-sensitive workload of the paper's introduction.
//
// A golden-angle acquisition delivers spokes continuously; each display
// frame reconstructs a sliding window of the most recent spokes. The
// gridding engine therefore runs once per frame on freshly (re)ordered
// samples — no opportunity to amortize a presort, which is exactly the
// regime where Slice-and-Dice's presort-free design and JIGSAW's
// deterministic M+12-cycle latency matter. This example measures achieved
// frame rates per engine and the corresponding JIGSAW hardware latency.
#include <cstdio>

#include "common/pgm.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/nufft.hpp"
#include "energy/asic_model.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

using namespace jigsaw;


int main() {
  const std::int64_t n = 96;
  const int samples_per_spoke = 192;
  const int window_spokes = 55;  // sliding window (Fibonacci number)
  const int frames = 8;

  std::printf("real-time golden-angle radial: %d-spoke sliding window, "
              "%d frames, %lldx%lld image\n\n",
              window_spokes, frames, static_cast<long long>(n),
              static_cast<long long>(n));

  // Continuous golden-angle stream: enough spokes for all frames.
  const int total_spokes = window_spokes + frames - 1;
  const auto stream =
      trajectory::radial_2d(total_spokes, samples_per_spoke,
                            /*golden_angle=*/true);
  const auto ellipses = trajectory::shepp_logan();
  const auto values =
      trajectory::kspace_samples(ellipses, stream, static_cast<int>(n));

  const std::size_t window_m =
      static_cast<std::size_t>(window_spokes) * samples_per_spoke;

  ConsoleTable table({"engine", "ms/frame", "frames/s", "note"});
  for (auto kind : {core::GridderKind::Serial, core::GridderKind::Binning,
                    core::GridderKind::SliceDice}) {
    core::GridderOptions opt;
    opt.kind = kind;
    opt.exact_weights = (kind == core::GridderKind::Binning);

    Timer t;
    std::vector<c64> last_frame;
    for (int f = 0; f < frames; ++f) {
      const std::size_t start =
          static_cast<std::size_t>(f) * samples_per_spoke;
      std::vector<Coord<2>> coords(stream.begin() + start,
                                   stream.begin() + start + window_m);
      std::vector<c64> data(values.begin() + start,
                            values.begin() + start + window_m);
      const auto dcf = trajectory::radial_density_weights(coords);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] *= dcf[i];
      // A new plan per frame: the window's coordinates change every frame,
      // so per-frame setup (presorts!) is on the critical path.
      core::NufftPlan<2> plan(n, coords, opt);
      last_frame = plan.adjoint(data);
    }
    const double per_frame = t.seconds() / frames;
    table.add_row({core::to_string(kind),
                   ConsoleTable::fmt(1e3 * per_frame, 1),
                   ConsoleTable::fmt(1.0 / per_frame, 1),
                   kind == core::GridderKind::Binning
                       ? "presorts every frame"
                       : "no presort"});
    if (kind == core::GridderKind::SliceDice) {
      write_pgm("realtime_last_frame.pgm", last_frame, static_cast<int>(n),
                static_cast<int>(n));
    }
  }
  table.print();

  // What the accelerator would deliver per frame.
  energy::AsicConfig asic;
  asic.grid_n = static_cast<int>(2 * n);
  const double jigsaw_us =
      static_cast<double>(energy::gridding_cycles(
          asic, static_cast<long long>(window_m))) /
      1e3;
  std::printf("\nJIGSAW gridding latency per frame: %.1f us (M+12 cycles) — "
              "five orders of magnitude below the display deadline; the "
              "frame rate becomes FFT/display-bound.\n",
              jigsaw_us);
  std::printf("last frame written to realtime_last_frame.pgm\n");
  return 0;
}
