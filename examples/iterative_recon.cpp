// Model-based (iterative) reconstruction example — the workload class the
// paper's introduction motivates: iterative algorithms take millions of
// NuFFTs, so gridding throughput gates reconstruction time (paper refs
// [5], [8]). Solves least-squares via CG on the normal equations, both
// with per-iteration forward/adjoint NuFFTs and with the Toeplitz
// embedding the Impatient framework [10] uses (two FFTs per iteration, no
// gridding after setup).
#include <cstdio>

#include "common/pgm.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/metrics.hpp"
#include "core/recon.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

using namespace jigsaw;

namespace {

double score_against(const std::vector<c64>& image,
                     const std::vector<double>& truth) {
  std::vector<double> mag(image.size());
  double dot = 0, sq = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    mag[i] = std::abs(image[i]);
    dot += mag[i] * truth[i];
    sq += mag[i] * mag[i];
  }
  if (sq > 0) {
    for (auto& v : mag) v *= dot / sq;
  }
  return core::nrmsd(mag, truth);
}

}  // namespace

int main() {
  const std::int64_t n = 64;
  // Deliberately undersampled acquisition (64 spokes where ~100 would meet
  // Nyquist) — the regime where iterative recon pays off.
  const auto coords = trajectory::radial_2d(64, 128);
  const auto kdata = trajectory::kspace_samples(trajectory::shepp_logan(),
                                                coords, static_cast<int>(n));
  const auto truth =
      trajectory::rasterize(trajectory::shepp_logan(), static_cast<int>(n));

  core::GridderOptions opt;  // slice-and-dice defaults
  core::NufftPlan<2> plan(n, coords, opt);

  std::printf("iterative reconstruction, %zu samples (undersampled radial), "
              "%lldx%lld image\n\n",
              coords.size(), static_cast<long long>(n),
              static_cast<long long>(n));

  // Baseline: density-compensated adjoint.
  auto weighted = kdata;
  const auto dcf = trajectory::radial_density_weights(coords);
  for (std::size_t i = 0; i < weighted.size(); ++i) weighted[i] *= dcf[i];
  const auto adjoint_img = plan.adjoint(weighted);
  std::printf("adjoint + ramp DCF:        NRMSD %.4f\n",
              score_against(adjoint_img, truth));

  // CG with per-iteration forward/adjoint NuFFT.
  core::CgResult direct_cg;
  Timer t_direct;
  const auto direct =
      core::iterative_recon<2>(plan, kdata, 20, 1e-7, false, &direct_cg);
  const double s_direct = t_direct.seconds();
  std::printf("CG (NuFFT gram, %2d iters): NRMSD %.4f  [%.2f s]\n",
              direct_cg.iterations, score_against(direct, truth), s_direct);

  // CG with the Toeplitz gram operator (two FFTs per iteration).
  core::CgResult toep_cg;
  Timer t_toep;
  const auto toeplitz =
      core::iterative_recon<2>(plan, kdata, 20, 1e-7, true, &toep_cg);
  const double s_toep = t_toep.seconds();
  std::printf("CG (Toeplitz,   %2d iters): NRMSD %.4f  [%.2f s]\n",
              toep_cg.iterations, score_against(toeplitz, truth), s_toep);

  std::printf("\nCG residual history (NuFFT gram): ");
  for (std::size_t i = 0; i < direct_cg.residual_history.size(); i += 4) {
    std::printf("%.2e ", direct_cg.residual_history[i]);
  }
  std::printf("\n");

  write_pgm("iterative_recon_adjoint.pgm", adjoint_img, static_cast<int>(n),
            static_cast<int>(n));
  write_pgm("iterative_recon_cg.pgm", direct, static_cast<int>(n),
            static_cast<int>(n));
  std::printf("\nimages written: iterative_recon_adjoint.pgm, "
              "iterative_recon_cg.pgm\n");
  return 0;
}
