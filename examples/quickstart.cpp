// Quickstart: reconstruct a Shepp-Logan phantom from radial MRI k-space
// with the Slice-and-Dice NuFFT in ~30 lines of user code.
//
//   1. make a radial trajectory,
//   2. synthesize k-space data (analytic phantom; in a real scanner this
//      is the acquired data),
//   3. density-compensate,
//   4. run the adjoint NuFFT,
//   5. score against ground truth and write the image.
#include <cstdio>

#include "common/pgm.hpp"
#include "core/metrics.hpp"
#include "core/nufft.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

using namespace jigsaw;

int main() {
  const std::int64_t n = 128;  // image size (pixels per side)

  // 1. Radial trajectory: 192 spokes x 256 samples.
  const auto coords = trajectory::radial_2d(192, 256);

  // 2. k-space data from the analytic phantom.
  auto kspace = trajectory::kspace_samples(trajectory::shepp_logan(), coords,
                                           static_cast<int>(n));

  // 3. Ramp density compensation (radial analytic weights).
  const auto dcf = trajectory::radial_density_weights(coords);
  for (std::size_t i = 0; i < kspace.size(); ++i) kspace[i] *= dcf[i];

  // 4. Adjoint NuFFT with the Slice-and-Dice gridder (the default).
  core::GridderOptions options;  // sigma=2, W=6 Kaiser-Bessel, L=32, T=8
  core::NufftPlan<2> plan(n, coords, options);
  core::NufftTimings timings;
  const auto image = plan.adjoint(kspace, &timings);

  // 5. Report.
  const auto truth =
      trajectory::rasterize(trajectory::shepp_logan(), static_cast<int>(n));
  std::vector<double> mag(image.size());
  double dot = 0, sq = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    mag[i] = std::abs(image[i]);
    dot += mag[i] * truth[i];
    sq += mag[i] * mag[i];
  }
  for (auto& v : mag) v *= dot / sq;

  std::printf("quickstart: %zu samples -> %lldx%lld image\n", coords.size(),
              static_cast<long long>(n), static_cast<long long>(n));
  std::printf("  gridding %.1f ms | fft %.1f ms | de-apodization %.1f ms\n",
              1e3 * timings.grid_seconds, 1e3 * timings.fft_seconds,
              1e3 * timings.apod_seconds);
  std::printf("  NRMSD vs analytic phantom: %.3f\n",
              core::nrmsd(mag, truth));
  const bool ok = write_pgm("quickstart_recon.pgm", image,
                            static_cast<int>(n), static_cast<int>(n));
  std::printf("  image written to quickstart_recon.pgm (%s)\n",
              ok ? "ok" : "FAILED");

  // Work counters from the gridder (what the paper's Fig. 3 is about):
  const auto& stats = plan.gridder().stats();
  std::printf("  slice-and-dice touched %llu grid points with %llu boundary "
              "checks and no presort\n",
              static_cast<unsigned long long>(stats.interpolations),
              static_cast<unsigned long long>(stats.boundary_checks));
  return 0;
}
