// 3D stack-of-stars volume reconstruction — the 3D workload of the paper's
// Sec. IV ("modern algorithms and accelerators often process 3D volumes in
// a series of 2D slices").
//
// Builds a 3D phantom (a stack of scaled Shepp-Logan slices), samples it on
// a stack-of-stars trajectory via the exact per-slice k-space model,
// reconstructs the volume with the 3D adjoint NuFFT, and cross-checks the
// JIGSAW 3D Slice accelerator cost in both streaming modes.
#include <cmath>
#include <cstdio>

#include "common/pgm.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/metrics.hpp"
#include "core/nufft.hpp"
#include "energy/asic_model.hpp"
#include "jigsaw/cycle_sim.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

using namespace jigsaw;

int main() {
  const std::int64_t n = 24;   // 24^3 volume (exact NuDFT-free pipeline)
  const int spokes = 36, per_spoke = 48;
  std::printf("3D stack-of-stars reconstruction, %lld^3 volume\n\n",
              static_cast<long long>(n));

  // Trajectory: radial in-plane, n kz partitions.
  const auto coords = trajectory::stack_of_stars_3d(
      spokes, per_spoke, static_cast<int>(n));

  // Synthesize k-space: separable phantom m(x,y,z) = p(x,y) * w(z) with a
  // raised-cosine z-profile, so F(kx,ky,kz) = P(kx,ky) * W(kz) where W is
  // the DFT of the profile — exact, no data files.
  const auto ellipses = trajectory::shepp_logan();
  std::vector<double> zprofile(static_cast<std::size_t>(n));
  for (std::int64_t z = 0; z < n; ++z) {
    const double t = (static_cast<double>(z) - n / 2) / static_cast<double>(n);
    zprofile[static_cast<std::size_t>(z)] =
        0.5 * (1.0 + std::cos(2.0 * std::numbers::pi * t));
  }
  auto zspectrum = [&](double kz) {  // DTFT of the z-profile at kz cycles/FOV
    c64 acc{};
    for (std::int64_t z = 0; z < n; ++z) {
      const double zz =
          (static_cast<double>(z) - n / 2) / static_cast<double>(n);
      const double ang = -2.0 * std::numbers::pi * kz * zz;
      acc += zprofile[static_cast<std::size_t>(z)] *
             c64(std::cos(ang), std::sin(ang));
    }
    return acc / static_cast<double>(n);
  };
  std::vector<c64> values(coords.size());
  for (std::size_t j = 0; j < coords.size(); ++j) {
    const double kz = coords[j][0] * static_cast<double>(n);
    const double ky = coords[j][1] * static_cast<double>(n);
    const double kx = coords[j][2] * static_cast<double>(n);
    values[j] = trajectory::kspace_sample(ellipses, kx, ky) * zspectrum(kz);
  }
  // In-plane ramp density compensation (per-slice radial geometry).
  for (std::size_t j = 0; j < coords.size(); ++j) {
    const double r = std::hypot(coords[j][1], coords[j][2]);
    values[j] *= std::max(r, 1e-4);
  }

  // 3D adjoint NuFFT.
  core::GridderOptions opt;
  opt.width = 4;  // W=4 keeps the 48^3 oversampled volume cheap
  core::NufftPlan<3> plan(n, coords, opt);
  core::NufftTimings t;
  Timer timer;
  const auto volume = plan.adjoint(values, &t);
  std::printf("reconstructed %lld^3 volume in %.2f s (gridding %.0f%%)\n",
              static_cast<long long>(n), timer.seconds(),
              100.0 * t.grid_seconds / t.total());

  // Score the center slice against the 2D phantom (up to intensity scale).
  const auto truth2d =
      trajectory::rasterize(ellipses, static_cast<int>(n));
  std::vector<double> slice(static_cast<std::size_t>(n * n));
  const std::int64_t z0 = n / 2;
  for (std::int64_t i = 0; i < n * n; ++i) {
    slice[static_cast<std::size_t>(i)] =
        std::abs(volume[static_cast<std::size_t>(z0 * n * n + i)]);
  }
  double dot = 0, sq = 0;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    dot += slice[i] * truth2d[i];
    sq += slice[i] * slice[i];
  }
  for (auto& v : slice) v *= dot / sq;
  std::printf("center slice NRMSD vs 2D phantom: %.3f\n",
              core::nrmsd(slice, truth2d));
  write_pgm("volume3d_center_slice.pgm", slice, static_cast<int>(n),
            static_cast<int>(n));

  // JIGSAW 3D Slice cost in both streaming modes.
  sim::CycleSim sim3d(n, opt, /*three_d=*/true);
  core::Grid<3> grid(sim3d.grid_size());
  core::SampleSet<3> in{coords, values};
  sim3d.run_3d(in, grid, /*z_binned=*/false);
  const auto unsorted = sim3d.stats().gridding_cycles;
  sim3d.run_3d(in, grid, /*z_binned=*/true);
  const auto binned = sim3d.stats().gridding_cycles;
  std::printf("\nJIGSAW 3D Slice: unsorted %lld cycles ((M+15)*Nz), "
              "z-binned %lld cycles (~(M+15)*Wz) -> %.1fx cut\n",
              unsorted, binned,
              static_cast<double>(unsorted) / static_cast<double>(binned));
  std::printf("center slice written to volume3d_center_slice.pgm\n");
  return 0;
}
