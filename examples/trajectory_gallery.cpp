// Trajectory gallery: runs the Slice-and-Dice NuFFT over every supported
// sampling pattern (radial, spiral, rosette, random, jittered Cartesian)
// and prints reconstruction quality plus the trajectory-independence of
// the JIGSAW timing model — the property the paper emphasizes (runtime
// depends only on M, never on sampling pattern).
#include <cstdio>

#include "common/pgm.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/density.hpp"
#include "core/metrics.hpp"
#include "core/nufft.hpp"
#include "energy/asic_model.hpp"
#include "jigsaw/cycle_sim.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

using namespace jigsaw;

namespace {

double score_against(const std::vector<c64>& image,
                     const std::vector<double>& truth) {
  std::vector<double> mag(image.size());
  double dot = 0, sq = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    mag[i] = std::abs(image[i]);
    dot += mag[i] * truth[i];
    sq += mag[i] * mag[i];
  }
  if (sq > 0) {
    for (auto& v : mag) v *= dot / sq;
  }
  return core::nrmsd(mag, truth);
}

}  // namespace

int main() {
  const std::int64_t n = 64;
  const std::int64_t m = 40000;
  const auto truth =
      trajectory::rasterize(trajectory::shepp_logan(), static_cast<int>(n));

  std::printf("trajectory gallery — %lld-sample acquisitions onto a "
              "%lldx%lld image\n\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(n));

  ConsoleTable table({"trajectory", "M", "NRMSD", "cpu grid[ms]",
                      "jigsaw cycles", "jigsaw[us]"});

  for (auto type :
       {trajectory::TrajectoryType::Radial, trajectory::TrajectoryType::Spiral,
        trajectory::TrajectoryType::Rosette, trajectory::TrajectoryType::Random,
        trajectory::TrajectoryType::Cartesian}) {
    const auto coords = trajectory::make_2d(type, m);
    auto kdata = trajectory::kspace_samples(trajectory::shepp_logan(), coords,
                                            static_cast<int>(n));

    core::GridderOptions opt;  // slice-and-dice defaults
    core::NufftPlan<2> plan(n, coords, opt);

    // Iterative density compensation works for every pattern.
    const auto dcf = core::pipe_menon_weights<2>(plan.gridder(), coords);
    for (std::size_t i = 0; i < kdata.size(); ++i) kdata[i] *= dcf[i];

    core::NufftTimings t;
    const auto image = plan.adjoint(kdata, &t);

    // JIGSAW: identical cycle count for every trajectory.
    sim::CycleSim sim(n, opt, false);
    core::Grid<2> grid(sim.grid_size());
    core::SampleSet<2> in{coords, kdata};
    sim.run_2d(in, grid);

    table.add_row({trajectory::to_string(type), std::to_string(coords.size()),
                   ConsoleTable::fmt(score_against(image, truth), 4),
                   ConsoleTable::fmt(1e3 * t.grid_seconds, 2),
                   std::to_string(sim.stats().gridding_cycles),
                   ConsoleTable::fmt(1e6 * sim.stats().gridding_seconds(), 2)});

    write_pgm("gallery_" + trajectory::to_string(type) + ".pgm", image,
              static_cast<int>(n), static_cast<int>(n));
  }
  table.print();
  std::printf("\nnote the JIGSAW column: cycles = M + 12 for every pattern "
              "(trajectory-agnostic, deterministic), while CPU gridding "
              "time varies with sample ordering and locality.\n");
  std::printf("images written: gallery_<trajectory>.pgm\n");
  return 0;
}
