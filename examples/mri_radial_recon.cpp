// MRI radial reconstruction walk-through: compares every gridding engine on
// the same acquisition — quality (NRMSD vs ground truth), work counters,
// and wall time — and demonstrates Pipe-Menon density compensation as an
// alternative to the analytic ramp.
#include <cmath>
#include <cstdio>
#include <string>

#include "common/pgm.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/density.hpp"
#include "core/metrics.hpp"
#include "core/nufft.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

using namespace jigsaw;

namespace {

double score_against(const std::vector<c64>& image,
                     const std::vector<double>& truth) {
  std::vector<double> mag(image.size());
  double dot = 0, sq = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    mag[i] = std::abs(image[i]);
    dot += mag[i] * truth[i];
    sq += mag[i] * mag[i];
  }
  if (sq > 0) {
    for (auto& v : mag) v *= dot / sq;
  }
  return core::nrmsd(mag, truth);
}

}  // namespace

int main() {
  const std::int64_t n = 96;
  std::printf("Radial MRI reconstruction on a %lldx%lld grid\n\n",
              static_cast<long long>(n), static_cast<long long>(n));

  const auto coords = trajectory::radial_2d(160, 192);
  const auto raw = trajectory::kspace_samples(trajectory::shepp_logan(),
                                              coords, static_cast<int>(n));
  const auto truth =
      trajectory::rasterize(trajectory::shepp_logan(), static_cast<int>(n));

  // --- Density compensation: analytic ramp vs iterative Pipe-Menon.
  const auto ramp = trajectory::radial_density_weights(coords);
  core::GridderOptions dopt;
  dopt.kind = core::GridderKind::Serial;
  auto dgrid = core::make_gridder<2>(n, dopt);
  const auto pm = core::pipe_menon_weights<2>(*dgrid, coords);

  auto weight = [&](const std::vector<double>& w) {
    auto v = raw;
    for (std::size_t i = 0; i < v.size(); ++i) v[i] *= w[i];
    return v;
  };
  const auto kdata_ramp = weight(ramp);
  const auto kdata_pm = weight(pm);

  // --- Engine comparison on the ramp-compensated data.
  ConsoleTable table({"engine", "NRMSD", "time[ms]", "checks/sample",
                      "dup factor", "presort[ms]"});
  for (auto kind :
       {core::GridderKind::Serial, core::GridderKind::Binning,
        core::GridderKind::SliceDice, core::GridderKind::Jigsaw}) {
    core::GridderOptions opt;
    opt.kind = kind;
    opt.exact_weights = (kind == core::GridderKind::Binning);
    core::NufftPlan<2> plan(n, coords, opt);
    Timer t;
    const auto image = plan.adjoint(kdata_ramp);
    const double ms = 1e3 * t.seconds();
    const auto& s = plan.gridder().stats();
    const double m = static_cast<double>(coords.size());
    table.add_row({core::to_string(kind),
                   ConsoleTable::fmt(score_against(image, truth), 4),
                   ConsoleTable::fmt(ms, 1),
                   ConsoleTable::fmt(static_cast<double>(s.boundary_checks) / m, 1),
                   ConsoleTable::fmt(static_cast<double>(s.samples_processed) / m, 2),
                   ConsoleTable::fmt(1e3 * s.presort_seconds, 2)});
    if (kind == core::GridderKind::SliceDice) {
      write_pgm("mri_recon_slice_dice.pgm", image, static_cast<int>(n),
                static_cast<int>(n));
    }
  }
  table.print();

  // --- Density compensation comparison (Slice-and-Dice engine).
  core::GridderOptions opt;
  core::NufftPlan<2> plan(n, coords, opt);
  std::printf("\ndensity compensation (slice-and-dice engine):\n");
  std::printf("  none:        NRMSD %.4f\n",
              score_against(plan.adjoint(raw), truth));
  std::printf("  ramp:        NRMSD %.4f\n",
              score_against(plan.adjoint(kdata_ramp), truth));
  std::printf("  pipe-menon:  NRMSD %.4f\n",
              score_against(plan.adjoint(kdata_pm), truth));
  std::printf("\nimage written to mri_recon_slice_dice.pgm\n");
  return 0;
}
