// JIGSAW accelerator demo: streams an MRI acquisition through the
// cycle-level simulator and prints the hardware-facing story — cycle
// counts, bandwidth, activity counters, synthesis estimates, and energy —
// then validates the fixed-point grid against the double-precision
// reference.
#include <cstdio>

#include "common/table.hpp"
#include "core/grid.hpp"
#include "core/metrics.hpp"
#include "core/serial_gridder.hpp"
#include "energy/asic_model.hpp"
#include "jigsaw/cycle_sim.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

using namespace jigsaw;

int main() {
  const std::int64_t n = 128;  // oversampled target grid G = 256
  core::GridderOptions opt;    // W=6 Kaiser-Bessel, L=32, T=8
  std::printf("JIGSAW 2D streaming accelerator demo (G=%lld, T=8, W=6, "
              "L=32)\n\n",
              static_cast<long long>(2 * n));

  // Acquisition.
  core::SampleSet<2> in;
  in.coords = trajectory::radial_2d(256, 384);
  in.values = trajectory::kspace_samples(trajectory::shepp_logan(), in.coords,
                                         static_cast<int>(n));
  const auto dcf = trajectory::radial_density_weights(in.coords);
  for (std::size_t i = 0; i < in.values.size(); ++i) in.values[i] *= dcf[i];

  // Stream through the simulator.
  sim::CycleSim sim(n, opt, /*three_d=*/false);
  core::Grid<2> grid(sim.grid_size());
  sim.run_2d(in, grid);
  const auto& s = sim.stats();

  std::printf("streaming run:\n");
  std::printf("  samples streamed      : %lld (one per cycle, 128-bit bus)\n",
              s.samples_streamed);
  std::printf("  gridding cycles       : %lld  (= M + %d pipeline depth)\n",
              s.gridding_cycles, s.pipeline_depth);
  std::printf("  stall cycles          : %lld\n", s.stall_cycles);
  std::printf("  readout cycles        : %lld  (two 64-bit points/cycle)\n",
              s.readout_cycles);
  std::printf("  gridding time @1 GHz  : %.3f us\n",
              1e6 * s.gridding_seconds());
  std::printf("  required bandwidth    : %.1f GB/s (DDR4-class)\n",
              sim.required_bandwidth_bytes_per_s() / 1e9);
  std::printf("  input scaling         : 2^%d\n", sim.scale_log2());
  std::printf("\nper-stage activity:\n");
  std::printf("  selects %lld | LUT reads %lld | weight combines %lld | "
              "MACs %lld | accumulates %lld | saturations %lld\n",
              s.selects, s.lut_reads, s.weight_combines, s.macs,
              s.accum_writes, s.saturations);

  // Synthesis + energy (Table II model).
  energy::AsicConfig asic;
  asic.grid_n = static_cast<int>(2 * n);
  asic.window = opt.width;
  const auto est = energy::estimate_asic(asic);
  std::printf("\nsynthesis estimate (16 nm, 1 GHz, G=%d):\n", asic.grid_n);
  std::printf("  power %.2f mW | area %.2f mm^2 | accumulation SRAM %.2f MB "
              "(%.0f%% of area)\n",
              est.power_mw, est.area_mm2, est.accum_sram_mb,
              100.0 * est.accum_sram_area_mm2 / est.area_mm2);
  std::printf("  gridding energy for this acquisition: %.2f uJ\n",
              1e6 * energy::gridding_energy_j(
                        asic, static_cast<long long>(in.size())));

  // Fixed-point quality vs double-precision reference.
  core::SerialGridder<2> ref(n, opt);
  core::Grid<2> gref(ref.grid_size());
  ref.adjoint(in, gref);
  const std::vector<c64> a(grid.data(), grid.data() + grid.total());
  const std::vector<c64> b(gref.data(), gref.data() + gref.total());
  std::printf("\nfixed-point grid vs double reference: NRMSD %.4f%%\n",
              100.0 * core::nrmsd(a, b));
  return 0;
}
