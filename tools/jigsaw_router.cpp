// jigsaw_router: the geometry-sharded front tier for jigsaw_serve workers.
//
// Usage:
//   jigsaw_router --listen 127.0.0.1:7421 WORKER [WORKER...]
//
// Each WORKER is an endpoint spec — "unix:/path" or "host:port" — of a
// running jigsaw_serve. The router speaks the same JSRV framed protocol on
// its own endpoint and forwards every recon request to the worker that
// rendezvous-hashing assigns its geometry, so each worker's plan pool and
// wisdom stay hot (see src/serve/router.hpp for the full policy). SIGTERM /
// SIGINT trigger a graceful drain: stop accepting, finish and answer every
// in-flight forward, exit 0.
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "common/cli.hpp"
#include "serve/router.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace jigsaw;
  try {
    const CliArgs args(argc, argv,
                       {"listen", "connect-timeout", "forward-timeout",
                        "deadline-slack", "health-interval", "ping-timeout",
                        "reply-timeout", "pool"});
    serve::RouterConfig config;
    config.listen = args.get("listen", "127.0.0.1:7421");
    config.workers = args.positional();
    config.connect_timeout_ms =
        static_cast<int>(args.get_int("connect-timeout", 1000));
    // Reply wait for requests that carry no deadline of their own (ms).
    config.forward_timeout_ms =
        static_cast<int>(args.get_int("forward-timeout", 30000));
    config.deadline_slack_ms =
        static_cast<int>(args.get_int("deadline-slack", 250));
    // Worker ping period (ms); <= 0 disables the health thread.
    config.health_interval_ms =
        static_cast<int>(args.get_int("health-interval", 250));
    config.ping_timeout_ms =
        static_cast<int>(args.get_int("ping-timeout", 1000));
    config.reply_write_timeout_ms =
        static_cast<int>(args.get_int("reply-timeout", 5000));
    config.max_pooled_connections =
        static_cast<std::size_t>(args.get_int("pool", 8));
    if (config.workers.empty()) {
      std::fprintf(stderr,
                   "usage: jigsaw_router --listen HOST:PORT|unix:/path "
                   "WORKER [WORKER...]\n");
      return 1;
    }

    serve::Router router(config);
    std::signal(SIGTERM, handle_stop);
    std::signal(SIGINT, handle_stop);
    router.start();
    const auto bound = router.bound_endpoints();
    std::printf("jigsaw_router: listening on %s, %zu workers:\n",
                serve::to_string(bound.front()).c_str(),
                config.workers.size());
    for (const auto& w : config.workers) {
      std::printf("jigsaw_router:   worker %s\n", w.c_str());
    }
    std::fflush(stdout);

    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    std::printf("jigsaw_router: draining...\n");
    std::fflush(stdout);
    router.stop();

    const serve::RouterCounts c = router.counts();
    std::printf("jigsaw_router: done. received=%llu relayed=%llu "
                "error=%llu timeout=%llu rejected=%llu reroutes=%llu\n",
                static_cast<unsigned long long>(c.received),
                static_cast<unsigned long long>(c.relayed),
                static_cast<unsigned long long>(c.errors),
                static_cast<unsigned long long>(c.timeouts),
                static_cast<unsigned long long>(c.rejected),
                static_cast<unsigned long long>(c.reroutes));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
