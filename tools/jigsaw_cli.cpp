// jigsaw_cli — command-line front end to the library.
//
//   jigsaw_cli recon    --n 128 --traj radial --samples 50000
//                       [--engine slice-dice|auto] [--kernel kaiser-bessel]
//                       [--width 6] [--sigma 2.0] [--table 32]
//                       [--dcf ramp|pipe-menon|none] [--iters K]
//                       [--dataset file.jksd [--dcf none|embedded|pipe-menon]]
//                       [--coils C] [--coil-threads T]   multi-coil CG-SENSE
//                       [--sanitize none|strict|drop|clamp]
//                       [--drop-spokes F] [--noise-spikes F]
//                       [--inject-nan F] [--perturb-coords F]
//                       [--bitflip-rate F] [--bitflip-bit B] [--seed S]
//                       [--out recon.pgm]
//   jigsaw_cli grid     --n 128 --traj radial --samples 50000
//                       [--engine ...]       time one gridding pass + stats
//
// --engine auto defers the choice to the autotuner (src/tune/): wisdom from
// --wisdom <path> (default ~/.jigsaw_wisdom.json) or fresh calibration
// trials (--no-trials forces the analytic cost model instead).
//   jigsaw_cli simulate --n 128 --samples 50000 [--3d] [--z-binned]
//                       run the JIGSAW cycle simulator + synthesis estimate
//   jigsaw_cli info     list engines, kernels, trajectories
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/pgm.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/density.hpp"
#include "core/io.hpp"
#include "core/metrics.hpp"
#include "core/nufft.hpp"
#include "core/recon.hpp"
#include "core/sense.hpp"
#include "data/driver.hpp"
#include "energy/asic_model.hpp"
#include "jigsaw/cycle_sim.hpp"
#include "kernels/simd/simd.hpp"
#include "obs/obs.hpp"
#include "robustness/fault_injection.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"
#include "tune/autotuner.hpp"

using namespace jigsaw;

namespace {

kernels::KernelType parse_kernel(const std::string& s) {
  if (s == "kaiser-bessel" || s == "kb") {
    return kernels::KernelType::KaiserBessel;
  }
  if (s == "gaussian") return kernels::KernelType::Gaussian;
  if (s == "bspline") return kernels::KernelType::BSpline;
  if (s == "triangle") return kernels::KernelType::Triangle;
  if (s == "sinc" || s == "sinc-hann") return kernels::KernelType::Sinc;
  throw std::invalid_argument("unknown kernel: " + s);
}

trajectory::TrajectoryType parse_traj(const std::string& s) {
  if (s == "radial") return trajectory::TrajectoryType::Radial;
  if (s == "spiral") return trajectory::TrajectoryType::Spiral;
  if (s == "rosette") return trajectory::TrajectoryType::Rosette;
  if (s == "random") return trajectory::TrajectoryType::Random;
  if (s == "cartesian") return trajectory::TrajectoryType::Cartesian;
  if (s == "golden-radial" || s == "golden") {
    return trajectory::TrajectoryType::GoldenRadial;
  }
  if (s == "vd-spiral") return trajectory::TrajectoryType::VdSpiral;
  if (s == "propeller") return trajectory::TrajectoryType::Propeller;
  throw std::invalid_argument("unknown trajectory: " + s);
}

core::GridderOptions options_from(const CliArgs& args) {
  core::GridderOptions opt;
  // Misspelled engines exit 1 through main()'s catch with the one-line
  // "unknown engine '<name>', valid: ..." message from the parser. A
  // "-simd" suffix (serial-simd, slice-dice-simd, binning-simd) selects the
  // vectorized variant of the engine.
  const core::GridderSpec spec =
      core::parse_gridder_spec(args.get("engine", "slice-dice"));
  opt.kind = spec.kind;
  opt.simd = spec.simd;
  opt.kernel = parse_kernel(args.get("kernel", "kaiser-bessel"));
  opt.width = static_cast<int>(args.get_int("width", 6));
  opt.sigma = args.get_double("sigma", 2.0);
  opt.table_oversampling = static_cast<int>(args.get_int("table", 32));
  opt.tile = static_cast<int>(args.get_int("tile", 8));
  opt.exact_weights = args.has("exact-weights");
  opt.sanitize = robustness::parse_sanitize_policy(args.get("sanitize", "none"));
  opt.soft_error.rate = args.get_double("bitflip-rate", 0.0);
  opt.soft_error.bit = static_cast<int>(args.get_int("bitflip-bit", 12));
  if (args.has("seed")) {
    opt.soft_error.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  }
  return opt;
}

/// Resolve --engine auto against the autotuner once the sample count is
/// known. No-op for a concrete engine. Prints the decision so scripts can
/// assert on it; an unwritable --wisdom path throws out of the Autotuner
/// constructor and exits 1 through main()'s catch.
core::GridderOptions resolve_auto(core::GridderOptions opt, const CliArgs& args,
                                  std::int64_t n, std::int64_t m) {
  if (opt.kind != core::GridderKind::Auto) return opt;
  tune::TunerConfig config;
  config.wisdom_path = args.get("wisdom", tune::WisdomStore::default_path());
  config.enable_trials = !args.has("no-trials");
  tune::Autotuner tuner(config);
  // Key the decision on the execution shape the CLI will actually run.
  // Multi-coil recon parallelizes across min(coils, --coil-threads) plan
  // lanes (SenseOperator::for_each_coil), each applying this gridder; the
  // per-gridder thread budget is what remains of the --coil-threads budget
  // once those lanes are occupied.
  const int coils = static_cast<int>(args.get_int("coils", 1));
  unsigned threads = 1;
  if (coils > 1) {
    const auto coil_threads = static_cast<unsigned>(
        std::max<std::int64_t>(1, args.get_int("coil-threads", 1)));
    const unsigned lanes =
        std::min(coil_threads, static_cast<unsigned>(coils));
    threads = std::max(1u, coil_threads / lanes);
  }
  const auto key = tune::TuneKey::of(2, n, m, opt, coils, threads);
  const auto decision = tuner.decide(key, opt);
  const auto stats = tuner.stats();
  std::printf("auto: %s -> engine=%s tile=%d threads=%u source=%s "
              "(trials=%llu, wisdom=%s)\n",
              key.label().c_str(),
              core::to_string(
                  core::GridderSpec{decision.kind, decision.simd}).c_str(),
              decision.tile, decision.threads, tune::to_string(decision.source),
              static_cast<unsigned long long>(stats.trials),
              config.wisdom_path.c_str());
  return tune::Autotuner::apply(decision, opt);
}

/// Fault-injection spec from the --drop-spokes/--noise-spikes/--inject-nan/
/// --perturb-coords/--seed flags (all fractions default to 0 = off).
robustness::FaultSpec fault_spec_from(const CliArgs& args,
                                      std::int64_t readout_length) {
  robustness::FaultSpec spec;
  spec.drop_fraction = args.get_double("drop-spokes", 0.0);
  spec.readout_length = readout_length;
  spec.noise_spike_fraction = args.get_double("noise-spikes", 0.0);
  spec.nonfinite_fraction = args.get_double("inject-nan", 0.0);
  spec.out_of_range_fraction = args.get_double("perturb-coords", 0.0);
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  return spec;
}

/// recon --dataset file.jksd: reconstruct an ingested JKSD acquisition
/// chunk by chunk (data/driver.hpp). Corrupt chunks are reported and
/// skipped; exit is 0 as long as at least one chunk reconstructed.
int cmd_recon_dataset(const CliArgs& args) {
  const std::string path = args.get("dataset");
  data::ReconDatasetOptions opt;
  opt.gridding = options_from(args);
  opt.dcf = data::parse_dcf_mode(args.get("dcf", "pipe-menon"));
  opt.iters = static_cast<int>(args.get_int("iters", 0));

  // The header is the source of truth for the coil count; --coils here is
  // a cross-check on what the caller believes they ingested.
  data::DatasetInfo info;
  data::DatasetReader probe(path);
  info = probe.info();
  if (args.has("coils") &&
      args.get_int("coils", info.coils) != info.coils) {
    std::fprintf(stderr,
                 "dataset: header says %d coils, --coils %lld disagrees\n",
                 info.coils,
                 static_cast<long long>(args.get_int("coils", 0)));
    return 2;
  }
  // Resolve --engine auto against the dataset's own shape (mean chunk size
  // when the header knows it; the factory's slice-dice fallback otherwise).
  if (info.chunk_count > 0 && info.total_samples > 0) {
    opt.gridding = resolve_auto(
        opt.gridding, args, info.n,
        static_cast<std::int64_t>(info.total_samples / info.chunk_count));
  }

  Timer timer;
  const auto result = data::recon_dataset(path, opt);
  const double secs = timer.seconds();

  std::printf("dataset: %s — %dD n=%lld, %d coils, source %s\n",
              path.c_str(), result.info.dim,
              static_cast<long long>(result.info.n), result.info.coils,
              result.info.source == data::Source::kSheppLogan
                  ? "shepp-logan"
                  : "unknown");
  std::printf("ingest: %llu chunks read (%llu samples), %zu rejected\n",
              static_cast<unsigned long long>(result.report.chunks_read),
              static_cast<unsigned long long>(result.report.samples_read),
              result.report.rejects.size());
  for (const auto& r : result.report.rejects) {
    std::printf("ingest:   chunk slot %llu @ byte %llu: %s\n",
                static_cast<unsigned long long>(r.ordinal),
                static_cast<unsigned long long>(r.offset), r.reason.c_str());
  }
  for (const auto& c : result.chunks) {
    std::printf("chunk %llu: m=%llu, dcf=%s, %d CG iters, NRMSE %.4f\n",
                static_cast<unsigned long long>(c.index),
                static_cast<unsigned long long>(c.m),
                c.dcf_applied ? data::to_string(opt.dcf).c_str() : "none",
                c.iterations, c.nrmse);
  }
  std::printf("dataset recon: mean NRMSE %.4f over %zu chunks "
              "(%s engine, dcf %s, iters %d) in %.3f s\n",
              result.mean_nrmse, result.chunks.size(),
              core::to_string(core::GridderSpec{opt.gridding.kind,
                                                opt.gridding.simd}).c_str(),
              data::to_string(opt.dcf).c_str(), opt.iters, secs);

  // First surviving chunk's image as the visual artifact.
  const auto& first = result.chunks.front();
  std::vector<c64> img(first.image.size());
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = first.image[i];
  const std::string out = args.get("out", "recon.pgm");
  write_pgm(out, img, static_cast<int>(result.info.n),
            static_cast<int>(result.info.n));
  std::printf("image written to %s\n", out.c_str());
  return 0;
}

int cmd_recon(const CliArgs& args) {
  if (args.has("dataset")) return cmd_recon_dataset(args);
  const std::int64_t n = args.get_int("n", 128);
  const std::int64_t m = args.get_int("samples", 50000);
  const auto traj_type = parse_traj(args.get("traj", "radial"));
  auto opt = options_from(args);
  std::vector<Coord<2>> coords;
  std::vector<c64> kdata;
  if (args.has("input")) {
    // Acquired data: CSV rows of kx,ky,real,imag. Under a non-None sanitize
    // policy the parser recovers from malformed rows and reports them here;
    // under None it throws, as degraded input was not expected.
    if (opt.sanitize == robustness::SanitizePolicy::None) {
      auto set = core::load_samples_csv(args.get("input"));
      coords = std::move(set.coords);
      kdata = std::move(set.values);
    } else {
      core::CsvReport csv;
      auto set = core::load_samples_csv(args.get("input"), &csv);
      coords = std::move(set.coords);
      kdata = std::move(set.values);
      if (!csv.rejects.empty()) {
        std::printf("csv: %zu rows accepted, %zu rejected\n", csv.rows_parsed,
                    csv.rejects.size());
        for (const auto& r : csv.rejects) {
          std::printf("csv:   line %zu: %s\n", r.line, r.reason.c_str());
        }
      }
    }
  } else {
    coords = trajectory::make_2d(traj_type, m);
    kdata = trajectory::kspace_samples(trajectory::shepp_logan(), coords,
                                       static_cast<int>(n));
  }

  // Optional deterministic degradation of the acquisition (robustness
  // experiments). Spokes only make sense for radial trajectories; other
  // geometries drop individual samples.
  {
    const bool radial_like =
        traj_type == trajectory::TrajectoryType::Radial ||
        traj_type == trajectory::TrajectoryType::GoldenRadial;
    const std::int64_t readout =
        (!args.has("input") && radial_like)
            ? static_cast<std::int64_t>(
                  std::sqrt(static_cast<double>(coords.size())))
            : 0;
    const auto spec = fault_spec_from(args, readout);
    core::SampleSet<2> degraded{std::move(coords), std::move(kdata)};
    const auto fr = robustness::inject<2>(degraded, spec);
    coords = std::move(degraded.coords);
    kdata = std::move(degraded.values);
    if (fr.any()) std::printf("%s", fr.summary().c_str());
  }

  if (args.has("save")) {
    core::save_samples_csv(args.get("save"), {coords, kdata});
    std::printf("k-space data saved to %s\n", args.get("save").c_str());
  }

  opt = resolve_auto(opt, args, n, static_cast<std::int64_t>(coords.size()));
  core::NufftPlan<2> plan(n, coords, opt);

  // Multi-coil CG-SENSE path: synthetic birdcage maps, per-coil acquisition
  // simulated from the phantom, coils reconstructed jointly. --coil-threads
  // runs the per-coil NuFFTs concurrently (bit-exact vs the serial loop).
  if (args.get_int("coils", 1) > 1) {
    const int coils = static_cast<int>(args.get_int("coils", 1));
    const auto coil_threads =
        static_cast<unsigned>(args.get_int("coil-threads", 1));
    const auto maps = core::make_birdcage_maps(n, coils);
    const auto truth =
        trajectory::rasterize(trajectory::shepp_logan(), static_cast<int>(n));
    std::vector<c64> truth_c(truth.size());
    for (std::size_t i = 0; i < truth.size(); ++i) truth_c[i] = truth[i];
    const auto y = simulate_multicoil(plan, maps, truth_c);

    const int sense_iters = static_cast<int>(args.get_int("iters", 10));
    core::CgResult cg;
    Timer timer;
    const auto image =
        core::cg_sense(plan, maps, y, sense_iters, 1e-6, &cg, coil_threads);
    const double secs = timer.seconds();

    std::vector<double> mag(image.size());
    for (std::size_t i = 0; i < image.size(); ++i) mag[i] = std::abs(image[i]);
    std::printf("cg-sense: %d coils, %u coil-threads, %zu samples -> "
                "%lldx%lld in %.3f s (%d CG iterations)\n",
                coils, coil_threads, coords.size(), static_cast<long long>(n),
                static_cast<long long>(n), secs, cg.iterations);
    std::printf("NRMSD vs phantom: %.4f | SSIM: %.4f\n",
                core::nrmsd(mag, truth),
                core::ssim(mag, truth, static_cast<int>(n)));
    const std::string out = args.get("out", "recon.pgm");
    write_pgm(out, image, static_cast<int>(n), static_cast<int>(n));
    std::printf("image written to %s\n", out.c_str());
    return 0;
  }

  // --dcf is the primary name; --density is the original spelling, kept as
  // an alias (--dcf wins when both are given).
  const std::string density = args.get("dcf", args.get("density", "ramp"));
  if (density == "ramp") {
    JIGSAW_REQUIRE(traj_type == trajectory::TrajectoryType::Radial ||
                       traj_type == trajectory::TrajectoryType::GoldenRadial,
                   "--dcf ramp is only valid for radial trajectories");
    const auto w = trajectory::radial_density_weights(coords);
    for (std::size_t i = 0; i < kdata.size(); ++i) kdata[i] *= w[i];
  } else if (density == "pipe-menon" || density == "pipe") {
    core::PipeMenonReport dcf_report;
    const auto w = core::pipe_menon_weights<2>(plan.gridder(), coords,
                                               core::PipeMenonOptions{},
                                               &dcf_report);
    for (std::size_t i = 0; i < kdata.size(); ++i) kdata[i] *= w[i];
    std::printf("dcf: pipe-menon, %d iterations (max update %.2e)\n",
                dcf_report.iterations, dcf_report.max_update);
  } else {
    JIGSAW_REQUIRE(density == "none", "unknown dcf mode: " << density);
  }

  const auto iters = args.get_int("iters", 0);
  core::NufftTimings t;
  Timer timer;
  std::vector<c64> image;
  if (iters > 0) {
    image = core::iterative_recon<2>(plan, kdata, static_cast<int>(iters));
  } else {
    image = plan.adjoint(kdata, &t);
  }
  const double secs = timer.seconds();

  const auto truth =
      trajectory::rasterize(trajectory::shepp_logan(), static_cast<int>(n));
  std::vector<double> mag(image.size());
  double dot = 0, sq = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    mag[i] = std::abs(image[i]);
    dot += mag[i] * truth[i];
    sq += mag[i] * mag[i];
  }
  if (sq > 0) {
    for (auto& v : mag) v *= dot / sq;
  }

  if (opt.sanitize != robustness::SanitizePolicy::None) {
    std::printf("%s", plan.gridder().last_sanitize_report().summary().c_str());
  }
  if (opt.soft_error.rate > 0.0) {
    std::printf("soft errors: %llu accumulator bit flips injected "
                "(rate %g, bit %d)\n",
                static_cast<unsigned long long>(
                    plan.gridder().stats().soft_error_flips),
                opt.soft_error.rate, opt.soft_error.bit);
  }
  std::printf("recon: %s, %zu samples -> %lldx%lld (%s engine) in %.3f s\n",
              trajectory::to_string(traj_type).c_str(), coords.size(),
              static_cast<long long>(n), static_cast<long long>(n),
              core::to_string(core::GridderSpec{opt.kind, opt.simd}).c_str(),
              secs);
  std::printf("NRMSD vs phantom: %.4f | SSIM: %.4f\n",
              core::nrmsd(mag, truth),
              core::ssim(mag, truth, static_cast<int>(n)));
  const std::string out = args.get("out", "recon.pgm");
  write_pgm(out, image, static_cast<int>(n), static_cast<int>(n));
  std::printf("image written to %s\n", out.c_str());
  return 0;
}

int cmd_grid(const CliArgs& args) {
  const std::int64_t n = args.get_int("n", 128);
  const std::int64_t m = args.get_int("samples", 50000);
  const auto coords =
      trajectory::make_2d(parse_traj(args.get("traj", "radial")), m);
  core::SampleSet<2> in;
  in.coords = coords;
  in.values.assign(coords.size(), c64(0.01, 0.0));

  const auto opt = resolve_auto(options_from(args), args, n,
                                static_cast<std::int64_t>(coords.size()));
  auto g = core::make_gridder<2>(n, opt);
  core::Grid<2> grid(g->grid_size());
  const double secs = time_best([&] { g->adjoint(in, grid); });
  const auto& s = g->stats();

  std::printf("%s gridding of %zu samples onto %lld^2: %.4f s "
              "(%.1f ns/sample)\n",
              core::to_string(core::GridderSpec{opt.kind, opt.simd}).c_str(),
              coords.size(),
              static_cast<long long>(g->grid_size()), secs,
              1e9 * secs / static_cast<double>(coords.size()));
  std::printf("boundary checks %llu | samples processed %llu | "
              "interpolations %llu | presort %.4f s\n",
              static_cast<unsigned long long>(s.boundary_checks),
              static_cast<unsigned long long>(s.samples_processed),
              static_cast<unsigned long long>(s.interpolations),
              s.presort_seconds);
  return 0;
}

int cmd_simulate(const CliArgs& args) {
  const std::int64_t n = args.get_int("n", 128);
  const std::int64_t m = args.get_int("samples", 50000);
  auto opt = options_from(args);
  const bool three_d = args.has("3d");
  // The cycle simulator models the fixed JIGSAW datapath; "auto" would be
  // circular here, so it simulates the slice-and-dice configuration.
  if (opt.kind == core::GridderKind::Auto) {
    opt.kind = core::GridderKind::SliceDice;
  }

  if (!three_d) {
    sim::CycleSim sim2d(n, opt, false);
    core::Grid<2> grid(sim2d.grid_size());
    core::SampleSet<2> in;
    in.coords = trajectory::make_2d(
        parse_traj(args.get("traj", "radial")), m);
    in.values.assign(in.coords.size(), c64(0.01, 0.0));
    sim2d.run_2d(in, grid);
    const auto& s = sim2d.stats();
    std::printf("JIGSAW 2D: %lld samples -> %lld cycles (%.3f us @1 GHz), "
                "%lld stalls, readout %lld cycles\n",
                s.samples_streamed, s.gridding_cycles,
                1e6 * s.gridding_seconds(), s.stall_cycles, s.readout_cycles);
    std::printf("activity: selects %lld, LUT reads %lld, MACs %lld, "
                "accumulates %lld, saturations %lld\n",
                s.selects, s.lut_reads, s.macs, s.accum_writes,
                s.saturations);
  } else {
    sim::CycleSim sim3d(n, opt, true);
    core::Grid<3> grid(sim3d.grid_size());
    core::SampleSet<3> in;
    in.coords = trajectory::stack_of_stars_3d(
        static_cast<int>(n / 2), static_cast<int>(n),
        static_cast<int>(n / 2));
    in.values.assign(in.coords.size(), c64(0.01, 0.0));
    sim3d.run_3d(in, grid, args.has("z-binned"));
    const auto& s = sim3d.stats();
    std::printf("JIGSAW 3D Slice (%s): %lld sample-streams -> %lld cycles "
                "(%.3f ms @1 GHz)\n",
                args.has("z-binned") ? "z-binned" : "unsorted",
                s.samples_streamed, s.gridding_cycles,
                1e3 * s.gridding_seconds());
  }

  energy::AsicConfig asic;
  asic.grid_n = static_cast<int>(opt.sigma * static_cast<double>(n) + 0.5);
  asic.window = opt.width;
  asic.three_d = three_d;
  const auto e = energy::estimate_asic(asic);
  std::printf("synthesis estimate: %.2f mW, %.2f mm^2 | gridding energy "
              "%.2f uJ\n",
              e.power_mw, e.area_mm2,
              1e6 * energy::gridding_energy_j(asic, m, args.has("z-binned")));
  return 0;
}

int cmd_info() {
  std::printf("jigsaw_nufft 1.0.0 — Slice-and-Dice NuFFT library "
              "(IPDPS 2021 reproduction)\n\n");
  std::printf("engines:      serial, output-driven, binning, slice-dice, "
              "jigsaw (fixed point), sparse, float, auto (tuned)\n");
  std::printf("              SIMD variants: serial-simd, slice-dice-simd, "
              "binning-simd\n");
  std::printf("kernels:      kaiser-bessel, gaussian, bspline, triangle, "
              "sinc-hann\n");
  std::printf(
      "trajectories: radial, golden-radial, spiral, vd-spiral, rosette, "
      "propeller, random, cartesian\n");
  std::printf("simd:         active=%s (supported: %s; override with "
              "--simd or $JIGSAW_SIMD)\n",
              kernels::simd::to_string(kernels::simd::active()),
              kernels::simd::supported_names().c_str());
  std::printf("hardware:     T=8 (64 pipelines), W<=8, L<=64, grid<=1024^2, "
              "M+12 cycles @1 GHz\n");
  return 0;
}

void print_help(std::FILE* out) {
  std::fprintf(out,
               "usage: jigsaw_cli <recon|grid|simulate|info> [--flags]\n\n"
               "  recon     reconstruct a phantom (or --input CSV) image\n"
               "  grid      time one gridding pass and report work counters\n"
               "  simulate  run the JIGSAW cycle simulator + ASIC estimate\n"
               "  info      list engines, kernels, trajectories\n\n"
               "common flags:\n"
               "  --engine %s\n"
               "            (auto picks the fastest engine for the geometry\n"
               "             via the autotuner — see docs/tuning.md)\n"
               "  --simd auto|scalar|avx2|avx512|neon\n"
               "            force the micro-kernel ISA for *-simd engines\n"
               "            (also $JIGSAW_SIMD; default auto-detects)\n"
               "  --wisdom <path>   autotuner wisdom store\n"
               "                    (default $JIGSAW_WISDOM or "
               "~/.jigsaw_wisdom.json)\n"
               "  --no-trials       skip calibration trials; use the cost "
               "model\n"
               "  --n N --samples M --traj radial|golden-radial|spiral|"
               "vd-spiral|rosette|propeller|random|cartesian\n"
               "  --dataset file.jksd   reconstruct an ingested JKSD "
               "acquisition\n"
               "            (--dcf none|embedded|pipe-menon, --iters K; see "
               "docs/datasets.md)\n"
               "  --kernel kaiser-bessel|gaussian|bspline|triangle|sinc-hann\n"
               "  --width W --sigma S --table L --tile T --iters K\n",
               core::gridder_kind_names().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_help(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    print_help(stdout);
    return 0;
  }
  const std::vector<std::string> flags = {
      "n",      "samples", "traj",  "engine",        "kernel",
      "width",  "sigma",   "table", "tile",          "exact-weights",
      "density", "iters",  "out",   "3d",            "z-binned",
      "input",  "save",    "sanitize",  "drop-spokes",  "noise-spikes",
      "inject-nan", "perturb-coords", "bitflip-rate", "bitflip-bit",
      "seed",   "coils",   "coil-threads", "trace-json", "counters",
      "wisdom", "no-trials", "simd", "dataset", "dcf"};
  try {
    CliArgs args(argc - 1, argv + 1, flags);
    // ISA override before any gridding: an unknown mode or one this host
    // cannot run exits 1 with the parser's one-line diagnostic.
    if (args.has("simd")) kernels::simd::force(args.get("simd"));
    const std::string trace_path = args.get("trace-json", "");
    if (!trace_path.empty()) obs::trace_start();

    int rc = 2;
    if (cmd == "recon") {
      rc = cmd_recon(args);
    } else if (cmd == "grid") {
      rc = cmd_grid(args);
    } else if (cmd == "simulate") {
      rc = cmd_simulate(args);
    } else if (cmd == "info") {
      rc = cmd_info();
    } else {
      std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
      return 2;
    }

    if (!trace_path.empty()) {
      const std::size_t events = obs::trace_stop_write(trace_path);
      std::printf("trace: %zu events -> %s (chrome://tracing | Perfetto)\n",
                  events, trace_path.c_str());
    }
    if (args.has("counters")) {
      if (!obs::kEnabled) {
        std::printf("counters: unavailable (built with JIGSAW_OBS=OFF)\n");
      } else {
        const obs::Snapshot snap = obs::snapshot();
        std::printf("counters (%zu):\n", snap.counters.size());
        for (const auto& [name, value] : snap.counters) {
          std::printf("  %-40s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(value));
        }
        for (const auto& [name, value] : snap.gauges) {
          std::printf("  %-40s %.6g  (gauge)\n", name.c_str(), value);
        }
      }
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
