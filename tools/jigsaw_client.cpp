// jigsaw_client: command-line client for jigsaw_serve / jigsaw_router.
//
//   jigsaw_client recon --endpoint unix:/tmp/jigsaw_serve.sock --n 128
//       --samples 40000 --traj radial --engine slice-dice --out img.pgm
//   jigsaw_client stats --endpoint 127.0.0.1:7421
//
// --endpoint accepts "unix:/path" or "host:port" (--socket PATH is the
// older spelling of the Unix form and still works). recon synthesizes
// Shepp-Logan k-space on the requested trajectory (the same data path
// jigsaw_cli uses), sends it, and reports the reply status and round-trip
// time; --count N repeats the request sequentially.
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/cli.hpp"
#include "common/pgm.hpp"
#include "core/gridder.hpp"
#include "robustness/sanitize.hpp"
#include "serve/client.hpp"
#include "stream/frame_source.hpp"
#include "trajectory/phantom.hpp"
#include "trajectory/trajectory.hpp"

namespace {

using namespace jigsaw;

trajectory::TrajectoryType parse_traj(const std::string& s) {
  if (s == "radial") return trajectory::TrajectoryType::Radial;
  if (s == "spiral") return trajectory::TrajectoryType::Spiral;
  if (s == "rosette") return trajectory::TrajectoryType::Rosette;
  if (s == "random") return trajectory::TrajectoryType::Random;
  if (s == "cartesian") return trajectory::TrajectoryType::Cartesian;
  if (s == "golden-radial" || s == "golden") {
    return trajectory::TrajectoryType::GoldenRadial;
  }
  if (s == "vd-spiral") return trajectory::TrajectoryType::VdSpiral;
  if (s == "propeller") return trajectory::TrajectoryType::Propeller;
  throw std::invalid_argument(
      "unknown trajectory '" + s +
      "', valid: radial, golden-radial, spiral, vd-spiral, rosette, "
      "propeller, random, cartesian");
}

// --endpoint (any spec) wins over --socket (Unix path only, the original
// flag); the default matches jigsaw_serve's default socket.
std::string endpoint_spec(const CliArgs& args) {
  return args.get("endpoint",
                  args.get("socket", "/tmp/jigsaw_serve.sock"));
}

int cmd_stats(const CliArgs& args) {
  serve::ServeClient client(endpoint_spec(args));
  std::printf("%s", client.statsz().c_str());
  return 0;
}

int cmd_recon(const CliArgs& args) {
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 128));
  const std::int64_t m = args.get_int("samples", 40000);
  const int count = static_cast<int>(args.get_int("count", 1));

  serve::ReconRequestWire req;
  const core::GridderSpec spec =
      core::parse_gridder_spec(args.get("engine", "slice-dice"));
  req.engine = static_cast<std::uint32_t>(spec.kind) |
               (spec.simd ? serve::kEngineSimdFlag : 0u);
  req.n = n;
  req.iters = static_cast<std::uint32_t>(args.get_int("iters", 0));
  req.coils = static_cast<std::uint32_t>(args.get_int("coils", 1));
  req.sanitize = static_cast<std::uint32_t>(
      robustness::parse_sanitize_policy(args.get("sanitize", "none")));
  req.kernel_width = static_cast<std::uint32_t>(args.get_int("width", 6));
  req.sigma = args.get_double("sigma", 2.0);
  req.deadline_ms =
      static_cast<std::uint64_t>(args.get_int("deadline-ms", 0));
  if (req.coils > 1) {
    throw std::invalid_argument(
        "multi-coil requests need per-coil data; this client synthesizes "
        "single-coil phantom k-space only");
  }

  req.coords = trajectory::make_2d(parse_traj(args.get("traj", "radial")), m,
                                   static_cast<std::uint64_t>(
                                       args.get_int("seed", 42)));
  req.values = trajectory::kspace_samples(trajectory::shepp_logan(),
                                          req.coords, static_cast<int>(n));

  serve::ServeClient client(endpoint_spec(args));
  serve::ReconReplyWire reply;
  for (int i = 0; i < count; ++i) {
    req.client_tag = static_cast<std::uint64_t>(i);
    const auto t0 = std::chrono::steady_clock::now();
    reply = client.recon(req);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("reply %d/%d: %s (%.1f ms", i + 1, count,
                serve::to_string(reply.status), ms);
    if (reply.sanitize_dropped + reply.sanitize_repaired > 0) {
      std::printf(", sanitized: %llu dropped, %llu repaired",
                  static_cast<unsigned long long>(reply.sanitize_dropped),
                  static_cast<unsigned long long>(reply.sanitize_repaired));
    }
    if (!reply.message.empty()) std::printf(", %s", reply.message.c_str());
    std::printf(")\n");
  }

  if (args.has("out") && !reply.image.empty()) {
    const std::string path = args.get("out");
    write_pgm(path, reply.image, static_cast<int>(reply.n),
              static_cast<int>(reply.n));
    std::printf("wrote %s (%u x %u)\n", path.c_str(), reply.n, reply.n);
  }
  return reply.status == serve::Status::kOk ||
                 reply.status == serve::Status::kSanitizedPartial
             ? 0
             : 2;
}

// Send a by-reference dataset request: the server reconstructs a JKSD file
// sitting on ITS filesystem (the path travels, not the samples) and replies
// with the mean magnitude image across surviving chunks.
int cmd_dataset(const CliArgs& args) {
  const std::string path = args.get("dataset", args.get("path"));
  if (path.empty()) {
    std::fprintf(stderr,
                 "dataset: --dataset <file.jksd> (worker-local path) is "
                 "required\n");
    return 1;
  }
  serve::DatasetRequestWire req;
  const core::GridderSpec spec =
      core::parse_gridder_spec(args.get("engine", "slice-dice"));
  req.engine = static_cast<std::uint32_t>(spec.kind) |
               (spec.simd ? serve::kEngineSimdFlag : 0u);
  req.iters = static_cast<std::uint32_t>(args.get_int("iters", 0));
  const std::string dcf = args.get("dcf", "pipe-menon");
  if (dcf == "none") {
    req.dcf = 0;
  } else if (dcf == "embedded") {
    req.dcf = 1;
  } else if (dcf == "pipe-menon" || dcf == "pipe") {
    req.dcf = 2;
  } else {
    throw std::invalid_argument("unknown --dcf '" + dcf +
                                "', valid: none, embedded, pipe-menon");
  }
  req.deadline_ms = static_cast<std::uint64_t>(args.get_int("deadline-ms", 0));
  req.path = path;

  serve::ServeClient client(endpoint_spec(args));
  const auto t0 = std::chrono::steady_clock::now();
  const serve::ReconReplyWire reply = client.recon_dataset(req);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  std::printf("dataset reply: %s (%.1f ms", serve::to_string(reply.status),
              ms);
  if (!reply.message.empty()) std::printf(", %s", reply.message.c_str());
  std::printf(")\n");

  if (args.has("out") && !reply.image.empty()) {
    const std::string out = args.get("out");
    write_pgm(out, reply.image, static_cast<int>(reply.n),
              static_cast<int>(reply.n));
    std::printf("wrote %s (%u x %u)\n", out.c_str(), reply.n, reply.n);
  }
  return reply.status == serve::Status::kOk ? 0 : 2;
}

// Stream a sliding-window golden-angle frame sequence of the dynamic
// phantom through a session: open, push --frames frames, close, report
// per-frame status / iterations / latency and the session totals.
int cmd_stream(const CliArgs& args) {
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 128));
  const int frames = static_cast<int>(args.get_int("frames", 32));
  if (frames < 1) throw std::invalid_argument("--frames must be >= 1");

  stream::FrameWindow window;
  window.spokes_per_frame = static_cast<int>(args.get_int("spokes", 13));
  window.window_spokes = static_cast<int>(args.get_int("window", 34));
  window.samples_per_spoke =
      static_cast<int>(args.get_int("spoke-samples", 128));
  const stream::FrameSource source(window, frames);
  const stream::DynamicPhantom phantom;

  serve::OpenSessionWire open;
  const core::GridderSpec spec =
      core::parse_gridder_spec(args.get("engine", "slice-dice"));
  open.engine = static_cast<std::uint32_t>(spec.kind) |
                (spec.simd ? serve::kEngineSimdFlag : 0u);
  open.n = n;
  open.iters = static_cast<std::uint32_t>(args.get_int("iters", 10));
  open.coils = 1;
  open.kernel_width = static_cast<std::uint32_t>(args.get_int("width", 6));
  open.warm_start = args.get_int("warm", 1) != 0 ? 1u : 0u;
  open.sigma = args.get_double("sigma", 2.0);
  open.divergence_guard = args.get_double("guard", 1.0);
  open.frame_deadline_ms =
      static_cast<std::uint64_t>(args.get_int("deadline-ms", 0));

  serve::ServeClient client(endpoint_spec(args));
  const serve::SessionReplyWire opened = client.open_session(open);
  if (opened.status != serve::Status::kOk) {
    std::fprintf(stderr, "open failed: %s (%s)\n",
                 serve::to_string(opened.status), opened.message.c_str());
    return 2;
  }
  std::printf("session %llx open (n=%u iters=%u warm=%u)\n",
              static_cast<unsigned long long>(opened.session_id), n,
              open.iters, open.warm_start);

  int ok = 0, warm = 0;
  serve::FrameReplyWire reply;
  for (int f = 0; f < frames; ++f) {
    serve::PushFrameWire push;
    push.session_id = opened.session_id;
    push.frame_index = static_cast<std::uint64_t>(f);
    push.client_tag = static_cast<std::uint64_t>(f);
    push.coords = source.frame_coords(f);
    push.values = phantom.kspace_at(push.coords, source.frame_time(f),
                                    static_cast<int>(n));
    const auto t0 = std::chrono::steady_clock::now();
    reply = client.push_frame(push);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const bool was_warm = (reply.flags & serve::kFrameWarmFlag) != 0;
    if (reply.status == serve::Status::kOk) ++ok;
    if (was_warm) ++warm;
    std::printf("frame %3d/%d: %s (%.1f ms, %u iters%s%s%s",
                f + 1, frames, serve::to_string(reply.status), ms,
                reply.iterations, was_warm ? ", warm" : ", cold",
                (reply.flags & serve::kFrameGuardFlag) ? ", guard" : "",
                (reply.flags & serve::kFramePlanReusedFlag)
                    ? ", plan-reused"
                    : "");
    if (!reply.message.empty()) std::printf(", %s", reply.message.c_str());
    std::printf(")\n");
    // Line-flush: a streaming client's progress must be visible (and
    // greppable by CI) in real time, not on stdio's buffer schedule.
    std::fflush(stdout);
  }

  serve::CloseSessionWire close;
  close.session_id = opened.session_id;
  const serve::SessionReplyWire closed = client.close_session(close);
  std::printf("session closed: %s (%llu frames, %llu total CG iterations, "
              "%d/%d ok, %d warm)\n",
              serve::to_string(closed.status),
              static_cast<unsigned long long>(closed.frames),
              static_cast<unsigned long long>(closed.total_iterations), ok,
              frames, warm);

  if (args.has("out") && !reply.image.empty()) {
    const std::string path = args.get("out");
    write_pgm(path, reply.image, static_cast<int>(reply.n),
              static_cast<int>(reply.n));
    std::printf("wrote %s (%u x %u)\n", path.c_str(), reply.n, reply.n);
  }
  return ok == frames && closed.status == serve::Status::kOk ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      std::fprintf(stderr,
                   "usage: jigsaw_client <recon|stream|dataset|stats> "
                   "[--endpoint unix:/path|host:port] [--n N] [--samples M] "
                   "[--traj T] [--engine E] [--iters K] [--sanitize P] "
                   "[--deadline-ms D] [--count C] [--out F.pgm]\n"
                   "       stream also takes: [--frames N] [--spokes S] "
                   "[--window W] [--spoke-samples P] [--warm 0|1] "
                   "[--guard G]\n"
                   "       dataset takes: --dataset file.jksd (worker-local"
                   " path) [--dcf none|embedded|pipe-menon] [--iters K]\n");
      return 1;
    }
    const std::string cmd = argv[1];
    const CliArgs args(argc - 1, argv + 1,
                       {"socket", "endpoint", "n", "samples", "traj",
                        "engine", "iters", "coils", "sanitize", "width",
                        "sigma", "deadline-ms", "count", "seed", "out",
                        "stream", "frames", "spokes", "window",
                        "spoke-samples", "warm", "guard", "dataset", "path",
                        "dcf"});
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "dataset") return cmd_dataset(args);
    // `recon --stream` is an accepted spelling of the stream command.
    if (cmd == "stream" || (cmd == "recon" && args.has("stream"))) {
      return cmd_stream(args);
    }
    if (cmd == "recon") return cmd_recon(args);
    std::fprintf(stderr,
                 "error: unknown command '%s', valid: recon, stream, "
                 "dataset, stats\n",
                 cmd.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
